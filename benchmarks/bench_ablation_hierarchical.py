"""Ablation: subtree-level selection vs uniform policies.

The paper's closing proposal ("apply cheaper but acceptably accurate
reduction algorithms to subtrees based on the profile") quantified: on a
heterogeneous communicator — most ranks holding benign data, a few holding
cancelling data — compare

* uniform-ST (cheapest, irreproducible on the hostile ranks),
* uniform-PR (robust, overpays everywhere),
* hierarchical (per-rank cheapest-acceptable + deterministic combine).

Hierarchical must land between the uniform extremes in measured time while
matching uniform-PR's accuracy on the total.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exact import exact_sum
from repro.generators import zero_sum_set
from repro.selection import CostModel, HierarchicalReducer
from repro.summation import SumContext, get_algorithm
from repro.util.timing import time_callable


@pytest.fixture(scope="module")
def chunks(scale):
    rng = np.random.default_rng(scale.seed)
    per_rank = max(scale.fig4_n_terms // 8, 50_000)
    out = [np.abs(rng.uniform(1.0, 2.0, per_rank)) for _ in range(14)]
    out.append(zero_sum_set(per_rank, dr=32, seed=scale.seed + 1))
    out.append(zero_sum_set(per_rank, dr=24, seed=scale.seed + 2))
    return out


def _uniform(chunks, code):
    alg = get_algorithm(code)
    ctx = SumContext.for_data(np.concatenate(chunks)) if alg.needs_context else None
    partials = []
    for c in chunks:
        acc = alg.make_accumulator(ctx)
        acc.add_array(c)
        partials.append(acc.result())
    top = get_algorithm("PR")
    arr = np.asarray(partials)
    return top.sum_array(arr, SumContext.for_data(arr))


def test_uniform_st(benchmark, chunks):
    benchmark(lambda: _uniform(chunks, "ST"))


def test_uniform_pr(benchmark, chunks):
    benchmark(lambda: _uniform(chunks, "PR"))


def test_hierarchical(benchmark, chunks):
    red = HierarchicalReducer(threshold=1e-12)
    plan = red.plan(chunks)
    result = benchmark(lambda: red.reduce(chunks, plan=plan))
    assert set(plan.local_codes[:14]) <= {"ST", "K"}
    assert set(plan.local_codes[14:]) == {"PR"}
    exact = exact_sum(np.concatenate(chunks))
    assert result.value == pytest.approx(exact, rel=1e-11)


def test_hierarchical_sits_between_extremes(chunks):
    red = HierarchicalReducer(threshold=1e-12)
    plan = red.plan(chunks)
    t_st = time_callable(lambda: _uniform(chunks, "ST"), repeats=3, warmup=1).best
    t_pr = time_callable(lambda: _uniform(chunks, "PR"), repeats=3, warmup=1).best
    t_h = time_callable(lambda: red.reduce(chunks, plan=plan), repeats=3, warmup=1).best
    assert t_h < t_pr
    # cost-model view agrees: heterogeneous plan is cheaper than uniform PR
    cm = CostModel()
    sizes = [c.size for c in chunks]
    assert plan.estimated_cost(cm, sizes) < sum(cm.cost("PR", n) for n in sizes)
