"""Ablation: Kahan tree-merge semantics.

DESIGN.md calls out the K merge design choice: our merge combines both
pending compensations with the incoming partial sum ("fold at each step", the
paper's characterisation of Kahan).  The ablation compares it against the
naive alternative — applying each side's compensation to its own sum first —
which degenerates to plain ST because ``fl(s - c) == s`` right after a
TwoSum.  The bench quantifies that: the naive variant's tree-ensemble spread
matches ST's, while the shipped variant's is smaller.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fp.eft import two_sum_array
from repro.generators import zero_sum_set
from repro.metrics import error_stats
from repro.summation import get_algorithm
from repro.summation.base import VectorOps
from repro.trees import evaluate_ensemble
from repro.trees.serial_batch import serial_ensemble_vops
from repro.util.rng import permutation_stream


class _NaiveKahanOps(VectorOps):
    """The rejected design: compensation folded into one's own sum."""

    n_components = 2

    def init(self, values):
        v = np.asarray(values, dtype=np.float64)
        return (v.copy(), np.zeros_like(v))

    def merge(self, a, b):
        t1 = a[0] - a[1]
        t2 = b[0] - b[1]
        s, e = two_sum_array(t1, t2)
        return (s, -e)

    def result(self, state):
        return state[0]


def _serial_spread(data, vops, n_trees, seed):
    perms = np.vstack(list(permutation_stream(data.size, n_trees, seed)))
    vals = serial_ensemble_vops(data[perms], vops)
    return error_stats(vals, data).spread


@pytest.fixture(scope="module")
def workload(scale):
    return zero_sum_set(min(scale.fig6_n, 4096), dr=32, seed=scale.seed + 1)


def test_shipped_merge_beats_naive(workload, scale):
    n_trees = min(scale.fig6_n_trees, 40)
    shipped = _serial_spread(
        workload, get_algorithm("K").vector_ops, n_trees, scale.seed
    )
    naive = _serial_spread(workload, _NaiveKahanOps(), n_trees, scale.seed)
    st = error_stats(
        evaluate_ensemble(workload, "serial", get_algorithm("ST"), n_trees, seed=scale.seed),
        workload,
    ).spread
    assert shipped < naive
    # the naive variant offers no improvement over plain ST
    assert naive >= 0.5 * st


def test_merge_cost(benchmark, workload, scale):
    vops = get_algorithm("K").vector_ops
    perms = np.vstack(list(permutation_stream(workload.size, 8, scale.seed)))
    mat = workload[perms]
    benchmark(lambda: serial_ensemble_vops(mat, vops))
