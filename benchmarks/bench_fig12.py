"""Fig. 12: cheapest acceptable algorithm per (k, dr) cell per threshold."""

from __future__ import annotations

from benchmarks.conftest import save_and_check
from repro.experiments import fig12_selection


def test_fig12(benchmark, scale, results_dir):
    result = benchmark.pedantic(
        fig12_selection.run, args=(scale,), rounds=1, iterations=1
    )
    save_and_check(result, results_dir)
