"""Collectives beyond reduce: scan and allreduce-strategy costs.

Quantifies the extension substrates: prefix reductions under each algorithm
and the two allreduce strategies, plus the consistency assertions that make
the numbers meaningful (PR agreeing everywhere; Kahan's butterfly hazard).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.generators import zero_sum_set
from repro.mpi import (
    SimComm,
    allreduce_recursive_doubling,
    allreduce_ring,
    make_reduction_op,
    scan,
)
from repro.summation import get_algorithm


@pytest.fixture(scope="module")
def chunks(scale):
    data = zero_sum_set(scale.fig4_n_terms // 4, dr=24, seed=scale.seed + 5)
    return SimComm(16).scatter_array(data)


@pytest.mark.parametrize("code", ["ST", "CP", "PR"])
def test_scan_cost(benchmark, chunks, code):
    out = benchmark(lambda: scan(chunks, code))
    assert out.shape == (16,)


@pytest.mark.parametrize("strategy", ["butterfly", "ring"])
@pytest.mark.parametrize("code", ["ST", "PR"])
def test_allreduce_cost(benchmark, chunks, code, strategy):
    op = make_reduction_op(get_algorithm(code))
    fn = allreduce_recursive_doubling if strategy == "butterfly" else allreduce_ring
    vals = benchmark(lambda: fn(chunks, op))
    if code == "PR":
        assert len(set(vals)) == 1


def test_pr_strategy_agreement(chunks):
    op = make_reduction_op(get_algorithm("PR"))
    bf = allreduce_recursive_doubling(chunks, op)
    ring = allreduce_ring(chunks, op)
    assert set(bf) == set(ring) and len(set(bf)) == 1
