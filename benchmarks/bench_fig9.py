"""Fig. 9: (k, dr) grid of error variability at fixed concurrency."""

from __future__ import annotations

from benchmarks.conftest import save_and_check
from repro.experiments import fig9_kdr


def test_fig9(benchmark, scale, results_dir):
    result = benchmark.pedantic(fig9_kdr.run, args=(scale,), rounds=1, iterations=1)
    save_and_check(result, results_dir)
