"""Serving-daemon bench: micro-batched throughput vs request-at-a-time.

The acceptance bar for ``repro.serve`` is quantitative: at client
concurrency >= 16, the dynamic micro-batcher must deliver >= 3x the
throughput of the same daemon in its request-at-a-time reference
configuration (``batching=False``: no coalescing, one full
:meth:`AdaptiveReducer.reduce` pipeline per request), with **every**
response bitwise-identical to a standalone serial ``reduce`` of the same
payload.  This bench boots both configurations in-process, fires the
same async burst at each through keep-alive connections, and writes the
trajectory to ``BENCH_serve.json`` at the repo root.

Why the speedup is structural, not a timer artifact: at the workload
below (48 ranks x 128 elements) one solo ``reduce`` costs ~3ms while the
batched ``reduce_many`` serving path is ~0.35ms/item — the vectorised
profile sweep and the amortised per-dispatch tax are an ~8.5x pipeline
asymmetry that the micro-batcher re-creates from concurrent network
arrivals, so the win survives a single-core CI runner (observed ~4.5x
end-to-end with HTTP framing included).

A second case compares the wire codecs on the same daemon and vectors:
JSON number arrays vs base64 float64 vs the zero-copy binary frame
(``application/x-repro-frame``), reporting throughput and p50/p99
per-request latency per codec.  The binary path must sustain >= 2x the
JSON number-array path — the JSON codec spends more CPU parsing the
request than the reduction it carries, and the frame ingest removes that
cost (payload bytes reach NumPy as a view of the receive buffer).

Run directly (CI does, as a smoke job that uploads the JSON artifact)::

    python benchmarks/bench_serve.py --metrics-out metrics-serve.json

or under pytest, where the throughput floors are asserted::

    python -m pytest benchmarks/bench_serve.py -q
"""

from __future__ import annotations

import argparse
import asyncio
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.mpi.comm import SimComm
from repro.obs import get_registry
from repro.obs.registry import parse_prometheus_text
from repro.selection.selector import AdaptiveReducer
from repro.serve.daemon import ReproServeDaemon
from repro.serve.frames import (
    FRAME_CONTENT_TYPE,
    KIND_RESPONSE,
    encode_frame,
    parse_frame,
    payload_array,
)
from repro.serve.protocol import KeepAliveClient, encode_values, http_request

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_serve.json"

#: paper-shaped serving workload: 48 ranks, 128-element chunks.  The chunk
#: width is picked where the pipeline asymmetry is widest on a small CI
#: runner: one solo ``reduce`` costs ~3ms here while the batched
#: ``reduce_many`` path is ~0.35ms/item (~8.5x), and the JSON/base64
#: framing stays cheap enough not to drown the compute in transport.
N_RANKS = 48
CHUNK_LEN = 128

#: acceptance-criterion client shape: >= 16 concurrent keep-alive clients
CONCURRENCY = 16
REQUESTS_PER_CLIENT = 4

#: batched-mode knobs (the baseline runs ``batching=False``).  max_batch
#: equals the client concurrency: a tick fires the moment every
#: outstanding request is queued instead of lingering for a batch that
#: cannot arrive (each client keeps exactly one request in flight).
MAX_BATCH = 16
LINGER_US = 2000.0


def _burst_payloads(seed: int = 4242) -> "list[tuple[bytes, str]]":
    """(request body, expected value_hex) per request — the expectation is
    a fresh serial ``AdaptiveReducer.reduce``, recomputed independently of
    anything the daemon does."""
    rng = np.random.default_rng(seed)
    comm = SimComm(N_RANKS)
    reducer = AdaptiveReducer(comm, threshold=1e-13)
    out = []
    for _ in range(CONCURRENCY * REQUESTS_PER_CLIENT):
        values = rng.uniform(-1.0, 1.0, N_RANKS * CHUNK_LEN) * 10.0 ** (
            rng.integers(-6, 7, size=N_RANKS * CHUNK_LEN)
        )
        body = json.dumps({"values_b64": encode_values(values)}).encode()
        expected = float(
            reducer.reduce(comm.scatter_array(values)).value
        ).hex()
        out.append((body, expected))
    return out


async def _fire_burst(
    host: str, port: int, payloads: "list[tuple[bytes, str]]"
) -> "list[str]":
    """CONCURRENCY keep-alive clients round-robin the request list; returns
    the response value_hex per request (order preserved)."""
    results: "list[str | None]" = [None] * len(payloads)

    async def client(offset: int) -> None:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            for i in range(offset, len(payloads), CONCURRENCY):
                resp = await http_request(
                    host, port, "POST", "/v1/reduce", payloads[i][0],
                    reader=reader, writer=writer,
                )
                assert resp.status == 200, (resp.status, resp.body)
                results[i] = resp.json()["value_hex"]
        finally:
            writer.close()

    await asyncio.gather(*(client(c) for c in range(CONCURRENCY)))
    assert all(r is not None for r in results)
    return results  # type: ignore[return-value]


async def _mixed_extras(host: str, port: int) -> None:
    """Non-reduce traffic in the burst: exercises every endpoint so the
    /metrics scrape covers the full route table (untimed)."""
    rng = np.random.default_rng(7)
    values = rng.normal(size=512)
    items = [
        {"values_b64": encode_values(rng.normal(size=256))} for _ in range(4)
    ]
    resp = await http_request(
        host, port, "POST", "/v1/reduce_many",
        json.dumps({"items": items}).encode(),
    )
    assert resp.status == 200, resp.body
    resp = await http_request(
        host, port, "POST", "/v1/ensemble",
        json.dumps(
            {
                "values_b64": encode_values(values),
                "algorithm": "K",
                "n_trees": 8,
                "seed": 3,
            }
        ).encode(),
    )
    assert resp.status == 200, resp.body
    resp = await http_request(host, port, "GET", "/healthz")
    assert resp.status == 200


async def _run_mode(
    *,
    max_batch: int,
    linger_us: float,
    payloads: "list[tuple[bytes, str]]",
    repeats: int,
    mixed: bool,
    batching: bool = True,
) -> dict:
    async with ReproServeDaemon(
        ranks=N_RANKS,
        max_batch=max_batch,
        max_linger_us=linger_us,
        workers=1,
        batching=batching,
    ) as daemon:
        host, port = daemon.host, daemon.port
        # warmup: populate the decision cache so both modes time steady state
        await http_request(host, port, "POST", "/v1/reduce", payloads[0][0])
        best = float("inf")
        hexes: "list[str]" = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            hexes = await _fire_burst(host, port, payloads)
            best = min(best, time.perf_counter() - t0)
        if mixed:
            await _mixed_extras(host, port)
        scrape = await http_request(host, port, "GET", "/metrics")
        assert scrape.status == 200
        return {
            "burst_s": best,
            "hexes": hexes,
            "metrics_text": scrape.body.decode(),
            "batches_processed": daemon.batcher.batches_processed,
            "requests_accepted": daemon.batcher.requests_accepted,
        }


def bench_serve(repeats: int = 3) -> dict:
    payloads = _burst_payloads()
    expected = [hx for _, hx in payloads]
    n = len(payloads)

    baseline = asyncio.run(
        _run_mode(
            max_batch=1, linger_us=0.0, payloads=payloads, repeats=repeats,
            mixed=False, batching=False,
        )
    )
    batched = asyncio.run(
        _run_mode(
            max_batch=MAX_BATCH, linger_us=LINGER_US, payloads=payloads,
            repeats=repeats, mixed=True,
        )
    )

    for mode in (baseline, batched):
        assert mode["hexes"] == expected, (
            "a served response diverged bitwise from serial recomputation"
        )

    # the /metrics exposition must survive its own parser, and record the
    # batching the daemon claims happened
    parsed = parse_prometheus_text(batched["metrics_text"])
    batch_hist = [
        {"le": s["labels"]["le"], "count": s["value"]}
        for s in parsed["samples"]
        if s["name"] == "repro_serve_batch_items_bucket"
    ]
    batches_total = sum(
        s["value"]
        for s in parsed["samples"]
        if s["name"] == "repro_serve_batches_total"
    )
    assert batches_total > 0, "repro_serve_batches_total never incremented"
    assert batch_hist, "batch-size histogram missing from /metrics"

    baseline_rps = n / baseline["burst_s"]
    batched_rps = n / batched["burst_s"]
    return {
        "case": "serve_micro_batching",
        "n_ranks": N_RANKS,
        "chunk_len": CHUNK_LEN,
        "concurrency": CONCURRENCY,
        "requests": n,
        "max_batch": MAX_BATCH,
        "max_linger_us": LINGER_US,
        "baseline_burst_s": baseline["burst_s"],
        "batched_burst_s": batched["burst_s"],
        "baseline_rps": baseline_rps,
        "batched_rps": batched_rps,
        "speedup": batched_rps / baseline_rps,
        "bitwise_identical": True,  # asserted above, for the record
        "baseline_batches": baseline["batches_processed"],
        "batched_batches": batched["batches_processed"],
        "mean_batch_items": (
            batched["requests_accepted"] / batched["batches_processed"]
        ),
        "batch_items_histogram": batch_hist,
        "serve_batches_total": batches_total,
    }


# -- codec comparison: JSON numbers vs base64 vs binary frames -----------------


def _codec_workload(
    seed: int = 20266,
) -> "tuple[list[np.ndarray], list[int]]":
    """(request vector, expected float64 result bits) per request; the
    expectation is a fresh serial reduce, independent of the daemon."""
    rng = np.random.default_rng(seed)
    comm = SimComm(N_RANKS)
    reducer = AdaptiveReducer(comm, threshold=1e-13)
    vectors: "list[np.ndarray]" = []
    expected: "list[int]" = []
    for _ in range(CONCURRENCY * REQUESTS_PER_CLIENT):
        values = rng.uniform(-1.0, 1.0, N_RANKS * CHUNK_LEN) * 10.0 ** (
            rng.integers(-6, 7, size=N_RANKS * CHUNK_LEN)
        )
        vectors.append(np.ascontiguousarray(values, dtype="<f8"))
        result = reducer.reduce(comm.scatter_array(values)).value
        expected.append(int(np.float64(result).view(np.uint64)))
    return vectors, expected


def _codec_bodies(vectors: "list[np.ndarray]", codec: str) -> "list[bytes]":
    if codec == "binary":
        return [
            encode_frame({"dtype": "<f8", "shape": [v.size]}, v)
            for v in vectors
        ]
    if codec == "json_b64":
        return [
            json.dumps({"values_b64": encode_values(v)}).encode()
            for v in vectors
        ]
    return [json.dumps({"values": v.tolist()}).encode() for v in vectors]


def _decode_binary_bits(resp) -> int:
    # copy the body out of the client's recycled receive buffer first
    header, payload = parse_frame(bytes(resp.body), kind=KIND_RESPONSE)
    return int(payload_array(header, payload).view(np.uint64)[0])


def _decode_json_bits(resp) -> int:
    return int(
        np.float64(float.fromhex(resp.json()["value_hex"])).view(np.uint64)
    )


async def _fire_codec_burst(
    host: str,
    port: int,
    bodies: "list[bytes]",
    content_type: str,
    decode,
) -> "tuple[list[float], list[int]]":
    """CONCURRENCY keep-alive clients; per-request latency + result bits."""
    latencies = [0.0] * len(bodies)
    bits = [0] * len(bodies)

    async def client(offset: int) -> None:
        async with KeepAliveClient(host, port) as c:
            for i in range(offset, len(bodies), CONCURRENCY):
                t0 = time.perf_counter()
                resp = await c.request(
                    "POST", "/v1/reduce", bodies[i],
                    content_type=content_type,
                )
                latencies[i] = time.perf_counter() - t0
                assert resp.status == 200, (resp.status, bytes(resp.body))
                bits[i] = decode(resp)  # consumes the recycled body view

    await asyncio.gather(*(client(c) for c in range(CONCURRENCY)))
    return latencies, bits


def bench_codecs(repeats: int = 3) -> dict:
    """One daemon, three wire codecs, same vectors: throughput and p50/p99
    per-request latency for JSON number arrays, base64 JSON, and binary
    frames — every response checked bitwise against serial recomputation."""
    vectors, expected = _codec_workload()
    n = len(vectors)
    codecs = {
        codec: _codec_bodies(vectors, codec)
        for codec in ("json", "json_b64", "binary")
    }

    async def run() -> "tuple[dict, str]":
        async with ReproServeDaemon(
            ranks=N_RANKS,
            max_batch=MAX_BATCH,
            max_linger_us=LINGER_US,
            workers=1,
        ) as daemon:
            host, port = daemon.host, daemon.port
            modes: "dict[str, dict]" = {}
            for codec, bodies in codecs.items():
                binary = codec == "binary"
                content_type = (
                    FRAME_CONTENT_TYPE if binary else "application/json"
                )
                decode = _decode_binary_bits if binary else _decode_json_bits
                # warmup: decision cache + scaffold/buffer growth
                _, warm_bits = await _fire_codec_burst(
                    host, port, bodies[:CONCURRENCY], content_type, decode
                )
                assert warm_bits == expected[:CONCURRENCY]
                best, best_lat = float("inf"), [0.0]
                for _ in range(repeats):
                    t0 = time.perf_counter()
                    lat, bits = await _fire_codec_burst(
                        host, port, bodies, content_type, decode
                    )
                    elapsed = time.perf_counter() - t0
                    assert bits == expected, (
                        f"{codec} response diverged bitwise from serial "
                        "recomputation"
                    )
                    if elapsed < best:
                        best, best_lat = elapsed, lat
                modes[codec] = {"burst_s": best, "latencies": best_lat}
            scrape = await http_request(host, port, "GET", "/metrics")
            assert scrape.status == 200
            return modes, scrape.body.decode()

    modes, metrics_text = asyncio.run(run())
    parsed = parse_prometheus_text(metrics_text)
    codec_counts = {
        s["labels"]["codec"]: s["value"]
        for s in parsed["samples"]
        if s["name"] == "repro_serve_codec_total"
    }
    assert codec_counts.get("binary", 0) > 0, codec_counts
    assert codec_counts.get("json", 0) > 0, codec_counts

    row: dict = {
        "case": "serve_codec_comparison",
        "n_ranks": N_RANKS,
        "chunk_len": CHUNK_LEN,
        "concurrency": CONCURRENCY,
        "requests": n,
        "max_batch": MAX_BATCH,
        "max_linger_us": LINGER_US,
        "bitwise_identical": True,  # asserted above, for the record
        "codec_requests_total": codec_counts,
    }
    for codec, mode in modes.items():
        lat = np.asarray(mode["latencies"])
        row[codec] = {
            "burst_s": mode["burst_s"],
            "rps": n / mode["burst_s"],
            "p50_ms": float(np.percentile(lat, 50) * 1e3),
            "p99_ms": float(np.percentile(lat, 99) * 1e3),
        }
    row["binary_vs_json_speedup"] = (
        row["binary"]["rps"] / row["json"]["rps"]
    )
    row["binary_vs_json_b64_speedup"] = (
        row["binary"]["rps"] / row["json_b64"]["rps"]
    )
    return row


def run_all(repeats: int = 3) -> dict:
    return {
        "bench": "serve",
        "schema": 2,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "cases": [bench_serve(repeats), bench_codecs(repeats)],
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="Serving-daemon bench (micro-batched vs per-request)."
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="enable repro.obs metrics for the run and write the registry "
        "snapshot (JSON) here; inspect with repro-metrics",
    )
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)
    registry = get_registry()
    registry.enable()  # the bench asserts on repro_serve_* either way
    payload = run_all(repeats=args.repeats)
    payload["metrics_enabled"] = True
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUTPUT}")
    if args.metrics_out:
        metrics_path = Path(args.metrics_out)
        metrics_path.parent.mkdir(parents=True, exist_ok=True)
        metrics_path.write_text(registry.to_json() + "\n")
        print(f"metrics snapshot written to {metrics_path}")
    batch_case, codec_case = payload["cases"]
    print(
        f"{batch_case['case']:>22}  C={batch_case['concurrency']} "
        f"N={batch_case['requests']}  "
        f"baseline={batch_case['baseline_rps']:.0f} req/s  "
        f"batched={batch_case['batched_rps']:.0f} req/s  "
        f"speedup={batch_case['speedup']:.1f}x  "
        f"mean_batch={batch_case['mean_batch_items']:.1f}"
    )
    for codec in ("json", "json_b64", "binary"):
        c = codec_case[codec]
        print(
            f"{codec_case['case']:>22}  {codec:>8}: {c['rps']:.0f} req/s  "
            f"p50={c['p50_ms']:.2f}ms  p99={c['p99_ms']:.2f}ms"
        )
    print(
        f"{'':>22}  binary vs json: "
        f"{codec_case['binary_vs_json_speedup']:.1f}x  "
        f"(vs b64: {codec_case['binary_vs_json_b64_speedup']:.1f}x)"
    )
    return 0


# -- pytest entry points: assert the acceptance floors -------------------------


def test_micro_batching_throughput_floor():
    """Acceptance: >= 3x request-at-a-time throughput at concurrency >= 16,
    bitwise-identical responses (one re-measure allowed, same policy as the
    other bench floors)."""
    get_registry().enable()
    try:
        row = bench_serve(repeats=2)
        if row["speedup"] < 3.0:
            row = bench_serve(repeats=2)
        assert row["speedup"] >= 3.0, row
        assert row["bitwise_identical"], row
        assert row["serve_batches_total"] > 0, row
        # micro-batching actually batched: fewer ticks than requests
        assert row["batched_batches"] < row["requests"], row
    finally:
        get_registry().disable()
        get_registry().reset()


def test_binary_codec_throughput_floor():
    """Acceptance: the binary frame path sustains >= 2x the JSON
    number-array path's throughput, bitwise-identical responses, and the
    codec counter proves binary traffic actually flowed (one re-measure
    allowed, same policy as the other bench floors).  The base64 ratio is
    recorded but not gated — base64 is already the cheap JSON form."""
    get_registry().enable()
    try:
        row = bench_codecs(repeats=2)
        if row["binary_vs_json_speedup"] < 2.0:
            row = bench_codecs(repeats=2)
        assert row["binary_vs_json_speedup"] >= 2.0, row
        assert row["bitwise_identical"], row
        assert row["codec_requests_total"].get("binary", 0) > 0, row
        assert row["codec_requests_total"].get("json", 0) > 0, row
    finally:
        get_registry().disable()
        get_registry().reset()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
