"""Serving-daemon bench: micro-batched throughput vs request-at-a-time.

The acceptance bar for ``repro.serve`` is quantitative: at client
concurrency >= 16, the dynamic micro-batcher must deliver >= 3x the
throughput of the same daemon in its request-at-a-time reference
configuration (``batching=False``: no coalescing, one full
:meth:`AdaptiveReducer.reduce` pipeline per request), with **every**
response bitwise-identical to a standalone serial ``reduce`` of the same
payload.  This bench boots both configurations in-process, fires the
same async burst at each through keep-alive connections, and writes the
trajectory to ``BENCH_serve.json`` at the repo root.

Why the speedup is structural, not a timer artifact: at the workload
below (48 ranks x 128 elements) one solo ``reduce`` costs ~3ms while the
batched ``reduce_many`` serving path is ~0.35ms/item — the vectorised
profile sweep and the amortised per-dispatch tax are an ~8.5x pipeline
asymmetry that the micro-batcher re-creates from concurrent network
arrivals, so the win survives a single-core CI runner (observed ~4.5x
end-to-end with HTTP framing included).

Run directly (CI does, as a smoke job that uploads the JSON artifact)::

    python benchmarks/bench_serve.py --metrics-out metrics-serve.json

or under pytest, where the throughput floor is asserted::

    python -m pytest benchmarks/bench_serve.py -q
"""

from __future__ import annotations

import argparse
import asyncio
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.mpi.comm import SimComm
from repro.obs import get_registry
from repro.obs.registry import parse_prometheus_text
from repro.selection.selector import AdaptiveReducer
from repro.serve.daemon import ReproServeDaemon
from repro.serve.protocol import encode_values, http_request

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_serve.json"

#: paper-shaped serving workload: 48 ranks, 128-element chunks.  The chunk
#: width is picked where the pipeline asymmetry is widest on a small CI
#: runner: one solo ``reduce`` costs ~3ms here while the batched
#: ``reduce_many`` path is ~0.35ms/item (~8.5x), and the JSON/base64
#: framing stays cheap enough not to drown the compute in transport.
N_RANKS = 48
CHUNK_LEN = 128

#: acceptance-criterion client shape: >= 16 concurrent keep-alive clients
CONCURRENCY = 16
REQUESTS_PER_CLIENT = 4

#: batched-mode knobs (the baseline runs ``batching=False``).  max_batch
#: equals the client concurrency: a tick fires the moment every
#: outstanding request is queued instead of lingering for a batch that
#: cannot arrive (each client keeps exactly one request in flight).
MAX_BATCH = 16
LINGER_US = 2000.0


def _burst_payloads(seed: int = 4242) -> "list[tuple[bytes, str]]":
    """(request body, expected value_hex) per request — the expectation is
    a fresh serial ``AdaptiveReducer.reduce``, recomputed independently of
    anything the daemon does."""
    rng = np.random.default_rng(seed)
    comm = SimComm(N_RANKS)
    reducer = AdaptiveReducer(comm, threshold=1e-13)
    out = []
    for _ in range(CONCURRENCY * REQUESTS_PER_CLIENT):
        values = rng.uniform(-1.0, 1.0, N_RANKS * CHUNK_LEN) * 10.0 ** (
            rng.integers(-6, 7, size=N_RANKS * CHUNK_LEN)
        )
        body = json.dumps({"values_b64": encode_values(values)}).encode()
        expected = float(
            reducer.reduce(comm.scatter_array(values)).value
        ).hex()
        out.append((body, expected))
    return out


async def _fire_burst(
    host: str, port: int, payloads: "list[tuple[bytes, str]]"
) -> "list[str]":
    """CONCURRENCY keep-alive clients round-robin the request list; returns
    the response value_hex per request (order preserved)."""
    results: "list[str | None]" = [None] * len(payloads)

    async def client(offset: int) -> None:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            for i in range(offset, len(payloads), CONCURRENCY):
                resp = await http_request(
                    host, port, "POST", "/v1/reduce", payloads[i][0],
                    reader=reader, writer=writer,
                )
                assert resp.status == 200, (resp.status, resp.body)
                results[i] = resp.json()["value_hex"]
        finally:
            writer.close()

    await asyncio.gather(*(client(c) for c in range(CONCURRENCY)))
    assert all(r is not None for r in results)
    return results  # type: ignore[return-value]


async def _mixed_extras(host: str, port: int) -> None:
    """Non-reduce traffic in the burst: exercises every endpoint so the
    /metrics scrape covers the full route table (untimed)."""
    rng = np.random.default_rng(7)
    values = rng.normal(size=512)
    items = [
        {"values_b64": encode_values(rng.normal(size=256))} for _ in range(4)
    ]
    resp = await http_request(
        host, port, "POST", "/v1/reduce_many",
        json.dumps({"items": items}).encode(),
    )
    assert resp.status == 200, resp.body
    resp = await http_request(
        host, port, "POST", "/v1/ensemble",
        json.dumps(
            {
                "values_b64": encode_values(values),
                "algorithm": "K",
                "n_trees": 8,
                "seed": 3,
            }
        ).encode(),
    )
    assert resp.status == 200, resp.body
    resp = await http_request(host, port, "GET", "/healthz")
    assert resp.status == 200


async def _run_mode(
    *,
    max_batch: int,
    linger_us: float,
    payloads: "list[tuple[bytes, str]]",
    repeats: int,
    mixed: bool,
    batching: bool = True,
) -> dict:
    async with ReproServeDaemon(
        ranks=N_RANKS,
        max_batch=max_batch,
        max_linger_us=linger_us,
        workers=1,
        batching=batching,
    ) as daemon:
        host, port = daemon.host, daemon.port
        # warmup: populate the decision cache so both modes time steady state
        await http_request(host, port, "POST", "/v1/reduce", payloads[0][0])
        best = float("inf")
        hexes: "list[str]" = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            hexes = await _fire_burst(host, port, payloads)
            best = min(best, time.perf_counter() - t0)
        if mixed:
            await _mixed_extras(host, port)
        scrape = await http_request(host, port, "GET", "/metrics")
        assert scrape.status == 200
        return {
            "burst_s": best,
            "hexes": hexes,
            "metrics_text": scrape.body.decode(),
            "batches_processed": daemon.batcher.batches_processed,
            "requests_accepted": daemon.batcher.requests_accepted,
        }


def bench_serve(repeats: int = 3) -> dict:
    payloads = _burst_payloads()
    expected = [hx for _, hx in payloads]
    n = len(payloads)

    baseline = asyncio.run(
        _run_mode(
            max_batch=1, linger_us=0.0, payloads=payloads, repeats=repeats,
            mixed=False, batching=False,
        )
    )
    batched = asyncio.run(
        _run_mode(
            max_batch=MAX_BATCH, linger_us=LINGER_US, payloads=payloads,
            repeats=repeats, mixed=True,
        )
    )

    for mode in (baseline, batched):
        assert mode["hexes"] == expected, (
            "a served response diverged bitwise from serial recomputation"
        )

    # the /metrics exposition must survive its own parser, and record the
    # batching the daemon claims happened
    parsed = parse_prometheus_text(batched["metrics_text"])
    batch_hist = [
        {"le": s["labels"]["le"], "count": s["value"]}
        for s in parsed["samples"]
        if s["name"] == "repro_serve_batch_items_bucket"
    ]
    batches_total = sum(
        s["value"]
        for s in parsed["samples"]
        if s["name"] == "repro_serve_batches_total"
    )
    assert batches_total > 0, "repro_serve_batches_total never incremented"
    assert batch_hist, "batch-size histogram missing from /metrics"

    baseline_rps = n / baseline["burst_s"]
    batched_rps = n / batched["burst_s"]
    return {
        "case": "serve_micro_batching",
        "n_ranks": N_RANKS,
        "chunk_len": CHUNK_LEN,
        "concurrency": CONCURRENCY,
        "requests": n,
        "max_batch": MAX_BATCH,
        "max_linger_us": LINGER_US,
        "baseline_burst_s": baseline["burst_s"],
        "batched_burst_s": batched["burst_s"],
        "baseline_rps": baseline_rps,
        "batched_rps": batched_rps,
        "speedup": batched_rps / baseline_rps,
        "bitwise_identical": True,  # asserted above, for the record
        "baseline_batches": baseline["batches_processed"],
        "batched_batches": batched["batches_processed"],
        "mean_batch_items": (
            batched["requests_accepted"] / batched["batches_processed"]
        ),
        "batch_items_histogram": batch_hist,
        "serve_batches_total": batches_total,
    }


def run_all(repeats: int = 3) -> dict:
    return {
        "bench": "serve",
        "schema": 1,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "cases": [bench_serve(repeats)],
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="Serving-daemon bench (micro-batched vs per-request)."
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="enable repro.obs metrics for the run and write the registry "
        "snapshot (JSON) here; inspect with repro-metrics",
    )
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)
    registry = get_registry()
    registry.enable()  # the bench asserts on repro_serve_* either way
    payload = run_all(repeats=args.repeats)
    payload["metrics_enabled"] = True
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUTPUT}")
    if args.metrics_out:
        metrics_path = Path(args.metrics_out)
        metrics_path.parent.mkdir(parents=True, exist_ok=True)
        metrics_path.write_text(registry.to_json() + "\n")
        print(f"metrics snapshot written to {metrics_path}")
    (c,) = payload["cases"]
    print(
        f"{c['case']:>20}  C={c['concurrency']} N={c['requests']}  "
        f"baseline={c['baseline_rps']:.0f} req/s  "
        f"batched={c['batched_rps']:.0f} req/s  "
        f"speedup={c['speedup']:.1f}x  "
        f"mean_batch={c['mean_batch_items']:.1f}"
    )
    return 0


# -- pytest entry points: assert the acceptance floors -------------------------


def test_micro_batching_throughput_floor():
    """Acceptance: >= 3x request-at-a-time throughput at concurrency >= 16,
    bitwise-identical responses (one re-measure allowed, same policy as the
    other bench floors)."""
    get_registry().enable()
    try:
        row = bench_serve(repeats=2)
        if row["speedup"] < 3.0:
            row = bench_serve(repeats=2)
        assert row["speedup"] >= 3.0, row
        assert row["bitwise_identical"], row
        assert row["serve_batches_total"] > 0, row
        # micro-batching actually batched: fewer ticks than requests
        assert row["batched_batches"] < row["requests"], row
    finally:
        get_registry().disable()
        get_registry().reset()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
