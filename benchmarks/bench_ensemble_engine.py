"""Perf trajectory: seed-path vs engine-path ensemble evaluation.

The acceptance bar for the batched ensemble engine is quantitative: the
balanced ensemble sweep must beat the seed's per-permutation Python loop by
>= 5x on the paper-shaped workload (n=4096, 1000 trees, Kahan), and
random-shaped ensembles must stop routing through per-tree Python merges.
This bench times both generations of each path at the ``REPRO_SCALE``
(default ``ci``) workload and writes machine-readable numbers to
``BENCH_tree_eval.json`` at the repo root so future PRs extend the
trajectory instead of re-arguing it.

Methodology
-----------
* The seed implementations are **frozen inline** below (they were since
  rewritten in :mod:`repro.trees.evaluate`), so the comparison is against
  what the seed actually shipped, not against today's code called one row
  at a time.
* Both paths consume one pre-drawn permutation matrix (via the engine's
  ``perms=`` parameter), so the shared, irreducible cost of drawing
  ``n_trees`` random permutations is excluded from both sides and the
  numbers isolate evaluation cost.  Results are asserted bitwise-equal
  before timing.

Run directly (CI does, as a smoke job that uploads the JSON artifact)::

    REPRO_SCALE=ci python benchmarks/bench_ensemble_engine.py

or under pytest, where the speedup floors are asserted::

    python -m pytest benchmarks/bench_ensemble_engine.py -q
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.experiments.config import resolve_scale
from repro.summation import get_algorithm
from repro.trees import (
    clear_schedule_cache,
    compile_tree,
    evaluate_ensemble,
    evaluate_tree_generic,
    random_shape,
)
from repro.trees import _ckernels
from repro.util.pool import default_workers, pool_info
from repro.util.rng import permutation_stream

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_tree_eval.json"

#: the acceptance-criterion workload: balanced, n=4096, 1000 trees, Kahan
BALANCED_N = 4096
BALANCED_TREES = 1000
RANDOM_N = 2048
RANDOM_TREES = 200


def _best_of(fn, repeats: int = 3) -> float:
    """Best-of-N wall time; the minimum is the least noisy point estimate."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _seed_balanced_single(data_row: np.ndarray, algorithm) -> float:
    """Frozen copy of the seed's ``evaluate_balanced_vectorized`` body."""
    vops = algorithm.vector_ops
    data_row = np.asarray(data_row, dtype=np.float64).ravel()
    state = vops.init(data_row)
    width = data_row.size
    while width > 1:
        even = width - (width % 2)
        heads = tuple(c[:even:2] for c in state)
        tails = tuple(c[1:even:2] for c in state)
        merged = vops.merge(heads, tails)
        if width % 2:
            carry = tuple(c[width - 1 : width] for c in state)
            merged = tuple(np.concatenate((m, c)) for m, c in zip(merged, carry))
        state = merged
        width = state[0].size
    return float(vops.result(state)[0])


def _seed_path_balanced(data: np.ndarray, alg, perm_matrix: np.ndarray) -> np.ndarray:
    """The seed's balanced ensemble: one Python-level kernel call per tree."""
    return np.array([_seed_balanced_single(data[p], alg) for p in perm_matrix])


def _seed_path_tree(tree, data: np.ndarray, alg, perm_matrix: np.ndarray) -> np.ndarray:
    """The seed's only option for arbitrary shapes: O(n) Python merges/tree."""
    return np.array(
        [evaluate_tree_generic(tree, data[p], alg) for p in perm_matrix]
    )


def _perm_matrix(n: int, n_trees: int, seed: int) -> np.ndarray:
    return np.stack(list(permutation_stream(n, n_trees, seed)))


def bench_balanced(code: str = "K", repeats: int = 3) -> dict:
    """Balanced-shape ensemble: per-permutation loop vs batched sweep."""
    scale = resolve_scale()
    n, n_trees = BALANCED_N, BALANCED_TREES
    rng = np.random.default_rng(scale.seed)
    data = rng.uniform(-1.0, 1.0, n) * 10.0 ** rng.integers(-6, 7, size=n)
    alg = get_algorithm(code)
    perms = _perm_matrix(n, n_trees, scale.seed + 1)

    ref = _seed_path_balanced(data, alg, perms)
    out = evaluate_ensemble(data, "balanced", alg, n_trees, perms=perms, workers=1)
    assert np.array_equal(ref, out), "engine path diverged from seed path"

    t_seed = _best_of(lambda: _seed_path_balanced(data, alg, perms), repeats)
    t_engine = _best_of(
        lambda: evaluate_ensemble(data, "balanced", alg, n_trees, perms=perms, workers=1),
        repeats,
    )
    return {
        "case": "balanced_ensemble",
        "algorithm": code,
        "n": n,
        "n_trees": n_trees,
        "seed_path_s": t_seed,
        "engine_path_s": t_engine,
        "speedup": t_seed / t_engine,
        "trees_per_s_engine": n_trees / t_engine,
    }


def bench_random_shape(code: str = "K", repeats: int = 3) -> dict:
    """Random-shape ensemble: per-tree node-walk vs compiled level schedule."""
    scale = resolve_scale()
    n, n_trees = RANDOM_N, RANDOM_TREES
    rng = np.random.default_rng(scale.seed + 2)
    data = rng.uniform(-1.0, 1.0, n) * 10.0 ** rng.integers(-6, 7, size=n)
    alg = get_algorithm(code)
    tree = random_shape(n, seed=scale.seed)
    perms = _perm_matrix(n, n_trees, scale.seed + 3)

    ref = _seed_path_tree(tree, data, alg, perms)
    out = evaluate_ensemble(data, tree, alg, n_trees, perms=perms, workers=1)
    assert np.array_equal(ref, out), "engine path diverged from node-walk"

    clear_schedule_cache()
    t_compile = _best_of(lambda: compile_tree(tree, cache=False), 1)
    t_seed = _best_of(lambda: _seed_path_tree(tree, data, alg, perms), repeats)
    t_engine = _best_of(
        lambda: evaluate_ensemble(data, tree, alg, n_trees, perms=perms, workers=1), repeats
    )
    return {
        "case": "random_shape_ensemble",
        "algorithm": code,
        "n": n,
        "n_trees": n_trees,
        "tree_depth": tree.depth(),
        "compile_s": t_compile,
        "seed_path_s": t_seed,
        "engine_path_s": t_engine,
        "speedup": t_seed / t_engine,
        "trees_per_s_engine": n_trees / t_engine,
    }


def run_all(repeats: int = 3) -> dict:
    scale = resolve_scale()
    cases = [
        bench_balanced("K", repeats),
        bench_balanced("CP", repeats),
        bench_random_shape("K", repeats),
        bench_random_shape("CP", repeats),
    ]
    return {
        "bench": "ensemble_engine",
        "schema": 2,
        "scale": scale.name,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "ckernels": _ckernels.kernels_available(),
        # engine-vs-seed rows are pinned to workers=1 so the trajectory
        # is machine-comparable; record what auto mode would have used
        # and the persistent pool's reuse counters
        "workers_timed": 1,
        "workers_auto": default_workers(),
        "pool_reuse": pool_info(),
        "cases": cases,
    }


def main(argv: "list[str] | None" = None) -> int:
    payload = run_all()
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUTPUT}  (ckernels={payload['ckernels']})")
    for c in payload["cases"]:
        print(
            f"{c['case']:>22} {c['algorithm']:>3}  n={c['n']:>5} trees={c['n_trees']:>4}  "
            f"seed={c['seed_path_s']:.3f}s  engine={c['engine_path_s']:.3f}s  "
            f"speedup={c['speedup']:.1f}x"
        )
    return 0


# -- pytest entry points: assert the acceptance floors -------------------------


def test_balanced_engine_speedup_floor():
    """Acceptance: >= 5x over the seed loop on (n=4096, 1000 trees, Kahan).

    The full floor needs the compiled sweep; without a C compiler the
    NumPy engine still wins, but by a bandwidth-bound ~2x, so the floor is
    relaxed to >1x there.
    """
    row = bench_balanced("K", repeats=2)
    floor = 5.0 if _ckernels.kernels_available() else 1.0
    assert row["speedup"] >= floor, row


def test_random_shape_engine_beats_node_walk():
    row = bench_random_shape("K", repeats=1)
    assert row["speedup"] > 1.0, row


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
