"""Fig. 3: cancellation counts vs error magnitude (CESTAC substrate)."""

from __future__ import annotations

from benchmarks.conftest import save_and_check
from repro.experiments import fig3_cancellation


def test_fig3(benchmark, scale, results_dir):
    result = benchmark.pedantic(
        fig3_cancellation.run, args=(scale,), rounds=1, iterations=1
    )
    save_and_check(result, results_dir)
