"""Extension experiments: shape spectrum, fault campaigns, dot products."""

from __future__ import annotations

import pytest

from benchmarks.conftest import save_and_check
from repro.experiments import (
    ext_allreduce,
    ext_dot,
    ext_enum,
    ext_faults,
    ext_select,
    ext_shapes,
)


@pytest.mark.parametrize(
    "module",
    [ext_shapes, ext_faults, ext_dot, ext_enum, ext_select, ext_allreduce],
    ids=["shapes", "faults", "dot", "enum", "select", "allreduce"],
)
def test_extension(benchmark, scale, results_dir, module):
    result = benchmark.pedantic(module.run, args=(scale,), rounds=1, iterations=1)
    save_and_check(result, results_dir)
