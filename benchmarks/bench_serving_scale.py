"""Perf trajectory: multicore serving engine throughput vs worker count.

The acceptance bar for the persistent-pool serving engine is quantitative:
on a >= 4-core machine, the large-batch serving cases (``reduce_many`` and
``evaluate_ensemble``) must clear >= 2x throughput at 4 workers vs the
serial path, and the persistent pool must eliminate the per-call executor
startup cost that a naive ``ProcessPoolExecutor``-per-request design pays.
This bench sweeps workers in {1, 2, 4, cpu_count - 1}, measures both, and
writes ``BENCH_serving_scale.json`` at the repo root so future PRs extend
the trajectory instead of re-arguing it.

Methodology
-----------
* Every parallel result is asserted bitwise-equal to the serial path
  **before** any timing (the engine's contract: sharding must not perturb
  the numerics).
* The pool for each worker count is warmed with one untimed run first, so
  the sweep measures steady-state serving throughput, not one-off process
  spin-up; the spin-up cost itself is measured separately by the
  ``pool_startup`` case (cold executor-per-call vs warm persistent pool).
* Timings are best-of-N wall times (minimum = least noisy point estimate).
* On boxes with fewer cores than a sweep point, the speedup column is
  still recorded (it documents the oversubscribed regime); the pytest
  floors skip instead of failing.

Run directly (CI does, as a smoke job that uploads the JSON artifact)::

    python benchmarks/bench_serving_scale.py --scale ci

or under pytest, where the bitwise identity and scaling floors are
asserted::

    python -m pytest benchmarks/bench_serving_scale.py -q
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import numpy as np
import pytest

from repro.mpi.comm import SimComm
from repro.obs import get_registry
from repro.selection.selector import AdaptiveReducer
from repro.summation import get_algorithm
from repro.trees import evaluate_ensemble
from repro.util.pool import get_pool, pool_info
from repro.util.rng import permutation_stream

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_serving_scale.json"

#: serving workloads per scale: (items, ranks, chunk_len) for reduce_many,
#: (n, n_trees) for the ensemble sweep
WORKLOADS = {
    "ci": {"reduce": (48, 8, 512), "ensemble": (4096, 512)},
    "paper": {"reduce": (256, 48, 4096), "ensemble": (65_536, 1000)},
}


def worker_sweep() -> "list[int]":
    """The sweep points: 1, 2, 4 and cpu_count - 1, deduplicated."""
    cpu = os.cpu_count() or 1
    return sorted({1, 2, 4, max(1, cpu - 1)})


def _physical_core_count() -> "int | None":
    """Unique (physical id, core id) pairs from /proc/cpuinfo, else None."""
    pairs = set()
    phys = core = None
    try:
        with open("/proc/cpuinfo") as fh:
            for line in fh:
                if line.startswith("physical id"):
                    phys = line.split(":", 1)[1].strip()
                elif line.startswith("core id"):
                    core = line.split(":", 1)[1].strip()
                elif not line.strip():
                    if phys is not None and core is not None:
                        pairs.add((phys, core))
                    phys = core = None
    except OSError:
        return None
    if phys is not None and core is not None:
        pairs.add((phys, core))
    return len(pairs) or None


def machine_info() -> dict:
    """True core counts, not just ``os.cpu_count()``.

    ``logical_cores`` is what the OS advertises (SMT threads included);
    ``usable_cores`` is this process's scheduling affinity — on a
    container-pinned CI runner this is the honest parallelism budget and
    the number every oversubscription flag is computed against;
    ``physical_cores`` deduplicates hyperthread siblings (falls back to the
    logical count when /proc/cpuinfo doesn't expose the topology).
    """
    logical = os.cpu_count() or 1
    try:
        usable = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        usable = logical
    physical = _physical_core_count() or logical
    return {
        "logical_cores": logical,
        "usable_cores": usable,
        "physical_cores": physical,
    }


def usable_cores() -> int:
    return machine_info()["usable_cores"]


def _best_of(fn, repeats: int = 3) -> float:
    """Best-of-N wall time; the minimum is the least noisy point estimate."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _reduce_workload(scale: str):
    items, ranks, chunk_len = WORKLOADS[scale]["reduce"]
    rng = np.random.default_rng(424242)
    batches = [
        [
            rng.uniform(-1.0, 1.0, chunk_len)
            * 10.0 ** rng.integers(-6, 7, size=chunk_len)
            for _ in range(ranks)
        ]
        for _ in range(items)
    ]
    return batches, SimComm(ranks)


def bench_reduce_many(scale: str = "ci", repeats: int = 3) -> dict:
    """Large-batch adaptive serving: reduce_many throughput per worker count."""
    batches, comm = _reduce_workload(scale)
    reducer = AdaptiveReducer(comm, threshold=1e-13)
    serial = reducer.reduce_many(batches, tree="balanced", workers=1)

    usable = usable_cores()
    rows = []
    t1 = None
    for w in worker_sweep():
        out = reducer.reduce_many(batches, tree="balanced", workers=w)  # warm
        for a, b in zip(serial, out):
            assert np.float64(a.value).tobytes() == np.float64(b.value).tobytes()
            assert a.decision.code == b.decision.code
        t = _best_of(
            lambda w=w: reducer.reduce_many(batches, tree="balanced", workers=w),
            repeats,
        )
        t1 = t if w == 1 else t1
        rows.append(
            {
                "workers": w,
                "wall_s": t,
                "items_per_s": len(batches) / t,
                "speedup_vs_1": (t1 / t) if t1 else None,
                "bitwise_equal_serial": True,
                # more workers than schedulable cores: the wall time measures
                # contention, not scaling — excluded from speedup-floor gating
                "oversubscribed": w > usable,
            }
        )
    items, ranks, chunk_len = WORKLOADS[scale]["reduce"]
    return {
        "case": "reduce_many_scale",
        "items": items,
        "n_ranks": ranks,
        "chunk_len": chunk_len,
        "sweep": rows,
    }


def bench_ensemble(scale: str = "ci", repeats: int = 3) -> dict:
    """Ensemble-evaluation serving: tree-axis sharding per worker count."""
    n, n_trees = WORKLOADS[scale]["ensemble"]
    rng = np.random.default_rng(515151)
    data = rng.uniform(-1.0, 1.0, n) * 10.0 ** rng.integers(-6, 7, size=n)
    alg = get_algorithm("K")
    perms = np.stack(list(permutation_stream(n, n_trees, seed=7)))
    serial = evaluate_ensemble(data, "balanced", alg, n_trees, perms=perms, workers=1)

    usable = usable_cores()
    rows = []
    t1 = None
    for w in worker_sweep():
        out = evaluate_ensemble(
            data, "balanced", alg, n_trees, perms=perms, workers=w
        )  # warm
        assert serial.tobytes() == out.tobytes()
        t = _best_of(
            lambda w=w: evaluate_ensemble(
                data, "balanced", alg, n_trees, perms=perms, workers=w
            ),
            repeats,
        )
        t1 = t if w == 1 else t1
        rows.append(
            {
                "workers": w,
                "wall_s": t,
                "trees_per_s": n_trees / t,
                "speedup_vs_1": (t1 / t) if t1 else None,
                "bitwise_equal_serial": True,
                "oversubscribed": w > usable,
            }
        )
    return {
        "case": "ensemble_scale",
        "algorithm": "K",
        "n": n,
        "n_trees": n_trees,
        "sweep": rows,
    }


def _noop(x: int) -> int:
    return x


def bench_pool_startup(repeats: int = 3) -> dict:
    """Per-request cost: cold executor-per-call vs warm persistent pool.

    The cold side is what ``map_parallel`` paid before the persistent pool:
    spawn a fresh ``ProcessPoolExecutor``, run one trivial batch, tear it
    down.  The warm side dispatches the same batch through the already-live
    pool.  The ratio is the startup tax the pool removes from every call.
    """
    work = list(range(8))

    def cold():
        with ProcessPoolExecutor(max_workers=2) as ex:
            return list(ex.map(_noop, work))

    pool = get_pool(2)
    pool.map(_noop, work)  # warm: workers live and imported

    t_cold = _best_of(cold, repeats)
    t_warm = _best_of(lambda: pool.map(_noop, work), repeats)
    return {
        "case": "pool_startup",
        "cold_executor_s": t_cold,
        "warm_pool_s": t_warm,
        "startup_tax_removed_x": t_cold / t_warm,
    }


def run_all(scale: str = "ci", repeats: int = 3) -> dict:
    cases = [
        bench_reduce_many(scale, repeats),
        bench_ensemble(scale, repeats),
        bench_pool_startup(repeats),
    ]
    return {
        "bench": "serving_scale",
        "schema": 1,
        "scale": scale,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        # kept for schema compatibility; the honest numbers live in "cores"
        "cpu_count": os.cpu_count(),
        "cores": machine_info(),
        "worker_sweep": worker_sweep(),
        "pool": pool_info(),
        "cases": cases,
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="Serving-engine scaling bench (persistent pool + shm)."
    )
    parser.add_argument("--scale", choices=sorted(WORKLOADS), default="ci")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="enable repro.obs metrics for the run and write the registry "
        "snapshot (JSON) here; inspect with repro-metrics",
    )
    args = parser.parse_args(argv)
    registry = get_registry()
    if args.metrics_out:
        registry.enable()
    payload = run_all(args.scale, args.repeats)
    payload["metrics_enabled"] = registry.enabled
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    cores = payload["cores"]
    print(
        f"wrote {OUTPUT}  (logical={cores['logical_cores']} "
        f"usable={cores['usable_cores']} physical={cores['physical_cores']})"
    )
    if args.metrics_out:
        metrics_path = Path(args.metrics_out)
        metrics_path.parent.mkdir(parents=True, exist_ok=True)
        metrics_path.write_text(registry.to_json() + "\n")
        print(f"metrics snapshot written to {metrics_path}")
    for c in payload["cases"]:
        if c["case"] == "pool_startup":
            print(
                f"{c['case']:>18}  cold={c['cold_executor_s'] * 1e3:.1f}ms  "
                f"warm={c['warm_pool_s'] * 1e3:.1f}ms  "
                f"tax_removed={c['startup_tax_removed_x']:.0f}x"
            )
            continue
        for row in c["sweep"]:
            flag = "  [oversubscribed]" if row.get("oversubscribed") else ""
            print(
                f"{c['case']:>18}  w={row['workers']}  "
                f"wall={row['wall_s'] * 1e3:.1f}ms  "
                f"speedup_vs_1={row['speedup_vs_1']:.2f}x{flag}"
            )
    return 0


# -- pytest entry points: identity always, scaling floors where measurable ----


def test_reduce_many_bitwise_identity():
    """The identity contract holds on any machine, any core count."""
    row = bench_reduce_many("ci", repeats=1)
    assert all(r["bitwise_equal_serial"] for r in row["sweep"]), row


def test_ensemble_bitwise_identity():
    row = bench_ensemble("ci", repeats=1)
    assert all(r["bitwise_equal_serial"] for r in row["sweep"]), row


def test_reduce_many_scaling_floor():
    """Acceptance: >= 2x throughput at 4 workers vs serial (needs >= 4 cores).

    Gated on *usable* cores (scheduling affinity), not ``os.cpu_count()``:
    an oversubscribed sweep point measures contention, not scaling, and is
    excluded from floor gating by construction.
    """
    if usable_cores() < 4:
        pytest.skip("scaling floor needs >= 4 schedulable cores")
    row = bench_reduce_many("ci", repeats=3)
    by_w = {r["workers"]: r for r in row["sweep"]}
    assert not by_w[4]["oversubscribed"]
    assert by_w[4]["speedup_vs_1"] >= 2.0, row


def test_reduce_many_speedup_floor_two_workers():
    """CI gate: parallel must beat serial at workers=2 on >= 4-core runners."""
    if usable_cores() < 4:
        pytest.skip("speedup floor needs >= 4 schedulable cores")
    row = bench_reduce_many("ci", repeats=3)
    by_w = {r["workers"]: r for r in row["sweep"]}
    assert not by_w[2]["oversubscribed"]
    assert by_w[2]["speedup_vs_1"] > 1.0, row


def test_persistent_pool_removes_startup_tax():
    """A warm dispatch must be cheaper than executor-per-call spin-up."""
    row = bench_pool_startup(repeats=2)
    assert row["warm_pool_s"] < row["cold_executor_s"], row


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
