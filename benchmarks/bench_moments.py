"""Reproducible statistics: the overhead of bitwise-stable mean/variance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.summation.moments import (
    reproducible_mean,
    reproducible_norm2,
    reproducible_variance,
)


@pytest.fixture(scope="module")
def data(scale):
    rng = np.random.default_rng(scale.seed)
    return rng.uniform(-10.0, 10.0, max(scale.fig4_n_terms // 2, 100_000))


def test_numpy_mean_baseline(benchmark, data):
    benchmark(lambda: float(np.mean(data)))


def test_reproducible_mean(benchmark, data):
    value = benchmark(lambda: reproducible_mean(data))
    assert value == pytest.approx(float(np.mean(data)), rel=1e-12)


def test_numpy_variance_baseline(benchmark, data):
    benchmark(lambda: float(np.var(data)))


def test_reproducible_variance(benchmark, data):
    value = benchmark(lambda: reproducible_variance(data))
    assert value == pytest.approx(float(np.var(data)), rel=1e-9)


def test_reproducible_norm(benchmark, data):
    value = benchmark(lambda: reproducible_norm2(data))
    assert value == pytest.approx(float(np.linalg.norm(data)), rel=1e-12)
