"""Fig. 10: (n, dr) grid of error variability at fixed k = 1."""

from __future__ import annotations

from benchmarks.conftest import save_and_check
from repro.experiments import fig10_ndr


def test_fig10(benchmark, scale, results_dir):
    result = benchmark.pedantic(fig10_ndr.run, args=(scale,), rounds=1, iterations=1)
    save_and_check(result, results_dir)
