"""Fig. 2: error magnitudes vs analytical/statistical worst-case bounds."""

from __future__ import annotations

from benchmarks.conftest import save_and_check
from repro.experiments import fig2_bounds


def test_fig2(benchmark, scale, results_dir):
    result = benchmark.pedantic(fig2_bounds.run, args=(scale,), rounds=1, iterations=1)
    save_and_check(result, results_dir)
