"""Ablation: the full Sec. III technique spectrum on one workload.

The paper surveys five technique families (fixed order, interval arithmetic,
high precision, compensated, prerounded) but evaluates only the last two.
With every family implemented, this bench lines them all up on the same
hostile workload: accuracy (|error| on an exact-zero sum), certified digits
(intervals only), and wall time — the complete Sec. III comparison the
paper's Table-of-techniques implies.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.generators import zero_sum_set
from repro.interval import IntervalSum
from repro.precision import EmulatedPrecisionSum
from repro.summation import SumContext, get_algorithm

#: code -> (algorithm factory, is-from-registry)
TECHNIQUES = ["ST", "SO", "IV", "K", "CP", "DD", "AS", "PR", "EX"]


@pytest.fixture(scope="module")
def workload(scale):
    data = zero_sum_set(max(scale.fig6_n, 4096), dr=32, seed=scale.seed + 3)
    return data, SumContext.for_data(data)


@pytest.mark.parametrize("code", TECHNIQUES)
def test_technique_time(benchmark, workload, code):
    data, ctx = workload
    alg = get_algorithm(code)
    value = benchmark(lambda: alg.sum_array(data, ctx))
    # exact sum is zero: compensated-and-up techniques must nail it to
    # far below the ST error scale
    if code in ("CP", "DD", "AS", "PR", "EX", "SO"):
        st_err = abs(get_algorithm("ST").sum_array(data, ctx))
        assert abs(value) <= max(1e-3 * st_err, 1e-300)


def test_interval_certifies_containment(workload):
    data, _ = workload
    enclosure = IntervalSum().enclosure(data)
    assert enclosure.lo <= 0.0 <= enclosure.hi  # exact sum is zero
    # ... but certifies almost no digits on a cancelling sum (Sec. III.B)
    assert enclosure.digits() < 2.0


def test_reduced_precision_cost_of_accuracy(benchmark, workload):
    """Sec. III.C's tradeoff datum: float32-width accumulation time."""
    data, _ = workload
    alg = EmulatedPrecisionSum(24)
    benchmark(lambda: alg.sum_array(data[: min(data.size, 8192)]))
