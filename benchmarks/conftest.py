"""Benchmark-suite configuration.

Each ``bench_*`` module regenerates one of the paper's tables/figures (at the
scale selected by ``REPRO_SCALE``, default ``ci``) under pytest-benchmark
timing, asserts the paper's qualitative shape checks, and writes the rendered
figure text to ``results/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.config import Scale, resolve_scale

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def scale() -> Scale:
    return resolve_scale()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_and_check(result, results_dir: Path) -> None:
    """Persist the rendered figure and assert its shape checks."""
    out = results_dir / f"{result.experiment_id}_{result.scale}.txt"
    out.write_text(result.render() + "\n")
    assert result.all_checks_pass, result.render()
