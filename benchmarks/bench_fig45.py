"""Figs. 4 & 5: execution time and penalty of ST/K/CP/PR.

Besides the figure regeneration, each algorithm's local+global reduction is
benchmarked individually so pytest-benchmark's own statistics mirror Fig. 4's
bars directly.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import save_and_check
from repro.experiments import fig4_timing
from repro.generators import zero_sum_series
from repro.mpi import SimComm, make_reduction_op
from repro.summation import PAPER_CODES, get_algorithm


def test_fig4_fig5(benchmark, scale, results_dir):
    result = benchmark.pedantic(fig4_timing.run, args=(scale,), rounds=1, iterations=1)
    if not result.all_checks_pass:
        # wall-clock ranking: one retry absorbs scheduler noise from the
        # surrounding benchmark session (same policy as the unit test)
        result = fig4_timing.run(scale)
    save_and_check(result, results_dir)


@pytest.mark.parametrize("code", PAPER_CODES)
def test_fig4_bars(benchmark, scale, code):
    """One pytest-benchmark bar per algorithm (the content of Fig. 4)."""
    comm = SimComm(scale.fig4_n_ranks, seed=scale.seed)
    series = zero_sum_series(scale.fig4_n_terms, seed=scale.seed)
    chunks = comm.scatter_array(series)
    op = make_reduction_op(get_algorithm(code))
    benchmark(lambda: comm.reduce(chunks, op, tree="balanced"))
