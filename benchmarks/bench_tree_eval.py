"""Ablation: tree-evaluation strategies (node-walk vs vectorised).

DESIGN.md requires the vectorised evaluators to be pinned against the
generic node-walk (tests do that bitwise) and their speedup quantified —
this is what makes the paper-scale 2**20-leaf ensembles feasible.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.summation import get_algorithm
from repro.trees import (
    balanced,
    evaluate_balanced_vectorized,
    evaluate_tree_generic,
    serial,
)
from repro.trees.serial_batch import serial_ensemble_standard, serial_ensemble_vops


@pytest.fixture(scope="module")
def data(scale):
    rng = np.random.default_rng(scale.seed)
    return rng.uniform(-1.0, 1.0, min(scale.grid_n, 16_384))


@pytest.mark.parametrize("code", ["ST", "CP"])
def test_generic_node_walk(benchmark, data, code):
    small = data[:2048]
    tree = balanced(small.size)
    alg = get_algorithm(code)
    benchmark(lambda: evaluate_tree_generic(tree, small, alg))


@pytest.mark.parametrize("code", ["ST", "CP"])
def test_balanced_vectorized(benchmark, data, code):
    alg = get_algorithm(code)
    benchmark(lambda: evaluate_balanced_vectorized(data, alg))


def test_serial_cumsum_kernel(benchmark, data):
    rng = np.random.default_rng(1)
    mat = data[np.vstack([rng.permutation(data.size) for _ in range(16)])]
    benchmark(lambda: serial_ensemble_standard(mat))


def test_serial_vops_kernel(benchmark, data):
    rng = np.random.default_rng(2)
    small = data[:2048]
    mat = small[np.vstack([rng.permutation(small.size) for _ in range(16)])]
    vops = get_algorithm("CP").vector_ops
    benchmark(lambda: serial_ensemble_vops(mat, vops))


def test_vectorized_speedup_material(data, scale):
    """The vectorised balanced evaluator must beat the node-walk by >= 10x
    at grid size (it is ~100x in practice)."""
    from repro.util.timing import time_callable

    alg = get_algorithm("CP")
    small = data[:4096]
    tree = balanced(small.size)
    t_generic = time_callable(
        lambda: evaluate_tree_generic(tree, small, alg), repeats=3, warmup=1
    )
    t_vec = time_callable(
        lambda: evaluate_balanced_vectorized(small, alg), repeats=3, warmup=1
    )
    assert t_vec.best * 10 < t_generic.best
