"""Fig. 7 (a-h): error distributions over balanced/unbalanced tree ensembles."""

from __future__ import annotations

from benchmarks.conftest import save_and_check
from repro.experiments import fig7_distributions


def test_fig7(benchmark, scale, results_dir):
    result = benchmark.pedantic(
        fig7_distributions.run, args=(scale,), rounds=1, iterations=1
    )
    save_and_check(result, results_dir)
