"""Table I: sample sets with specified (dr, k) — label verification."""

from __future__ import annotations

from benchmarks.conftest import save_and_check
from repro.experiments import table1_samples


def test_table1(benchmark, scale, results_dir):
    result = benchmark.pedantic(
        table1_samples.run, args=(scale,), rounds=1, iterations=1
    )
    save_and_check(result, results_dir)
