"""Fig. 11: (n, k) grid of error variability at fixed dynamic range."""

from __future__ import annotations

from benchmarks.conftest import save_and_check
from repro.experiments import fig11_nk


def test_fig11(benchmark, scale, results_dir):
    result = benchmark.pedantic(fig11_nk.run, args=(scale,), rounds=1, iterations=1)
    save_and_check(result, results_dir)
