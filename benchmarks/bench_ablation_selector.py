"""Ablation: does runtime profiling pay for itself?

The selector spends extra passes sketching (n, k, dr).  Against the
alternative policy "always run PR to be safe", profiling wins whenever the
data turns out benign (the common case in the paper's motivating
applications) — the adaptive path then reduces with ST at a fraction of PR's
cost, profiling included.  This bench measures both pipelines on benign and
hostile data so the crossover is visible in the pytest-benchmark table, and
asserts the headline: adaptive-on-benign beats always-PR.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.generators import zero_sum_set
from repro.mpi import SimComm, make_reduction_op
from repro.selection import AdaptiveReducer
from repro.summation import get_algorithm
from repro.util.timing import time_callable


@pytest.fixture(scope="module")
def setup(scale):
    comm = SimComm(8, seed=scale.seed)
    n = max(scale.fig4_n_terms, 200_000)
    benign = np.abs(np.random.default_rng(scale.seed).uniform(1.0, 2.0, n))
    hostile = zero_sum_set(n, dr=32, seed=scale.seed)
    return comm, comm.scatter_array(benign), comm.scatter_array(hostile)


def test_adaptive_on_benign(benchmark, setup):
    comm, benign, _ = setup
    red = AdaptiveReducer(comm, threshold=1e-13)
    result = benchmark(lambda: red.reduce(benign))
    assert result.decision.code in ("ST", "K")


def test_adaptive_on_hostile(benchmark, setup):
    comm, _, hostile = setup
    red = AdaptiveReducer(comm, threshold=1e-13)
    result = benchmark(lambda: red.reduce(hostile))
    assert result.decision.code == "PR"
    assert result.value == 0.0


def test_always_pr_baseline(benchmark, setup):
    comm, benign, _ = setup
    op = make_reduction_op(get_algorithm("PR"))
    benchmark(lambda: comm.reduce(benign, op))


def test_profiling_pays_for_itself_on_benign_data(setup):
    comm, benign, _ = setup
    red = AdaptiveReducer(comm, threshold=1e-13)
    pr_op = make_reduction_op(get_algorithm("PR"))
    t_adaptive = time_callable(lambda: red.reduce(benign), repeats=5, warmup=1)
    t_always_pr = time_callable(lambda: comm.reduce(benign, pr_op), repeats=5, warmup=1)
    assert t_adaptive.best < t_always_pr.best
