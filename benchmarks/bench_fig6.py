"""Fig. 6: relative sensitivity of K/CP/PR to leaf assignment."""

from __future__ import annotations

from benchmarks.conftest import save_and_check
from repro.experiments import fig6_sensitivity


def test_fig6(benchmark, scale, results_dir):
    result = benchmark.pedantic(
        fig6_sensitivity.run, args=(scale,), rounds=1, iterations=1
    )
    save_and_check(result, results_dir)
