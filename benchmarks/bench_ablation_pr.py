"""Ablation: prerounded summation's fold count K and fold width W.

DESIGN.md calls out the PR accuracy knobs for ablation: more folds / wider
folds retain more low-order bits (more accuracy) at proportionally more
extraction passes (more cost).  This bench times each configuration and
records its residual error on a hostile zero-sum workload, verifying the
monotone accuracy-vs-cost tradeoff.
"""

from __future__ import annotations

import pytest

from repro.generators import zero_sum_set
from repro.summation import SumContext
from repro.summation.prerounded import PreroundedSum

CONFIGS = [(1, 40), (2, 40), (3, 40), (4, 40), (3, 26), (2, 26)]


@pytest.fixture(scope="module")
def workload(scale):
    data = zero_sum_set(max(scale.grid_n, 4096), dr=48, seed=scale.seed)
    return data, SumContext.for_data(data)


@pytest.mark.parametrize("folds,width", CONFIGS, ids=[f"K{k}W{w}" for k, w in CONFIGS])
def test_pr_fold_configs(benchmark, workload, folds, width):
    data, ctx = workload
    alg = PreroundedSum(folds=folds, fold_width=width)
    value = benchmark(lambda: alg.sum_array(data, ctx))
    # residual error is the pre-rounding loss; exact sum is zero
    assert abs(value) <= 2.0 ** (48 - folds * width + 14)


def test_accuracy_monotone_in_retained_bits(workload):
    data, ctx = workload
    errs = {
        (k, w): abs(PreroundedSum(folds=k, fold_width=w).sum_array(data, ctx))
        for k, w in CONFIGS
    }
    by_bits = sorted(CONFIGS, key=lambda cfg: cfg[0] * cfg[1])
    vals = [errs[cfg] for cfg in by_bits]
    # more retained bits never hurts (ties allowed once exact)
    assert all(vals[i] >= vals[i + 1] or vals[i] == 0.0 for i in range(len(vals) - 1))
