"""Micro-bench: the repro.obs disabled-mode guard is near-zero overhead.

The observability contract (docs/API.md, "Observability") is that a process
which never enables metrics pays only one attribute load per instrumented
site — `if _OBS.enabled:` — and nothing else.  This bench measures that
guard directly and then scales it against the serving path's per-item cost
to bound the end-to-end overhead, which the acceptance criterion caps at 2%
of uninstrumented serving throughput.

Run directly::

    python benchmarks/bench_obs_overhead.py

or under pytest, where the bounds are asserted::

    python -m pytest benchmarks/bench_obs_overhead.py -q
"""

from __future__ import annotations

import json
import platform
import sys
import time

import numpy as np

from repro.mpi.comm import SimComm
from repro.obs import MetricsRegistry
from repro.selection.selector import AdaptiveReducer

#: guard evaluations one reduce_many item can trigger across the stack
#: (selector counters/histograms + comm dispatch + profile path + schedule
#: cache) — a deliberate overestimate so the bound is conservative
GUARDS_PER_ITEM = 16

N_RANKS = 16
CHUNK_LEN = 256
BATCH_ITEMS = 32


def _time_loop(fn, iterations: int) -> float:
    """Seconds per call of ``fn`` over a tight loop (loop overhead included)."""
    t0 = time.perf_counter()
    for _ in range(iterations):
        fn()
    return (time.perf_counter() - t0) / iterations


def bench_guard(iterations: int = 200_000) -> dict:
    """Cost of the disabled guard vs an empty call (the instrumented site)."""
    reg = MetricsRegistry(enabled=False)

    def guarded() -> None:
        if reg.enabled:
            reg.counter("repro_bench_total").inc()

    def empty() -> None:
        pass

    # warm both code paths
    for _ in range(1000):
        guarded()
        empty()
    t_guarded = _time_loop(guarded, iterations)
    t_empty = _time_loop(empty, iterations)
    reg.enable()
    t_enabled = _time_loop(guarded, iterations)
    return {
        "case": "guard_cost",
        "iterations": iterations,
        "disabled_guard_ns": (t_guarded - t_empty) * 1e9,
        "disabled_call_ns": t_guarded * 1e9,
        "enabled_counter_ns": t_enabled * 1e9,
    }


def bench_serving_bound(guard_row: dict) -> dict:
    """Bound the serving-path overhead of disabled metrics analytically.

    The per-item guard bill is ``GUARDS_PER_ITEM`` × the measured disabled
    guard cost; dividing by the measured per-item serving time gives the
    worst-case throughput loss — the quantity the 2% acceptance criterion
    caps.  Measuring the ratio directly (instrumented vs uninstrumented
    binary) is impossible in-tree, and a disabled-vs-enabled wall-clock diff
    drowns in scheduler noise at these magnitudes, which is exactly the
    point: the overhead is far below measurement noise.
    """
    rng = np.random.default_rng(7)
    batches = [
        [rng.random(CHUNK_LEN) for _ in range(N_RANKS)] for _ in range(BATCH_ITEMS)
    ]
    comm = SimComm(N_RANKS)

    def run() -> None:
        AdaptiveReducer(comm, threshold=1e-13).reduce_many(batches, tree="balanced")

    run()  # warm schedule caches and kernels
    best = min(_time_loop(run, 1) for _ in range(5))
    per_item_s = best / BATCH_ITEMS
    guard_s = max(guard_row["disabled_call_ns"], 0.0) * 1e-9
    overhead_fraction = (GUARDS_PER_ITEM * guard_s) / per_item_s
    return {
        "case": "serving_overhead_bound",
        "items": BATCH_ITEMS,
        "n_ranks": N_RANKS,
        "chunk_len": CHUNK_LEN,
        "per_item_s": per_item_s,
        "guards_per_item": GUARDS_PER_ITEM,
        "overhead_fraction": overhead_fraction,
    }


def run_all() -> dict:
    guard = bench_guard()
    return {
        "bench": "obs_overhead",
        "schema": 1,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cases": [guard, bench_serving_bound(guard)],
    }


def main() -> int:
    payload = run_all()
    print(json.dumps(payload, indent=2))
    return 0


# -- pytest entry points: assert the overhead bounds ---------------------------


def test_disabled_guard_is_near_zero():
    """One guarded site costs well under a microsecond when disabled."""
    row = bench_guard(iterations=50_000)
    assert row["disabled_call_ns"] < 2000.0, row  # loose: CI boxes jitter


def test_serving_overhead_within_two_percent():
    """Acceptance: disabled metrics cost < 2% of serving throughput."""
    guard = bench_guard(iterations=50_000)
    row = bench_serving_bound(guard)
    assert row["overhead_fraction"] < 0.02, row


def test_enabled_counter_still_cheap():
    """Enabled-path sanity: a labelled counter inc stays in the µs range."""
    row = bench_guard(iterations=50_000)
    assert row["enabled_counter_ns"] < 50_000.0, row


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
