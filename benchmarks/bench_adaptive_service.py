"""Perf trajectory: seed-path vs vector-engine collective reductions.

The acceptance bar for the vectorized collective engine is quantitative: a
48-rank reduction of 4096-element chunks must beat the seed's object path
(one Python accumulator per rank, one Python ``op.combine`` per tree node)
by >= 10x for both Kahan and composite precision, and the batched serving
path (:meth:`AdaptiveReducer.reduce_many`) must amortise its per-reduction
profile+select overhead below the per-call pipeline's.  This bench times
both generations at a fixed paper-shaped workload and writes the numbers to
``BENCH_adaptive.json`` at the repo root so future PRs extend the perf
trajectory instead of re-arguing it.

Methodology
-----------
* The seed collective path is **frozen inline** below (the body
  ``SimComm.reduce`` shipped before the engine split), so the comparison is
  against what the seed actually executed, not today's object engine called
  through new plumbing.
* Vector and seed paths are asserted bitwise-equal before any timing.
* Timings are best-of-N wall times (minimum = least noisy point estimate).

Run directly (CI does, as a smoke job that uploads the JSON artifact)::

    python benchmarks/bench_adaptive_service.py

or under pytest, where the speedup floors are asserted::

    python -m pytest benchmarks/bench_adaptive_service.py -q
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.mpi.comm import SimComm
from repro.mpi.ops import make_reduction_op
from repro.obs import get_registry
from repro.selection.selector import AdaptiveReducer
from repro.summation import get_algorithm
from repro.trees import _ckernels
from repro.trees.shapes import balanced
from repro.util.pool import default_workers, pool_info

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_adaptive.json"

#: the acceptance-criterion workload: 48 ranks (the paper's testbed node
#: width), 4096-element chunks, balanced rank tree
N_RANKS = 48
CHUNK_LEN = 4096

#: serving-path workload: a stream of same-shape reductions
BATCH_ITEMS = 64
BATCH_CHUNK_LEN = 256


def _best_of(fn, repeats: int = 3) -> float:
    """Best-of-N wall time; the minimum is the least noisy point estimate."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _seed_reduce(comm: SimComm, chunks, op, tree) -> float:
    """Frozen copy of the seed's ``SimComm.reduce`` execution body."""
    accs = [op.local(chunk) for chunk in chunks]
    slots = accs + [None] * (comm.n_ranks - 1)
    for a, b, out in tree.iter_steps():
        slots[out] = op.combine(slots[a], slots[b])
    return op.finalize(slots[tree.root_slot])


def _workload(seed: int, n_ranks: int = N_RANKS, chunk_len: int = CHUNK_LEN):
    rng = np.random.default_rng(seed)
    return [
        rng.uniform(-1.0, 1.0, chunk_len) * 10.0 ** rng.integers(-6, 7, size=chunk_len)
        for _ in range(n_ranks)
    ]


def bench_collective(code: str = "K", repeats: int = 5) -> dict:
    """One 48-rank collective: seed object walk vs compiled vector engine."""
    chunks = _workload(seed=1234)
    comm = SimComm(N_RANKS)
    op = make_reduction_op(get_algorithm(code))
    tree = balanced(N_RANKS)

    ref = _seed_reduce(comm, chunks, op, tree)
    out = comm.reduce(chunks, op, tree, engine="vector").value
    assert np.float64(ref).tobytes() == np.float64(out).tobytes(), (
        f"vector engine diverged from seed path for {code}: {ref!r} vs {out!r}"
    )

    t_seed = _best_of(lambda: _seed_reduce(comm, chunks, op, tree), repeats)
    t_vector = _best_of(
        lambda: comm.reduce(chunks, op, tree, engine="vector"), repeats
    )
    return {
        "case": "collective_reduce",
        "algorithm": code,
        "n_ranks": N_RANKS,
        "chunk_len": CHUNK_LEN,
        "seed_path_s": t_seed,
        "vector_path_s": t_vector,
        "speedup": t_seed / t_vector,
        "reductions_per_s_vector": 1.0 / t_vector,
    }


def bench_serving(repeats: int = 3) -> dict:
    """Serving path: reduce_many stream vs a loop of standalone reduce calls."""
    rng = np.random.default_rng(99)
    batches = [
        [rng.random(BATCH_CHUNK_LEN) for _ in range(N_RANKS)]
        for _ in range(BATCH_ITEMS)
    ]
    comm = SimComm(N_RANKS)

    reducer = AdaptiveReducer(comm, threshold=1e-13)
    many = reducer.reduce_many(batches, tree="balanced")
    solo = [reducer.reduce(b, tree="balanced") for b in batches]
    for m, s in zip(many, solo):
        assert m.decision.code == s.decision.code
        assert np.float64(m.value).tobytes() == np.float64(s.value).tobytes(), (
            "serving path diverged from the per-call pipeline"
        )

    def run_many():
        r = AdaptiveReducer(comm, threshold=1e-13)
        return r.reduce_many(batches, tree="balanced")

    def run_loop():
        r = AdaptiveReducer(comm, threshold=1e-13)
        return [r.reduce(b, tree="balanced") for b in batches]

    t_many = _best_of(run_many, repeats)
    t_loop = _best_of(run_loop, repeats)
    results = run_many()
    solo_one = AdaptiveReducer(comm, threshold=1e-13).reduce(
        batches[0], tree="balanced"
    )
    cache = reducer.decision_cache_info()
    return {
        "case": "adaptive_serving",
        "items": BATCH_ITEMS,
        "n_ranks": N_RANKS,
        "chunk_len": BATCH_CHUNK_LEN,
        "loop_s": t_loop,
        "reduce_many_s": t_many,
        "speedup": t_loop / t_many,
        # amortised per-reduction overhead of the profile+select stage,
        # vs what one standalone call pays for the same stage
        "profile_select_s_per_item_many": results[0].profile_seconds,
        "profile_select_s_per_item_loop": solo_one.profile_seconds,
        "reduce_s_per_item_many": results[0].reduce_seconds,
        "reduce_s_per_item_loop": solo_one.reduce_seconds,
        "decision_cache": cache,
    }


def bench_bound_tier(repeats: int = 3) -> dict:
    """The profiling tax vs the Hallman–Ipsen fast path (same serving
    stream).  ``bound_confidence`` close to 1 lets the probabilistic bounds
    certify the well-conditioned items, so the whole stream resolves from
    the cheap statistics pass — the acceptance criterion is that bound-tier
    selection is >= 5x cheaper per item than the empirical profile+select
    stage it replaces, with values bitwise-unchanged."""
    rng = np.random.default_rng(99)
    batches = [
        [rng.random(BATCH_CHUNK_LEN) for _ in range(N_RANKS)]
        for _ in range(BATCH_ITEMS)
    ]
    comm = SimComm(N_RANKS)
    confidence = 1 - 1e-6

    profiled = AdaptiveReducer(comm, threshold=1e-13).reduce_many(
        batches, tree="balanced", workers=1
    )
    tiered = AdaptiveReducer(
        comm, threshold=1e-13, bound_confidence=confidence
    ).reduce_many(batches, tree="balanced", workers=1)
    for p, b in zip(profiled, tiered):
        assert p.decision.code == b.decision.code
        assert np.float64(p.value).tobytes() == np.float64(b.value).tobytes(), (
            "bound tier changed a reduction value"
        )
    hits = sum(1 for r in tiered if r.decision.tier == "bound")

    def run_profiled():
        r = AdaptiveReducer(comm, threshold=1e-13)
        return r.reduce_many(batches, tree="balanced", workers=1)

    def run_tiered():
        r = AdaptiveReducer(comm, threshold=1e-13, bound_confidence=confidence)
        return r.reduce_many(batches, tree="balanced", workers=1)

    t_profiled = _best_of(run_profiled, repeats)
    t_tiered = _best_of(run_tiered, repeats)
    # per-item selection-stage costs (profile_seconds amortises the whole
    # pre-reduce stage: statistics+bounds on the fast path, sketch+policy on
    # the profiling path); best-of-N, same methodology as the wall times
    profile_select = min(
        run_profiled()[0].profile_seconds for _ in range(repeats)
    )
    bound_select = min(run_tiered()[0].profile_seconds for _ in range(repeats))
    return {
        "case": "bound_tier_serving",
        "items": BATCH_ITEMS,
        "n_ranks": N_RANKS,
        "chunk_len": BATCH_CHUNK_LEN,
        "bound_confidence": confidence,
        "fast_path_hit_rate": hits / BATCH_ITEMS,
        "profile_select_s_per_item": profile_select,
        "bound_select_s_per_item": bound_select,
        "select_speedup": profile_select / bound_select,
        "reduce_many_s_profiled": t_profiled,
        "reduce_many_s_bound_tier": t_tiered,
        "end_to_end_speedup": t_profiled / t_tiered,
    }


def run_all(repeats: int = 5) -> dict:
    cases = [
        bench_collective("K", repeats),
        bench_collective("CP", repeats),
        bench_serving(max(2, repeats - 2)),
        bench_bound_tier(max(2, repeats - 2)),
    ]
    return {
        "bench": "adaptive_service",
        "schema": 1,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "ckernels": _ckernels.kernels_available(),
        # serving-engine context: the worker count auto-parallel paths would
        # use, and the persistent pool's reuse counters (starts vs dispatches)
        "workers": default_workers(),
        "pool_reuse": pool_info(),
        "cases": cases,
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="Adaptive-service bench (collective + serving path)."
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="enable repro.obs metrics for the run and write the registry "
        "snapshot (JSON) here; inspect with repro-metrics",
    )
    args = parser.parse_args(argv)
    registry = get_registry()
    if args.metrics_out:
        registry.enable()
    payload = run_all()
    payload["metrics_enabled"] = registry.enabled
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUTPUT}")
    if args.metrics_out:
        metrics_path = Path(args.metrics_out)
        metrics_path.parent.mkdir(parents=True, exist_ok=True)
        metrics_path.write_text(registry.to_json() + "\n")
        print(f"metrics snapshot written to {metrics_path}")
    for c in payload["cases"]:
        if c["case"] == "collective_reduce":
            print(
                f"{c['case']:>18} {c['algorithm']:>3}  R={c['n_ranks']} "
                f"m={c['chunk_len']}  seed={c['seed_path_s'] * 1e3:.2f}ms  "
                f"vector={c['vector_path_s'] * 1e3:.2f}ms  "
                f"speedup={c['speedup']:.1f}x"
            )
        elif c["case"] == "adaptive_serving":
            print(
                f"{c['case']:>18}      B={c['items']}  loop={c['loop_s'] * 1e3:.1f}ms  "
                f"reduce_many={c['reduce_many_s'] * 1e3:.1f}ms  "
                f"speedup={c['speedup']:.1f}x  "
                f"cache={c['decision_cache']}"
            )
        else:
            print(
                f"{c['case']:>18}      B={c['items']}  "
                f"profile_select={c['profile_select_s_per_item'] * 1e6:.1f}us/item  "
                f"bound_select={c['bound_select_s_per_item'] * 1e6:.1f}us/item  "
                f"select_speedup={c['select_speedup']:.1f}x  "
                f"hit_rate={c['fast_path_hit_rate']:.2f}"
            )
    return 0


# -- pytest entry points: assert the acceptance floors -------------------------


def _collective_floor() -> float:
    """>= 10x needs the compiled fold kernels; the NumPy fold still has to
    beat the per-rank accumulator loop, but only by a bandwidth-bound
    margin, so the no-compiler floor drops to parity."""
    return 10.0 if _ckernels.kernels_available() else 1.0


def _assert_collective_floor(code: str) -> None:
    """The structural margin is ~13x; a loaded CI box can still starve one
    side's best-of-N, so take more repeats and allow a single re-measure
    (same policy as fig4's timing-ranking check)."""
    row = bench_collective(code, repeats=5)
    if row["speedup"] < _collective_floor():
        row = bench_collective(code, repeats=5)
    assert row["speedup"] >= _collective_floor(), row


def test_collective_vector_speedup_floor_kahan():
    """Acceptance: >= 10x over the seed object walk (R=48, m=4096, K)."""
    _assert_collective_floor("K")


def test_collective_vector_speedup_floor_cp():
    """Acceptance: >= 10x over the seed object walk (R=48, m=4096, CP)."""
    _assert_collective_floor("CP")


def test_serving_path_amortises_overhead():
    row = bench_serving(repeats=2)
    assert row["speedup"] > 1.0, row
    assert row["decision_cache"]["hits"] > 0, row


def test_bound_tier_kills_profiling_tax():
    """Acceptance: the analytic fast path certifies the whole serving
    stream and its per-item selection cost is >= 5x below the empirical
    profile+select stage (one re-measure allowed, same policy as the
    collective floors)."""
    row = bench_bound_tier(repeats=3)
    if row["select_speedup"] < 5.0:
        row = bench_bound_tier(repeats=3)
    assert row["fast_path_hit_rate"] == 1.0, row
    assert row["select_speedup"] >= 5.0, row


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
