"""Reduced/extended-precision emulation (Sec. III.C's substrate).

The paper's third technique family is high-precision arithmetic and its
automated cousin, precision tuning (Precimonious, ref. [7]): "Precision
tuning is an attempt to reduce precision where possible while maintaining a
prescribed degree of accuracy."  To study that tradeoff without hardware
float16/float128, we emulate *p-bit significand arithmetic inside binary64*:

* :func:`round_to_precision` — correctly rounds a double to a ``p``-bit
  significand (round-to-nearest-even) via the Dekker-style scaling trick, so
  ``p = 53`` is the identity and ``p = 24`` models float32's significand.
* :class:`EmulatedPrecisionSum` — iterative summation in which every partial
  sum is rounded to ``p`` bits: the arithmetic a ``p``-bit accumulator would
  perform (exponent range aside, which the tests pin as the documented
  difference).

Emulated precision composes with everything else in the zoo, which is what
lets the tuner (:mod:`repro.precision.tuning`) search over ``p``.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.summation.base import Accumulator, SumContext, SummationAlgorithm

__all__ = ["round_to_precision", "round_array_to_precision", "EmulatedPrecisionSum"]


def round_to_precision(x: float, p: int) -> float:
    """Round ``x`` to a ``p``-bit significand, ties to even.

    Valid for 1 <= p <= 53; p = 53 returns ``x`` unchanged.  Overflow cannot
    occur (the scaling stays within range for normal inputs); values whose
    rounded significand carries into the next binade are handled correctly
    by the add-and-subtract formulation.
    """
    if not 1 <= p <= 53:
        raise ValueError("precision must be in [1, 53]")
    if p == 53 or x == 0.0 or not math.isfinite(x):  # repro: allow[FP001] -- zeros and non-finites round to themselves
        return float(x)
    # Veltkamp split: multiplying by 2**(53-p) + 1 and subtracting back
    # rounds x to its top p significand bits (ties to even).
    scale = float((1 << (53 - p)) + 1)
    c = scale * x
    # guard against overflow near the top of the range: fall back to frexp
    if not math.isfinite(c):
        m, e = math.frexp(x)
        return math.ldexp(round_to_precision(m, p), e)
    hi = c - (c - x)
    return hi


def round_array_to_precision(x: np.ndarray, p: int) -> np.ndarray:
    """Vectorised :func:`round_to_precision`."""
    if not 1 <= p <= 53:
        raise ValueError("precision must be in [1, 53]")
    x = np.asarray(x, dtype=np.float64)
    if p == 53:
        return x.copy()
    scale = float((1 << (53 - p)) + 1)
    c = scale * x
    out = c - (c - x)
    # overflow fallback per element (rare; only near 2**(1023 - (53-p)))
    bad = ~np.isfinite(c) & np.isfinite(x)
    if np.any(bad):
        out[bad] = [round_to_precision(float(v), p) for v in x[bad]]
    return out


class _EmulatedAccumulator(Accumulator):
    __slots__ = ("s", "p")

    def __init__(self, p: int) -> None:
        self.s = 0.0
        self.p = p

    def add(self, x: float) -> None:
        # operand and every partial sum live on the p-bit grid
        self.s = round_to_precision(self.s + round_to_precision(x, self.p), self.p)

    def add_array(self, x: np.ndarray) -> None:
        for v in round_array_to_precision(np.asarray(x, dtype=np.float64), self.p).tolist():
            self.s = round_to_precision(self.s + v, self.p)

    def merge(self, other: "_EmulatedAccumulator") -> None:  # type: ignore[override]
        self.s = round_to_precision(self.s + other.s, self.p)

    def result(self) -> float:
        return self.s


class EmulatedPrecisionSum(SummationAlgorithm):
    """Iterative summation at an emulated ``p``-bit significand.

    Not registered in the main registry (its code depends on ``p``); build
    instances as needed: ``EmulatedPrecisionSum(24)`` models float32
    accumulation of double data.
    """

    cost_rank = 0
    deterministic = False

    def __init__(self, precision_bits: int) -> None:
        if not 1 <= precision_bits <= 53:
            raise ValueError("precision must be in [1, 53]")
        self.precision_bits = precision_bits
        self.code = f"P{precision_bits}"
        self.name = f"emulated-{precision_bits}-bit"

    def make_accumulator(self, context: Optional[SumContext] = None) -> _EmulatedAccumulator:
        return _EmulatedAccumulator(self.precision_bits)

    def sum_array(self, x: np.ndarray, context: Optional[SumContext] = None) -> float:
        acc = _EmulatedAccumulator(self.precision_bits)
        acc.add_array(x)
        return acc.result()
