"""Precision tuning: find the least precision meeting an accuracy target.

A miniature of Precimonious (paper ref. [7]) specialised to reductions:
given a workload and a relative-error tolerance, find the smallest emulated
significand width ``p`` whose iterative summation stays within tolerance of
the exact sum across a validation ensemble of orderings.  The accuracy of a
``p``-bit sum is monotone in ``p`` only statistically, so the search
validates each candidate against the full ensemble rather than bisecting
blindly: it walks down from 53 in decreasing order and returns the smallest
``p`` whose *worst* ensemble error passes (with the optional early stop when
a candidate fails, matching the classic tuner's greedy behaviour).

This quantifies Sec. III.C's tradeoff — and its footnote: the paper observes
the technique "relies on either human experts or other software", which is
exactly what this module automates for the reduction kernel.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

import numpy as np

from repro.exact.superacc import exact_sum_fraction
from repro.precision.emulation import EmulatedPrecisionSum
from repro.util.rng import SeedLike, permutation_stream, resolve_rng

__all__ = ["TuningResult", "tune_precision"]


@dataclass(frozen=True)
class TuningResult:
    """Outcome of a precision search."""

    precision_bits: int
    worst_rel_error: float
    tolerance: float
    per_precision: dict  # p -> worst relative error over the ensemble
    feasible: bool

    @property
    def memory_saving(self) -> float:
        """Fractional accumulator-width saving vs binary64's 53 bits."""
        return 1.0 - self.precision_bits / 53.0


def _worst_rel_error(
    data: np.ndarray, p: int, exact: Fraction, n_orders: int, seed: SeedLike
) -> float:
    alg = EmulatedPrecisionSum(p)
    worst = 0.0
    abs_exact = abs(exact)
    for perm in permutation_stream(data.size, n_orders, seed):
        v = alg.sum_array(data[perm])
        err = abs(Fraction(v) - exact)
        rel = float(err / abs_exact) if abs_exact else (math.inf if err else 0.0)
        worst = max(worst, rel)
    return worst


def tune_precision(
    data: np.ndarray,
    tolerance: float,
    *,
    candidates: Sequence[int] = tuple(range(53, 10, -3)),
    n_orders: int = 10,
    seed: SeedLike = None,
    greedy: bool = True,
) -> TuningResult:
    """Smallest candidate precision whose worst ensemble error <= tolerance.

    Parameters
    ----------
    candidates:
        Precisions to consider, any order (sorted descending internally).
    n_orders:
        Validation orderings per candidate (the first is the identity).
    greedy:
        Stop at the first failing candidate while walking downward (the
        Precimonious-style search); with ``False`` every candidate is
        evaluated and the true minimum feasible one returned.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be >= 0")
    data = np.asarray(data, dtype=np.float64).ravel()
    if data.size == 0:
        raise ValueError("empty workload")
    cands = sorted({int(p) for p in candidates}, reverse=True)
    if not cands or cands[0] > 53 or cands[-1] < 1:
        raise ValueError("candidates must lie in [1, 53]")
    rng = resolve_rng(seed)
    exact = exact_sum_fraction(data)

    per_precision: dict[int, float] = {}
    best_p: int | None = None
    best_err = math.nan
    for p in cands:
        worst = _worst_rel_error(data, p, exact, n_orders, rng)
        per_precision[p] = worst
        if worst <= tolerance:
            best_p, best_err = p, worst
        elif greedy and best_p is not None:
            break
    if best_p is None:
        # nothing feasible: report the most precise candidate's error
        top = cands[0]
        return TuningResult(
            precision_bits=top,
            worst_rel_error=per_precision[top],
            tolerance=tolerance,
            per_precision=per_precision,
            feasible=False,
        )
    return TuningResult(
        precision_bits=best_p,
        worst_rel_error=best_err,
        tolerance=tolerance,
        per_precision=per_precision,
        feasible=True,
    )
