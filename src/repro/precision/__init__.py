"""Precision emulation and tuning (Sec. III.C): p-bit significand
arithmetic inside binary64 plus a Precimonious-style reduction tuner."""

from repro.precision.emulation import (
    EmulatedPrecisionSum,
    round_array_to_precision,
    round_to_precision,
)
from repro.precision.tuning import TuningResult, tune_precision

__all__ = [
    "EmulatedPrecisionSum",
    "TuningResult",
    "round_array_to_precision",
    "round_to_precision",
    "tune_precision",
]
