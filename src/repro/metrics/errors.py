"""Error statistics over tree ensembles.

The paper visualises irreproducibility two ways: boxplots of error
magnitudes over 100 permuted trees (Fig. 7) and grid cells shaded by the
*standard deviation of the errors* over 1000 trees (Figs. 9-11).  This module
computes both from a vector of computed sums plus the exact reference.

A constant vector of computed values (a deterministic algorithm) reports a
spread of exactly 0.0 — ``numpy.std`` on a constant array can emit ~1e-16 of
pure arithmetic noise, which would wrongly shade PR cells, so we special-case
bitwise-constant inputs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

import numpy as np

from repro.exact.superacc import exact_sum_fraction

__all__ = ["ErrorStats", "error_stats", "boxplot_summary", "BoxplotSummary"]


@dataclass(frozen=True)
class ErrorStats:
    """Summary of signed errors of an ensemble of computed sums."""

    n_samples: int
    n_distinct: int
    mean_abs: float
    max_abs: float
    std: float
    spread: float  # max - min of signed errors
    rel_std: float  # std / |exact sum|; NaN for exact-zero sums

    @property
    def reproducible_bitwise(self) -> bool:
        return self.n_distinct == 1


def error_stats(
    values: "Sequence[float] | np.ndarray",
    data: np.ndarray,
    exact: "Fraction | None" = None,
) -> ErrorStats:
    """Error statistics of ``values`` (ensemble of computed sums of ``data``).

    The exact reference is computed once with the superaccumulator; each
    error is rounded exactly once.  Callers evaluating several ensembles of
    the *same* data (e.g. one per algorithm in a grid cell) may pass the
    precomputed ``exact`` Fraction to skip the superaccumulator pass.
    """
    values = np.asarray(values, dtype=np.float64).ravel()
    if values.size == 0:
        raise ValueError("need at least one computed value")
    if exact is None:
        exact = exact_sum_fraction(np.asarray(data, dtype=np.float64))
    abs_exact = abs(float(exact)) if exact != 0 else 0.0
    distinct = np.unique(values)
    if distinct.size == 1:
        err = float(Fraction(float(distinct[0])) - exact)
        return ErrorStats(
            n_samples=int(values.size),
            n_distinct=1,
            mean_abs=abs(err),
            max_abs=abs(err),
            std=0.0,
            spread=0.0,
            rel_std=0.0 if abs_exact else math.nan,
        )
    errs = np.array([float(Fraction(float(v)) - exact) for v in values])
    std = float(np.std(errs))
    return ErrorStats(
        n_samples=int(values.size),
        n_distinct=int(distinct.size),
        mean_abs=float(np.mean(np.abs(errs))),
        max_abs=float(np.max(np.abs(errs))),
        std=std,
        spread=float(np.max(errs) - np.min(errs)),
        rel_std=std / abs_exact if abs_exact else math.nan,
    )


@dataclass(frozen=True)
class BoxplotSummary:
    """Five-number summary (plus whisker bounds) of |error| magnitudes —
    the quantities a Fig. 7 boxplot encodes."""

    q1: float
    median: float
    q3: float
    whisker_low: float
    whisker_high: float
    outliers: tuple[float, ...]


def boxplot_summary(values: "Sequence[float] | np.ndarray", data: np.ndarray) -> BoxplotSummary:
    """Tukey boxplot summary of absolute errors of an ensemble."""
    values = np.asarray(values, dtype=np.float64).ravel()
    exact = exact_sum_fraction(np.asarray(data, dtype=np.float64))
    errs = np.abs(np.array([float(Fraction(float(v)) - exact) for v in values]))
    q1, med, q3 = (float(q) for q in np.percentile(errs, [25, 50, 75]))
    iqr = q3 - q1
    lo_fence, hi_fence = q1 - 1.5 * iqr, q3 + 1.5 * iqr
    inside = errs[(errs >= lo_fence) & (errs <= hi_fence)]
    whisk_lo = float(inside.min()) if inside.size else q1
    whisk_hi = float(inside.max()) if inside.size else q3
    outliers = tuple(float(e) for e in errs[(errs < lo_fence) | (errs > hi_fence)])
    return BoxplotSummary(q1, med, q3, whisk_lo, whisk_hi, outliers)
