"""Measurement layer: intrinsic set properties, ensemble error statistics,
and the worst-case bounds the paper shows to be uninformative."""

from repro.metrics.bounds import (
    BOUNDED_CODES,
    EXACT_VARIABILITY_CODES,
    analytical_bound,
    compensated_bound,
    condition_based_relative_bound,
    confidence_lambda,
    hallman_ipsen_deterministic,
    hallman_ipsen_probabilistic,
    height_epsilon,
    kahan_bound,
    pairwise_bound,
    prerounded_bound,
    statistical_bound,
    summation_error_bound,
)
from repro.metrics.distributions import (
    DistributionSummary,
    EmpiricalCDF,
    ks_distance,
    stochastically_dominates,
    summarize,
)
from repro.metrics.errors import BoxplotSummary, ErrorStats, boxplot_summary, error_stats
from repro.metrics.properties import (
    SetProfile,
    condition_number,
    dynamic_range,
    profile_set,
)

__all__ = [
    "BOUNDED_CODES",
    "BoxplotSummary",
    "EXACT_VARIABILITY_CODES",
    "DistributionSummary",
    "EmpiricalCDF",
    "ErrorStats",
    "SetProfile",
    "analytical_bound",
    "compensated_bound",
    "kahan_bound",
    "pairwise_bound",
    "prerounded_bound",
    "boxplot_summary",
    "condition_based_relative_bound",
    "condition_number",
    "confidence_lambda",
    "dynamic_range",
    "error_stats",
    "hallman_ipsen_deterministic",
    "hallman_ipsen_probabilistic",
    "height_epsilon",
    "summation_error_bound",
    "ks_distance",
    "stochastically_dominates",
    "summarize",
    "profile_set",
    "statistical_bound",
]
