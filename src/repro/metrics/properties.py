"""Intrinsic properties of summand sets: condition number and dynamic range.

Definitions follow Sec. V.A verbatim.  For a set ``{x_1, ..., x_n}``:

* sum condition number ``k = (Σ |x_i|) / |Σ x_i|`` — "how sensitive the
  final sum is to small errors in the partial sums"; ``inf`` when the exact
  sum is zero.
* dynamic range ``dr = exp(max |x_i|) - exp(min |x_i|)`` where ``exp`` is
  the binary exponent of the value's representation — "a rough estimator of
  alignment error".

Both are computed *exactly*: the condition number's numerator and denominator
come from the integer superaccumulator, so even ``k`` values near 1e16 are
trustworthy.  Zero elements are ignored by ``dr`` (they have no exponent) and
contribute nothing to ``k``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.exact.superacc import ExactSum
from repro.fp.properties import exponents

__all__ = ["condition_number", "dynamic_range", "SetProfile", "profile_set"]


def condition_number(x: np.ndarray) -> float:
    """Exact sum condition number ``Σ|x_i| / |Σ x_i|`` (``inf`` if sum == 0).

    Returns 1.0 for the empty set and for all-zero sets by convention (their
    sum is exactly reproducible no matter what).
    """
    x = np.asarray(x, dtype=np.float64).ravel()
    if x.size == 0:
        return 1.0
    num = ExactSum()
    num.add_array(np.abs(x))
    if num.is_zero():
        return 1.0  # all zeros
    den = ExactSum()
    den.add_array(x)
    if den.is_zero():
        return math.inf
    ratio = num.to_fraction() / abs(den.to_fraction())
    return float(ratio)


def dynamic_range(x: np.ndarray) -> int:
    """Exact dynamic range: binary-exponent span of the nonzero magnitudes.

    Raises ``ValueError`` for sets with no nonzero element (no exponent is
    defined there, following the paper's definition).
    """
    x = np.asarray(x, dtype=np.float64).ravel()
    nz = x[x != 0.0]  # repro: allow[FP001] -- drop exact zeros
    if nz.size == 0:
        raise ValueError("dynamic range undefined for all-zero sets")
    e = exponents(nz)
    return int(e.max() - e.min())


@dataclass(frozen=True)
class SetProfile:
    """Measured intrinsic properties of a summand set.

    This is what the runtime selector's *exact* profiling path produces; the
    cheap streaming estimator lives in :mod:`repro.selection.profile`.
    """

    n: int
    condition: float
    dynamic_range: int
    max_abs: float
    abs_sum: float = math.nan  # Σ|x_i|; NaN when the producer did not track it

    @property
    def log10_condition(self) -> float:
        return math.inf if math.isinf(self.condition) else math.log10(self.condition)

    @property
    def has_abs_sum(self) -> bool:
        return not math.isnan(self.abs_sum)


def profile_set(x: np.ndarray) -> SetProfile:
    """Exactly measure ``(n, k, dr, max|x|, Σ|x|)`` for a summand set."""
    x = np.asarray(x, dtype=np.float64).ravel()
    return SetProfile(
        n=int(x.size),
        condition=condition_number(x),
        dynamic_range=dynamic_range(x),
        max_abs=float(np.max(np.abs(x))) if x.size else 0.0,
        abs_sum=float(np.sum(np.abs(x))),
    )
