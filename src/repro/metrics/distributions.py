"""Distributional analysis of error ensembles.

The boxplots of Figs. 6/7 summarise distributions with five numbers; this
module gives the harness (and downstream users) the full distributional
toolkit: empirical CDFs, quantile tables, two-sample comparisons between
algorithms (stochastic dominance and a Kolmogorov-Smirnov distance computed
without scipy), and moment-based shape descriptors.  All inputs are the raw
ensembles the tree evaluators produce.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "EmpiricalCDF",
    "DistributionSummary",
    "summarize",
    "ks_distance",
    "stochastically_dominates",
]


@dataclass(frozen=True)
class EmpiricalCDF:
    """Right-continuous empirical CDF of a sample."""

    sorted_values: np.ndarray

    @staticmethod
    def from_sample(values: "Sequence[float] | np.ndarray") -> "EmpiricalCDF":
        arr = np.sort(np.asarray(values, dtype=np.float64).ravel())
        if arr.size == 0:
            raise ValueError("empty sample")
        return EmpiricalCDF(arr)

    def __call__(self, x: "float | np.ndarray") -> "float | np.ndarray":
        """P(X <= x)."""
        idx = np.searchsorted(self.sorted_values, x, side="right")
        out = idx / self.sorted_values.size
        return float(out) if np.isscalar(x) else out

    def quantile(self, q: "float | np.ndarray") -> "float | np.ndarray":
        """Inverse CDF (type-1: lower empirical quantile)."""
        qa = np.asarray(q, dtype=np.float64)
        if np.any((qa < 0) | (qa > 1)):
            raise ValueError("quantiles must be in [0, 1]")
        n = self.sorted_values.size
        idx = np.minimum((qa * n).astype(np.int64), n - 1)
        out = self.sorted_values[idx]
        return float(out) if np.isscalar(q) else out


@dataclass(frozen=True)
class DistributionSummary:
    """Moment and quantile portrait of one ensemble."""

    n: int
    mean: float
    std: float
    skewness: float
    excess_kurtosis: float
    quantiles: dict  # q -> value

    @property
    def heavy_tailed(self) -> bool:
        """Excess kurtosis well above the Gaussian's 0."""
        return self.excess_kurtosis > 1.0


def summarize(
    values: "Sequence[float] | np.ndarray",
    quantiles: Sequence[float] = (0.05, 0.25, 0.5, 0.75, 0.95),
) -> DistributionSummary:
    """Moments + quantiles of an ensemble of computed sums (or errors)."""
    arr = np.asarray(values, dtype=np.float64).ravel()
    if arr.size == 0:
        raise ValueError("empty sample")
    mean = float(arr.mean())
    centered = arr - mean
    var = float(np.mean(centered**2))
    std = math.sqrt(var)
    if std == 0.0:  # repro: allow[FP001] -- zero-spread guard
        skew = 0.0
        kurt = 0.0
    else:
        skew = float(np.mean(centered**3)) / std**3
        kurt = float(np.mean(centered**4)) / std**4 - 3.0
    cdf = EmpiricalCDF.from_sample(arr)
    return DistributionSummary(
        n=int(arr.size),
        mean=mean,
        std=std,
        skewness=skew,
        excess_kurtosis=kurt,
        quantiles={float(q): float(cdf.quantile(q)) for q in quantiles},
    )


def ks_distance(
    a: "Sequence[float] | np.ndarray", b: "Sequence[float] | np.ndarray"
) -> float:
    """Two-sample Kolmogorov-Smirnov statistic ``sup |F_a - F_b|``."""
    fa = EmpiricalCDF.from_sample(a)
    fb = EmpiricalCDF.from_sample(b)
    grid = np.concatenate([fa.sorted_values, fb.sorted_values])
    return float(np.max(np.abs(fa(grid) - fb(grid))))


def stochastically_dominates(
    better: "Sequence[float] | np.ndarray",
    worse: "Sequence[float] | np.ndarray",
    *,
    slack: float = 0.0,
) -> bool:
    """First-order dominance of |better| over |worse| (smaller is better).

    True when at every threshold t, P(|better| <= t) >= P(|worse| <= t) -
    slack — the clean statement of "algorithm A's error distribution is
    uniformly better than B's" that Figs. 6/7 depict.
    """
    fa = EmpiricalCDF.from_sample(np.abs(np.asarray(better, dtype=np.float64)))
    fb = EmpiricalCDF.from_sample(np.abs(np.asarray(worse, dtype=np.float64)))
    grid = np.concatenate([fa.sorted_values, fb.sorted_values])
    return bool(np.all(fa(grid) >= fb(grid) - slack))
