"""Worst-case error bounds for floating-point summation (Sec. IV.A).

Two bounds frame the Fig. 2 experiment:

* the **analytical** (deterministic worst-case) bound, Higham [11]:
  ``|fl(Σ x_i) - Σ x_i| < n · u · Σ |x_i|``  with unit roundoff
  ``u = 2**-53``;
* a **statistical** bound modelling per-operation roundoffs as independent
  zero-mean random variables, which scales with ``sqrt(n)`` instead of
  ``n`` (the classic Wilkinson "rule of thumb"); we use the 3-sigma form
  ``3 · sqrt(n) · u · Σ |x_i|``.

The paper's point — which the Fig. 2 reproduction asserts — is that *both*
overestimate observed error magnitudes by orders of magnitude, so bounds
alone cannot drive algorithm selection.
"""

from __future__ import annotations

import math

import numpy as np

from repro.fp.properties import UNIT_ROUNDOFF

__all__ = [
    "analytical_bound",
    "statistical_bound",
    "condition_based_relative_bound",
    "pairwise_bound",
    "kahan_bound",
    "compensated_bound",
    "prerounded_bound",
]


def analytical_bound(x: np.ndarray, u: float = UNIT_ROUNDOFF) -> float:
    """Higham's deterministic worst case: ``n * u * Σ|x_i|``.

    Valid for any summation order (any reduction tree), which is what makes
    it both safe and extremely loose.
    """
    x = np.asarray(x, dtype=np.float64).ravel()
    n = x.size
    if n == 0:
        return 0.0
    return n * u * float(np.sum(np.abs(x)))


def statistical_bound(
    x: np.ndarray, u: float = UNIT_ROUNDOFF, sigmas: float = 3.0
) -> float:
    """Probabilistic bound: ``sigmas * sqrt(n) * u * Σ|x_i|``.

    Treats the n-1 rounding errors as independent, zero-mean, bounded by
    ``u`` per partial-sum magnitude; a ``sigmas``-sigma excursion of their
    sum gives the sqrt(n) scaling (Wilkinson; see also Higham & Mary 2019).
    """
    x = np.asarray(x, dtype=np.float64).ravel()
    n = x.size
    if n == 0:
        return 0.0
    return sigmas * math.sqrt(n) * u * float(np.sum(np.abs(x)))


def condition_based_relative_bound(
    condition: float, n: int, u: float = UNIT_ROUNDOFF
) -> float:
    """Relative-error form ``n * u * k``: the condition number converts the
    absolute bound into a relative one (``inf`` for zero-sum sets)."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if math.isinf(condition):
        return math.inf
    return n * u * condition


# --- per-algorithm worst cases (classical results, first-order forms) ------


def pairwise_bound(x: np.ndarray, u: float = UNIT_ROUNDOFF) -> float:
    """Balanced (pairwise) summation: ``ceil(log2 n) * u * Σ|x_i|`` to first
    order — the depth of the tree replaces n (why balanced beats serial)."""
    x = np.asarray(x, dtype=np.float64).ravel()
    n = x.size
    if n <= 1:
        return 0.0
    return math.ceil(math.log2(n)) * u * float(np.sum(np.abs(x)))


def kahan_bound(x: np.ndarray, u: float = UNIT_ROUNDOFF) -> float:
    """Kahan's compensated summation: ``(2u + O(n u**2)) * Σ|x_i|`` (Knuth/
    Goldberg) — n-independent to first order."""
    x = np.asarray(x, dtype=np.float64).ravel()
    n = x.size
    if n <= 1:
        return 0.0
    t = float(np.sum(np.abs(x)))
    return (2.0 * u + 2.0 * n * u * u) * t


def compensated_bound(x: np.ndarray, u: float = UNIT_ROUNDOFF) -> float:
    """Composite precision / Sum2: ``u*|s| + 2 n**2 u**2 Σ|x_i|`` (Ogita-
    Rump-Oishi Prop. 4.5 shape) — as-if-doubled working precision."""
    x = np.asarray(x, dtype=np.float64).ravel()
    n = x.size
    if n <= 1:
        return 0.0
    t = float(np.sum(np.abs(x)))
    s = abs(float(np.sum(x)))
    return u * s + 2.0 * n * n * u * u * t


def prerounded_bound(
    x: np.ndarray, folds: int = 3, fold_width: int = 40
) -> float:
    """Prerounded summation: each operand loses at most half the cutoff grid
    ``2**(E - K*W - 1)``, plus one final rounding of the result."""
    x = np.asarray(x, dtype=np.float64).ravel()
    n = x.size
    if n == 0:
        return 0.0
    max_abs = float(np.max(np.abs(x)))
    if max_abs == 0.0:  # repro: allow[FP001] -- all-zero input guard
        return 0.0
    from repro.fp.properties import exponent

    cutoff = math.ldexp(1.0, exponent(max_abs) - folds * fold_width - 1)
    s = abs(float(np.sum(x)))
    return n * cutoff + UNIT_ROUNDOFF * s
