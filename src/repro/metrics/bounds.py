"""Worst-case error bounds for floating-point summation (Sec. IV.A).

Two bounds frame the Fig. 2 experiment:

* the **analytical** (deterministic worst-case) bound, Higham [11]:
  ``|fl(Σ x_i) - Σ x_i| < n · u · Σ |x_i|``  with unit roundoff
  ``u = 2**-53``;
* a **statistical** bound modelling per-operation roundoffs as independent
  zero-mean random variables, which scales with ``sqrt(n)`` instead of
  ``n`` (the classic Wilkinson "rule of thumb"); we use the 3-sigma form
  ``3 · sqrt(n) · u · Σ |x_i|``.

The paper's point — which the Fig. 2 reproduction asserts — is that *both*
overestimate observed error magnitudes by orders of magnitude, so bounds
alone cannot drive algorithm selection.

Hallman–Ipsen analytic bounds (the selection fast path)
-------------------------------------------------------
The loose Fig. 2 bounds can't *rank* algorithms, but Hallman & Ipsen's
per-algorithm forward-error bounds (arXiv 2107.01604) — deterministic forms
that hold to all orders and probabilistic (martingale / Azuma–Hoeffding)
forms that replace the tree height ``h`` with ``sqrt(h)`` at a stated
confidence — are tight enough to *certify* an algorithm against a
reproducibility threshold from O(1) set statistics.  Their precision-aware
variants (arXiv 2203.15928) keep the bounds valid when ``n·u`` is not small,
which is what makes fp32/fp16 a supported scenario axis: every bound here is
parameterized by the unit roundoff ``u``.

The building block is the exact accumulated-perturbation factor
``(1+u)**h - 1`` for a summation tree of height ``h`` — unlike the classical
``gamma_h = h·u/(1-h·u)`` it is finite and valid for *any* ``h·u``, which is
the 2203.15928 move.  :func:`summation_error_bound` packages the
per-algorithm forms; because each bound is homogeneous in the magnitude mass
``T = Σ|x_i|``, calling it with ``abs_sum=k`` (the condition number) and
``sum_mag=1`` yields the *relative* bound the runtime selector compares
against its threshold.
"""

from __future__ import annotations

import math

import numpy as np

from repro.fp.properties import UNIT_ROUNDOFF

__all__ = [
    "analytical_bound",
    "statistical_bound",
    "condition_based_relative_bound",
    "pairwise_bound",
    "kahan_bound",
    "compensated_bound",
    "prerounded_bound",
    "height_epsilon",
    "confidence_lambda",
    "hallman_ipsen_deterministic",
    "hallman_ipsen_probabilistic",
    "summation_error_bound",
    "BOUNDED_CODES",
    "EXACT_VARIABILITY_CODES",
]


def analytical_bound(x: np.ndarray, u: float = UNIT_ROUNDOFF) -> float:
    """Higham's deterministic worst case: ``n * u * Σ|x_i|``.

    Valid for any summation order (any reduction tree), which is what makes
    it both safe and extremely loose.
    """
    x = np.asarray(x, dtype=np.float64).ravel()
    n = x.size
    if n == 0:
        return 0.0
    return n * u * float(np.sum(np.abs(x)))


def statistical_bound(
    x: np.ndarray, u: float = UNIT_ROUNDOFF, sigmas: float = 3.0
) -> float:
    """Probabilistic bound: ``sigmas * sqrt(n) * u * Σ|x_i|``.

    Treats the n-1 rounding errors as independent, zero-mean, bounded by
    ``u`` per partial-sum magnitude; a ``sigmas``-sigma excursion of their
    sum gives the sqrt(n) scaling (Wilkinson; see also Higham & Mary 2019).
    """
    x = np.asarray(x, dtype=np.float64).ravel()
    n = x.size
    if n == 0:
        return 0.0
    return sigmas * math.sqrt(n) * u * float(np.sum(np.abs(x)))


def condition_based_relative_bound(
    condition: float, n: int, u: float = UNIT_ROUNDOFF
) -> float:
    """Relative-error form ``n * u * k``: the condition number converts the
    absolute bound into a relative one (``inf`` for zero-sum sets)."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if math.isinf(condition):
        return math.inf
    return n * u * condition


# --- per-algorithm worst cases (classical results, first-order forms) ------


def pairwise_bound(x: np.ndarray, u: float = UNIT_ROUNDOFF) -> float:
    """Balanced (pairwise) summation: ``ceil(log2 n) * u * Σ|x_i|`` to first
    order — the depth of the tree replaces n (why balanced beats serial)."""
    x = np.asarray(x, dtype=np.float64).ravel()
    n = x.size
    if n <= 1:
        return 0.0
    return math.ceil(math.log2(n)) * u * float(np.sum(np.abs(x)))


def kahan_bound(x: np.ndarray, u: float = UNIT_ROUNDOFF) -> float:
    """Kahan's compensated summation: ``(2u + O(n u**2)) * Σ|x_i|`` (Knuth/
    Goldberg) — n-independent to first order."""
    x = np.asarray(x, dtype=np.float64).ravel()
    n = x.size
    if n <= 1:
        return 0.0
    t = float(np.sum(np.abs(x)))
    return (2.0 * u + 2.0 * n * u * u) * t


def compensated_bound(x: np.ndarray, u: float = UNIT_ROUNDOFF) -> float:
    """Composite precision / Sum2: ``u*|s| + 2 n**2 u**2 Σ|x_i|`` (Ogita-
    Rump-Oishi Prop. 4.5 shape) — as-if-doubled working precision."""
    x = np.asarray(x, dtype=np.float64).ravel()
    n = x.size
    if n <= 1:
        return 0.0
    t = float(np.sum(np.abs(x)))
    s = abs(float(np.sum(x)))
    return u * s + 2.0 * n * n * u * u * t


# --- Hallman–Ipsen analytic bounds (selection fast path) --------------------

#: Algorithms whose reduction result is bitwise-reproducible across trees —
#: their error *variability* is exactly zero, whatever their accuracy.
EXACT_VARIABILITY_CODES: frozenset = frozenset({"PR", "EX", "SO", "AS"})

#: Recursive/pairwise family: plain adds, height-dependent first-order error.
_RECURSIVE_CODES = frozenset({"ST", "PW"})

#: Compensated family: Kahan-style, 2u first-order floor.
_COMPENSATED_CODES = frozenset({"K", "KBN", "FB"})

#: As-if-doubled family: Sum2/composite precision and double-double.
_DOUBLED_CODES = frozenset({"CP", "DD", "IV"})

#: Every code :func:`summation_error_bound` can certify.
BOUNDED_CODES: frozenset = (
    EXACT_VARIABILITY_CODES | _RECURSIVE_CODES | _COMPENSATED_CODES | _DOUBLED_CODES
)


def height_epsilon(height, u=UNIT_ROUNDOFF):
    """``(1+u)**height - 1``: the exact accumulated-perturbation factor for a
    summation tree of height ``height`` (array-friendly).

    Every summand passes through at most ``height`` roundings, each a factor
    in ``[1-u, 1+u]``, so ``|fl(Σx) - Σx| <= height_epsilon(h, u) · Σ|x|``
    for *any* summation order of that height.  Unlike the classical
    ``gamma_h = h·u/(1-h·u)`` this is finite and valid for any ``h·u`` —
    the precision-aware form (Hallman & Ipsen, arXiv 2203.15928) that keeps
    fp16 bounds meaningful past ``n > 1/u``.
    """
    h = np.asarray(height, dtype=np.float64)
    return np.expm1(h * np.log1p(np.asarray(u, dtype=np.float64)))


def confidence_lambda(confidence: float) -> float:
    """Azuma–Hoeffding amplification factor ``sqrt(2·ln(2/δ))`` for failure
    probability ``δ = 1 - confidence`` (Hallman & Ipsen, arXiv 2107.01604).

    ``confidence = 1`` returns ``inf`` — at certainty only the deterministic
    bounds apply.
    """
    if not 0.0 < confidence <= 1.0:
        raise ValueError("confidence must be in (0, 1]")
    if confidence == 1.0:  # repro: allow[FP001] -- exact sentinel: full certainty selects the deterministic bound
        return math.inf
    return math.sqrt(2.0 * math.log(2.0 / (1.0 - confidence)))


def hallman_ipsen_deterministic(abs_sum, n, u=UNIT_ROUNDOFF, height=None):
    """Deterministic forward-error bound for recursive summation of ``n``
    values: ``((1+u)**h - 1) · Σ|x|`` with ``h = n-1`` (array-friendly).

    Valid for any summation tree of height <= ``h`` — passing the actual
    tree height tightens it (``ceil(log2 n)`` for balanced trees).
    """
    h = np.maximum(np.asarray(n, dtype=np.float64) - 1.0, 0.0) if height is None else height
    return height_epsilon(h, u) * abs_sum


def hallman_ipsen_probabilistic(
    abs_sum, n, u=UNIT_ROUNDOFF, confidence: float = 0.99, height=None
):
    """Probabilistic forward-error bound for recursive summation: with
    probability >= ``confidence``,
    ``|fl(Σx) - Σx| <= λ·u·sqrt(h)·(1+u)**h·Σ|x|`` where
    ``λ = sqrt(2·ln(2/(1-confidence)))`` (martingale concentration over the
    per-add roundoffs, Hallman & Ipsen arXiv 2107.01604; the ``(1+u)**h``
    factor is the precision-aware correction of arXiv 2203.15928).

    The ``sqrt(h)`` scaling is what certifies large-``n`` recursive sums the
    deterministic ``h``-scaled bound cannot.  Never exceeds the deterministic
    bound (the elementwise minimum of the two is returned).
    """
    lam = confidence_lambda(confidence)
    h = np.maximum(np.asarray(n, dtype=np.float64) - 1.0, 0.0) if height is None else height
    det = height_epsilon(h, u) * abs_sum
    if math.isinf(lam):
        return det
    prob = lam * u * np.sqrt(h) * (1.0 + height_epsilon(h, u)) * abs_sum
    return np.minimum(prob, det)


def summation_error_bound(
    code: str,
    n,
    abs_sum,
    sum_mag=0.0,
    u=UNIT_ROUNDOFF,
    confidence: float = 1.0,
):
    """Provable forward-error bound for summing ``n`` values with algorithm
    ``code``, from O(1) set statistics (array-friendly).

    ``abs_sum`` is ``T = Σ|x_i|`` and ``sum_mag`` is ``|Σ x_i|`` (needed only
    by the as-if-doubled family, whose bound carries a ``u·|s|`` final-
    rounding term).  ``confidence < 1`` swaps in the probabilistic
    (martingale) forms where they are tighter.  All forms are valid for any
    reduction-tree shape (heights are taken worst-case, ``h = n-1``), so a
    bound <= t certifies error *variability* <= t across trees: every tree's
    error lies within the bound, and ``std <= sqrt(E[e²]) <= bound``.

    Per-algorithm forms (``eps_h = (1+u)**h - 1``, ``γ_h = h·u/(1-h·u)``):

    * recursive/pairwise (ST, PW): ``eps_{n-1}·T``, probabilistic
      ``λ·u·sqrt(n-1)·(1+u)**(n-1)·T`` (Hallman–Ipsen);
    * compensated (K, KBN, FB): ``(2u + 8u·eps_n)·T`` (Knuth/Neumaier shape,
      second-order term folded through the precision-aware factor);
    * as-if-doubled (CP, DD, IV): ``u·|s| + 2·γ_{n-1}²·T`` (Ogita–Rump–Oishi
      Prop. 4.5 shape); inconclusive (``inf``) once ``(n-1)·u >= 1``, the
      regime the precision-aware analysis shows breaks the doubling;
    * reproducible (PR, EX, SO, AS): ``0`` — bitwise identical across trees.

    Raises ``KeyError`` for codes with no implemented bound.
    """
    n = np.asarray(n, dtype=np.float64)
    scalar = n.ndim == 0
    n = np.atleast_1d(n)
    abs_sum = np.broadcast_to(np.asarray(abs_sum, dtype=np.float64), n.shape)
    sum_mag = np.broadcast_to(np.asarray(sum_mag, dtype=np.float64), n.shape)
    u_arr = np.broadcast_to(np.asarray(u, dtype=np.float64), n.shape)
    # Degenerate lanes (n <= 1: empty or single-value sets, exact by
    # definition) can carry abs_sum = inf from an infinite-condition query,
    # and their height factor is exactly 0 — the resulting 0 * inf NaN is
    # masked to 0 below, so silence the transient invalid-multiply warning
    # instead of leaking it to serving callers running warnings-as-errors.
    with np.errstate(invalid="ignore"):
        if code in EXACT_VARIABILITY_CODES:
            out = np.zeros_like(n)
        elif code in _RECURSIVE_CODES:
            out = hallman_ipsen_probabilistic(
                abs_sum, n, u_arr, confidence=confidence
            )
        elif code in _COMPENSATED_CODES:
            out = (2.0 * u_arr + 8.0 * u_arr * height_epsilon(n, u_arr)) * abs_sum
        elif code in _DOUBLED_CODES:
            hu = np.maximum(n - 1.0, 0.0) * u_arr
            with np.errstate(divide="ignore"):
                gamma = np.where(hu < 1.0, hu / (1.0 - hu), math.inf)
            out = u_arr * sum_mag + 2.0 * gamma * gamma * abs_sum
        else:
            raise KeyError(f"no Hallman–Ipsen bound for algorithm {code!r}")
        out = np.where(n <= 1.0, 0.0, out)
    return float(out[0]) if scalar else out


def prerounded_bound(
    x: np.ndarray, folds: int = 3, fold_width: int = 40
) -> float:
    """Prerounded summation: each operand loses at most half the cutoff grid
    ``2**(E - K*W - 1)``, plus one final rounding of the result."""
    x = np.asarray(x, dtype=np.float64).ravel()
    n = x.size
    if n == 0:
        return 0.0
    max_abs = float(np.max(np.abs(x)))
    if max_abs == 0.0:  # repro: allow[FP001] -- all-zero input guard
        return 0.0
    from repro.fp.properties import exponent

    cutoff = math.ldexp(1.0, exponent(max_abs) - folds * fold_width - 1)
    s = abs(float(np.sum(x)))
    return n * cutoff + UNIT_ROUNDOFF * s
