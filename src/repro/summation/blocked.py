"""FABsum-style blocked summation: a tunable fast/accurate hybrid.

Blanchard, Higham & Pranesh ("A Class of Fast and Accurate Summation
Algorithms", 2020) observed that summing in blocks of size ``b`` with a fast
method and combining the block sums with an accurate method gives error
bounds independent of ``n`` (only ``b`` appears in the leading term) at
almost the fast method's speed.  That makes block size a *continuous* cost/
accuracy knob — exactly the kind of candidate the paper's runtime selector
wants between ST and CP, so we register it as ``FB`` and give the cost model
an entry for it.

Structure: pairwise (numpy-speed) sums inside blocks, composite-precision
combination across blocks.  Accumulator merges combine in composite
precision, so the tree semantics are CP-like over block partials.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.fp.eft import two_sum
from repro.summation.base import Accumulator, SumContext, SummationAlgorithm

__all__ = ["BlockedAccumulator", "FABSum"]

_DEFAULT_BLOCK = 1024


class BlockedAccumulator(Accumulator):
    """CP-combined block sums: state ``(s, e)`` plus an operand staging
    buffer that flushes every ``block`` values."""

    __slots__ = ("s", "e", "block", "_staged")

    def __init__(self, block: int = _DEFAULT_BLOCK) -> None:
        if block < 2:
            raise ValueError("block must be >= 2")
        self.s = 0.0
        self.e = 0.0
        self.block = block
        self._staged: list[float] = []

    def _combine(self, value: float) -> None:
        self.s, delta = two_sum(self.s, value)
        self.e += delta

    def _flush(self) -> None:
        if self._staged:
            self._combine(float(np.add.reduce(np.array(self._staged))))
            self._staged.clear()

    def add(self, x: float) -> None:
        self._staged.append(float(x))
        if len(self._staged) >= self.block:
            self._flush()

    def add_array(self, x: np.ndarray) -> None:
        x = np.asarray(x, dtype=np.float64).ravel()
        if x.size == 0:
            return
        self._flush()
        n_full = (x.size // self.block) * self.block
        if n_full:
            blocks = x[:n_full].reshape(-1, self.block)
            # fast phase: one pairwise sum per block (numpy's reduce)
            for bs in np.add.reduce(blocks, axis=1).tolist():
                self._combine(bs)
        tail = x[n_full:]
        if tail.size:
            self._staged.extend(tail.tolist())

    def merge(self, other: "BlockedAccumulator") -> None:  # type: ignore[override]
        self._flush()
        other._flush()
        self.s, delta = two_sum(self.s, other.s)
        self.e += other.e + delta

    def result(self) -> float:
        self._flush()
        return self.s + self.e


class FABSum(SummationAlgorithm):
    """FB: fast blocked summation with accurate block combination.

    ``block`` tunes the tradeoff: error grows with ``block`` (the fast
    phase's exposure) while cost shrinks toward plain ``np.sum``.
    """

    code = "FB"
    name = "fabsum-blocked"
    cost_rank = 1  # between ST and CP by construction
    deterministic = False

    def __init__(self, block: int = _DEFAULT_BLOCK) -> None:
        if block < 2:
            raise ValueError("block must be >= 2")
        self.block = block

    def make_accumulator(self, context: Optional[SumContext] = None) -> BlockedAccumulator:
        return BlockedAccumulator(self.block)

    def sum_array(self, x: np.ndarray, context: Optional[SumContext] = None) -> float:
        acc = BlockedAccumulator(self.block)
        acc.add_array(x)
        return acc.result()
