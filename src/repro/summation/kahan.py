"""Kahan compensated summation (K) and the Neumaier variant.

Kahan's 1965 algorithm keeps a running compensation ``c`` estimating the
error of the last rounded add and folds it back into the *next* add.  As the
paper puts it: "In Kahan's algorithm the estimated error is added back into
the sum at each step" — in contrast to composite precision, which carries the
error to the very end.  That per-step folding is why K is cheaper but weaker
than CP in the sensitivity figures.

Merge semantics (the custom ``MPI_Op`` analogue, after Robey et al. [13]):
each side first applies its own pending compensation, the two corrected
partial sums are combined with TwoSum, and the rounding error of that combine
becomes the new pending compensation.  ``result`` returns the running sum
``s`` alone — the classic Kahan contract — so the final pending compensation
is dropped, exactly the behaviour that separates K from CP at the root.

Neumaier's variant (improved Kahan–Babuška) is included as an extension; it
also guards the case ``|x| > |s|`` which classic Kahan mishandles.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.fp.eft import two_sum, two_sum_array
from repro.summation.base import Accumulator, SumContext, SummationAlgorithm, VectorOps

__all__ = ["KahanAccumulator", "KahanSum", "NeumaierAccumulator", "NeumaierSum"]


class KahanAccumulator(Accumulator):
    """State ``(s, c)``: running sum and pending compensation (to subtract).

    Invariant (to first order): true partial sum ≈ ``s - c``.
    """

    __slots__ = ("s", "c")

    def __init__(self) -> None:
        self.s = 0.0
        self.c = 0.0

    def add(self, x: float) -> None:
        y = x - self.c
        t = self.s + y
        self.c = (t - self.s) - y  # repro: allow[FP004] -- the Kahan recurrence itself
        self.s = t

    def add_array(self, x: np.ndarray) -> None:
        """Vectorised kernel: TwoSum pairwise fold with the per-level error
        masses summed flat (one ``np.sum`` per level), then both block
        results compensated back in with scalar adds — the "fold the
        estimate back at each step" structure of Kahan, at NumPy speed
        (~8 flops/element).  The flat error sum is what keeps K measurably
        cheaper than CP's carried-error fold, preserving the paper's
        ST < K < CP cost ranking (Fig. 4).
        """
        x = np.asarray(x, dtype=np.float64).ravel()
        if x.size == 0:
            return
        s, e = _twosum_sum_fold(_pad_pow2(x))
        self.add(float(s))
        self.add(float(e))

    def merge(self, other: "KahanAccumulator") -> None:  # type: ignore[override]
        # Combine both pending compensations with the *incoming* partial sum
        # (the small operand) — folding them into the running sum directly
        # would round them away, since |c| < ulp(s)/2 after an add.  With a
        # singleton right child (c == 0) this is exactly the classic Kahan
        # recurrence, so serial trees reproduce scalar Kahan bit-for-bit.
        y = other.s - (self.c + other.c)
        t = self.s + y
        self.c = (t - self.s) - y  # repro: allow[FP004] -- the Kahan recurrence itself
        self.s = t

    def result(self) -> float:
        return self.s


def _pad_pow2(x: np.ndarray) -> np.ndarray:
    """Copy ``x`` padded with zeros to the next power of two.

    Zeros are exact under TwoSum (zero result error), so padding changes
    neither the fold's value nor its error mass.
    """
    n = x.size
    if n == 0:
        return np.zeros(1, dtype=np.float64)
    size = 1 << (n - 1).bit_length()
    if size == n:
        return x.copy()
    out = np.zeros(size, dtype=np.float64)
    out[:n] = x
    return out


def _pad_pow2_cols(matrix: np.ndarray) -> np.ndarray:
    """Copy a ``(R, M)`` matrix zero-padded along columns to a power of two.

    The pairwise kernels below are padding-invariant under zero columns
    (TwoSum against zero is exact and the carry halving pairs zeros with
    zeros), so rows of any true length fold to the same bits as their
    individually pow2-padded 1-D counterparts — the property the collective
    fast path's ragged-chunk packing relies on.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    n_rows, width = matrix.shape
    size = 1 if width == 0 else 1 << (width - 1).bit_length()
    out = np.zeros((n_rows, size), dtype=np.float64)
    out[:, :width] = matrix
    return out


def _twosum_carry_fold(x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Pairwise TwoSum reduction along the last axis with a carried error
    component per partial sum, returning ``(sum, error)`` with the last axis
    collapsed.

    This is the shared blocked kernel behind the Neumaier and
    composite-precision ``add_array`` implementations *and* their
    :meth:`~repro.summation.base.VectorOps.fold` fast paths: the error of
    every level's TwoSum is folded pairwise alongside the sums, so the same
    code (and the same bits) serve a 1-D chunk and a whole ``(R, M)`` rank
    matrix.  Expects a power-of-two last axis (see :func:`_pad_pow2_cols`).
    """
    s = x
    c = np.zeros_like(s)
    while s.shape[-1] > 1:
        t, e = two_sum_array(s[..., 0::2], s[..., 1::2])
        c = c[..., 0::2] + c[..., 1::2] + e
        s = t
    return s[..., 0], c[..., 0]


def _twosum_sum_fold(x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Pairwise TwoSum reduction along the last axis with each level's error
    mass collapsed flat by one ``np.sum``, returning ``(sum, error)``.

    Kahan's blocked kernel: one add per element for the error channel
    instead of :func:`_twosum_carry_fold`'s carried pairwise combine — the
    cost gap that keeps K measurably cheaper than CP at the block level.
    Works on a 1-D chunk and a ``(R, M)`` rank matrix alike; the two agree
    bitwise because NumPy's last-axis pairwise reduction over a contiguous
    row matches the 1-D reduction, level error entries are never ``-0.0``
    (TwoSum's error of an exact sum is ``+0.0``), and zero-column padding
    therefore only appends inert ``+0.0`` terms on power-of-two boundaries
    that leave the pairwise grouping of real entries intact.  Expects a
    power-of-two last axis.
    """
    s = x
    err_total = np.zeros(s.shape[:-1], dtype=np.float64)
    while s.shape[-1] > 1:
        s, e = two_sum_array(s[..., 0::2], s[..., 1::2])
        err_total += np.sum(e, axis=-1)  # repro: allow[FP002,FP003] -- per-level error mass is magnitude-homogeneous
    return s[..., 0], err_total


class _KahanVectorOps(VectorOps):
    n_components = 2
    ckernel = "kahan"

    def init(self, values: np.ndarray) -> Tuple[np.ndarray, ...]:
        v = np.asarray(values, dtype=np.float64)
        return (v.copy(), np.zeros_like(v))

    def merge(self, a, b):
        y = b[0] - (a[1] + b[1])
        t = a[0] + y
        c = (t - a[0]) - y  # repro: allow[FP004] -- the Kahan merge recurrence itself
        return (t, c)

    def merge_leaves(self, a_values, b_values):
        # leaf compensations are exactly zero, so y = b - (0+0) == b bitwise
        # (x - 0.0 == x for every double, including -0.0)
        t = a_values + b_values
        c = np.subtract(t, a_values)
        np.subtract(c, b_values, out=c)  # repro: allow[FP004] -- the Kahan merge recurrence itself
        return (t, c)

    def fold(self, matrix, lengths):
        # the elementwise image of KahanAccumulator.add_array: flat-error
        # fold per row, then the two scalar Kahan adds replayed op-for-op
        # from the zero state (zero-column padding is inert under both)
        s_blk, e_blk = _twosum_sum_fold(_pad_pow2_cols(matrix))
        y = s_blk - 0.0
        t = 0.0 + y
        c = (t - 0.0) - y  # repro: allow[FP004] -- the Kahan recurrence itself
        y = e_blk - c
        s = t + y
        c = (s - t) - y  # repro: allow[FP004] -- the Kahan recurrence itself
        return (s, c)

    def result(self, state):
        return state[0]


class KahanSum(SummationAlgorithm):
    """K: Kahan's compensated summation."""

    code = "K"
    name = "kahan"
    cost_rank = 1
    deterministic = False

    _vops = _KahanVectorOps()

    def make_accumulator(self, context: Optional[SumContext] = None) -> KahanAccumulator:
        return KahanAccumulator()

    def sum_array(self, x: np.ndarray, context: Optional[SumContext] = None) -> float:
        acc = KahanAccumulator()
        acc.add_array(x)
        return acc.result()

    @property
    def vector_ops(self) -> VectorOps:
        return self._vops


class NeumaierAccumulator(Accumulator):
    """Kahan–Babuška–Neumaier: compensation accumulates separately and is
    added at the end; robust when ``|x| > |s|``."""

    __slots__ = ("s", "c")

    def __init__(self) -> None:
        self.s = 0.0
        self.c = 0.0

    def add(self, x: float) -> None:
        t = self.s + x
        if abs(self.s) >= abs(x):
            self.c += (self.s - t) + x  # repro: allow[FP004] -- the Neumaier recurrence itself
        else:
            self.c += (x - t) + self.s  # repro: allow[FP004] -- the Neumaier recurrence itself
        self.s = t

    def add_array(self, x: np.ndarray) -> None:
        x = np.asarray(x, dtype=np.float64).ravel()
        if x.size == 0:
            return
        s, c = _twosum_carry_fold(_pad_pow2(x))
        bc = float(c)
        self.add(float(s))
        self.c += bc

    def merge(self, other: "NeumaierAccumulator") -> None:  # type: ignore[override]
        c_other = other.c
        self.add(other.s)
        self.c += c_other

    def result(self) -> float:
        return self.s + self.c


class _NeumaierVectorOps(VectorOps):
    """Elementwise image of :meth:`NeumaierAccumulator.merge`.

    The scalar merge is ``add(other.s)`` followed by ``c += other.c``; the
    magnitude branch becomes a ``where`` select.  Both branch expressions are
    evaluated for every lane, but the selected lane value is the same double
    the scalar branch would produce, so the vector form stays bitwise equal
    to the accumulator walk.
    """

    n_components = 2
    ckernel = "kbn"

    def init(self, values: np.ndarray) -> Tuple[np.ndarray, ...]:
        v = np.asarray(values, dtype=np.float64)
        return (v.copy(), np.zeros_like(v))

    def merge(self, a, b):
        t = a[0] + b[0]
        comp = np.where(
            np.abs(a[0]) >= np.abs(b[0]),
            (a[0] - t) + b[0],  # repro: allow[FP004] -- the Neumaier recurrence itself
            (b[0] - t) + a[0],  # repro: allow[FP004] -- the Neumaier recurrence itself
        )
        return (t, (a[1] + comp) + b[1])

    def merge_leaves(self, a_values, b_values):
        t = a_values + b_values
        comp = np.where(
            np.abs(a_values) >= np.abs(b_values),
            (a_values - t) + b_values,  # repro: allow[FP004] -- the Neumaier recurrence itself
            (b_values - t) + a_values,  # repro: allow[FP004] -- the Neumaier recurrence itself
        )
        # the generic path computes (0.0 + comp) + 0.0, whose only bitwise
        # effect is normalising a -0.0 compensation to +0.0 — keep that
        return (t, comp + 0.0)

    def fold(self, matrix, lengths):
        # the elementwise image of NeumaierAccumulator.add_array: carry fold
        # per row, one Neumaier add of the block sum from the zero state
        # (the magnitude branch becomes a where-select), then the block
        # carry joined to the compensation
        s_blk, c_blk = _twosum_carry_fold(_pad_pow2_cols(matrix))
        t = 0.0 + s_blk
        comp = np.where(
            np.abs(0.0) >= np.abs(s_blk),
            (0.0 - t) + s_blk,  # repro: allow[FP004] -- the Neumaier recurrence itself
            (s_blk - t) + 0.0,  # repro: allow[FP004] -- the Neumaier recurrence itself
        )
        return (t, (0.0 + comp) + c_blk)

    def result(self, state):
        return state[0] + state[1]


class NeumaierSum(SummationAlgorithm):
    """Kahan–Babuška–Neumaier summation (extension beyond the paper's four)."""

    code = "KBN"
    name = "neumaier"
    cost_rank = 1
    deterministic = False

    _vops = _NeumaierVectorOps()

    def make_accumulator(self, context: Optional[SumContext] = None) -> NeumaierAccumulator:
        return NeumaierAccumulator()

    def sum_array(self, x: np.ndarray, context: Optional[SumContext] = None) -> float:
        acc = NeumaierAccumulator()
        acc.add_array(x)
        return acc.result()

    @property
    def vector_ops(self) -> VectorOps:
        return self._vops
