"""Prerounded (PR) summation: bitwise-reproducible K-fold binned sums.

This is our from-scratch substitute for ReproBLAS's ``dIAddd`` operator
(references [10] and [14] of the paper).  The strategy is the one Sec. III.E
describes: split every operand into "high-order" and "low-order" parts such
that the high-order parts can be summed *irrespective of summation order* and
the low-order parts are either recursed upon (further folds) or neglected
(the pre-rounding, which bounds the user-specified accuracy).

Concretely, with the global maximum magnitude ``M`` (obtained in MPI by an
exactly-associative max-allreduce — the "pre" pass), let ``E = exponent(M)``.
Fold ``j`` lives on the grid ``2**g_j`` with ``g_j = E - (j+1)*W`` for fold
width ``W`` bits.  Each operand ``x`` is decomposed by

    q_j = rint(r_j / 2**g_j);   r_{j+1} = r_j - q_j * 2**g_j;   r_0 = x

Every step is *exact* in binary64: ``q_j`` fits in ``W+2`` bits, the product
``q_j * 2**g_j`` is representable, and Sterbenz's lemma makes the residual
subtraction error-free.  The integer fold coefficients are then accumulated
in arbitrary-precision Python integers, so deposits and merges are exact and
therefore associative and commutative: **any reduction tree yields the same
bits**.  The only inexactness is discarding ``r_K`` (magnitude below
``2**(E - K*W - 1)``), i.e. pre-rounding each operand to ``K*W`` bits below
the top of the data — with the default ``K=3, W=40`` that is 120 bits, more
accurate than quad-double.

Two variants are provided:

* :class:`PreroundedSum` — the paper's two-pass algorithm (max pass + sum
  pass), unconditionally reproducible.
* :class:`AutoPreroundedAccumulator` — a one-pass streaming extension that
  re-bins when a larger operand arrives.  Re-binning re-extracts the exact
  accumulated value onto the new grid, so results remain reproducible in
  practice (the dropped low-order bits sit >K*W bits below the running max);
  it is exercised by the ablation bench, not by the headline experiments.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Optional

import numpy as np

from repro.fp.properties import exponent
from repro.summation.base import Accumulator, SumContext, SummationAlgorithm

__all__ = [
    "PreroundedAccumulator",
    "AutoPreroundedAccumulator",
    "PreroundedSum",
]

#: Block size for int64-safe fold-coefficient reduction: |q| < 2**42, so
#: 2**20 terms stay below 2**62.
_BLOCK = 1 << 20


class PreroundedAccumulator(Accumulator):
    """Fixed-bin K-fold accumulator; exact once the bin exponent is set.

    Parameters
    ----------
    bin_exponent:
        Binary exponent of the global maximum magnitude (``exponent(M)``).
        Operands with magnitude ``>= 2**(bin_exponent+1)`` are rejected.
    folds, fold_width:
        Accuracy knobs: ``folds*fold_width`` bits below the top of the data
        are retained.
    """

    __slots__ = ("E", "K", "W", "_folds", "count")

    def __init__(self, bin_exponent: int, folds: int = 3, fold_width: int = 40) -> None:
        if folds < 1:
            raise ValueError("need at least one fold")
        if not 2 <= fold_width <= 50:
            raise ValueError("fold_width must be in [2, 50] to keep extraction exact")
        self.E = int(bin_exponent)
        self.K = int(folds)
        self.W = int(fold_width)
        self._folds = [0] * self.K
        self.count = 0

    # -- deposits ------------------------------------------------------------
    def add(self, x: float) -> None:
        x = float(x)
        if not math.isfinite(x):
            raise ValueError(f"cannot accumulate non-finite value {x!r}")
        if x != 0.0 and exponent(x) > self.E:  # repro: allow[FP001] -- zero has no exponent; skipping it is exact
            raise ValueError(
                f"operand {x!r} exceeds the bin capacity 2**{self.E + 1}; "
                "recompute the global max or use AutoPreroundedAccumulator"
            )
        r = x
        for j in range(self.K):
            g = self.E - (j + 1) * self.W
            # round() on a float is round-half-to-even: matches np.rint.
            q = round(math.ldexp(r, -g))
            self._folds[j] += q
            r = r - math.ldexp(float(q), g)
        self.count += 1

    def add_array(self, x: np.ndarray) -> None:
        x = np.asarray(x, dtype=np.float64).ravel()
        if x.size == 0:
            return
        if not np.all(np.isfinite(x)):
            raise ValueError("cannot accumulate non-finite values")
        if np.any(np.abs(x) >= math.ldexp(1.0, self.E + 1)):
            raise ValueError("operand exceeds bin capacity; bad global max")
        r = x.copy()
        for j in range(self.K):
            g = self.E - (j + 1) * self.W
            q = np.rint(np.ldexp(r, -g))
            qi = q.astype(np.int64)
            total = 0
            for start in range(0, qi.size, _BLOCK):
                total += int(np.add.reduce(qi[start : start + _BLOCK]))
            self._folds[j] += total
            r -= np.ldexp(q, g)
        self.count += x.size

    # -- combination -----------------------------------------------------------
    def merge(self, other: "PreroundedAccumulator") -> None:  # type: ignore[override]
        if not isinstance(other, PreroundedAccumulator):
            raise TypeError("can only merge PreroundedAccumulator")
        if (other.E, other.K, other.W) != (self.E, self.K, self.W):
            raise ValueError(
                "bin mismatch: merging requires identical (bin_exponent, folds, "
                f"fold_width); got {(other.E, other.K, other.W)} vs "
                f"{(self.E, self.K, self.W)}"
            )
        for j in range(self.K):
            self._folds[j] += other._folds[j]
        self.count += other.count

    def copy(self) -> "PreroundedAccumulator":
        out = PreroundedAccumulator(self.E, self.K, self.W)
        out._folds = list(self._folds)
        out.count = self.count
        return out

    # -- extraction --------------------------------------------------------------
    def to_fraction(self) -> Fraction:
        """Exact rational value of the retained (pre-rounded) sum."""
        g_min = self.E - self.K * self.W
        total = 0
        for j, f in enumerate(self._folds):
            total += f << ((self.K - 1 - j) * self.W)
        if g_min >= 0:
            return Fraction(total * (1 << g_min))
        return Fraction(total, 1 << (-g_min))

    def result(self) -> float:
        return float(self.to_fraction())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PreroundedAccumulator(E={self.E}, K={self.K}, W={self.W}, "
            f"value={self.result()!r})"
        )


class AutoPreroundedAccumulator(Accumulator):
    """One-pass streaming prerounded accumulator (extension).

    Wraps a :class:`PreroundedAccumulator` and re-bins upward whenever an
    operand exceeds the current bin.  Re-binning re-extracts the exact
    accumulated value onto the new grid.
    """

    __slots__ = ("folds", "fold_width", "_inner")

    def __init__(self, folds: int = 3, fold_width: int = 40) -> None:
        self.folds = folds
        self.fold_width = fold_width
        self._inner: Optional[PreroundedAccumulator] = None

    def _rebin(self, new_E: int) -> None:
        old = self._inner
        self._inner = PreroundedAccumulator(new_E, self.folds, self.fold_width)
        if old is None or all(f == 0 for f in old._folds):
            if old is not None:
                self._inner.count = old.count
            return
        value = old.to_fraction()
        # Exact re-extraction of the accumulated value onto the new grid.
        for j in range(self.folds):
            g = new_E - (j + 1) * self.fold_width
            grid = Fraction(1 << g) if g >= 0 else Fraction(1, 1 << (-g))
            q = _round_half_even(value / grid)
            self._inner._folds[j] = q
            value -= q * grid
        self._inner.count = old.count

    def add(self, x: float) -> None:
        x = float(x)
        if x != 0.0:  # repro: allow[FP001] -- zeros need no pre-rounding
            e = exponent(x)
            if self._inner is None or e > self._inner.E:
                self._rebin(e)
        if self._inner is None:
            self._rebin(0)
        self._inner.add(x)

    def add_array(self, x: np.ndarray) -> None:
        x = np.asarray(x, dtype=np.float64).ravel()
        if x.size == 0:
            return
        max_abs = float(np.max(np.abs(x)))
        if max_abs != 0.0:  # repro: allow[FP001] -- all-zero chunk guard
            e = exponent(max_abs)
            if self._inner is None or e > self._inner.E:
                self._rebin(e)
        if self._inner is None:
            self._rebin(0)
        self._inner.add_array(x)

    def merge(self, other: "AutoPreroundedAccumulator") -> None:  # type: ignore[override]
        if other._inner is None:
            return
        if self._inner is None:
            self._inner = other._inner.copy()
            return
        if other._inner.E > self._inner.E:
            self._rebin(other._inner.E)
        if other._inner.E < self._inner.E:
            promoted = AutoPreroundedAccumulator(self.folds, self.fold_width)
            promoted._inner = other._inner.copy()
            promoted._rebin(self._inner.E)
            self._inner.merge(promoted._inner)
        else:
            self._inner.merge(other._inner)

    def result(self) -> float:
        return 0.0 if self._inner is None else self._inner.result()


def _round_half_even(q: Fraction) -> int:
    """Round a rational to the nearest integer, ties to even."""
    floor = q.numerator // q.denominator
    frac = q - floor
    if frac > Fraction(1, 2):
        return floor + 1
    if frac < Fraction(1, 2):
        return floor
    return floor + (floor % 2)


class PreroundedSum(SummationAlgorithm):
    """PR: two-pass prerounded summation, bitwise reproducible by design."""

    code = "PR"
    name = "prerounded"
    cost_rank = 3
    deterministic = True
    needs_context = True

    def __init__(self, folds: int = 3, fold_width: int = 40) -> None:
        self.folds = folds
        self.fold_width = fold_width

    def bin_exponent_for(self, context: Optional[SumContext]) -> int:
        if context is None or context.max_abs is None:
            raise ValueError("PreroundedSum needs SumContext.max_abs (two-pass)")
        if context.max_abs == 0.0:  # repro: allow[FP001] -- all-zero context guard
            return 0
        return exponent(context.max_abs)

    def make_accumulator(self, context: Optional[SumContext] = None) -> PreroundedAccumulator:
        return PreroundedAccumulator(
            self.bin_exponent_for(context), self.folds, self.fold_width
        )

    def sum_array(self, x: np.ndarray, context: Optional[SumContext] = None) -> float:
        x = np.asarray(x, dtype=np.float64)
        if context is None or context.max_abs is None:
            context = SumContext.for_data(x)  # the "pre" pass
        acc = self.make_accumulator(context)
        acc.add_array(x)
        return acc.result()
