"""Distillation summation (Rump-Ogita-Oishi ``AccSum``) — extension.

A third family beyond compensated and prerounded algorithms: *error-free
vector transformations*.  ``AccSum`` repeatedly extracts the high-order part
of every summand with respect to a power-of-two extraction unit ``sigma``
(chosen from ``max|x|`` and ``n`` so the extracted parts sum **without
rounding error**), accumulates the exact partial, and recurses on the
residuals until the remaining mass cannot affect the faithfully rounded
result.  The returned value is a *faithful rounding* of the exact sum —
stronger than CP (whose last bits remain order-sensitive) and, like PR,
deterministic given a fixed extraction schedule.

Our implementation fixes the extraction schedule from order-independent
quantities only (``n`` and ``max|x|``), so the result is bitwise
reproducible under permutation — verified by tests — though unlike PR its
*accumulator* form buffers (distillation is inherently a whole-vector
transformation, not a streaming one), which is why the paper's candidates
for exascale reductions remain K/CP/PR.  It earns its place here as the
accuracy ceiling among the non-exact algorithms and as an ablation point.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.fp.eft import two_sum
from repro.fp.properties import MANTISSA_BITS
from repro.summation.base import Accumulator, SumContext, SummationAlgorithm

__all__ = ["accsum", "DistillationSum", "DistillationAccumulator"]

_EPS = 2.0**-53


def accsum(x: np.ndarray, max_passes: int = 40) -> float:
    """Faithfully rounded sum of ``x`` by error-free extraction (AccSum).

    ``max_passes`` bounds the distillation recursion (each pass gains ~M-ish
    bits; 40 passes cover any double input; hitting the bound raises, which
    cannot happen for finite inputs but guards the loop).
    """
    x = np.asarray(x, dtype=np.float64).ravel().copy()
    n = x.size
    if n == 0:
        return 0.0
    if not np.all(np.isfinite(x)):
        raise ValueError("distillation requires finite operands")
    if n == 1:
        return float(x[0])
    mu = float(np.max(np.abs(x)))
    if mu == 0.0:  # repro: allow[FP001] -- zero-mean sentinel
        return 0.0
    # M = smallest power of two >= n + 2; extraction unit per Rump et al.
    M = 1 << (int(n + 2) - 1).bit_length()
    if M * _EPS >= 1.0:
        raise ValueError("vector too long for binary64 distillation")
    mu_exp = math.frexp(mu)[1]  # mu < 2**mu_exp <= 2*mu
    # Guard the top of the exponent range: sigma = M * 2**mu_exp (and the
    # intermediate sigma + x) must not overflow.  Scaling by a power of two
    # is exact and preserves faithfulness, so shift huge inputs down first.
    if mu_exp + (M.bit_length() - 1) > 1020:
        shift = mu_exp + (M.bit_length() - 1) - 1000
        scaled = np.ldexp(x, -shift)
        return math.ldexp(accsum(scaled, max_passes), shift)
    sigma = float(M) * math.ldexp(1.0, mu_exp)
    phi = M * _EPS  # per-pass shrink factor of the residual mass
    factor = 2.0 * M * M * _EPS

    t = 0.0  # exact high-order accumulation (error-free by construction)
    for _ in range(max_passes):
        # extract high parts: q = fl((sigma + x) - sigma) is exact and the
        # extracted parts sum without error at this sigma
        q = (sigma + x) - sigma
        x = x - q  # exact residuals
        tau = float(np.sum(q))  # exact: all q are multiples of sigma*eps*2  # repro: allow[FP002] -- exact: all q are multiples of a common ulp
        t_new, err = two_sum(t, tau)
        # err == 0 in exact theory (t grows by representable amounts); keep
        # the defensive fold anyway
        t = t_new + err
        if sigma <= np.finfo(np.float64).tiny:
            return t
        est_residual = phi * sigma
        if abs(t) >= factor * sigma or est_residual <= _EPS * abs(t):
            # residual can no longer affect the faithful rounding
            tau2 = float(np.sum(x))  # repro: allow[FP002] -- exact: residuals share a common ulp
            return t + tau2
        sigma = phi * sigma
    raise RuntimeError("distillation failed to converge (non-finite input?)")


class DistillationAccumulator(Accumulator):
    """Buffering accumulator: collects operands, distils at ``result``.

    Mirrors the sorted-order accumulator's contract — tree merges
    concatenate buffers — so AccSum can be compared inside the same
    ensemble harnesses despite not being a streaming reduction.
    """

    __slots__ = ("_chunks",)

    def __init__(self) -> None:
        self._chunks: list[np.ndarray] = []

    def add(self, x: float) -> None:
        self._chunks.append(np.array([x], dtype=np.float64))

    def add_array(self, x: np.ndarray) -> None:
        x = np.asarray(x, dtype=np.float64).ravel()
        if x.size:
            self._chunks.append(x.copy())

    def merge(self, other: "DistillationAccumulator") -> None:  # type: ignore[override]
        self._chunks.extend(other._chunks)

    def result(self) -> float:
        if not self._chunks:
            return 0.0
        return accsum(np.concatenate(self._chunks))


class DistillationSum(SummationAlgorithm):
    """AS: AccSum error-free distillation (faithful rounding)."""

    code = "AS"
    name = "accsum-distillation"
    cost_rank = 3  # comparable to PR: a few full passes over the data
    deterministic = True  # fixed extraction schedule from (n, max|x|)

    def make_accumulator(self, context: Optional[SumContext] = None) -> DistillationAccumulator:
        return DistillationAccumulator()

    def sum_array(self, x: np.ndarray, context: Optional[SumContext] = None) -> float:
        return accsum(np.asarray(x, dtype=np.float64))
