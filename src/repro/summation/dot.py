"""Reproducible dot products (extension: the other half of ReproBLAS).

The paper's reduction study is about sums, but its PR reference — ReproBLAS
[14] — ships dot products built on the same machinery: TwoProd converts each
elementwise product into an exact pair ``x_i * y_i = p_i + e_i``, after which
a dot product *is* a summation of ``2n`` values and every algorithm in the
zoo applies.  This module provides the four paper-aligned variants plus the
exact oracle:

========  =====================================================+
``ST``    products rounded individually, standard running sum
``K``     rounded products, Kahan accumulation
``CP``    Dot2 (Ogita-Rump-Oishi): TwoProd + composite-precision
          accumulation of both products and product errors
``PR``    TwoProd pairs fed to prerounded summation — bitwise
          reproducible for any order/tree/chunking
``EX``    exact superaccumulator over the TwoProd pairs
========  =====================================================+
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from repro.exact.superacc import ExactSum
from repro.fp.eft import two_prod_array, two_sum
from repro.summation.base import SumContext
from repro.summation.composite import CompositeAccumulator
from repro.summation.kahan import KahanAccumulator
from repro.summation.prerounded import PreroundedSum
from repro.summation.standard import StandardAccumulator

__all__ = [
    "dot_standard",
    "dot_kahan",
    "dot_composite",
    "dot_prerounded",
    "dot_exact",
    "DOT_ALGORITHMS",
]


def _check(x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    x = np.asarray(x, dtype=np.float64).ravel()
    y = np.asarray(y, dtype=np.float64).ravel()
    if x.size != y.size:
        raise ValueError(f"length mismatch: {x.size} vs {y.size}")
    return x, y


def dot_standard(x: np.ndarray, y: np.ndarray) -> float:
    """Rounded products, strict left-to-right accumulation."""
    x, y = _check(x, y)
    if x.size == 0:
        return 0.0
    acc = StandardAccumulator()
    acc.add_array(x * y)
    return acc.result()


def dot_kahan(x: np.ndarray, y: np.ndarray) -> float:
    """Rounded products, Kahan-compensated accumulation."""
    x, y = _check(x, y)
    if x.size == 0:
        return 0.0
    acc = KahanAccumulator()
    acc.add_array(x * y)
    return acc.result()


def dot_composite(x: np.ndarray, y: np.ndarray) -> float:
    """Dot2: TwoProd pairs accumulated in composite precision.

    Accuracy as if computed in twice the working precision (Ogita, Rump &
    Oishi 2005), but still order-sensitive in the last bits.
    """
    x, y = _check(x, y)
    if x.size == 0:
        return 0.0
    p, e = two_prod_array(x, y)
    acc = CompositeAccumulator()
    acc.add_array(p)
    # the product errors join the error mass exactly as Dot2 prescribes
    err_acc = CompositeAccumulator()
    err_acc.add_array(e)
    acc.s, delta = two_sum(acc.s, err_acc.s)
    acc.e += err_acc.e + delta
    return acc.result()


def dot_prerounded(x: np.ndarray, y: np.ndarray, folds: int = 3, fold_width: int = 40) -> float:
    """Bitwise-reproducible dot product: TwoProd pairs -> PR summation.

    The 2n exact components are summed by the prerounded algorithm with a
    bin set from their global max, so the result is independent of element
    order, chunking, and reduction tree.
    """
    x, y = _check(x, y)
    if x.size == 0:
        return 0.0
    p, e = two_prod_array(x, y)
    terms = np.concatenate([p, e])
    alg = PreroundedSum(folds=folds, fold_width=fold_width)
    return alg.sum_array(terms, SumContext.for_data(terms))


def dot_exact(x: np.ndarray, y: np.ndarray) -> float:
    """Correctly rounded dot product via the superaccumulator."""
    x, y = _check(x, y)
    if x.size == 0:
        return 0.0
    p, e = two_prod_array(x, y)
    acc = ExactSum()
    acc.add_array(p)
    acc.add_array(e)
    return acc.to_float()


DOT_ALGORITHMS: Mapping[str, Callable[[np.ndarray, np.ndarray], float]] = {
    "ST": dot_standard,
    "K": dot_kahan,
    "CP": dot_composite,
    "PR": dot_prerounded,
    "EX": dot_exact,
}
