"""Summation algorithm zoo: ST, K, CP, PR plus extensions.

Each algorithm exposes an optimised whole-array kernel (``sum_array``), a
tree-node :class:`~repro.summation.base.Accumulator` (the ``MPI_Op``
analogue), and — where the state is elementwise-mergeable — vectorised
:class:`~repro.summation.base.VectorOps` for ensemble tree evaluation.
"""

from repro.summation.base import Accumulator, SumContext, SummationAlgorithm, VectorOps
from repro.summation.blocked import BlockedAccumulator, FABSum
from repro.summation.composite import CompositeAccumulator, CompositePrecisionSum
from repro.summation.distillation import (
    DistillationAccumulator,
    DistillationSum,
    accsum,
)
from repro.summation.dot import (
    DOT_ALGORITHMS,
    dot_composite,
    dot_exact,
    dot_kahan,
    dot_prerounded,
    dot_standard,
)
from repro.summation.highprec import (
    DoubleDoubleAccumulator,
    DoubleDoubleSum,
    ExactOracleSum,
)
from repro.summation.moments import (
    reproducible_mean,
    reproducible_norm2,
    reproducible_std,
    reproducible_sum,
    reproducible_variance,
)
from repro.summation.kahan import (
    KahanAccumulator,
    KahanSum,
    NeumaierAccumulator,
    NeumaierSum,
)
from repro.summation.prerounded import (
    AutoPreroundedAccumulator,
    PreroundedAccumulator,
    PreroundedSum,
)
from repro.summation.registry import (
    PAPER_CODES,
    all_algorithms,
    get_algorithm,
    paper_algorithms,
    register,
)
from repro.summation.sorted_orders import (
    SortedAccumulator,
    SortedSum,
    conventional_wisdom_order,
)
from repro.summation.standard import PairwiseSum, StandardAccumulator, StandardSum

__all__ = [
    "Accumulator",
    "AutoPreroundedAccumulator",
    "BlockedAccumulator",
    "FABSum",
    "CompositeAccumulator",
    "CompositePrecisionSum",
    "DOT_ALGORITHMS",
    "DistillationAccumulator",
    "DistillationSum",
    "accsum",
    "dot_composite",
    "dot_exact",
    "dot_kahan",
    "dot_prerounded",
    "dot_standard",
    "DoubleDoubleAccumulator",
    "DoubleDoubleSum",
    "ExactOracleSum",
    "KahanAccumulator",
    "KahanSum",
    "NeumaierAccumulator",
    "NeumaierSum",
    "PAPER_CODES",
    "PairwiseSum",
    "PreroundedAccumulator",
    "PreroundedSum",
    "SortedAccumulator",
    "SortedSum",
    "StandardAccumulator",
    "StandardSum",
    "SumContext",
    "SummationAlgorithm",
    "VectorOps",
    "all_algorithms",
    "conventional_wisdom_order",
    "get_algorithm",
    "paper_algorithms",
    "register",
    "reproducible_mean",
    "reproducible_norm2",
    "reproducible_std",
    "reproducible_sum",
    "reproducible_variance",
]
