"""Composite precision summation (CP).

Composite precision — introduced for GPU reductions by Taufer et al. (IPDPS
2010, reference [9] of the paper) — is an "enhanced form of compensated
summation": every partial sum carries an explicit error term, the error terms
are *propagated* through every combine, and the accumulated error is folded
back into the sum **only at the end**.  This end-folding is the difference
from Kahan, which rounds its compensation into the running sum at each step,
and is why CP tracks the prerounded algorithm so closely in the paper's
sensitivity experiments (Sec. V.C observed CP and PR "performed identically
for all sets of inputs considered").

State: ``(s, e)`` with invariant (exact to first order) ``true ≈ s + e``.

* ``add(x)``:   ``(s, δ) = TwoSum(s, x); e += δ``
* ``merge``:    ``(s, δ) = TwoSum(s1, s2); e = e1 + e2 + δ``
* ``result``:   ``fl(s + e)``
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.fp.eft import two_sum, two_sum_array
from repro.summation.base import Accumulator, SumContext, SummationAlgorithm, VectorOps
from repro.summation.kahan import _pad_pow2, _pad_pow2_cols, _twosum_carry_fold

__all__ = ["CompositeAccumulator", "CompositePrecisionSum"]


class CompositeAccumulator(Accumulator):
    """State ``(s, e)``: high-order sum and propagated error sum."""

    __slots__ = ("s", "e")

    def __init__(self) -> None:
        self.s = 0.0
        self.e = 0.0

    def add(self, x: float) -> None:
        self.s, delta = two_sum(self.s, x)
        self.e += delta

    def add_array(self, x: np.ndarray) -> None:
        """Vectorised kernel: the literal CP structure — every partial sum
        carries its own error component, propagated elementwise through each
        fold level (~10 flops/element) and surrendered to the scalar error
        term only when the block collapses to one partial."""
        x = np.asarray(x, dtype=np.float64).ravel()
        if x.size == 0:
            return
        s, e = _twosum_carry_fold(_pad_pow2(x))
        self.s, delta = two_sum(self.s, float(s))
        self.e += delta + float(e)

    def merge(self, other: "CompositeAccumulator") -> None:  # type: ignore[override]
        self.s, delta = two_sum(self.s, other.s)
        self.e += other.e + delta

    def result(self) -> float:
        return self.s + self.e


class _CompositeVectorOps(VectorOps):
    n_components = 2
    ckernel = "cp"

    def init(self, values: np.ndarray) -> Tuple[np.ndarray, ...]:
        v = np.asarray(values, dtype=np.float64)
        return (v.copy(), np.zeros_like(v))

    def merge(self, a, b):
        s, delta = two_sum_array(a[0], b[0])
        return (s, a[1] + b[1] + delta)

    def merge_leaves(self, a_values, b_values):
        s, delta = two_sum_array(a_values, b_values)
        # the generic path computes (0.0 + 0.0) + delta, whose only bitwise
        # effect is normalising a -0.0 error term to +0.0 — keep that
        return (s, delta + 0.0)

    def fold(self, matrix, lengths):
        # the elementwise image of CompositeAccumulator.add_array: carry
        # fold per row, then the block TwoSum into the zero state
        s_blk, e_blk = _twosum_carry_fold(_pad_pow2_cols(matrix))
        s, delta = two_sum_array(0.0, s_blk)
        return (s, 0.0 + (delta + e_blk))

    def result(self, state):
        return state[0] + state[1]


class CompositePrecisionSum(SummationAlgorithm):
    """CP: composite precision summation with end-of-reduction error fold."""

    code = "CP"
    name = "composite-precision"
    cost_rank = 2
    deterministic = False

    _vops = _CompositeVectorOps()

    def make_accumulator(self, context: Optional[SumContext] = None) -> CompositeAccumulator:
        return CompositeAccumulator()

    def sum_array(self, x: np.ndarray, context: Optional[SumContext] = None) -> float:
        acc = CompositeAccumulator()
        acc.add_array(x)
        return acc.result()

    @property
    def vector_ops(self) -> VectorOps:
        return self._vops
