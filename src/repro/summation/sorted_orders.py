"""Fixed-reduction-order summation (Sec. III.A's "conventional wisdom").

The paper dismisses fixed reduction orders as infeasible at exascale but uses
them to frame the discussion: "Conventional wisdom suggests summing the
values in ascending order if they all have the same sign, and in descending
order of magnitude if they are not."  This module implements those orders so
the Fig. 2/3 experiments (and the tests refuting conventional wisdom) can
compare against them.

Because an order-imposing algorithm cannot honour an externally imposed
reduction tree, its accumulator *buffers* operands and sorts at ``result``
time — semantically faithful, deliberately expensive, and flagged
``deterministic = True`` with respect to input ordering (same multiset in →
same bits out) though not with respect to value ties with unstable upstream
permutations of equal values (sums of equal values are order-insensitive, so
this does not matter).
"""

from __future__ import annotations

from typing import Literal, Optional

import numpy as np

from repro.summation.base import Accumulator, SumContext, SummationAlgorithm

__all__ = ["SortedSum", "SortedAccumulator", "conventional_wisdom_order"]

OrderName = Literal[
    "ascending_magnitude",
    "descending_magnitude",
    "ascending_value",
    "conventional",
]


def _magnitude_order(x: np.ndarray) -> np.ndarray:
    """Total ascending-magnitude order: ties in |x| break on the value.

    A *stable* magnitude argsort would leave tied magnitudes in input order,
    so e.g. ``+1e10`` and ``-1e10`` would be summed in permutation-dependent
    order — silently breaking the determinism contract of the sorted
    algorithms (hypothesis found this).  The (|x|, x) key is a total order
    on value multisets: elements equal under it are identical doubles, which
    are interchangeable.
    """
    return np.lexsort((x, np.abs(x)))


def conventional_wisdom_order(x: np.ndarray) -> np.ndarray:
    """Order the paper attributes to conventional wisdom.

    Same-sign data: ascending (magnitude) order; mixed signs: descending
    magnitude.  Returns the reordered copy.
    """
    x = np.asarray(x, dtype=np.float64).ravel()
    if x.size == 0:
        return x.copy()
    same_sign = bool(np.all(x >= 0.0)) or bool(np.all(x <= 0.0))
    idx = _magnitude_order(x)
    return x[idx] if same_sign else x[idx[::-1]]


def _apply_order(x: np.ndarray, order: OrderName) -> np.ndarray:
    if order == "conventional":
        return conventional_wisdom_order(x)
    if order == "ascending_magnitude":
        return x[_magnitude_order(x)]
    if order == "descending_magnitude":
        return x[_magnitude_order(x)[::-1]]
    if order == "ascending_value":
        return np.sort(x, kind="stable")
    raise ValueError(f"unknown order {order!r}")


class SortedAccumulator(Accumulator):
    """Buffers operands; sorts and sums sequentially at ``result`` time."""

    __slots__ = ("_chunks", "order")

    def __init__(self, order: OrderName) -> None:
        self._chunks: list[np.ndarray] = []
        self.order = order

    def add(self, x: float) -> None:
        self._chunks.append(np.array([x], dtype=np.float64))

    def add_array(self, x: np.ndarray) -> None:
        x = np.asarray(x, dtype=np.float64).ravel()
        if x.size:
            self._chunks.append(x.copy())

    def merge(self, other: "SortedAccumulator") -> None:  # type: ignore[override]
        self._chunks.extend(other._chunks)

    def result(self) -> float:
        if not self._chunks:
            return 0.0
        data = np.concatenate(self._chunks)
        ordered = _apply_order(data, self.order)
        return float(np.cumsum(ordered)[-1])


class SortedSum(SummationAlgorithm):
    """Fixed-order iterative summation over a chosen sort key."""

    code = "SO"
    name = "sorted"
    cost_rank = 1  # a sort, then ST
    deterministic = True  # w.r.t. input permutation, by construction

    def __init__(self, order: OrderName = "conventional") -> None:
        self.order: OrderName = order
        self.code = {"conventional": "SO", "ascending_magnitude": "SO+",
                     "descending_magnitude": "SO-", "ascending_value": "SOv"}[order]

    def make_accumulator(self, context: Optional[SumContext] = None) -> SortedAccumulator:
        return SortedAccumulator(self.order)

    def sum_array(self, x: np.ndarray, context: Optional[SumContext] = None) -> float:
        x = np.asarray(x, dtype=np.float64).ravel()
        if x.size == 0:
            return 0.0
        ordered = _apply_order(x, self.order)
        return float(np.cumsum(ordered)[-1])
