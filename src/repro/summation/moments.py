"""Reproducible descriptive statistics built on reproducible reductions.

Once sums and dot products are bitwise order-independent, the statistics a
simulation logs every step — means, variances, norms — inherit the property
for free.  These are the quantities whose run-to-run wobble actually gets
*noticed* (regression dashboards diff them), so they make the selector's
guarantee tangible to downstream users.

All functions accept the data in one array or pre-chunked (rank) form and
are bitwise invariant to element order and chunking; variance uses the
two-pass textbook formula with both passes reproducible (the shifted-data
second pass keeps it numerically safe even for large means).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.summation.base import SumContext
from repro.summation.dot import dot_prerounded
from repro.summation.prerounded import PreroundedSum

__all__ = [
    "reproducible_sum",
    "reproducible_mean",
    "reproducible_variance",
    "reproducible_std",
    "reproducible_norm2",
]


def _flatten(data: "np.ndarray | Sequence[np.ndarray]") -> np.ndarray:
    if isinstance(data, np.ndarray):
        return np.asarray(data, dtype=np.float64).ravel()
    parts = [np.asarray(c, dtype=np.float64).ravel() for c in data]
    return np.concatenate(parts) if parts else np.array([], dtype=np.float64)


def reproducible_sum(data: "np.ndarray | Sequence[np.ndarray]") -> float:
    """Order- and chunking-invariant sum (prerounded, two-pass)."""
    x = _flatten(data)
    alg = PreroundedSum()
    return alg.sum_array(x, SumContext.for_data(x))


def reproducible_mean(data: "np.ndarray | Sequence[np.ndarray]") -> float:
    """Bitwise order-invariant mean."""
    x = _flatten(data)
    if x.size == 0:
        raise ValueError("mean of empty data")
    return reproducible_sum(x) / x.size


def reproducible_variance(
    data: "np.ndarray | Sequence[np.ndarray]", *, ddof: int = 0
) -> float:
    """Bitwise order-invariant variance (two reproducible passes).

    Pass 1 fixes the mean; pass 2 sums squared deviations with the
    prerounded dot.  Because both passes are order-invariant functions of
    the multiset, so is the result.  Clamped at zero against the final
    rounding (the exact value is non-negative).
    """
    x = _flatten(data)
    if x.size <= ddof:
        raise ValueError("not enough data for the requested ddof")
    mu = reproducible_mean(x)
    d = x - mu  # elementwise: order-invariant per element
    ss = dot_prerounded(d, d)
    return max(ss / (x.size - ddof), 0.0)


def reproducible_std(
    data: "np.ndarray | Sequence[np.ndarray]", *, ddof: int = 0
) -> float:
    """Bitwise order-invariant standard deviation."""
    import math

    return math.sqrt(reproducible_variance(data, ddof=ddof))


def reproducible_norm2(data: "np.ndarray | Sequence[np.ndarray]") -> float:
    """Bitwise order-invariant Euclidean norm."""
    import math

    x = _flatten(data)
    return math.sqrt(dot_prerounded(x, x))
