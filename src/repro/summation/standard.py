"""Standard (ST) and pairwise summation.

Standard iterative summation is the paper's baseline: cheapest, least
complex, and the most sensitive to reduction-tree variability.  Its
accumulator is a single running double; its ``merge`` is one rounded add, so
evaluating a reduction tree with it reproduces exactly the floating-point
value that tree would compute on real hardware.

Pairwise summation is included as the shape-fixed balanced-tree special case
(it is what ``numpy.sum`` approximates); it is *not* one of the paper's four
algorithms but serves as a baseline in ablation benches.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.summation.base import Accumulator, SumContext, SummationAlgorithm, VectorOps

__all__ = ["StandardAccumulator", "StandardSum", "PairwiseSum"]


class StandardAccumulator(Accumulator):
    """Running double ``s``; every add and merge rounds once."""

    __slots__ = ("s",)

    def __init__(self) -> None:
        self.s = 0.0

    def add(self, x: float) -> None:
        self.s += x

    def add_array(self, x: np.ndarray) -> None:
        # Sequential semantics: cumulative sum is a true left-to-right
        # recurrence in NumPy, so the final prefix equals the scalar loop.
        x = np.asarray(x, dtype=np.float64).ravel()
        if x.size == 0:
            return
        self.s = float(np.cumsum(np.concatenate(([self.s], x)))[-1])

    def merge(self, other: "StandardAccumulator") -> None:  # type: ignore[override]
        self.s += other.s

    def result(self) -> float:
        return self.s


class _StandardVectorOps(VectorOps):
    n_components = 1
    ckernel = "st"

    def init(self, values: np.ndarray) -> Tuple[np.ndarray, ...]:
        return (np.asarray(values, dtype=np.float64).copy(),)

    def merge(self, a, b):
        return (a[0] + b[0],)

    def merge_leaves(self, a_values, b_values):
        return (a_values + b_values,)

    def fold(self, matrix, lengths):
        # cumsum along the padded axis IS the scalar left-to-right
        # recurrence per row; a zero start column pins the -0.0 first-element
        # case to the accumulator's ``0.0 + x`` and trailing zero padding
        # cannot perturb a running prefix that starts at +0.0
        matrix = np.asarray(matrix, dtype=np.float64)
        n_rows = matrix.shape[0]
        if matrix.shape[1] == 0:
            return (np.zeros(n_rows, dtype=np.float64),)
        guarded = np.concatenate(
            [np.zeros((n_rows, 1), dtype=np.float64), matrix], axis=1
        )
        return (np.cumsum(guarded, axis=1)[:, -1],)  # repro: allow[FP003] -- sequential cumsum is ST's defining order

    def result(self, state):
        return state[0]


class StandardSum(SummationAlgorithm):
    """ST: plain recursive/iterative floating-point summation."""

    code = "ST"
    name = "standard"
    cost_rank = 0
    deterministic = False

    _vops = _StandardVectorOps()

    def make_accumulator(self, context: Optional[SumContext] = None) -> StandardAccumulator:
        return StandardAccumulator()

    def sum_array(self, x: np.ndarray, context: Optional[SumContext] = None) -> float:
        """Strict left-to-right iterative sum (the ST of the paper)."""
        acc = StandardAccumulator()
        acc.add_array(x)
        return acc.result()

    @property
    def vector_ops(self) -> VectorOps:
        return self._vops


class PairwiseSum(SummationAlgorithm):
    """Balanced-tree summation with a *fixed* shape (numpy-style pairwise).

    Deterministic in shape but still sensitive to operand order, hence
    ``deterministic = False``.
    """

    code = "PW"
    name = "pairwise"
    cost_rank = 0
    deterministic = False

    _vops = _StandardVectorOps()

    def make_accumulator(self, context: Optional[SumContext] = None) -> StandardAccumulator:
        return StandardAccumulator()

    def sum_array(self, x: np.ndarray, context: Optional[SumContext] = None) -> float:
        x = np.asarray(x, dtype=np.float64).ravel().copy()
        if x.size == 0:
            return 0.0
        while x.size > 1:
            if x.size % 2:
                # Fold the odd trailing element into the last pair result so
                # the shape is the canonical left-packed balanced tree.
                head = x[:-1]
                pair = head[0::2] + head[1::2]
                pair[-1] += x[-1]
                x = pair
            else:
                x = x[0::2] + x[1::2]
        return float(x[0])

    @property
    def vector_ops(self) -> VectorOps:
        return self._vops
