"""Registry of summation algorithms, keyed by the paper's codes.

The four headline algorithms are ``ST``, ``K``, ``CP`` and ``PR``; the rest
are extensions used in ablations and tests.  The registry is what the runtime
selector iterates over in cost order.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.summation.base import SummationAlgorithm
from repro.summation.blocked import FABSum
from repro.summation.composite import CompositePrecisionSum
from repro.summation.distillation import DistillationSum
from repro.summation.highprec import DoubleDoubleSum, ExactOracleSum
from repro.summation.kahan import KahanSum, NeumaierSum
from repro.summation.prerounded import PreroundedSum
from repro.summation.sorted_orders import SortedSum
from repro.summation.standard import PairwiseSum, StandardSum

__all__ = [
    "PAPER_CODES",
    "get_algorithm",
    "paper_algorithms",
    "all_algorithms",
    "register",
]

#: Codes of the four algorithms the paper evaluates, in cost order.
PAPER_CODES: tuple[str, ...] = ("ST", "K", "CP", "PR")

_REGISTRY: Dict[str, SummationAlgorithm] = {}


def register(alg: SummationAlgorithm) -> SummationAlgorithm:
    """Add an algorithm instance to the registry (last write wins)."""
    _REGISTRY[alg.code] = alg
    return alg


for _alg in (
    StandardSum(),
    PairwiseSum(),
    KahanSum(),
    NeumaierSum(),
    CompositePrecisionSum(),
    DoubleDoubleSum(),
    PreroundedSum(),
    DistillationSum(),
    FABSum(),
    SortedSum("conventional"),
    SortedSum("ascending_magnitude"),
    SortedSum("descending_magnitude"),
    ExactOracleSum(),
):
    register(_alg)


def get_algorithm(code: str) -> SummationAlgorithm:
    """Look up an algorithm by its code (``"ST"``, ``"K"``, ``"CP"``, ``"PR"``, ...)."""
    try:
        # repro: allow[FP010] -- read-only in workers: the registry is filled
        # by the import-time register() loop above, identically in every
        # process, and frozen thereafter
        return _REGISTRY[code]
    except KeyError:
        raise KeyError(
            # repro: allow[FP010] -- same import-time-frozen registry read
            f"unknown summation algorithm {code!r}; known: {sorted(_REGISTRY)}"
        ) from None


def paper_algorithms() -> List[SummationAlgorithm]:
    """The paper's four algorithms in cost order ST < K < CP < PR."""
    return [get_algorithm(c) for c in PAPER_CODES]


def all_algorithms() -> List[SummationAlgorithm]:
    """Every registered algorithm, sorted by (cost_rank, code)."""
    return sorted(_REGISTRY.values(), key=lambda a: (a.cost_rank, a.code))
