"""High-precision and exact summation algorithms (Sec. III.C extensions).

* :class:`DoubleDoubleSum` — He & Ding's approach (paper ref. [6]): carry the
  global sum in double-double.  ~106-bit accumulation; far less sensitive to
  reduction order but not bitwise reproducible in principle.
* :class:`ExactOracleSum` — the superaccumulator wrapped as an algorithm, so
  the oracle can be dropped into any tree/experiment slot (always bitwise
  reproducible; used for cross-checks and as an upper bound on cost).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.exact.superacc import ExactSum
from repro.fp.double_double import dd_add_array, dd_sum
from repro.fp.eft import fast_two_sum, two_sum, two_sum_array
from repro.summation.base import Accumulator, SumContext, SummationAlgorithm, VectorOps
from repro.summation.kahan import _pad_pow2_cols

__all__ = ["DoubleDoubleAccumulator", "DoubleDoubleSum", "ExactOracleSum"]


class DoubleDoubleAccumulator(Accumulator):
    """State ``(hi, lo)`` kept normalised after every operation."""

    __slots__ = ("hi", "lo")

    def __init__(self) -> None:
        self.hi = 0.0
        self.lo = 0.0

    def add(self, x: float) -> None:
        s, e = two_sum(self.hi, x)
        e += self.lo
        self.hi, self.lo = fast_two_sum(s, e)

    def add_array(self, x: np.ndarray) -> None:
        dd = dd_sum(np.asarray(x, dtype=np.float64))
        self.merge_parts(dd.hi, dd.lo)

    def merge_parts(self, hi: float, lo: float) -> None:
        s, e = two_sum(self.hi, hi)
        e += self.lo + lo
        self.hi, self.lo = fast_two_sum(s, e)

    def merge(self, other: "DoubleDoubleAccumulator") -> None:  # type: ignore[override]
        self.merge_parts(other.hi, other.lo)

    def result(self) -> float:
        return self.hi + self.lo


class _DDVectorOps(VectorOps):
    n_components = 2
    ckernel = "dd"

    def init(self, values: np.ndarray) -> Tuple[np.ndarray, ...]:
        v = np.asarray(values, dtype=np.float64)
        return (v.copy(), np.zeros_like(v))

    def merge(self, a, b):
        return dd_add_array(a[0], a[1], b[0], b[1])

    def merge_leaves(self, a_values, b_values):
        # leaf lo-components are exactly zero; scalar zeros broadcast to the
        # same doubles (x + 0.0 + 0.0 normalises -0.0 just like zero arrays)
        return dd_add_array(a_values, 0.0, b_values, 0.0)

    def fold(self, matrix, lengths):
        # the elementwise image of DoubleDoubleAccumulator.add_array: the
        # dd_sum pairwise fold per row (zero columns pair into exact zero
        # double-doubles, so pow2 padding reproduces dd_sum's odd-level
        # zero appends bit-for-bit), dd_sum's final renormalisation, then
        # merge_parts replayed op-for-op from the zero state
        hi = _pad_pow2_cols(matrix)
        lo = np.zeros_like(hi)
        while hi.shape[-1] > 1:
            hi, lo = dd_add_array(
                hi[..., 0::2], lo[..., 0::2], hi[..., 1::2], lo[..., 1::2]
            )
        hi, lo = two_sum_array(hi[..., 0], lo[..., 0])  # DoubleDouble.normalized
        s, e = two_sum_array(0.0, hi)
        e = e + (0.0 + lo)
        s2 = s + e
        return (s2, e - (s2 - s))  # repro: allow[FP004] -- FastTwoSum renormalisation, as in merge_parts

    def result(self, state):
        return state[0] + state[1]


class DoubleDoubleSum(SummationAlgorithm):
    """DD: double-double ("native" composite precision) accumulation."""

    code = "DD"
    name = "double-double"
    cost_rank = 2
    deterministic = False

    _vops = _DDVectorOps()

    def make_accumulator(self, context: Optional[SumContext] = None) -> DoubleDoubleAccumulator:
        return DoubleDoubleAccumulator()

    def sum_array(self, x: np.ndarray, context: Optional[SumContext] = None) -> float:
        return dd_sum(np.asarray(x, dtype=np.float64)).to_float()

    @property
    def vector_ops(self) -> VectorOps:
        return self._vops


class _ExactAccumulatorAdapter(Accumulator):
    """Adapter giving :class:`ExactSum` the Accumulator interface."""

    __slots__ = ("inner",)

    def __init__(self) -> None:
        self.inner = ExactSum()

    def add(self, x: float) -> None:
        self.inner.add(x)

    def add_array(self, x: np.ndarray) -> None:
        self.inner.add_array(np.asarray(x, dtype=np.float64))

    def merge(self, other: "_ExactAccumulatorAdapter") -> None:  # type: ignore[override]
        self.inner.merge(other.inner)

    def result(self) -> float:
        return self.inner.to_float()


class ExactOracleSum(SummationAlgorithm):
    """EX: the exact superaccumulator as a (costly) reduction algorithm."""

    code = "EX"
    name = "exact"
    cost_rank = 4
    deterministic = True

    def make_accumulator(self, context: Optional[SumContext] = None) -> _ExactAccumulatorAdapter:
        return _ExactAccumulatorAdapter()

    def sum_array(self, x: np.ndarray, context: Optional[SumContext] = None) -> float:
        acc = ExactSum()
        acc.add_array(np.asarray(x, dtype=np.float64))
        return acc.to_float()
