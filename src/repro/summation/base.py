"""Interfaces shared by every summation algorithm.

The paper treats a parallel sum as a *reduction tree*: leaves are operands,
internal nodes are partial reductions.  To let one tree evaluator drive every
algorithm, each algorithm is exposed in up to three forms:

1. :class:`Accumulator` — a stateful object with ``add`` (leaf deposit),
   ``merge`` (internal tree node) and ``result`` (root).  This is the exact
   analogue of a custom ``MPI_Op`` plus its local accumulation loop, and is
   what the simulated-MPI substrate registers as a reduction operator.
2. :class:`VectorOps` — the same accumulator state as parallel component
   arrays with elementwise ``merge``, used by the level-wise evaluator to run
   ensembles of 2**20-leaf trees in seconds, and (via :meth:`VectorOps.fold`)
   by the collective fast path to produce every rank's local state in one
   batched sweep.
3. ``SummationAlgorithm.sum_array`` — an optimised whole-array kernel used
   for rank-local reductions and the Fig. 4/5 timing study.

Algorithms advertise two static properties the runtime selector consumes:
``cost_rank`` (the paper's expense ordering ST < K < CP < PR) and
``deterministic`` (True when the result is bitwise independent of reduction
order, as for prerounded summation).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = ["SumContext", "Accumulator", "VectorOps", "SummationAlgorithm"]


@dataclass(frozen=True)
class SumContext:
    """Global information an accumulator may need before the reduction starts.

    Prerounded summation is two-pass: the bin placement depends on the global
    maximum magnitude, which in an MPI setting is obtained with a (cheap,
    exactly associative) max-allreduce before the sum.  ``max_abs`` carries
    that value.  ``n_hint`` lets algorithms size overflow-safe blocks.
    """

    max_abs: Optional[float] = None
    n_hint: Optional[int] = None

    @staticmethod
    def for_data(x: np.ndarray) -> "SumContext":
        """Build a context by scanning ``x`` (the local part of the data)."""
        x = np.asarray(x, dtype=np.float64)
        max_abs = float(np.max(np.abs(x))) if x.size else 0.0
        return SumContext(max_abs=max_abs, n_hint=int(x.size))


class Accumulator(abc.ABC):
    """Stateful partial-sum object: the per-node state of a reduction tree."""

    @abc.abstractmethod
    def add(self, x: float) -> None:
        """Deposit a single operand (a leaf of the reduction tree)."""

    def add_array(self, x: np.ndarray) -> None:
        """Deposit many operands; default is a scalar loop, algorithms
        override with vectorised kernels."""
        for v in np.asarray(x, dtype=np.float64).ravel().tolist():
            self.add(v)

    @abc.abstractmethod
    def merge(self, other: "Accumulator") -> None:
        """Combine another partial reduction into this one (tree node)."""

    @abc.abstractmethod
    def result(self) -> float:
        """Round the accumulated state down to a single double (tree root)."""


class VectorOps(abc.ABC):
    """Elementwise accumulator-state operations over component arrays.

    A *state* is a tuple of equally shaped float64 arrays; element ``i`` of
    every component together encodes one accumulator.  ``merge`` combines two
    such batches elementwise, which is exactly what one level of a balanced
    reduction tree does for all its nodes at once.
    """

    #: number of float64 component arrays in a state
    n_components: int = 1

    #: name of this algebra's compiled balanced-sweep kernel in
    #: :mod:`repro.trees._ckernels` (None = NumPy sweep only).  A tagged
    #: kernel MUST be bitwise-equal to the NumPy level sweep; the engine
    #: property tests pin both against the generic node-walk.
    ckernel: Optional[str] = None

    @abc.abstractmethod
    def init(self, values: np.ndarray) -> Tuple[np.ndarray, ...]:
        """Lift raw operands into single-operand accumulator states."""

    @abc.abstractmethod
    def merge(
        self, a: Tuple[np.ndarray, ...], b: Tuple[np.ndarray, ...]
    ) -> Tuple[np.ndarray, ...]:
        """Elementwise pairwise merge of two state batches."""

    @abc.abstractmethod
    def result(self, state: Tuple[np.ndarray, ...]) -> np.ndarray:
        """Collapse states to plain doubles (the root rounding)."""

    def merge_leaves(
        self, a_values: np.ndarray, b_values: np.ndarray
    ) -> Tuple[np.ndarray, ...]:
        """Merge two arrays of *raw operands* into accumulator states.

        Semantically ``merge(init(a), init(b))`` — the first level of any
        reduction tree, where both children are leaves.  Algorithms override
        this to skip materialising the all-zero compensation components of
        singleton states (and the operand copies ``init`` makes); overrides
        must stay bitwise equal to the default, which the engine property
        tests pin.
        """
        return self.merge(self.init(a_values), self.init(b_values))

    def fold(
        self, matrix: np.ndarray, lengths: np.ndarray
    ) -> Tuple[np.ndarray, ...]:
        """Vectorised rank-local phase: fold every row of a padded chunk
        matrix into one accumulator state per row.

        ``matrix`` is ``(R, M)`` float64 with row ``r`` holding rank ``r``'s
        chunk in its first ``lengths[r]`` columns and zeros after; the return
        value is an ``n_components``-tuple of ``(R,)`` arrays, row ``r``'s
        state bitwise-equal to the object path
        ``make_accumulator(); add_array(chunk_r)`` — the contract the
        collective fast path (:meth:`repro.mpi.comm.SimComm.reduce`) relies
        on and the engine property tests pin.

        The base implementation is a masked serial column sweep: column
        ``j`` is merged into the running states as a batch of singleton
        operands, with an ``np.where`` guard so padding columns are bitwise
        inert.  That reproduces the scalar ``add``-per-element accumulate
        order, which matches the object path only for algorithms whose
        ``add_array`` *is* the scalar loop and whose ``merge`` against a
        singleton state reproduces ``add``; every algorithm that overrides
        ``add_array`` with a blocked kernel must override ``fold`` to match
        it (all bundled VectorOps algebras do).
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise ValueError("fold expects a (R, M) chunk matrix")
        n_rows, width = matrix.shape
        lengths = np.asarray(lengths, dtype=np.int64)
        state = tuple(np.zeros(n_rows, dtype=np.float64) for _ in range(self.n_components))
        for j in range(width):
            merged = self.merge(state, self.init(matrix[:, j]))
            active = j < lengths
            state = tuple(
                np.where(active, m, s) for m, s in zip(merged, state)
            )
        return state

    def merge_at(
        self,
        buffers: Tuple[np.ndarray, ...],
        left: np.ndarray,
        right: np.ndarray,
        out: np.ndarray,
    ) -> None:
        """Gather-merge-scatter along the slot axis of flat state buffers.

        ``buffers`` are component arrays whose *last* axis indexes
        accumulator slots; leading axes (if any) are ensemble lanes that
        broadcast through the elementwise ``merge``.  The states at slots
        ``left`` and ``right`` are merged pairwise and written to slots
        ``out`` in place — one dependency level of a compiled reduction
        schedule (:mod:`repro.trees.schedule`), for a whole ensemble, in a
        single call.  ``left``/``right``/``out`` must be disjoint within a
        call, which a leveled schedule guarantees (each slot is written once
        and read once).
        """
        a = tuple(c[..., left] for c in buffers)
        b = tuple(c[..., right] for c in buffers)
        merged = self.merge(a, b)
        for c, m in zip(buffers, merged):
            c[..., out] = m


class SummationAlgorithm(abc.ABC):
    """A named summation strategy with the three execution forms.

    Subclasses set the class attributes and implement
    :meth:`make_accumulator` and :meth:`sum_array`.
    """

    #: short code used in the paper's figures: "ST", "K", "CP", "PR", ...
    code: str = "?"
    #: human-readable name
    name: str = "?"
    #: the paper's cost ordering; higher = more expensive (ST=0 ... PR=3)
    cost_rank: int = 0
    #: True when the result is bitwise independent of the reduction tree
    deterministic: bool = False
    #: True when sum_array / accumulators need a SumContext with max_abs
    needs_context: bool = False

    @abc.abstractmethod
    def make_accumulator(self, context: Optional[SumContext] = None) -> Accumulator:
        """Create an empty accumulator (optionally using global context)."""

    @abc.abstractmethod
    def sum_array(self, x: np.ndarray, context: Optional[SumContext] = None) -> float:
        """Optimised whole-array sum in this algorithm's natural order."""

    @property
    def vector_ops(self) -> Optional[VectorOps]:
        """Vectorised state ops, or ``None`` if the algorithm has no
        elementwise-mergeable state (e.g. order-imposing sorted sums)."""
        return None

    def __call__(self, x: np.ndarray, context: Optional[SumContext] = None) -> float:
        return self.sum_array(np.asarray(x, dtype=np.float64), context)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.code} cost_rank={self.cost_rank}>"
