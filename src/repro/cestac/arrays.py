"""Vectorised CESTAC: stochastic arrays and stochastic tree evaluation.

Scaling the CADNA-substitute to paper-size inputs: a
:class:`StochasticArray` carries ``n_samples`` independently-rounded
realisations of every element as a ``(n_samples, n)`` matrix, and the
elementwise random-rounded add works on whole arrays at once.  On top of it,
:func:`stochastic_balanced_sum` evaluates a balanced reduction under random
rounding level-by-level — giving the CESTAC significant-digit estimate of a
*parallel* sum in O(n) vector work instead of the scalar recurrence of
:func:`repro.cestac.stochastic.cestac_sum`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cestac.stochastic import significant_digits
from repro.fp.eft import two_sum_array
from repro.util.rng import SeedLike, resolve_rng

__all__ = ["StochasticArray", "random_rounded_add_arrays", "stochastic_balanced_sum"]


def random_rounded_add_arrays(
    a: np.ndarray, b: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Elementwise randomly-rounded ``a + b`` (any matching shapes)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    s, e = two_sum_array(a, b)
    # e == 0.0 is exact: a representable sum has no roundoff to randomise.
    bump = (rng.random(s.shape) >= 0.5) & (e != 0.0)  # repro: allow[FP001]
    up = np.nextafter(s, np.where(e > 0.0, np.inf, -np.inf))
    return np.where(bump, up, s)


@dataclass
class StochasticArray:
    """``(n_samples, n)`` independently-rounded realisations of a vector."""

    samples: np.ndarray  # (n_samples, n) float64

    @staticmethod
    def from_array(x: np.ndarray, n_samples: int = 3) -> "StochasticArray":
        x = np.asarray(x, dtype=np.float64).ravel()
        if n_samples < 2:
            raise ValueError("need >= 2 samples")
        return StochasticArray(np.tile(x, (n_samples, 1)))

    @property
    def n_samples(self) -> int:
        return int(self.samples.shape[0])

    @property
    def n(self) -> int:
        return int(self.samples.shape[1])

    def add(self, other: "StochasticArray", rng: np.random.Generator) -> "StochasticArray":
        if self.samples.shape != other.samples.shape:
            raise ValueError("shape mismatch")
        return StochasticArray(
            random_rounded_add_arrays(self.samples, other.samples, rng)
        )

    def significant_digits(self) -> np.ndarray:
        """Per-element CESTAC digit estimates."""
        return np.array(
            [
                significant_digits(tuple(self.samples[:, j].tolist()))
                for j in range(self.n)
            ]
        )


def stochastic_balanced_sum(
    x: np.ndarray, seed: SeedLike = None, n_samples: int = 3
) -> tuple[float, float]:
    """Balanced-tree sum under stochastic rounding.

    Returns ``(mean_value, estimated_significant_digits)``; the digit
    estimate is CADNA's answer to "how many digits of this parallel
    reduction can I trust?", computed in vectorised level-wise passes.
    """
    x = np.asarray(x, dtype=np.float64).ravel()
    rng = resolve_rng(seed)
    if x.size == 0:
        return 0.0, 15.95
    s = np.tile(x, (n_samples, 1))
    while s.shape[1] > 1:
        if s.shape[1] % 2:
            s = np.concatenate([s, np.zeros((n_samples, 1))], axis=1)
        s = random_rounded_add_arrays(s[:, 0::2], s[:, 1::2], rng)
    samples = tuple(float(v) for v in s[:, 0])
    return sum(samples) / n_samples, significant_digits(samples)
