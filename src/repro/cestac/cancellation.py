"""Cancellation detection and digit-loss accounting (the CADNA role in
Sec. IV.B).

"Cancellation in general refers to the scenario where the sum of two
floating-point values has a smaller exponent than both of the summands."
CADNA "identif[ies] instances of cancellation in a sum and, for each
instance, estimate[s] the difference between the number of accurate digits in
the operands and the number of accurate digits in the result."

Two instrumentation levels are provided:

* :func:`track_cancellations` — exact, deterministic: a cancellation event at
  step ``i`` loses ``max(exp(a), exp(b)) - exp(a+b)`` bits, converted to
  decimal digits.  Cheap, used for large sweeps.
* :func:`track_cancellations_cestac` — the faithful CADNA analogue: operands
  and results carry CESTAC sample triples, and the digit loss is the drop in
  *estimated significant digits* across the add.

Fig. 3 buckets events by severity — loss of at least 1, 2, 4, and 8 decimal
digits — and shows that none of the buckets predicts the final error; the
reproduction keeps the same buckets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.cestac.stochastic import cestac_sum, significant_digits
from repro.fp.eft import two_sum_array
from repro.fp.properties import exponent
from repro.util.rng import SeedLike, resolve_rng

__all__ = [
    "SEVERITY_DIGITS",
    "CancellationReport",
    "track_cancellations",
    "track_cancellations_cestac",
]

#: Fig. 3's severity buckets, in decimal digits lost.
SEVERITY_DIGITS: tuple[int, ...] = (1, 2, 4, 8)

#: decimal digits per bit
_DIGITS_PER_BIT = math.log10(2.0)


@dataclass(frozen=True)
class CancellationReport:
    """Cancellation events of one summation order.

    ``counts[d]`` is the number of adds losing at least ``d`` decimal
    digits, for each severity in :data:`SEVERITY_DIGITS`.
    """

    n_adds: int
    losses: tuple[float, ...]  # decimal digits lost per cancellation event

    @property
    def counts(self) -> dict[int, int]:
        return {
            d: sum(1 for loss in self.losses if loss >= d) for d in SEVERITY_DIGITS
        }

    @property
    def total_events(self) -> int:
        return len(self.losses)

    @property
    def total_digits_lost(self) -> float:
        return float(sum(self.losses))


def track_cancellations(x: np.ndarray) -> CancellationReport:
    """Exact exponent-drop cancellation tracking of a left-to-right sum.

    An add ``s + v`` with nonzero operands cancels when the result's binary
    exponent falls below the larger operand exponent; the loss in decimal
    digits is the exponent drop times ``log10(2)``.
    """
    x = np.asarray(x, dtype=np.float64).ravel()
    if x.size < 2:
        return CancellationReport(n_adds=0, losses=())
    losses: list[float] = []
    s = float(x[0])
    n_adds = 0
    for v in x[1:].tolist():
        t = s + v
        n_adds += 1
        if s != 0.0 and v != 0.0:  # repro: allow[FP001] -- zero operands are exact; no cancellation to model
            top = max(exponent(s), exponent(v))
            if t == 0.0:  # repro: allow[FP001] -- exact-cancellation sentinel
                # complete cancellation: everything the operands had is gone
                losses.append(53 * _DIGITS_PER_BIT)
            elif exponent(t) < top:
                losses.append((top - exponent(t)) * _DIGITS_PER_BIT)
        s = t
    return CancellationReport(n_adds=n_adds, losses=tuple(losses))


def track_cancellations_cestac(
    x: np.ndarray, seed: SeedLike = None, n_samples: int = 3
) -> CancellationReport:
    """CADNA-faithful tracking: digit loss measured on CESTAC estimates.

    At each add the loss is ``min(digits(a), digits(b)) - digits(a + b)``
    computed from the spread of the stochastic samples; only positive losses
    coinciding with an exponent drop are recorded as cancellations.
    """
    x = np.asarray(x, dtype=np.float64).ravel()
    if x.size < 2:
        return CancellationReport(n_adds=0, losses=())
    rng = resolve_rng(seed)
    acc = np.full(n_samples, x[0], dtype=np.float64)
    losses: list[float] = []
    n_adds = 0
    digits_acc = 15.95
    for v in x[1:].tolist():
        s, e = two_sum_array(acc, v)
        bump = rng.random(n_samples) >= 0.5
        up = np.nextafter(s, np.where(e > 0.0, np.inf, -np.inf))
        # exact adds (e == 0.0) have no roundoff to randomise
        new_acc = np.where(bump & (e != 0.0), up, s)  # repro: allow[FP001]
        n_adds += 1
        mean_old = float(np.mean(acc))
        mean_new = float(np.mean(new_acc))
        if mean_old != 0.0 and v != 0.0:  # repro: allow[FP001] -- zero mean/update carry no roundoff
            digits_new = significant_digits(tuple(float(t) for t in new_acc))
            drop_exponent = (
                mean_new == 0.0  # repro: allow[FP001] -- exact-cancellation sentinel
                or exponent(mean_new) < max(exponent(mean_old), exponent(v))
            )
            loss = min(digits_acc, 15.95) - digits_new
            if drop_exponent and loss > 0.0:
                losses.append(loss)
            digits_acc = digits_new
        acc = new_acc
    return CancellationReport(n_adds=n_adds, losses=tuple(losses))
