"""CESTAC stochastic arithmetic: random rounding + significant-digit estimates.

CADNA (paper reference [12]) implements the CESTAC method: every operation
is performed ``N`` times (classically ``N = 3``) with the rounding direction
chosen at random, and the number of decimal significant digits common to the
samples is estimated with a Student-t interval:

    C = log10( sqrt(N) * |mean| / (tau * sigma) )

with ``tau`` the 95% two-sided Student-t quantile for ``N - 1`` degrees of
freedom.  Since we cannot flip the FPU rounding mode portably from Python,
random rounding is *synthesised exactly*: TwoSum gives the sign of the
rounding error of every add, so the correctly rounded result can be bumped
one ulp toward the exact value with probability 1/2 — precisely the
round-up/round-down pair CESTAC alternates between.

Scope: addition/subtraction chains (all the paper needs — summation) plus
multiplication via TwoProd for completeness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.fp.eft import two_prod, two_sum, two_sum_array
from repro.util.rng import SeedLike, resolve_rng

__all__ = [
    "STUDENT_T_95",
    "random_rounded_add",
    "random_rounded_mul",
    "StochasticValue",
    "cestac_sum",
    "significant_digits",
]

#: Two-sided 95% Student-t quantiles, indexed by degrees of freedom.
STUDENT_T_95: dict[int, float] = {1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571}


def random_rounded_add(a: float, b: float, rng: np.random.Generator) -> float:
    """``a + b`` rounded randomly up/down (the CESTAC rounding model).

    When the add is exact, the result is returned unperturbed.
    """
    s, e = two_sum(a, b)
    if e == 0.0:  # repro: allow[FP001] -- exact adds have no roundoff to randomise
        return s
    if rng.random() < 0.5:
        return s
    return math.nextafter(s, math.inf if e > 0.0 else -math.inf)


def random_rounded_mul(a: float, b: float, rng: np.random.Generator) -> float:
    """``a * b`` rounded randomly up/down."""
    p, e = two_prod(a, b)
    if e == 0.0:  # repro: allow[FP001] -- exact adds have no roundoff to randomise
        return p
    if rng.random() < 0.5:
        return p
    return math.nextafter(p, math.inf if e > 0.0 else -math.inf)


@dataclass(frozen=True)
class StochasticValue:
    """A CESTAC value: ``n_samples`` independently rounded realisations."""

    samples: tuple[float, ...]

    @staticmethod
    def from_float(x: float, n_samples: int = 3) -> "StochasticValue":
        return StochasticValue(tuple([float(x)] * n_samples))

    def add(self, other: "StochasticValue", rng: np.random.Generator) -> "StochasticValue":
        if len(self.samples) != len(other.samples):
            raise ValueError("sample-count mismatch")
        return StochasticValue(
            tuple(
                random_rounded_add(a, b, rng)
                for a, b in zip(self.samples, other.samples)
            )
        )

    def mean(self) -> float:
        return sum(self.samples) / len(self.samples)

    def significant_digits(self) -> float:
        return significant_digits(self.samples)


def significant_digits(samples: Sequence[float]) -> float:
    """CESTAC estimate of decimal significant digits common to ``samples``.

    Returns 15.95 (the full double precision, log10(2**53)) when all samples
    agree bitwise, and 0.0 when the spread swamps the mean ("computational
    zero" in CADNA terms).
    """
    n = len(samples)
    if n < 2:
        raise ValueError("need >= 2 samples")
    mean = sum(samples) / n
    var = sum((s - mean) ** 2 for s in samples) / (n - 1)
    if var == 0.0:  # repro: allow[FP001] -- zero spread means full precision
        return 15.95
    if mean == 0.0:  # repro: allow[FP001] -- zero-mean guard before the log
        return 0.0
    tau = STUDENT_T_95.get(n - 1, 2.0)
    c = math.log10(math.sqrt(n) * abs(mean) / (tau * math.sqrt(var)))
    return float(min(max(c, 0.0), 15.95))


def cestac_sum(
    x: np.ndarray, seed: SeedLike = None, n_samples: int = 3
) -> StochasticValue:
    """Left-to-right sum of ``x`` under stochastic rounding.

    Vectorised across the ``n_samples`` realisations: the recurrence over
    elements is sequential (as it must be), but each step processes all
    samples at once.
    """
    x = np.asarray(x, dtype=np.float64).ravel()
    rng = resolve_rng(seed)
    if x.size == 0:
        return StochasticValue.from_float(0.0, n_samples)
    acc = np.full(n_samples, x[0], dtype=np.float64)
    for v in x[1:].tolist():
        s, e = two_sum_array(acc, v)
        bump = rng.random(n_samples) >= 0.5
        nonexact = e != 0.0  # repro: allow[FP001] -- exact adds have no roundoff to randomise
        up = np.nextafter(s, np.where(e > 0.0, np.inf, -np.inf))
        acc = np.where(bump & nonexact, up, s)
    return StochasticValue(tuple(float(v) for v in acc))
