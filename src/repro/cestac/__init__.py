"""CESTAC stochastic arithmetic and cancellation tracking — the CADNA
substitute used by the Sec. IV.B reproduction."""

from repro.cestac.arrays import (
    StochasticArray,
    random_rounded_add_arrays,
    stochastic_balanced_sum,
)
from repro.cestac.cancellation import (
    SEVERITY_DIGITS,
    CancellationReport,
    track_cancellations,
    track_cancellations_cestac,
)
from repro.cestac.stochastic import (
    STUDENT_T_95,
    StochasticValue,
    cestac_sum,
    random_rounded_add,
    random_rounded_mul,
    significant_digits,
)

__all__ = [
    "CancellationReport",
    "SEVERITY_DIGITS",
    "STUDENT_T_95",
    "StochasticArray",
    "random_rounded_add_arrays",
    "stochastic_balanced_sum",
    "StochasticValue",
    "cestac_sum",
    "random_rounded_add",
    "random_rounded_mul",
    "significant_digits",
    "track_cancellations",
    "track_cancellations_cestac",
]
