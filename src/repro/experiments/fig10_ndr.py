"""Fig. 10 — error variability over the (n, dr) space at fixed k = 1.

Paper setup: "each cell's summands have condition number k = 1 so that the
ability of dynamic range to estimate alignment error can be assessed.  Note
that the scale by which the cells are shaded for these grids is not the same
as for the grids examining the (k, dr) or (n, k) spaces."  Finding: "a
tendency for high-concurrency, high-dynamic-range cells to exhibit greater
variability; but ... dynamic range exerts much less influence over
variability of the sums than does the condition number."

Both the absolute-std grid (the paper notes this figure's shading scale
differs from Figs. 9/11 — absolute spread is the quantity that moves here)
and the relative-std grid are reported.

Shape checks:
* ST *absolute* variability tends upward with n (the "high-concurrency
  cells exhibit greater variability" tendency; pooled Spearman >= 0.5);
* the *relative* variability of these k = 1 cells never leaves the
  few-ulp floor (u-scale) anywhere in the grid — i.e. dynamic range alone
  cannot make a well-conditioned sum irreproducible, which is the figure's
  "dr exerts much less influence than k" lesson;
* CP is bitwise reproducible across the grid.
"""

from __future__ import annotations

import math

import numpy as np

from repro.experiments.config import ExperimentResult, Scale, resolve_scale
from repro.experiments.fig3_cancellation import spearman
from repro.experiments.grid import format_n, grid_sweep
from repro.fp.properties import UNIT_ROUNDOFF
from repro.viz.heatmap import render_value_grid

__all__ = ["run"]

_CODES = ("ST", "K", "CP")


def run(scale: "Scale | str | None" = None) -> ExperimentResult:
    scale = scale if isinstance(scale, Scale) else resolve_scale(scale)
    cells = grid_sweep(
        n_values=list(scale.grid_n_values),
        k_values=[1.0],
        dr_values=list(scale.grid_dr_values),
        codes=_CODES,
        n_trees=scale.grid_n_trees,
        seed=scale.seed + 10,
    )

    n_labels = [format_n(n) for n in scale.grid_n_values]
    dr_labels = [str(dr) for dr in scale.grid_dr_values]
    texts = []
    rows: list[dict] = []
    rel_grids: dict[str, dict[tuple[str, str], float]] = {c: {} for c in _CODES}
    abs_grids: dict[str, dict[tuple[str, str], float]] = {c: {} for c in _CODES}
    for cell in cells:
        key = (format_n(cell.n), str(cell.dynamic_range))
        for code in _CODES:
            rel_grids[code][key] = cell.rel_std(code)
            abs_grids[code][key] = cell.abs_std(code)
            rows.append(
                {
                    "n": cell.n,
                    "dr": cell.dynamic_range,
                    "algorithm": code,
                    "rel_std": cell.rel_std(code),
                    "abs_std": cell.abs_std(code),
                }
            )
    for code in _CODES:
        texts.append(
            render_value_grid(
                n_labels,
                dr_labels,
                abs_grids[code],
                title=f"{code}: ABSOLUTE std of errors, k=1 "
                "(rows: concurrency n, cols: dynamic range dr; note the "
                "shading scale differs from Figs. 9/11, as in the paper)",
            )
        )
    texts.append(
        render_value_grid(
            n_labels,
            dr_labels,
            rel_grids["ST"],
            title="ST: relative std of errors, k=1 (stays at the ulp floor "
            "everywhere: dr alone cannot break reproducibility)",
        )
    )

    ns = np.array(scale.grid_n_values, dtype=np.float64)

    def abs_column(code: str, dr: int) -> np.ndarray:
        vals = {c.n: c.abs_std(code) for c in cells if c.dynamic_range == dr}
        return np.array([vals[int(n)] for n in ns])

    st_abs_rhos = [spearman(ns, abs_column("ST", dr)) for dr in scale.grid_dr_values]
    st_rel_max = max(c.rel_std("ST") for c in cells)
    ulp_floor_ceiling = 50.0 * UNIT_ROUNDOFF
    checks = {
        "ST absolute variability tends up with n (mean rho >= 0.5)": float(
            np.mean(st_abs_rhos)
        )
        >= 0.5,
        "k=1 relative variability stays at the ulp floor for all (n, dr)": (
            st_rel_max <= ulp_floor_ceiling
        ),
        "CP bitwise reproducible across the grid": all(
            c.stats["CP"].reproducible_bitwise for c in cells
        ),
    }
    return ExperimentResult(
        experiment_id="fig10",
        title="(n, dr) grid of error variability at fixed k = 1",
        scale=scale.name,
        rows=tuple(rows),
        text="\n\n".join(texts),
        checks=checks,
    )
