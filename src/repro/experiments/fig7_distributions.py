"""Fig. 7 (a-h) — error distributions of ST/K/CP/PR across tree ensembles.

Paper setup: two exact-zero-sum sets with dynamic range 32 (8K and 1M
values), two tree shapes (completely balanced, completely unbalanced), 100
distinct reduction trees per shape via random leaf permutation; boxplots of
error per algorithm.  Findings asserted as shape checks:

* "Kahan summation tends in general to produce more reproducible sums than
  standard summation, but only composite precision and prerounded summations
  offer reproducible numerical accuracy at an acceptable level";
* "as the level of concurrency rises, the absolute error in the sum rises";
* "much more variation in the sum occurs when the tree is unbalanced than
  when it is balanced for the standard summation algorithm".
"""

from __future__ import annotations

import numpy as np

from repro.experiments.config import ExperimentResult, Scale, resolve_scale
from repro.generators.conditioned import zero_sum_set
from repro.metrics.errors import ErrorStats, boxplot_summary, error_stats
from repro.summation.registry import PAPER_CODES, get_algorithm
from repro.trees.evaluate import evaluate_ensemble
from repro.util.rng import derive_seed
from repro.viz.boxplot import render_boxplot_panel

__all__ = ["run", "panel_stats"]


def panel_stats(
    data: np.ndarray, shape: str, n_trees: int, seed: int
) -> dict[str, tuple[ErrorStats, object]]:
    """(ErrorStats, BoxplotSummary) per algorithm for one Fig. 7 panel."""
    out = {}
    for code in PAPER_CODES:
        alg = get_algorithm(code)
        values = evaluate_ensemble(
            data, shape, alg, n_trees, seed=derive_seed(seed, shape, code)
        )
        out[code] = (error_stats(values, data), boxplot_summary(values, data))
    return out


def run(scale: "Scale | str | None" = None) -> ExperimentResult:
    scale = scale if isinstance(scale, Scale) else resolve_scale(scale)
    panels = {}
    rows: list[dict] = []
    texts: list[str] = []
    sizes = {"small": scale.fig7_small_n, "large": scale.fig7_large_n}
    for size_name, n in sizes.items():
        data = zero_sum_set(n, dr=32, seed=derive_seed(scale.seed, "fig7", size_name))
        for shape in ("balanced", "serial"):
            key = (shape, size_name)
            stats = panel_stats(
                data, shape, scale.fig7_n_trees, derive_seed(scale.seed, "fig7e", size_name)
            )
            panels[key] = stats
            texts.append(
                render_boxplot_panel(
                    f"panel: {shape} tree, n={n} ({scale.fig7_n_trees} trees)",
                    [(code, stats[code][1]) for code in PAPER_CODES],
                )
            )
            for code in PAPER_CODES:
                es = stats[code][0]
                rows.append(
                    {
                        "shape": shape,
                        "n": n,
                        "algorithm": code,
                        "max_abs_error": es.max_abs,
                        "std_error": es.std,
                        "spread": es.spread,
                        "n_distinct": es.n_distinct,
                    }
                )

    def spread(shape: str, size: str, code: str) -> float:
        return panels[(shape, size)][code][0].spread

    checks = {
        # within a panel: ST > K and CP/PR near-exact
        "balanced/small: ST more variable than K": spread("balanced", "small", "ST")
        > spread("balanced", "small", "K"),
        "CP and PR reproducible at acceptable level (<= 1e-3 of ST spread)": all(
            spread(sh, sz, c) <= max(1e-3 * spread(sh, sz, "ST"), 1e-30)
            for sh in ("balanced", "serial")
            for sz in sizes
            for c in ("CP", "PR")
        ),
        "PR bitwise reproducible in every panel": all(
            panels[(sh, sz)]["PR"][0].reproducible_bitwise
            for sh in ("balanced", "serial")
            for sz in sizes
        ),
        # across concurrency: error rises with n for ST
        "ST error rises with concurrency (both shapes)": all(
            panels[(sh, "large")]["ST"][0].max_abs
            > panels[(sh, "small")]["ST"][0].max_abs
            for sh in ("balanced", "serial")
        ),
        # across shape: unbalanced more variable than balanced for ST
        "unbalanced ST more variable than balanced ST (both sizes)": all(
            spread("serial", sz, "ST") > spread("balanced", sz, "ST") for sz in sizes
        ),
    }
    return ExperimentResult(
        experiment_id="fig7",
        title="Error distributions across balanced/unbalanced tree ensembles",
        scale=scale.name,
        rows=tuple(rows),
        text="\n\n".join(texts),
        checks=checks,
    )
