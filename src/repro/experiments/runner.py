"""CLI runner: regenerate any of the paper's tables/figures.

Usage::

    repro-experiments list
    repro-experiments run fig7 [--scale ci|paper] [--out results/]
    repro-experiments run all  [--scale ci|paper] [--out results/] [--workers N]

``--workers`` sizes the persistent worker pool (:mod:`repro.util.pool`)
the grid sweeps fan out over (it sets ``REPRO_WORKERS`` for the run);
the pool stays warm across experiments, so ``run all`` pays process
spin-up once.  Workers receive picklable seed payloads, so every result
is bitwise identical regardless of pool size.

Each experiment prints its rows/series as text (the same content the paper's
figure encodes) plus PASS/FAIL shape checks against the paper's qualitative
claims.  With ``--out``, the rows are also written as JSON for downstream
analysis.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from pathlib import Path
from typing import Callable, Mapping

import numpy as np

from repro.experiments.config import ExperimentResult, resolve_scale

__all__ = ["EXPERIMENTS", "EXTENSIONS", "run_experiment", "main"]


def _registry() -> "Mapping[str, Callable]":
    # imported lazily so `repro-experiments list` stays instant
    from repro.experiments import (
        ext_allreduce,
        ext_dot,
        ext_enum,
        ext_select,
        ext_faults,
        ext_shapes,
        fig2_bounds,
        fig3_cancellation,
        fig4_timing,
        fig6_sensitivity,
        fig7_distributions,
        fig9_kdr,
        fig10_ndr,
        fig11_nk,
        fig12_selection,
        table1_samples,
    )

    return {
        "table1": table1_samples.run,
        "fig2": fig2_bounds.run,
        "fig3": fig3_cancellation.run,
        "fig4": fig4_timing.run,
        "fig5": fig4_timing.run,  # Fig. 5 is the penalty view of Fig. 4
        "fig6": fig6_sensitivity.run,
        "fig7": fig7_distributions.run,
        "fig9": fig9_kdr.run,
        "fig10": fig10_ndr.run,
        "fig11": fig11_nk.run,
        "fig12": fig12_selection.run,
        "extshapes": ext_shapes.run,
        "extfaults": ext_faults.run,
        "extdot": ext_dot.run,
        "extenum": ext_enum.run,
        "extselect": ext_select.run,
        "extallreduce": ext_allreduce.run,
    }


#: the paper's tables/figures, in paper order
EXPERIMENTS = tuple(
    ("table1", "fig2", "fig3", "fig4", "fig6", "fig7", "fig9", "fig10", "fig11", "fig12")
)

#: beyond-the-paper studies (shape spectrum, fault campaigns, dot products)
EXTENSIONS = ("extshapes", "extfaults", "extdot", "extenum", "extselect", "extallreduce")


def _json_safe(value):
    # multi-element ndarrays first: .item() raises ValueError on size > 1,
    # so lower them to lists and recurse before the scalar normalisation
    if isinstance(value, np.ndarray):
        return _json_safe(value.tolist())
    # normalise numpy scalars (np.bool_, np.float64, np.int64) next
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        try:
            value = value.item()
        except (AttributeError, ValueError):
            pass
    if isinstance(value, float) and math.isinf(value):
        return "inf" if value > 0 else "-inf"
    if isinstance(value, float) and math.isnan(value):
        return "nan"
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return value


def run_experiment(exp_id: str, scale_name: "str | None" = None) -> ExperimentResult:
    """Run one experiment by id at the given scale."""
    registry = _registry()
    if exp_id not in registry:
        raise KeyError(f"unknown experiment {exp_id!r}; known: {sorted(registry)}")
    return registry[exp_id](resolve_scale(scale_name))


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiment ids")
    run_p = sub.add_parser("run", help="run one experiment (or 'all')")
    run_p.add_argument("experiment", help="experiment id, or 'all'")
    run_p.add_argument("--scale", default=None, help="ci (default), large, or paper")
    run_p.add_argument("--out", default=None, help="directory for JSON rows")
    run_p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="persistent worker-pool size for grid sweeps (sets REPRO_WORKERS; "
        "the pool stays warm across experiments, and cells fan out with "
        "picklable seed payloads, so results are bitwise independent of "
        "this value)",
    )
    run_p.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="enable repro.obs runtime metrics for the run and write the "
        "registry snapshot (JSON) here; inspect with repro-metrics",
    )
    rep_p = sub.add_parser("report", help="aggregate JSON outputs into markdown")
    rep_p.add_argument("directory", help="directory holding *_<scale>.json files")
    rep_p.add_argument("-o", "--output", default=None, help="write report here")
    args = parser.parse_args(argv)

    if args.command == "report":
        from repro.experiments.report import build_report

        text = build_report(args.directory)
        if args.output:
            Path(args.output).write_text(text)
            print(f"report written to {args.output}")
        else:
            print(text)
        return 0

    if args.command == "list":
        for exp in EXPERIMENTS + EXTENSIONS:
            print(exp)
        return 0

    if args.workers is not None:
        import os

        os.environ["REPRO_WORKERS"] = str(max(1, args.workers))
    if args.metrics_out:
        from repro.obs import get_registry

        get_registry().enable()
    if args.experiment == "all":
        targets = list(EXPERIMENTS) + list(EXTENSIONS)
    else:
        targets = [args.experiment]
    failures = 0
    for exp_id in targets:
        t0 = time.perf_counter()
        result = run_experiment(exp_id, args.scale)
        elapsed = time.perf_counter() - t0
        print(result.render())
        print(f"[{exp_id} completed in {elapsed:.1f}s]\n")
        if not result.all_checks_pass:
            failures += 1
        if args.out:
            out_dir = Path(args.out)
            out_dir.mkdir(parents=True, exist_ok=True)
            payload = {
                "experiment": result.experiment_id,
                "title": result.title,
                "scale": result.scale,
                "elapsed_seconds": elapsed,
                "checks": _json_safe(dict(result.checks)),
                "rows": _json_safe(list(result.rows)),
            }
            (out_dir / f"{exp_id}_{result.scale}.json").write_text(
                json.dumps(payload, indent=2)
            )
    if args.metrics_out:
        from repro.obs import get_registry

        path = Path(args.metrics_out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(get_registry().to_json() + "\n")
        print(f"metrics snapshot written to {path}")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
