"""Experiment configuration: scales, parameter grids, result containers.

Every experiment runs at one of two scales:

* ``ci`` (default) — minutes on a laptop; identical code paths and
  assertions, reduced n / tree counts.
* ``paper`` — the parameters of the paper itself (10**6-leaf trees, 1000
  permutations per cell); hours of compute, intended for the full
  EXPERIMENTS.md regeneration.

Select via the ``REPRO_SCALE`` environment variable or the runner's
``--scale`` flag.  Both scales are plain dataclass instances, so bespoke
scales are one constructor call away.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Mapping, Sequence

__all__ = ["Scale", "SCALES", "resolve_scale", "ExperimentResult"]


@dataclass(frozen=True)
class Scale:
    """Parameter set sizing the whole experiment suite."""

    name: str
    # Fig. 2
    fig2_n_values: int
    fig2_n_orders: int
    # Fig. 3
    fig3_n_values: int
    fig3_n_orders: int
    # Fig. 4/5
    fig4_n_terms: int
    fig4_n_ranks: int
    fig4_repeats: int
    # Fig. 6
    fig6_n: int
    fig6_n_trees: int
    # Fig. 7
    fig7_small_n: int
    fig7_large_n: int
    fig7_n_trees: int
    # Figs. 9-12 grids
    grid_n: int
    grid_n_trees: int
    grid_k_decades: Sequence[int]  # log10(k) grid points (finite)
    grid_dr_values: Sequence[int]
    grid_n_values: Sequence[int]  # n axis for Figs. 10/11
    # global seed
    seed: int = 20150908  # CLUSTER'15 conference date


SCALES: Mapping[str, Scale] = {
    "ci": Scale(
        name="ci",
        fig2_n_values=2000,
        fig2_n_orders=400,
        fig3_n_values=400,
        fig3_n_orders=40,
        # keep >= ~100K terms per rank: below that NumPy call overhead, not
        # flops, dominates and the paper's cost ranking is not the quantity
        # being measured
        fig4_n_terms=400_000,
        fig4_n_ranks=4,
        fig4_repeats=5,
        fig6_n=2048,
        fig6_n_trees=60,
        fig7_small_n=2048,
        fig7_large_n=65_536,
        fig7_n_trees=40,
        grid_n=4096,
        grid_n_trees=150,
        grid_k_decades=(0, 3, 6, 9, 12, 15),
        grid_dr_values=(0, 8, 16, 24, 32, 40, 48),
        grid_n_values=(1024, 4096, 16_384, 65_536),
    ),
    # intermediate tier: paper-like statistics at laptop-feasible grid cost
    # (the non-grid figures are cheap enough to always run at "paper")
    "large": Scale(
        name="large",
        fig2_n_values=10_000,
        fig2_n_orders=4000,
        fig3_n_values=1000,
        fig3_n_orders=100,
        fig4_n_terms=2_000_000,
        fig4_n_ranks=4,
        fig4_repeats=10,
        fig6_n=8192,
        fig6_n_trees=100,
        fig7_small_n=8192,
        fig7_large_n=262_144,
        fig7_n_trees=60,
        grid_n=65_536,
        grid_n_trees=400,
        grid_k_decades=(0, 3, 6, 9, 12, 15),
        grid_dr_values=(0, 8, 16, 24, 32, 40, 48),
        grid_n_values=(1024, 8192, 65_536, 262_144),
    ),
    "paper": Scale(
        name="paper",
        fig2_n_values=10_000,
        fig2_n_orders=10_000,
        fig3_n_values=1000,
        fig3_n_orders=100,
        # the paper's 10**6 terms *per process*; 8 simulated ranks rather
        # than the paper's 48 keeps the single-process simulation's wall
        # time sane without changing what is measured (per-rank kernels
        # dominate; the combine touches 8 scalars)
        fig4_n_terms=8_000_000,
        fig4_n_ranks=8,
        fig4_repeats=20,
        fig6_n=8192,
        fig6_n_trees=100,
        fig7_small_n=8192,
        fig7_large_n=1_048_576,
        fig7_n_trees=100,
        grid_n=1_048_576,
        grid_n_trees=1000,
        grid_k_decades=(0, 3, 6, 9, 12, 15),
        grid_dr_values=(0, 8, 16, 24, 32, 40, 48),
        grid_n_values=(1024, 8192, 65_536, 262_144, 1_048_576),
    ),
}


def resolve_scale(name: "str | None" = None) -> Scale:
    """Scale by explicit name, else ``REPRO_SCALE`` env var, else ``ci``."""
    # The scale preset picks experiment *sizes* (n, trees, grid axes), never
    # a reduction algorithm or order; every scale is internally reproducible.
    # repro: allow[FP009] -- sizes knob only, reduction semantics unaffected
    name = name or os.environ.get("REPRO_SCALE", "ci")
    try:
        return SCALES[name]
    except KeyError:
        raise KeyError(f"unknown scale {name!r}; known: {sorted(SCALES)}") from None


@dataclass(frozen=True)
class ExperimentResult:
    """Uniform experiment output: machine-readable rows plus a text report."""

    experiment_id: str
    title: str
    scale: str
    rows: tuple[dict, ...]
    text: str
    checks: Mapping[str, bool] = field(default_factory=dict)

    @property
    def all_checks_pass(self) -> bool:
        return all(self.checks.values())

    def render(self) -> str:
        lines = [f"== {self.experiment_id}: {self.title} (scale={self.scale}) ==", self.text]
        if self.checks:
            lines.append("")
            lines.append("shape checks vs paper:")
            for name, ok in self.checks.items():
                lines.append(f"  [{'PASS' if ok else 'FAIL'}] {name}")
        return "\n".join(lines)
