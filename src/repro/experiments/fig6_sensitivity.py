"""Fig. 6 — relative sensitivity of K, CP and PR to leaf assignment.

Paper setup: "For a fixed set of data we generate multiple reduction trees of
the same shape but with different assignments of operands to leaves.  We
construct the set of summands to have mathematical properties that render its
reduction especially prone to both alignment error and loss of accuracy due
to cancellation" — i.e. an exact-zero-sum, wide-dynamic-range set.  Panel (a)
zooms into panel (b).  Finding: "as a progressively greater amount of
computation is invested in compensating for roundoff error, the sum becomes
less sensitive to the varying reduction tree."

Shape checks: max |error| ordering K >= CP >= PR, and PR bitwise constant.
"""

from __future__ import annotations

import math

import numpy as np

from repro.experiments.config import ExperimentResult, Scale, resolve_scale
from repro.generators.conditioned import zero_sum_set
from repro.metrics.errors import boxplot_summary, error_stats
from repro.summation.registry import get_algorithm
from repro.trees.evaluate import evaluate_ensemble
from repro.util.rng import resolve_rng
from repro.viz.boxplot import render_boxplot_panel
from repro.viz.tables import render_table

__all__ = ["run"]

_CODES = ("K", "CP", "PR")


def run(scale: "Scale | str | None" = None) -> ExperimentResult:
    scale = scale if isinstance(scale, Scale) else resolve_scale(scale)
    rng = resolve_rng(scale.seed + 6)
    data = zero_sum_set(scale.fig6_n, dr=32, seed=rng)

    rows: list[dict] = []
    panel_entries = []
    stats_by_code = {}
    for code in _CODES:
        alg = get_algorithm(code)
        values = evaluate_ensemble(
            data, "balanced", alg, scale.fig6_n_trees, seed=rng
        )
        stats = error_stats(values, data)
        stats_by_code[code] = stats
        panel_entries.append((code, boxplot_summary(values, data)))
        rows.append(
            {
                "algorithm": code,
                "max_abs_error": stats.max_abs,
                "std_error": stats.std,
                "n_distinct": stats.n_distinct,
            }
        )

    table = render_table(
        ["algorithm", "max_abs_error", "std_error", "n_distinct"],
        [[r["algorithm"], r["max_abs_error"], r["std_error"], r["n_distinct"]] for r in rows],
        title=(
            f"zero-sum set, n={scale.fig6_n}, dr=32, balanced shape, "
            f"{scale.fig6_n_trees} leaf assignments"
        ),
    )
    panel = render_boxplot_panel("|error| distributions (panel b; panel a is the zoom)", panel_entries)
    text = table + "\n\n" + panel

    k_max = stats_by_code["K"].max_abs
    cp_max = stats_by_code["CP"].max_abs
    pr_max = stats_by_code["PR"].max_abs
    checks = {
        "sensitivity ordering K >= CP >= PR": k_max >= cp_max >= pr_max,
        "more computation, less sensitivity (K > PR strictly or all zero)": (
            k_max > pr_max or k_max == 0.0  # repro: allow[FP001] -- exactly-zero error is an expected outcome
        ),
        "PR bitwise reproducible": stats_by_code["PR"].reproducible_bitwise,
    }
    return ExperimentResult(
        experiment_id="fig6",
        title="Relative sensitivity of K, CP, PR to leaf assignment",
        scale=scale.name,
        rows=tuple(rows),
        text=text,
        checks=checks,
    )
