"""Table I — sample sets with specified dynamic range and condition number.

Validates that our exact property measurements agree with the paper's labels
on its own eleven literal sets, and that our generator can hit each labelled
(dr, k) cell.  The paper's dr labels for decimal literals are decimal-order
approximations of binary-exponent spans, so dr is checked within 2 binades;
k is checked to 5% (the table's k values are decimal-exact by construction).
"""

from __future__ import annotations

import math

from repro.experiments.config import ExperimentResult, Scale, resolve_scale
from repro.generators.conditioned import generate_sum_set
from repro.generators.samples import TABLE_I
from repro.metrics.properties import condition_number, dynamic_range
from repro.viz.tables import render_table

__all__ = ["run"]


def run(scale: "Scale | str | None" = None) -> ExperimentResult:
    scale = scale if isinstance(scale, Scale) else resolve_scale(scale)
    rows: list[dict] = []
    dr_ok = []
    k_ok = []
    for i, sample in enumerate(TABLE_I):
        arr = sample.as_array()
        k = condition_number(arr)
        dr = dynamic_range(arr)
        rows.append(
            {
                "set": i,
                "values": sample.values,
                "nominal_dr": sample.nominal_dr,
                "measured_dr_binades": dr,
                "nominal_k": sample.nominal_k,
                "measured_k": k,
            }
        )
        if math.isinf(sample.nominal_k):
            k_ok.append(math.isinf(k))
        else:
            k_ok.append(abs(k / sample.nominal_k - 1.0) < 0.05)
        # Table I's dr labels count *decimal* exponent spread (e.g. row 4's
        # {2.37e16, ..., 3.41e8} is labelled dr=8 = 16-8); one decimal
        # decade is log2(10) ~ 3.32 binades, and the mantissas add up to
        # ~3 binades of slack.
        expected_binades = sample.nominal_dr * math.log2(10)
        dr_ok.append(abs(dr - expected_binades) <= 3.0)

    # generator coverage of every labelled cell
    gen_ok = []
    for sample in TABLE_I:
        target_dr = int(round(sample.nominal_dr * math.log2(10))) if sample.nominal_dr else 0
        s = generate_sum_set(64, sample.nominal_k, target_dr, seed=scale.seed)
        mk = condition_number(s.values)
        mdr = dynamic_range(s.values)
        if math.isinf(sample.nominal_k):
            gen_ok.append(math.isinf(mk) and mdr == target_dr)
        else:
            gen_ok.append(0.5 < mk / sample.nominal_k < 2.0 and mdr == target_dr)

    text = render_table(
        ["set", "nominal_dr", "measured_dr(binades)", "nominal_k", "measured_k"],
        [
            [r["set"], r["nominal_dr"], r["measured_dr_binades"], r["nominal_k"], r["measured_k"]]
            for r in rows
        ],
        title="Table I literal sets: paper labels vs exact measurement",
    )
    checks = {
        "measured k matches the label on all 11 sets": all(k_ok),
        "measured dr within 3 binades of the decimal label": all(dr_ok),
        "generator hits every labelled (k, dr) cell": all(gen_ok),
    }
    return ExperimentResult(
        experiment_id="table1",
        title="Sample sets with specified dr and k",
        scale=scale.name,
        rows=tuple(rows),
        text=text,
        checks=checks,
    )
