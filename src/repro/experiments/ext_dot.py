"""Extension experiment: reproducible dot products across conditioning.

ReproBLAS (the paper's PR source) covers dot products as well as sums; this
extension sweeps the dot condition number (GenDot workloads) and measures
each dot algorithm's relative error and its order-sensitivity (spread over
random element permutations).

Checks: ST relative error grows ~linearly with the condition number while
CP's stays near u until k approaches 1/u**2; PR's dot is bitwise permutation-
invariant everywhere; the accuracy ordering ST >= K >= CP holds per cell.
"""

from __future__ import annotations

import math
from fractions import Fraction

import numpy as np

from repro.experiments.config import ExperimentResult, Scale, resolve_scale
from repro.generators.dotprod import dot_condition_number, ill_conditioned_dot
from repro.summation.dot import DOT_ALGORITHMS, dot_exact
from repro.util.rng import derive_seed, resolve_rng
from repro.viz.tables import render_table

__all__ = ["run"]

_CONDITIONS = (1e4, 1e8, 1e12, 1e16)
_CODES = ("ST", "K", "CP", "PR")


def run(scale: "Scale | str | None" = None) -> ExperimentResult:
    scale = scale if isinstance(scale, Scale) else resolve_scale(scale)
    n = 600 if scale.name != "paper" else 4000
    n_perms = 20 if scale.name != "paper" else 100

    rows: list[dict] = []
    st_rel: list[float] = []
    pr_invariant: list[bool] = []
    for target_k in _CONDITIONS:
        w = ill_conditioned_dot(n, target_k, seed=derive_seed(scale.seed, "extdot", int(math.log10(target_k))))
        achieved = dot_condition_number(w.x, w.y)
        exact = Fraction(dot_exact(w.x, w.y))  # correctly rounded; enough here
        rng = resolve_rng(derive_seed(scale.seed, "extdot-perms", int(math.log10(target_k))))
        row = {"target_k": target_k, "achieved_k": achieved}
        for code in _CODES:
            fn = DOT_ALGORITHMS[code]
            v = fn(w.x, w.y)
            rel = abs(float(Fraction(v) - exact)) / max(abs(float(exact)), 5e-324)
            vals = {v}
            for _ in range(n_perms):
                p = rng.permutation(n)
                vals.add(fn(w.x[p], w.y[p]))
            row[f"{code}_rel_err"] = rel
            row[f"{code}_distinct"] = len(vals)
        rows.append(row)
        st_rel.append(row["ST_rel_err"])
        pr_invariant.append(row["PR_distinct"] == 1)

    text = render_table(
        ["target_k", "achieved_k"]
        + [f"{c}_rel_err" for c in _CODES]
        + [f"{c}_distinct" for c in _CODES],
        [
            [r["target_k"], r["achieved_k"]]
            + [r[f"{c}_rel_err"] for c in _CODES]
            + [r[f"{c}_distinct"] for c in _CODES]
            for r in rows
        ],
        title=f"GenDot sweep, n={n}, {n_perms} permutations per cell",
    )
    checks = {
        "ST relative error grows with conditioning": all(
            st_rel[i] < st_rel[i + 1] for i in range(len(st_rel) - 1)
        ),
        "accuracy ordering ST >= K >= CP per cell": all(
            r["ST_rel_err"] >= r["K_rel_err"] >= r["CP_rel_err"] or r["CP_rel_err"] == 0.0  # repro: allow[FP001] -- exactly-zero CP error is an expected outcome
            for r in rows
        ),
        "CP near working precision until extreme conditioning": all(
            r["CP_rel_err"] <= 1e-8 for r in rows if r["target_k"] <= 1e12
        ),
        "PR dot bitwise permutation-invariant everywhere": all(pr_invariant),
    }
    return ExperimentResult(
        experiment_id="extdot",
        title="Extension: reproducible dot products vs conditioning",
        scale=scale.name,
        rows=tuple(rows),
        text=text,
        checks=checks,
    )
