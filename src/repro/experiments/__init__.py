"""Experiment harness: one module per table/figure of the paper, a shared
grid sweep, and a CLI runner (``repro-experiments``)."""

from repro.experiments.config import SCALES, ExperimentResult, Scale, resolve_scale
from repro.experiments.grid import GridCellResult, format_k, format_n, grid_sweep
from repro.experiments.runner import EXPERIMENTS, EXTENSIONS, run_experiment

__all__ = [
    "EXPERIMENTS",
    "EXTENSIONS",
    "ExperimentResult",
    "GridCellResult",
    "SCALES",
    "Scale",
    "format_k",
    "format_n",
    "grid_sweep",
    "resolve_scale",
    "run_experiment",
]
