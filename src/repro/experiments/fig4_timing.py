"""Figs. 4 & 5 — execution time and performance penalty of ST/K/CP/PR.

Paper setup: "on each process, we generate a chunk of a vector of values of
length 10^6 from a series that is known to sum to zero under exact
arithmetic.  We locally reduce these values using each of the four summation
algorithms ... Finally, we globally reduce the local sums by using MPI_Reduce
with custom reduction operators", on a dedicated 48-core node, 20 repeats,
warmed cache.  Fig. 4 reports times; Fig. 5 the penalties relative to ST.

Here each "process" is a rank of the simulated communicator; the timed
quantity is the real wall-clock of the local reduction kernels plus the
combine phase — the constant factors are ours, but the *ranking*
ST < K < CP < PR is the paper's claim and is asserted.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.config import ExperimentResult, Scale, resolve_scale
from repro.generators.series import zero_sum_series
from repro.mpi.comm import SimComm
from repro.mpi.ops import make_reduction_op
from repro.summation.registry import PAPER_CODES, get_algorithm
from repro.util.timing import TimingResult, time_callable
from repro.viz.tables import render_table

__all__ = ["run", "measure_timings"]


def measure_timings(
    n_terms: int, n_ranks: int, repeats: int, seed: int
) -> dict[str, TimingResult]:
    """Wall-clock of local-reduce + simulated global reduce per algorithm."""
    series = zero_sum_series(n_terms * n_ranks, seed=seed)
    comm = SimComm(n_ranks, seed=seed)
    chunks = comm.scatter_array(series)
    timings: dict[str, TimingResult] = {}
    for code in PAPER_CODES:
        op = make_reduction_op(get_algorithm(code))
        # engine="object": the figure ranks the *algorithms'* per-element
        # costs, which the paper measures as straight accumulator loops; the
        # vector engine's SIMD carry folds make K/CP beat ST's sequential
        # dependency chain and would invert the paper's ranking.
        timings[code] = time_callable(
            lambda op=op: comm.reduce(chunks, op, tree="balanced", engine="object"),
            label=code,
            repeats=repeats,
            warmup=2,
        )
    return timings


def run(scale: "Scale | str | None" = None) -> ExperimentResult:
    scale = scale if isinstance(scale, Scale) else resolve_scale(scale)
    timings = measure_timings(
        scale.fig4_n_terms // scale.fig4_n_ranks,
        scale.fig4_n_ranks,
        scale.fig4_repeats,
        scale.seed + 4,
    )
    st_mean = timings["ST"].mean
    rows = tuple(
        {
            "algorithm": code,
            "mean_seconds": timings[code].mean,
            "best_seconds": timings[code].best,
            "penalty_vs_ST": timings[code].mean / st_mean,
        }
        for code in PAPER_CODES
    )
    text = render_table(
        ["algorithm", "mean_seconds", "best_seconds", "penalty_vs_ST"],
        [
            [r["algorithm"], r["mean_seconds"], r["best_seconds"], r["penalty_vs_ST"]]
            for r in rows
        ],
        title=(
            f"sum of {scale.fig4_n_terms} terms across {scale.fig4_n_ranks} "
            f"simulated ranks, {scale.fig4_repeats} repeats, warmed cache"
        ),
    )
    # rank on best-of-N: the min is far more robust to scheduler noise and
    # co-running processes than the mean (classic timing methodology)
    bests = [timings[c].best for c in PAPER_CODES]
    checks = {
        "cost ranking ST < K < CP < PR (best-of-N)": all(
            bests[i] < bests[i + 1] for i in range(len(bests) - 1)
        ),
        "every best-time penalty >= 1": all(
            timings[c].best >= timings["ST"].best for c in PAPER_CODES
        ),
    }
    return ExperimentResult(
        experiment_id="fig4",
        title="Execution time (Fig. 4) and penalty vs ST (Fig. 5)",
        scale=scale.name,
        rows=rows,
        text=text,
        checks=checks,
    )
