"""Fig. 9 — error variability over the (k, dr) space at fixed concurrency.

Paper finding: "The darker cells toward the top and right of the two leftmost
grids indicate sets of summands whose sums varied much more ... for sets of
summands with lower condition number [variation is lower]. ... for all
considered sets of summands, the result according to the composite precision
summation did not vary with changes in the reduction tree."

Shape checks:
* ST variability increases strongly with k (Spearman over k at every dr
  >= 0.9);
* K variability also increases with k but sits below ST;
* CP's grid is everywhere at least 6 decades below ST's peak (the paper
  renders it as uniformly light).
"""

from __future__ import annotations

import math

import numpy as np

from repro.experiments.config import ExperimentResult, Scale, resolve_scale
from repro.experiments.fig3_cancellation import spearman
from repro.experiments.grid import GridCellResult, format_k, grid_sweep
from repro.viz.heatmap import render_value_grid

__all__ = ["run", "sweep_kdr"]

_CODES = ("ST", "K", "CP")


def sweep_kdr(scale: Scale, codes=_CODES, extra_codes=()) -> list[GridCellResult]:
    """The (k, dr) sweep at fixed n = scale.grid_n (shared with Fig. 12)."""
    return grid_sweep(
        n_values=[scale.grid_n],
        k_values=[10.0**d for d in scale.grid_k_decades],
        dr_values=list(scale.grid_dr_values),
        codes=tuple(codes) + tuple(extra_codes),
        n_trees=scale.grid_n_trees,
        seed=scale.seed + 9,
    )


def run(scale: "Scale | str | None" = None) -> ExperimentResult:
    scale = scale if isinstance(scale, Scale) else resolve_scale(scale)
    cells = sweep_kdr(scale)

    k_labels = [format_k(10.0**d) for d in scale.grid_k_decades]
    dr_labels = [str(dr) for dr in scale.grid_dr_values]
    texts = []
    rows: list[dict] = []
    by_code_values: dict[str, dict[tuple[str, str], float]] = {c: {} for c in _CODES}
    for cell in cells:
        rk = format_k(cell.condition)
        for code in _CODES:
            by_code_values[code][(rk, str(cell.dynamic_range))] = cell.rel_std(code)
            rows.append(
                {
                    "k": cell.condition,
                    "dr": cell.dynamic_range,
                    "algorithm": code,
                    "rel_std": cell.rel_std(code),
                    "abs_std": cell.abs_std(code),
                    "achieved_k": cell.achieved_condition,
                }
            )
    for code in _CODES:
        texts.append(
            render_value_grid(
                k_labels,
                dr_labels,
                by_code_values[code],
                title=f"{code}: relative std of errors, n={scale.grid_n} "
                f"(rows: condition number k, cols: dynamic range dr)",
            )
        )

    # --- shape checks -------------------------------------------------------
    ks = np.array([10.0**d for d in scale.grid_k_decades])

    def column(code: str, dr: int) -> np.ndarray:
        vals = {
            cell.condition: cell.rel_std(code)
            for cell in cells
            if cell.dynamic_range == dr
        }
        return np.array([vals[k] for k in ks])

    st_rhos = [spearman(ks, column("ST", dr)) for dr in scale.grid_dr_values]
    k_rhos = [spearman(ks, column("K", dr)) for dr in scale.grid_dr_values]
    st_peak = max(cell.rel_std("ST") for cell in cells)
    cp_peak = max(cell.rel_std("CP") for cell in cells)
    st_ge_k = sum(
        1 for cell in cells if cell.rel_std("ST") >= cell.rel_std("K")
    )
    checks = {
        "ST variability rises with k at every dr (rho >= 0.9)": all(
            r >= 0.9 for r in st_rhos
        ),
        "K variability rises with k (rho >= 0.8)": all(r >= 0.8 for r in k_rhos),
        "K below ST in >= 90% of cells": st_ge_k >= 0.9 * len(cells),
        "CP uniformly light (>= 6 decades below ST peak)": cp_peak
        <= st_peak * 1e-6,
    }
    return ExperimentResult(
        experiment_id="fig9",
        title="(k, dr) grid of error variability at fixed n",
        scale=scale.name,
        rows=tuple(rows),
        text="\n\n".join(texts),
        checks=checks,
    )
