"""Extension experiment: allreduce strategy choice changes bits.

Production MPI libraries switch allreduce algorithms by message size and
communicator shape; the application never sees which one ran.  This
experiment quantifies the consequence for each summation operator: values
under recursive doubling vs ring reduce-scatter, cross-rank consistency
within one collective, and whether the operator's guarantee survives the
strategy switch.

Checks: strategies disagree for ST on cancelling data; the Kahan butterfly
leaves different ranks with different values (the classic consistency
hazard); the ring agrees across ranks for every operator; PR is bitwise
identical across strategies, segment counts, and ranks.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.config import ExperimentResult, Scale, resolve_scale
from repro.generators.conditioned import zero_sum_set
from repro.mpi.allreduce import allreduce_recursive_doubling, allreduce_ring
from repro.mpi.comm import SimComm
from repro.mpi.ops import make_reduction_op
from repro.summation.registry import get_algorithm
from repro.util.rng import derive_seed
from repro.viz.tables import render_table

__all__ = ["run"]

_CODES = ("ST", "K", "CP", "PR")


def run(scale: "Scale | str | None" = None) -> ExperimentResult:
    scale = scale if isinstance(scale, Scale) else resolve_scale(scale)
    n = max(scale.fig6_n * 8, 16_000)
    n_ranks = 10  # non-power-of-two: exercises the butterfly pre-fold
    data = zero_sum_set(n, dr=32, seed=derive_seed(scale.seed, "extallreduce"))
    chunks = SimComm(n_ranks).scatter_array(data)

    rows: list[dict] = []
    per_code: dict[str, dict] = {}
    for code in _CODES:
        op = make_reduction_op(get_algorithm(code))
        bf = allreduce_recursive_doubling(chunks, op)
        ring = allreduce_ring(chunks, op)
        ring5 = allreduce_ring(chunks, op, segments=5)
        entry = {
            "butterfly_distinct_ranks": len(set(bf)),
            "ring_distinct_ranks": len(set(ring)),
            "strategies_agree": bf[0] == ring[0],
            "segmentation_agrees": ring[0] == ring5[0],
            "butterfly_value": bf[0],
            "ring_value": ring[0],
        }
        per_code[code] = entry
        rows.append({"algorithm": code, **entry})

    # Whether the Kahan butterfly's rank divergence materialises depends on
    # the rounding luck of the particular dataset; the *hazard* is what we
    # assert, so sample several datasets for it.
    k_op = make_reduction_op(get_algorithm("K"))
    kahan_divergence = per_code["K"]["butterfly_distinct_ranks"] > 1
    for trial in range(8):
        if kahan_divergence:
            break
        d = zero_sum_set(n, dr=32, seed=derive_seed(scale.seed, "extallreduce-k", trial))
        bf = allreduce_recursive_doubling(SimComm(n_ranks).scatter_array(d), k_op)
        kahan_divergence = len(set(bf)) > 1

    text = render_table(
        [
            "algorithm",
            "butterfly ranks",
            "ring ranks",
            "strategies agree",
            "segments agree",
            "butterfly value",
            "ring value",
        ],
        [
            [
                r["algorithm"],
                r["butterfly_distinct_ranks"],
                r["ring_distinct_ranks"],
                r["strategies_agree"],
                r["segmentation_agrees"],
                r["butterfly_value"],
                r["ring_value"],
            ]
            for r in rows
        ],
        title=f"allreduce strategies over {n_ranks} ranks, zero-sum data n={n}",
    )
    checks = {
        "strategy choice changes ST's bits": not per_code["ST"]["strategies_agree"],
        "Kahan butterfly can leave ranks inconsistent": kahan_divergence,
        "ring internally consistent for every operator": all(
            per_code[c]["ring_distinct_ranks"] == 1 for c in _CODES
        ),
        "PR identical across strategies, segments and ranks": (
            per_code["PR"]["strategies_agree"]
            and per_code["PR"]["segmentation_agrees"]
            and per_code["PR"]["butterfly_distinct_ranks"] == 1
        ),
        "CP agrees across strategies on this workload": per_code["CP"][
            "strategies_agree"
        ],
    }
    return ExperimentResult(
        experiment_id="extallreduce",
        title="Extension: collective-algorithm choice changes bits",
        scale=scale.name,
        rows=tuple(rows),
        text=text,
        checks=checks,
    )
