"""Extension experiment: end-to-end adaptive selection on a drifting run.

The paper's thesis, staged as a measurable pipeline.  A simulated
application performs a sequence of global reductions whose data drifts
through phases — benign (k = 1), moderately conditioned, and a cancellation
crisis (k = inf) — exactly the "conditioning and dynamic range can change
dramatically over the course of the runtime" scenario of the conclusion.
Four strategies run the same sequence:

* ``static-ST`` — cheapest, ignores the crisis;
* ``static-PR`` — robust, overpays on every benign step;
* ``adaptive`` — fresh profile + selection each step;
* ``streaming`` — smoothed profiles with hysteresis (the production form).

Measured per strategy: tolerance violations (relative ensemble spread above
the budget on any step), total cost in ST-units (profiling overhead
included), and algorithm switches.

Checks: static-ST violates in the crisis; static-PR never violates but costs
the most; both selectors never violate at a fraction of static-PR's cost;
streaming switches no more often than the phase count warrants.
"""

from __future__ import annotations

import math

import numpy as np

from repro.experiments.config import ExperimentResult, Scale, resolve_scale
from repro.generators.conditioned import generate_sum_set, zero_sum_set
from repro.metrics.errors import error_stats
from repro.selection.costmodel import CostModel
from repro.selection.policy import AnalyticPolicy
from repro.selection.streaming import StreamingSelector
from repro.selection.profile import profile_chunk
from repro.summation.registry import get_algorithm
from repro.trees.evaluate import evaluate_ensemble
from repro.util.rng import derive_seed
from repro.viz.tables import render_table

__all__ = ["run", "PHASES"]

#: (phase name, condition number, dynamic range, steps)
PHASES = (
    ("spin-up (benign)", 1.0, 4, 6),
    ("mixing (moderate)", 1e6, 16, 6),
    ("cancellation crisis", math.inf, 32, 4),
    ("recovery (benign)", 1.0, 8, 6),
)

_THRESHOLD = 1e-10
_N = 2048
_TREES = 40


def _step_violates(data: np.ndarray, code: str, seed: int) -> bool:
    vals = evaluate_ensemble(data, "balanced", get_algorithm(code), _TREES, seed=seed)
    stats = error_stats(vals, data)
    if math.isnan(stats.rel_std):
        # exact-zero sum: violation when the spread is nonzero at all
        return stats.spread > 0.0
    return stats.rel_std > _THRESHOLD


def run(scale: "Scale | str | None" = None) -> ExperimentResult:
    scale = scale if isinstance(scale, Scale) else resolve_scale(scale)
    cost_model = CostModel()
    policy = AnalyticPolicy(cost_model=cost_model)

    # build the drifting sequence of per-step datasets
    steps: list[tuple[str, np.ndarray]] = []
    for phase, (name, k, dr, count) in enumerate(PHASES):
        for i in range(count):
            seed = derive_seed(scale.seed, "extselect", phase, i)
            data = (
                zero_sum_set(_N, dr, seed=seed)
                if math.isinf(k)
                else generate_sum_set(_N, k, dr, seed=seed).values
            )
            steps.append((name, data))

    strategies = ("static-ST", "static-PR", "adaptive", "streaming")
    violations = {s: 0 for s in strategies}
    cost = {s: 0.0 for s in strategies}
    switches = {s: 0 for s in strategies}
    streaming = StreamingSelector(policy=policy, threshold=_THRESHOLD, cooldown=2)
    prev_adaptive: str | None = None

    rows: list[dict] = []
    for step_idx, (phase, data) in enumerate(steps):
        seed = derive_seed(scale.seed, "extselect-ens", step_idx)
        chosen: dict[str, str] = {"static-ST": "ST", "static-PR": "PR"}
        profile = profile_chunk(data).as_set_profile()
        adaptive_code = policy.select(profile, _THRESHOLD).code
        chosen["adaptive"] = adaptive_code
        if prev_adaptive is not None and adaptive_code != prev_adaptive:
            switches["adaptive"] += 1
        prev_adaptive = adaptive_code
        chosen["streaming"] = streaming.observe(data).code

        for strat in strategies:
            code = chosen[strat]
            if _step_violates(data, code, seed):
                violations[strat] += 1
            profiled = strat in ("adaptive", "streaming")
            cost[strat] += cost_model.selection_cost(code, _N, profiled=profiled)
        rows.append(
            {
                "step": step_idx,
                "phase": phase,
                "adaptive": chosen["adaptive"],
                "streaming": chosen["streaming"],
            }
        )
    switches["streaming"] = streaming.n_switches

    summary = [
        [s, violations[s], cost[s] / cost["static-ST"], switches.get(s, 0)]
        for s in strategies
    ]
    text = render_table(
        ["strategy", "tolerance violations", "relative cost", "switches"],
        summary,
        title=(
            f"{len(steps)} reductions across {len(PHASES)} phases, n={_N}, "
            f"tolerance {_THRESHOLD:.0e} (relative)"
        ),
    ) + "\n\nper-step choices:\n" + render_table(
        ["step", "phase", "adaptive", "streaming"],
        [[r["step"], r["phase"], r["adaptive"], r["streaming"]] for r in rows],
    )

    n_phase_changes = len(PHASES) - 1
    checks = {
        "static-ST violates during the crisis": violations["static-ST"] > 0,
        "static-PR never violates": violations["static-PR"] == 0,
        "adaptive never violates": violations["adaptive"] == 0,
        "streaming never violates": violations["streaming"] == 0,
        "adaptive cheaper than static-PR": cost["adaptive"] < cost["static-PR"],
        "streaming cheaper than static-PR": cost["streaming"] < cost["static-PR"],
        "streaming switches bounded by phase changes + 1": switches["streaming"]
        <= n_phase_changes + 1,
        "streaming switches no more than adaptive": switches["streaming"]
        <= max(switches["adaptive"], 1),
    }
    return ExperimentResult(
        experiment_id="extselect",
        title="Extension: adaptive selection over a drifting application run",
        scale=scale.name,
        rows=tuple(rows),
        text=text,
        checks=checks,
    )
