"""Extension experiment: the tree-shape *spectrum* between the paper's poles.

The paper evaluates the two extremes of Fig. 1 (completely balanced,
completely unbalanced) and argues that at exascale "reduction trees ... will
vary not only in terms of arrangement of data among their leaves but also in
overall shape".  This extension fills in the spectrum: the skew parameter of
:func:`repro.trees.shapes.skewed` interpolates depth from log2(n) to n-1;
for each shape we evaluate an ensemble of random leaf assignments and record
the spread of the computed sums — the Fig. 7 methodology applied to
intermediate shapes — plus random-shape ensembles.

Checks: ST ensemble spread *grows away from the balanced extreme and then
saturates* — it increases over the shallow half of the spectrum and every
deeper shape stays above the balanced baseline (the growth saturates once
long chains dominate the error, so global monotonicity is not the right
assertion); K sits at or below ST everywhere; CP's spread is zero across the
spectrum; random shapes land within the envelope of the two extremes
(one-decade slack).
"""

from __future__ import annotations

import math

import numpy as np

from repro.exact.superacc import exact_sum_fraction
from repro.experiments.config import ExperimentResult, Scale, resolve_scale
from repro.generators.conditioned import zero_sum_set
from repro.summation.registry import get_algorithm
from repro.trees.evaluate import evaluate_ensemble
from repro.trees.shapes import random_shape, skewed
from repro.trees.tree import ReductionTree
from repro.util.rng import derive_seed
from repro.viz.tables import render_table

__all__ = ["run"]

_SKEWS = (0.0, 0.1, 0.25, 0.5, 0.75, 1.0)
_CODES = ("ST", "K", "CP")


def _ensemble_spread(
    tree: ReductionTree, data: np.ndarray, code: str, n_trees: int, seed: int
) -> float:
    # passing the tree routes skewed/random shapes through the compiled
    # level-schedule engine (bitwise-pinned to the node-walk) instead of
    # per-tree Python merges
    vals = evaluate_ensemble(data, tree, get_algorithm(code), n_trees, seed=seed)
    return float(np.max(vals) - np.min(vals))


def run(scale: "Scale | str | None" = None) -> ExperimentResult:
    scale = scale if isinstance(scale, Scale) else resolve_scale(scale)
    n = min(scale.fig6_n, 1024)
    n_trees = min(scale.fig6_n_trees, 30)
    data = zero_sum_set(n, dr=32, seed=derive_seed(scale.seed, "extshapes"))

    rows: list[dict] = []
    depths: list[int] = []
    st_spreads: list[float] = []
    for skew in _SKEWS:
        tree = skewed(n, skew)
        row: dict = {"skew": skew, "depth": tree.depth()}
        for code in _CODES:
            row[code] = _ensemble_spread(
                tree, data, code, n_trees, derive_seed(scale.seed, "extshapes-e", code)
            )
        rows.append(row)
        depths.append(row["depth"])
        st_spreads.append(row["ST"])

    random_spreads = [
        _ensemble_spread(
            random_shape(n, seed=derive_seed(scale.seed, "extshapes-rand", i)),
            data,
            "ST",
            n_trees,
            derive_seed(scale.seed, "extshapes-rande", i),
        )
        for i in range(5)
    ]

    text = render_table(
        ["skew", "depth", "ST spread", "K spread", "CP spread"],
        [[r["skew"], r["depth"], r["ST"], r["K"], r["CP"]] for r in rows],
        title=(
            f"shape spectrum, zero-sum set n={n}, dr=32, {n_trees} leaf "
            f"assignments per shape; random-shape ST spreads: "
            + ", ".join(f"{e:.1e}" for e in random_spreads)
        ),
    )

    envelope_lo = min(st_spreads)
    envelope_hi = max(st_spreads)
    mid = len(st_spreads) // 2
    checks = {
        "ST spread grows over the shallow half of the spectrum": all(
            st_spreads[i] < st_spreads[i + 1] for i in range(mid)
        ),
        "every deeper shape stays above the balanced baseline": all(
            s >= st_spreads[0] for s in st_spreads[1:]
        ),
        "deepest shape more variable than shallowest for ST": st_spreads[-1]
        > st_spreads[0],
        # Kahan genuinely helps on deep (chain-like) shapes; on balanced
        # shapes its per-merge compensation rounds away and it tracks ST
        # within statistical noise.
        "K clearly below ST on the deep half of the spectrum": all(
            r["K"] < r["ST"] for r in rows[mid:]
        ),
        "K within noise of ST on shallow shapes (<= 1.3x)": all(
            r["K"] <= r["ST"] * 1.3 for r in rows[:mid]
        ),
        "CP spread zero across the spectrum": all(r["CP"] == 0.0 for r in rows),  # repro: allow[FP001] -- zero spread means bitwise-identical ensemble results
        "random shapes inside the extremes' envelope (1-decade slack)": all(
            envelope_lo / 10 <= e <= envelope_hi * 10 for e in random_spreads
        ),
    }
    return ExperimentResult(
        experiment_id="extshapes",
        title="Extension: variability across the tree-shape spectrum",
        scale=scale.name,
        rows=tuple(rows),
        text=text,
        checks=checks,
    )
