"""Shared machinery for the grid experiments (Figs. 9-12).

Sec. V.C: "We represent the spaces of (k, dr), (n, dr), and (n, k) as a grid
of cells, where for each cell we generate a set of floating-point values with
the cell parameters.  ... we measure their potential for irreproducibility by
computing their sum with 1,000 distinct, balanced reduction trees obtained by
permuting the assignment of summands to leaves.  ... the error in each sum is
calculated with respect to an accurate reference sum ... we compute the
standard deviation of the errors and shade the cell according to that value."

Cells are independent, so the sweep fans out via
:func:`repro.util.parallel.map_parallel` onto the process-global persistent
worker pool (:mod:`repro.util.pool`): workers stay warm between sweeps, so
back-to-back grids pay process spin-up once, not per call.  Results keep
axis order; workers receive only picklable parameter tuples and derive
their RNG streams from stable integer seeds, making the sweep bitwise
independent of worker count and chunking.  Inside each cell the ~1000-tree
ensemble itself is batched: :func:`repro.trees.evaluate.evaluate_ensemble`
evaluates whole permutation blocks per NumPy call (matrix sweeps for the
balanced/serial extremes, compiled level schedules for arbitrary shapes).

Shading metric: the *relative* standard deviation (std of errors divided by
the magnitude of the exact sum).  With magnitudes fixed by the generator, the
absolute error std is nearly k-independent — it is the relative spread that
reproduces the paper's strong-condition-number / weak-dynamic-range shading
(see EXPERIMENTS.md for the full argument).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.exact.superacc import exact_sum_fraction
from repro.generators.conditioned import generate_sum_set
from repro.metrics.errors import ErrorStats, error_stats
from repro.metrics.properties import condition_number
from repro.summation.registry import get_algorithm
from repro.trees.evaluate import evaluate_ensemble
from repro.util.parallel import map_parallel
from repro.util.rng import derive_seed

__all__ = ["GridCellResult", "grid_sweep", "format_k", "format_n"]


@dataclass(frozen=True)
class GridCellResult:
    """Measured irreproducibility of one grid cell."""

    n: int
    condition: float  # requested k
    dynamic_range: int
    achieved_condition: float
    stats: Mapping[str, ErrorStats]  # algorithm code -> ensemble stats

    def rel_std(self, code: str) -> float:
        return self.stats[code].rel_std

    def abs_std(self, code: str) -> float:
        return self.stats[code].std


def _run_cell(payload: tuple) -> GridCellResult:
    """Worker: generate the cell's set, run every algorithm's ensemble."""
    (base_seed, n, k, dr, codes, n_trees, shape) = payload
    k = math.inf if k == "inf" else float(k)
    set_seed = derive_seed(base_seed, "set", n, int(dr), repr(k))
    data = generate_sum_set(n, k, dr, seed=set_seed).values
    # one superaccumulator pass per cell, shared by every algorithm's stats
    exact = exact_sum_fraction(data)
    stats: dict[str, ErrorStats] = {}
    for code in codes:
        alg = get_algorithm(code)
        ens_seed = derive_seed(base_seed, "trees", n, int(dr), repr(k), code)
        values = evaluate_ensemble(data, shape, alg, n_trees, seed=ens_seed)
        stats[code] = error_stats(values, data, exact=exact)
    return GridCellResult(
        n=n,
        condition=k,
        dynamic_range=dr,
        achieved_condition=condition_number(data),
        stats=stats,
    )


def grid_sweep(
    *,
    n_values: Sequence[int],
    k_values: Sequence[float],
    dr_values: Sequence[int],
    codes: Sequence[str],
    n_trees: int,
    seed: int,
    shape: str = "balanced",
    workers: "int | None" = None,
) -> list[GridCellResult]:
    """Measure every (n, k, dr) cell; returns cells in axis order."""
    payloads = [
        (seed, int(n), ("inf" if math.isinf(k) else float(k)), int(dr),
         tuple(codes), int(n_trees), shape)
        for n in n_values
        for k in k_values
        for dr in dr_values
    ]
    return map_parallel(_run_cell, payloads, workers=workers)


def format_k(k: float) -> str:
    """Grid label for a condition number."""
    if math.isinf(k):
        return "inf"
    d = math.log10(k)
    return f"1e{d:.0f}" if d == int(d) else f"{k:.1g}"


def format_n(n: int) -> str:
    """Grid label for a concurrency level (8192 -> '8K', 1048576 -> '1M')."""
    if n % (1 << 20) == 0:
        return f"{n >> 20}M"
    if n % 1024 == 0:
        return f"{n >> 10}K"
    return str(n)
