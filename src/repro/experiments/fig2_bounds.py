"""Fig. 2 — measured error magnitudes vs worst-case bounds.

Paper setup: "we measure the error magnitudes for 10,000 values sampled in
the range (-1000, +1000) and summed by using 10,000 different summation
orders", overlaid with the analytical (Higham) and statistical worst-case
bounds.  Finding: "Both error bounds significantly overestimate the error
magnitude", while the measured errors themselves span a wide range purely
from reshuffling.

Shape checks asserted here:
* the analytical bound exceeds the largest observed error by >= 2 decades;
* the statistical bound lies below the analytical bound but still above the
  max observed error;
* shuffling alone spreads observed errors over at least one decade.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exact.superacc import exact_sum_fraction
from repro.experiments.config import ExperimentResult, Scale, resolve_scale
from repro.generators.distributions import uniform_symmetric
from repro.metrics.bounds import analytical_bound, statistical_bound
from repro.trees.serial_batch import serial_ensemble_standard
from repro.util.rng import permutation_stream, resolve_rng
from repro.viz.tables import render_table

__all__ = ["run"]


def run(scale: "Scale | str | None" = None) -> ExperimentResult:
    scale = scale if isinstance(scale, Scale) else resolve_scale(scale)
    rng = resolve_rng(scale.seed)
    data = uniform_symmetric(scale.fig2_n_values, 1000.0, rng)

    # sum under many random serial orders (batched cumsum ensemble)
    values = np.empty(scale.fig2_n_orders, dtype=np.float64)
    batch: list[np.ndarray] = []
    start = 0
    for p in permutation_stream(data.size, scale.fig2_n_orders, rng):
        batch.append(data[p])
        if len(batch) == 64:
            values[start : start + 64] = serial_ensemble_standard(np.vstack(batch))
            start += 64
            batch = []
    if batch:
        values[start : start + len(batch)] = serial_ensemble_standard(np.vstack(batch))

    exact = exact_sum_fraction(data)
    from fractions import Fraction

    errs = np.abs(np.array([float(Fraction(float(v)) - exact) for v in values]))
    nonzero = errs[errs > 0]
    a_bound = analytical_bound(data)
    s_bound = statistical_bound(data)

    rows = tuple(
        [
            {"quantity": "min |error|", "value": float(errs.min())},
            {"quantity": "median |error|", "value": float(np.median(errs))},
            {"quantity": "max |error|", "value": float(errs.max())},
            {"quantity": "statistical bound (3 sigma)", "value": s_bound},
            {"quantity": "analytical bound (Higham)", "value": a_bound},
            {
                "quantity": "overestimation factor (analytical/max)",
                "value": a_bound / errs.max() if errs.max() else math.inf,
            },
        ]
    )
    text = render_table(
        ["quantity", "value"],
        [(r["quantity"], r["value"]) for r in rows],
        title=(
            f"{scale.fig2_n_values} values U(-1000,1000), "
            f"{scale.fig2_n_orders} random summation orders"
        ),
    )
    spread_decades = (
        math.log10(nonzero.max() / nonzero.min()) if nonzero.size >= 2 else 0.0
    )
    checks = {
        "analytical bound >= 100x max observed error": a_bound >= 100 * errs.max(),
        "statistical < analytical bound": s_bound < a_bound,
        "statistical bound still above max error": s_bound > errs.max(),
        "reshuffling spreads errors >= 1 decade": spread_decades >= 1.0,
    }
    return ExperimentResult(
        experiment_id="fig2",
        title="Error magnitudes vs worst-case bounds",
        scale=scale.name,
        rows=rows,
        text=text,
        checks=checks,
    )
