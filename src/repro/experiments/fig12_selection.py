"""Fig. 12 — cheapest acceptably-accurate algorithm per (k, dr) cell.

Paper setup: "we show the (k, dr) grid for several error variability
thresholds (left to right: t = 5e-13, 3e-13, 2.5e-13, 1.5e-13, 5e-14).  Here
cells are shaded based on the cheapest summation algorithm that achieves a
given degree of reproducibility at that cell.  As we reduce the variability
threshold ... we see that increasingly costly summation algorithms are
required for the more challenging regions."

This experiment *is* the selector's calibration: the measured (k, dr) grid
(Fig. 9's sweep, now including PR) feeds a
:class:`~repro.selection.classifier.GridClassifier`, whose decision grids are
rendered per threshold.

Shape checks:
* per cell, the chosen algorithm's cost rank is non-decreasing as t tightens;
* the cheapest algorithm count (ST cells) is non-increasing and the PR/CP
  count non-decreasing as t tightens;
* harder cells (higher k) never need a cheaper algorithm than easier cells
  in the same column at the same threshold.
"""

from __future__ import annotations

import math

from repro.experiments.config import ExperimentResult, Scale, resolve_scale
from repro.experiments.fig9_kdr import sweep_kdr
from repro.experiments.grid import format_k
from repro.selection.classifier import GridCell, GridClassifier
from repro.selection.costmodel import CostModel
from repro.viz.heatmap import render_category_grid

__all__ = ["run", "PAPER_THRESHOLDS", "classifier_from_sweep"]

#: the five thresholds of Fig. 12, left to right
PAPER_THRESHOLDS: tuple[float, ...] = (5e-13, 3e-13, 2.5e-13, 1.5e-13, 5e-14)

_CODES = ("ST", "K", "CP", "PR")


def classifier_from_sweep(cells) -> GridClassifier:
    """Wrap a grid sweep's measurements as a calibrated classifier."""
    grid_cells = [
        GridCell(
            n=c.n,
            condition=c.condition,
            dynamic_range=c.dynamic_range,
            stds={code: c.rel_std(code) for code in _CODES},
        )
        for c in cells
    ]
    return GridClassifier(grid_cells, CostModel())


def run(scale: "Scale | str | None" = None) -> ExperimentResult:
    scale = scale if isinstance(scale, Scale) else resolve_scale(scale)
    sweep = sweep_kdr(scale, codes=_CODES)
    classifier = classifier_from_sweep(sweep)
    cost_rank = {code: i for i, code in enumerate(_CODES)}

    k_labels = [format_k(10.0**d) for d in scale.grid_k_decades]
    dr_labels = [str(dr) for dr in scale.grid_dr_values]

    texts: list[str] = []
    rows: list[dict] = []
    decisions: dict[float, dict[tuple[float, int], str]] = {}
    for t in PAPER_THRESHOLDS:
        grid = classifier.decision_grid(t)
        labels = {}
        per_cell = {}
        for cell, code in grid:
            labels[(format_k(cell.condition), str(cell.dynamic_range))] = code
            per_cell[(cell.condition, cell.dynamic_range)] = code
            rows.append(
                {
                    "threshold": t,
                    "k": cell.condition,
                    "dr": cell.dynamic_range,
                    "choice": code,
                }
            )
        decisions[t] = per_cell
        texts.append(
            render_category_grid(
                k_labels,
                dr_labels,
                labels,
                title=f"cheapest acceptable algorithm at t = {t:.1e} "
                "(rows: k, cols: dr)",
            )
        )

    # --- checks -------------------------------------------------------------
    cell_keys = list(decisions[PAPER_THRESHOLDS[0]])
    monotone_cells = all(
        all(
            cost_rank[decisions[PAPER_THRESHOLDS[i]][key]]
            <= cost_rank[decisions[PAPER_THRESHOLDS[i + 1]][key]]
            for i in range(len(PAPER_THRESHOLDS) - 1)
        )
        for key in cell_keys
    )
    st_counts = [
        sum(1 for v in decisions[t].values() if v == "ST") for t in PAPER_THRESHOLDS
    ]
    robust_counts = [
        sum(1 for v in decisions[t].values() if v in ("CP", "PR"))
        for t in PAPER_THRESHOLDS
    ]
    monotone_k = all(
        cost_rank[decisions[t][(k1, dr)]] <= cost_rank[decisions[t][(k2, dr)]]
        for t in PAPER_THRESHOLDS
        for dr in scale.grid_dr_values
        for k1, k2 in zip(
            [10.0**d for d in scale.grid_k_decades],
            [10.0**d for d in scale.grid_k_decades][1:],
        )
    )
    checks = {
        "per-cell escalation as t tightens": monotone_cells,
        "ST cell count non-increasing with tighter t": all(
            st_counts[i] >= st_counts[i + 1] for i in range(len(st_counts) - 1)
        ),
        "CP/PR cell count non-decreasing with tighter t": all(
            robust_counts[i] <= robust_counts[i + 1]
            for i in range(len(robust_counts) - 1)
        ),
        "higher k never needs a cheaper algorithm (same dr, t)": monotone_k,
        "selection is non-trivial (>= 2 algorithms appear)": any(
            len(set(decisions[t].values())) >= 2 for t in PAPER_THRESHOLDS
        ),
    }
    return ExperimentResult(
        experiment_id="fig12",
        title="Runtime selection of the cheapest acceptable algorithm",
        scale=scale.name,
        rows=tuple(rows),
        text="\n\n".join(texts),
        checks=checks,
    )
