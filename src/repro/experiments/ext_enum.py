"""Extension experiment: the complete value space of small reductions.

Reproduces and completes the Chiang et al. [3] study the paper builds on
(Sec. II.B): instead of three hand-picked trees over eight values, we
enumerate *all* Catalan(7) = 429 shapes over eight summands and map every
achievable value, for each summation algorithm — the exact nondeterminism
envelope an 8-way reduction exposes.

Checks: ST achieves more than one value over shapes alone (the [3] result);
adding leaf assignments grows (or keeps) the value space; PR and the exact
oracle achieve exactly one value across the full space; CP's space is no
larger than ST's.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.config import ExperimentResult, Scale, resolve_scale
from repro.generators.conditioned import zero_sum_set
from repro.summation.registry import get_algorithm
from repro.trees.enumeration import achievable_values, n_shapes
from repro.util.rng import derive_seed
from repro.viz.tables import render_table

__all__ = ["run"]

_N = 8
_CODES = ("ST", "K", "CP", "PR", "EX")


def run(scale: "Scale | str | None" = None) -> ExperimentResult:
    scale = scale if isinstance(scale, Scale) else resolve_scale(scale)
    # eight values prone to alignment error and cancellation, like [3]'s
    # second study but harsher (theirs were well-conditioned)
    data = zero_sum_set(_N, dr=16, seed=derive_seed(scale.seed, "extenum"))

    rows: list[dict] = []
    spaces = {}
    spaces_with_perms = {}
    for code in _CODES:
        alg = get_algorithm(code)
        shape_only = achievable_values(data, alg, n_assignments=1)
        with_perms = achievable_values(
            data, alg, n_assignments=24, seed=derive_seed(scale.seed, "extenum-p", code)
        )
        spaces[code] = shape_only
        spaces_with_perms[code] = with_perms
        rows.append(
            {
                "algorithm": code,
                "shapes": shape_only.n_shapes,
                "distinct_shape_only": shape_only.n_distinct,
                "distinct_with_24_assignments": with_perms.n_distinct,
                "spread": with_perms.spread,
            }
        )

    text = render_table(
        ["algorithm", "shapes", "distinct (shapes only)", "distinct (+24 perms)", "spread"],
        [
            [r["algorithm"], r["shapes"], r["distinct_shape_only"], r["distinct_with_24_assignments"], r["spread"]]
            for r in rows
        ],
        title=(
            f"complete value space of an {_N}-operand reduction "
            f"(all {n_shapes(_N)} shapes enumerated); zero-sum data, dr=16"
        ),
    )
    checks = {
        "[3] reproduced: shape alone makes ST multi-valued": spaces["ST"].n_distinct > 1,
        "assignments only enlarge (or keep) the value space": all(
            spaces_with_perms[c].n_distinct >= spaces[c].n_distinct for c in _CODES
        ),
        "PR single-valued across the complete space": spaces_with_perms["PR"].n_distinct == 1,
        "exact oracle single-valued across the complete space": spaces_with_perms["EX"].n_distinct
        == 1,
        "CP's value space no larger than ST's": spaces_with_perms["CP"].n_distinct
        <= spaces_with_perms["ST"].n_distinct,
    }
    return ExperimentResult(
        experiment_id="extenum",
        title="Extension: complete value space of small reductions (after [3])",
        scale=scale.name,
        rows=tuple(rows),
        text=text,
        checks=checks,
    )
