"""Aggregate experiment JSON outputs into one markdown report.

``repro-experiments run all --out results/`` leaves one JSON per
experiment; ``repro-experiments report results/ -o REPORT.md`` folds them
into a single human-readable summary: per experiment, the scale it ran at,
its shape checks, and a compact excerpt of its rows.  Useful as the artifact
attached to a reproduction claim.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

__all__ = ["build_report", "collect_payloads"]


def collect_payloads(directory: "str | Path") -> list[dict]:
    """Load every ``*_<scale>.json`` experiment payload under ``directory``."""
    directory = Path(directory)
    if not directory.is_dir():
        raise FileNotFoundError(f"no such results directory: {directory}")
    payloads = []
    for path in sorted(directory.glob("*.json")):
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError:
            continue
        if isinstance(data, dict) and {"experiment", "checks"} <= set(data):
            data["_file"] = path.name
            payloads.append(data)
    return payloads


def _order_key(payload: dict) -> tuple:
    order = [
        "table1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
        "fig9", "fig10", "fig11", "fig12",
        "extshapes", "extfaults", "extdot", "extenum", "extselect", "extallreduce",
    ]
    exp = payload.get("experiment", "")
    idx = order.index(exp) if exp in order else len(order)
    return (idx, payload.get("scale", ""))


def build_report(directory: "str | Path", *, max_rows: int = 6) -> str:
    """Render the markdown report for every payload under ``directory``."""
    payloads = sorted(collect_payloads(directory), key=_order_key)
    if not payloads:
        raise ValueError(f"no experiment payloads found under {directory}")
    lines: list[str] = [
        "# Reproduction report",
        "",
        f"{len(payloads)} experiment run(s) aggregated from `{directory}`.",
        "",
    ]
    n_checks = n_pass = 0
    for p in payloads:
        checks = p.get("checks", {})
        n_checks += len(checks)
        n_pass += sum(1 for v in checks.values() if v)
    lines.append(f"**Shape checks: {n_pass}/{n_checks} pass.**")
    lines.append("")
    for p in payloads:
        checks = p.get("checks", {})
        ok = all(checks.values())
        lines.append(
            f"## {p['experiment']} — {p.get('title', '')} "
            f"({p.get('scale', '?')} scale) {'✅' if ok else '❌'}"
        )
        lines.append("")
        for name, passed in checks.items():
            lines.append(f"- [{'x' if passed else ' '}] {name}")
        rows = p.get("rows", [])
        if rows:
            lines.append("")
            lines.append(f"<details><summary>{len(rows)} data rows "
                         f"(first {min(max_rows, len(rows))} shown)</summary>")
            lines.append("")
            lines.append("```json")
            for row in rows[:max_rows]:
                lines.append(json.dumps(row, default=str))
            lines.append("```")
            lines.append("</details>")
        lines.append("")
    return "\n".join(lines)
