"""Fig. 3 — cancellation counts do not predict error magnitude.

Paper setup: 1,000 values uniform in [-1, 1], summed under 100 distinct
orders; CADNA (here: our CESTAC substrate) counts cancellations by digit-loss
severity {1, 2, 4, 8}; error magnitudes are measured per order.  Finding:
"the number of cancellations, at any of the considered severities, does not
consistently predict error magnitude", with the concrete counterexample of
an order having ~5x the cancellations of another but only half the error.

Shape checks:
* the rank correlation between every severity count and |error| stays well
  below 1 (no consistent prediction);
* a concrete counterexample pair exists (more cancellations, smaller error).
"""

from __future__ import annotations

import math
from fractions import Fraction

import numpy as np

from repro.cestac.cancellation import SEVERITY_DIGITS, track_cancellations
from repro.exact.superacc import exact_sum_fraction
from repro.experiments.config import ExperimentResult, Scale, resolve_scale
from repro.generators.distributions import uniform_symmetric
from repro.util.rng import permutation_stream, resolve_rng
from repro.viz.tables import render_table

__all__ = ["run", "spearman"]


def spearman(a: np.ndarray, b: np.ndarray) -> float:
    """Spearman rank correlation (ties broken by average rank)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.size != b.size or a.size < 3:
        raise ValueError("need two equal-length vectors of size >= 3")

    def ranks(x: np.ndarray) -> np.ndarray:
        order = np.argsort(x, kind="stable")
        r = np.empty_like(x)
        r[order] = np.arange(1, x.size + 1, dtype=np.float64)
        # average ranks over ties
        for v in np.unique(x):
            mask = x == v
            if mask.sum() > 1:
                r[mask] = r[mask].mean()
        return r

    ra, rb = ranks(a), ranks(b)
    ra -= ra.mean()
    rb -= rb.mean()
    denom = math.sqrt(float((ra**2).sum() * (rb**2).sum()))
    if denom == 0.0:  # repro: allow[FP001] -- zero-denominator guard
        return 0.0
    return float((ra * rb).sum() / denom)


def run(scale: "Scale | str | None" = None) -> ExperimentResult:
    scale = scale if isinstance(scale, Scale) else resolve_scale(scale)
    rng = resolve_rng(scale.seed + 3)
    data = uniform_symmetric(scale.fig3_n_values, 1.0, rng)
    exact = exact_sum_fraction(data)

    rows: list[dict] = []
    for i, p in enumerate(
        permutation_stream(data.size, scale.fig3_n_orders, rng)
    ):
        ordered = data[p]
        report = track_cancellations(ordered)
        value = float(np.cumsum(ordered)[-1])
        err = abs(float(Fraction(value) - exact))
        row = {"order": i, "error": err, "total_events": report.total_events}
        row.update({f"loss>={d}": c for d, c in report.counts.items()})
        rows.append(row)

    errors = np.array([r["error"] for r in rows])
    correlations = {
        d: spearman(np.array([r[f"loss>={d}"] for r in rows]), errors)
        for d in SEVERITY_DIGITS
    }

    # hunt the paper's counterexample: order A with clearly more
    # cancellations than order B yet clearly less error
    counterexample = None
    counts1 = np.array([r["loss>=1"] for r in rows], dtype=np.float64)
    for i in range(len(rows)):
        for j in range(len(rows)):
            if (
                counts1[i] >= 2.0 * max(counts1[j], 1.0)
                and errors[i] > 0
                and errors[i] <= 0.5 * errors[j]
            ):
                counterexample = (j, i)  # (few-cancellation/high-error, many/low)
                break
        if counterexample:
            break

    display = rows[: min(10, len(rows))]
    headers = ["order", *(f"loss>={d}" for d in SEVERITY_DIGITS), "error"]
    text = render_table(
        headers,
        [[r["order"], *(r[f"loss>={d}"] for d in SEVERITY_DIGITS), r["error"]] for r in display],
        title=(
            f"{scale.fig3_n_values} values U(-1,1), {scale.fig3_n_orders} orders "
            f"(first {len(display)} shown); Spearman(count, error): "
            + ", ".join(f">={d}d: {c:+.2f}" for d, c in correlations.items())
        ),
    )
    checks = {
        "no severity's count strongly predicts error (|rho| < 0.8)": all(
            abs(c) < 0.8 for c in correlations.values()
        ),
        "counterexample exists (2x cancellations, <= half the error)": counterexample
        is not None,
    }
    return ExperimentResult(
        experiment_id="fig3",
        title="Cancellations vs error magnitude",
        scale=scale.name,
        rows=tuple(rows),
        text=text,
        checks=checks,
    )
