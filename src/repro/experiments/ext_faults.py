"""Extension experiment: fault-induced shape variability vs reproducibility.

Sec. V.B predicts exascale reduction trees will change shape "to cope with
intermittent faults and inconsistently available resources" but the paper
never injects faults.  This extension does: a sweep over per-rank stall
probabilities drives the arrival-order reducer, and we record, per summation
algorithm, how many distinct values repeated runs produce and how much the
realised tree depth wanders.

Checks: ST's distinct-value count grows with fault rate; PR stays at exactly
one value at every fault rate; completion time grows with fault rate.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.config import ExperimentResult, Scale, resolve_scale
from repro.generators.series import zero_sum_series
from repro.mpi.comm import SimComm
from repro.mpi.faults import FaultModel, run_campaign
from repro.mpi.ops import make_reduction_op
from repro.mpi.topology import MachineTopology
from repro.summation.registry import get_algorithm
from repro.util.rng import derive_seed
from repro.viz.tables import render_table

__all__ = ["run"]

_FAULT_PROBS = (0.0, 0.05, 0.15, 0.35)
_CODES = ("ST", "K", "CP", "PR")


def run(scale: "Scale | str | None" = None) -> ExperimentResult:
    scale = scale if isinstance(scale, Scale) else resolve_scale(scale)
    topo = MachineTopology(nodes=4, sockets_per_node=2, cores_per_socket=4)
    n_runs = 25 if scale.name != "paper" else 100
    data = zero_sum_series(topo.n_ranks * 2000, seed=derive_seed(scale.seed, "extfaults"))

    rows: list[dict] = []
    distinct = {code: [] for code in _CODES}
    mean_times: list[float] = []
    depth_spread: list[int] = []
    for fp in _FAULT_PROBS:
        comm = SimComm(topology=topo, seed=derive_seed(scale.seed, "extfaults", int(fp * 100)))
        chunks = comm.scatter_array(data)
        model = FaultModel(jitter=0.2, fault_prob=fp, fault_delay=30.0)
        for code in _CODES:
            campaign = run_campaign(
                comm, chunks, make_reduction_op(get_algorithm(code)), model, n_runs
            )
            rows.append(
                {
                    "fault_prob": fp,
                    "algorithm": code,
                    "distinct_values": campaign.n_distinct_values,
                    "depth_min": int(campaign.depths.min()),
                    "depth_max": int(campaign.depths.max()),
                    "mean_time": float(campaign.times.mean()),
                }
            )
            distinct[code].append(campaign.n_distinct_values)
            if code == "ST":
                mean_times.append(float(campaign.times.mean()))
                depth_spread.append(int(campaign.depths.max() - campaign.depths.min()))

    text = render_table(
        ["fault_prob", "algorithm", "distinct_values", "depth_min", "depth_max", "mean_time"],
        [
            [r["fault_prob"], r["algorithm"], r["distinct_values"], r["depth_min"], r["depth_max"], r["mean_time"]]
            for r in rows
        ],
        title=f"fault sweep, {topo.n_ranks} ranks, {n_runs} runs per cell",
    )
    checks = {
        "ST irreproducible under nondeterminism (distinct > 1 at every rate)": all(
            d > 1 for d in distinct["ST"]
        ),
        "faults increase ST variability (max rate >= no-fault rate)": distinct["ST"][-1]
        >= distinct["ST"][0],
        "PR bitwise constant at every fault rate": all(d == 1 for d in distinct["PR"]),
        "CP constant or near-constant (<= 2 distinct values)": all(
            d <= 2 for d in distinct["CP"]
        ),
        "completion time grows with fault rate": mean_times[-1] > mean_times[0],
    }
    return ExperimentResult(
        experiment_id="extfaults",
        title="Extension: fault-injected shape variability",
        scale=scale.name,
        rows=tuple(rows),
        text=text,
        checks=checks,
    )
