"""Fig. 11 — error variability over the (n, k) space at fixed dynamic range.

Paper finding: "we observe a strong relationship between high variability of
sums and sets of summands with high condition number" — the k axis dominates
the n axis.

Shape checks:
* ST variability rises with k at every n (rho >= 0.9);
* the k axis moves variability by more decades than the n axis (dominance —
  the figure's headline claim);
* CP stays >= 6 decades below ST's peak.
"""

from __future__ import annotations

import math

import numpy as np

from repro.experiments.config import ExperimentResult, Scale, resolve_scale
from repro.experiments.fig3_cancellation import spearman
from repro.experiments.grid import format_k, format_n, grid_sweep
from repro.viz.heatmap import render_value_grid

__all__ = ["run"]

_CODES = ("ST", "K", "CP")
_FIXED_DR = 16


def run(scale: "Scale | str | None" = None) -> ExperimentResult:
    scale = scale if isinstance(scale, Scale) else resolve_scale(scale)
    ks = [10.0**d for d in scale.grid_k_decades]
    cells = grid_sweep(
        n_values=list(scale.grid_n_values),
        k_values=ks,
        dr_values=[_FIXED_DR],
        codes=_CODES,
        n_trees=scale.grid_n_trees,
        seed=scale.seed + 11,
    )

    n_labels = [format_n(n) for n in scale.grid_n_values]
    k_labels = [format_k(k) for k in ks]
    texts = []
    rows: list[dict] = []
    grids: dict[str, dict[tuple[str, str], float]] = {c: {} for c in _CODES}
    for cell in cells:
        for code in _CODES:
            grids[code][(format_n(cell.n), format_k(cell.condition))] = cell.rel_std(code)
            rows.append(
                {
                    "n": cell.n,
                    "k": cell.condition,
                    "algorithm": code,
                    "rel_std": cell.rel_std(code),
                    "abs_std": cell.abs_std(code),
                }
            )
    for code in _CODES:
        texts.append(
            render_value_grid(
                n_labels,
                k_labels,
                grids[code],
                title=f"{code}: relative std of errors, dr={_FIXED_DR} "
                "(rows: concurrency n, cols: condition number k)",
            )
        )

    def by_k(code: str, n: int) -> np.ndarray:
        vals = {c.condition: c.rel_std(code) for c in cells if c.n == n}
        return np.array([vals[k] for k in ks])

    def by_n(code: str, k: float) -> np.ndarray:
        vals = {c.n: c.rel_std(code) for c in cells if c.condition == k}
        return np.array([vals[n] for n in scale.grid_n_values])

    k_rhos = [spearman(np.array(ks), by_k("ST", n)) for n in scale.grid_n_values]

    def decades(vals: np.ndarray) -> float:
        pos = vals[vals > 0]
        return math.log10(pos.max() / pos.min()) if pos.size >= 2 else 0.0

    k_effect = float(np.mean([decades(by_k("ST", n)) for n in scale.grid_n_values]))
    n_effect = float(np.mean([decades(by_n("ST", k)) for k in ks]))
    st_peak = max(c.rel_std("ST") for c in cells)
    cp_peak = max(c.rel_std("CP") for c in cells)
    checks = {
        "ST variability rises with k at every n (rho >= 0.9)": all(
            r >= 0.9 for r in k_rhos
        ),
        "condition number dominates concurrency (decade span)": k_effect
        > 2.0 * n_effect,
        "CP >= 6 decades below ST peak": cp_peak <= st_peak * 1e-6,
    }
    return ExperimentResult(
        experiment_id="fig11",
        title="(n, k) grid of error variability at fixed dr",
        scale=scale.name,
        rows=tuple(rows),
        text="\n\n".join(texts),
        checks=checks,
    )
