"""Floating-point representation queries: exponents, ulps, roundoff.

The paper characterises summand sets by the *binary exponents* of their
values (dynamic range ``dr = exp(max|x_i|) - exp(min|x_i|)``), so exponent
extraction is a first-class operation here, with a vectorised form built on
``numpy.frexp``.

Conventions
-----------
``exponent(x)`` is the integer ``e`` such that ``|x| in [2**e, 2**(e+1))``,
i.e. ``math.frexp``'s exponent minus one.  ``exponent(0)`` raises — zero has
no normalised exponent, and the paper's `dr` is only defined over the nonzero
magnitudes of a set.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "UNIT_ROUNDOFF",
    "MANTISSA_BITS",
    "unit_roundoff",
    "exponent",
    "exponents",
    "ulp",
    "next_up",
    "next_down",
    "is_power_of_two",
]

#: Unit roundoff for binary64 round-to-nearest: u = 2**-53.
UNIT_ROUNDOFF: float = 2.0**-53

#: Significand width of binary64 including the implicit leading bit.
MANTISSA_BITS: int = 53


def unit_roundoff(dtype=np.float64) -> float:
    """Unit roundoff ``u`` of a floating dtype (round-to-nearest).

    The precision axis of the selector: binary64 gives ``2**-53``, binary32
    ``2**-24``, binary16 ``2**-11``.  Non-float dtypes (integers fed to a
    reduction are coerced to binary64 downstream) and extended-precision
    dtypes report the binary64 roundoff — execution never happens below
    binary64, so ``u`` is floored there to keep error bounds valid for what
    actually runs.
    """
    dt = np.dtype(dtype)
    if dt.kind != "f":
        return UNIT_ROUNDOFF
    u = float(np.finfo(dt).eps) / 2.0
    return max(u, UNIT_ROUNDOFF)


def exponent(x: float) -> int:
    """Binary exponent of ``x``: the ``e`` with ``2**e <= |x| < 2**(e+1)``.

    Subnormals get their true (unnormalised-magnitude) exponent, e.g.
    ``exponent(5e-324) == -1074``.  Raises ``ValueError`` for zero, NaN and
    infinities, which have no finite exponent.
    """
    if x == 0.0 or math.isnan(x) or math.isinf(x):  # repro: allow[FP001] -- zero/non-finite guard
        raise ValueError(f"exponent undefined for {x!r}")
    _, e = math.frexp(x)
    return e - 1


def exponents(x: np.ndarray) -> np.ndarray:
    """Vectorised :func:`exponent` over a float64 array (zeros disallowed)."""
    x = np.asarray(x, dtype=np.float64)
    if not np.all(np.isfinite(x)):
        raise ValueError("exponents undefined for non-finite values")
    if np.any(x == 0.0):  # repro: allow[FP001] -- exact-zero guard
        raise ValueError("exponents undefined for zero values")
    _, e = np.frexp(x)
    return e.astype(np.int64) - 1


def ulp(x: float) -> float:
    """Unit in the last place of ``x`` (the gap to the next representable
    value away from zero at ``x``'s binade)."""
    return math.ulp(x)


def next_up(x: float) -> float:
    """Smallest double strictly greater than ``x``."""
    return math.nextafter(x, math.inf)


def next_down(x: float) -> float:
    """Largest double strictly smaller than ``x``."""
    return math.nextafter(x, -math.inf)


def is_power_of_two(x: float) -> bool:
    """True when ``|x|`` is exactly a power of two (mantissa = 1.0)."""
    if x == 0.0 or not math.isfinite(x):  # repro: allow[FP001] -- zero/non-finite guard
        return False
    m, _ = math.frexp(abs(x))
    return m == 0.5  # repro: allow[FP001] -- a power of two has mantissa exactly 0.5
