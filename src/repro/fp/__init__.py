"""Floating-point foundations: EFTs, representation queries, double-double."""

from repro.fp.double_double import DoubleDouble, dd_add_array, dd_sum
from repro.fp.eft import (
    fast_two_sum,
    fast_two_sum_array,
    split,
    two_prod,
    two_prod_array,
    two_sum,
    two_sum_array,
)
from repro.fp.properties import (
    MANTISSA_BITS,
    UNIT_ROUNDOFF,
    exponent,
    exponents,
    is_power_of_two,
    next_down,
    next_up,
    ulp,
)

__all__ = [
    "DoubleDouble",
    "MANTISSA_BITS",
    "UNIT_ROUNDOFF",
    "dd_add_array",
    "dd_sum",
    "exponent",
    "exponents",
    "fast_two_sum",
    "fast_two_sum_array",
    "is_power_of_two",
    "next_down",
    "next_up",
    "split",
    "two_prod",
    "two_prod_array",
    "two_sum",
    "two_sum_array",
    "ulp",
]
