"""Double-double ("composite precision") arithmetic.

A double-double represents a real number as an unevaluated sum of two
binary64 values ``hi + lo`` with ``|lo| <= ulp(hi)/2``, giving roughly 106
bits of significand.  He & Ding's ICS 2000 work — reference [6] of the paper
— used exactly this type in the critical section of a global sum to obtain
reproducible results, and the paper's "composite precision" summation is the
same idea specialised to accumulation.

This module provides an immutable scalar :class:`DoubleDouble` plus the
vectorised kernels (`dd_add_array`, `dd_sum`) the high-precision summation
algorithm uses.  Renormalisation follows Dekker/Bailey: every operation ends
with a ``fast_two_sum`` so the invariant on ``lo`` is restored.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.fp.eft import fast_two_sum, two_prod, two_sum, two_sum_array

__all__ = ["DoubleDouble", "dd_add_array", "dd_sum"]


@dataclass(frozen=True)
class DoubleDouble:
    """An immutable double-double value ``hi + lo``.

    Construction via :meth:`from_float` or arithmetic keeps the
    normalisation invariant; constructing directly with un-normalised parts
    is allowed but then :meth:`normalized` should be called.
    """

    hi: float
    lo: float = 0.0

    # -- constructors ------------------------------------------------------
    @staticmethod
    def from_float(x: float) -> "DoubleDouble":
        return DoubleDouble(float(x), 0.0)

    def normalized(self) -> "DoubleDouble":
        s, e = two_sum(self.hi, self.lo)
        return DoubleDouble(s, e)

    # -- arithmetic --------------------------------------------------------
    def __add__(self, other: "DoubleDouble | float") -> "DoubleDouble":
        if isinstance(other, DoubleDouble):
            s, e = two_sum(self.hi, other.hi)
            e += self.lo + other.lo
            s, e = fast_two_sum(s, e)
            return DoubleDouble(s, e)
        return self.add_float(float(other))

    __radd__ = __add__

    def add_float(self, x: float) -> "DoubleDouble":
        """Add a plain double with full double-double accuracy."""
        s, e = two_sum(self.hi, x)
        e += self.lo
        s, e = fast_two_sum(s, e)
        return DoubleDouble(s, e)

    def __neg__(self) -> "DoubleDouble":
        return DoubleDouble(-self.hi, -self.lo)

    def __sub__(self, other: "DoubleDouble | float") -> "DoubleDouble":
        if isinstance(other, DoubleDouble):
            return self + (-other)
        return self.add_float(-float(other))

    def __mul__(self, other: "DoubleDouble | float") -> "DoubleDouble":
        if isinstance(other, DoubleDouble):
            p, e = two_prod(self.hi, other.hi)
            e += self.hi * other.lo + self.lo * other.hi
            p, e = fast_two_sum(p, e)
            return DoubleDouble(p, e)
        x = float(other)
        p, e = two_prod(self.hi, x)
        e += self.lo * x
        p, e = fast_two_sum(p, e)
        return DoubleDouble(p, e)

    __rmul__ = __mul__

    # -- conversions & comparisons ----------------------------------------
    def to_float(self) -> float:
        return self.hi + self.lo

    def __float__(self) -> float:
        return self.to_float()

    def __abs__(self) -> "DoubleDouble":
        return -self if (self.hi < 0 or (self.hi == 0 and self.lo < 0)) else self

    def __eq__(self, other: object) -> bool:
        if isinstance(other, DoubleDouble):
            return self.hi == other.hi and self.lo == other.lo
        if isinstance(other, (int, float)):
            return self.hi == float(other) and self.lo == 0.0  # repro: allow[FP001] -- double-double equality is exact by definition
        return NotImplemented

    def __lt__(self, other: "DoubleDouble | float") -> bool:
        o = other if isinstance(other, DoubleDouble) else DoubleDouble.from_float(float(other))
        return (self.hi, self.lo) < (o.hi, o.lo) if self.hi == o.hi else self.hi < o.hi

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DoubleDouble({self.hi!r}, {self.lo!r})"


def dd_add_array(
    hi: np.ndarray, lo: np.ndarray, hi2: np.ndarray, lo2: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Elementwise double-double addition over component arrays.

    Returns normalised ``(hi, lo)`` arrays; used by the level-wise tree
    evaluator for the high-precision algorithm.
    """
    s, e = two_sum_array(hi, hi2)
    e = e + lo + lo2
    # fast_two_sum is valid here: |e| << |s| after normalised inputs.
    s2 = s + e
    lo_out = e - (s2 - s)
    return s2, lo_out


def dd_sum(x: np.ndarray) -> DoubleDouble:
    """Sum a float64 array in double-double, left to right (vector-blocked).

    Accumulates blocks pairwise in component form for speed, then folds the
    remaining pair sequentially; accuracy is ~2**-105 relative, far below the
    variability the experiments measure, so this doubles as a quick
    high-precision (non-exact) reference.
    """
    x = np.asarray(x, dtype=np.float64).ravel()
    hi = x.copy()
    lo = np.zeros_like(hi)
    while hi.size > 1:
        if hi.size % 2:
            hi = np.append(hi, 0.0)
            lo = np.append(lo, 0.0)
        hi, lo = dd_add_array(hi[0::2], lo[0::2], hi[1::2], lo[1::2])
    if hi.size == 0:
        return DoubleDouble(0.0, 0.0)
    return DoubleDouble(float(hi[0]), float(lo[0])).normalized()
