"""Error-free transformations (EFTs) for IEEE-754 binary64 arithmetic.

An error-free transformation rewrites a floating-point operation as a pair
``(result, error)`` such that the mathematical identity holds *exactly* in
real arithmetic: for addition, ``a + b == s + e`` where ``s = fl(a + b)``.
These are the building blocks of every compensated algorithm in
:mod:`repro.summation`:

* :func:`two_sum` — Knuth's 6-flop branch-free transformation, valid for any
  ``a, b``.
* :func:`fast_two_sum` — Dekker's 3-flop variant, valid when
  ``|a| >= |b|`` (or ``a == 0``).
* :func:`split` — Dekker's mantissa splitting, used by :func:`two_prod`.
* :func:`two_prod` — exact product transformation (used by the double-double
  substrate, not by summation itself).

Every function has both a scalar and a vectorised form; the vectorised forms
operate elementwise on ``numpy`` arrays and are what the level-wise tree
evaluators use.  All of them assume round-to-nearest-even binary64, which is
what CPython/NumPy provide on every mainstream platform.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "two_sum",
    "fast_two_sum",
    "two_sum_array",
    "fast_two_sum_array",
    "split",
    "two_prod",
    "two_prod_array",
]

#: Dekker splitting constant for binary64: 2**ceil(53/2) + 1.
_SPLITTER = float(2**27 + 1)


def two_sum(a: float, b: float) -> Tuple[float, float]:
    """Knuth's TwoSum: return ``(s, e)`` with ``s = fl(a+b)`` and
    ``a + b = s + e`` exactly.

    Works for all finite inputs with no magnitude precondition.
    """
    s = a + b
    bb = s - a
    e = (a - (s - bb)) + (b - bb)
    return s, e


def fast_two_sum(a: float, b: float) -> Tuple[float, float]:
    """Dekker's FastTwoSum: like :func:`two_sum` but requires ``|a| >= |b|``.

    The precondition is *not* checked (this is a hot-path primitive); callers
    that cannot guarantee it must use :func:`two_sum`.
    """
    s = a + b
    e = b - (s - a)
    return s, e


def two_sum_array(a: np.ndarray, b: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Elementwise TwoSum over arrays; returns ``(s, e)`` arrays."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    s = a + b
    bb = s - a
    e = (a - (s - bb)) + (b - bb)
    return s, e


def fast_two_sum_array(a: np.ndarray, b: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Elementwise FastTwoSum; requires ``|a| >= |b|`` elementwise (unchecked)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    s = a + b
    e = b - (s - a)
    return s, e


def split(a: float) -> Tuple[float, float]:
    """Dekker's Split: return ``(hi, lo)`` with ``a = hi + lo`` exactly and
    each part representable in 26/27 mantissa bits.

    Overflows for ``|a| >= 2**996``; inputs that large should be pre-scaled.
    """
    c = _SPLITTER * a
    hi = c - (c - a)
    lo = a - hi
    return hi, lo


def two_prod(a: float, b: float) -> Tuple[float, float]:
    """TwoProd via Dekker splitting: ``(p, e)`` with ``a * b = p + e`` exactly.

    Uses the FMA-free formulation so results are identical on platforms
    without a fused multiply-add.
    """
    p = a * b
    a_hi, a_lo = split(a)
    b_hi, b_lo = split(b)
    e = ((a_hi * b_hi - p) + a_hi * b_lo + a_lo * b_hi) + a_lo * b_lo
    return p, e


def two_prod_array(a: np.ndarray, b: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Elementwise TwoProd over arrays."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    p = a * b
    ca = _SPLITTER * a
    a_hi = ca - (ca - a)
    a_lo = a - a_hi
    cb = _SPLITTER * b
    b_hi = cb - (cb - b)
    b_lo = b - b_hi
    e = ((a_hi * b_hi - p) + a_hi * b_lo + a_lo * b_hi) + a_lo * b_lo
    return p, e
