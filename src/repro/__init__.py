"""repro — reproducible numerical accuracy through intelligent runtime
selection of reduction algorithms.

A from-scratch reproduction of Chapp, Johnston & Taufer, "On the Need for
Reproducible Numerical Accuracy through Intelligent Runtime Selection of
Reduction Algorithms at the Extreme Scale" (IEEE CLUSTER 2015).

Quick tour
----------
>>> import numpy as np
>>> from repro import get_algorithm, generate_sum_set, evaluate_ensemble
>>> data = generate_sum_set(4096, condition=1e9, dynamic_range=16, seed=0).values
>>> st = evaluate_ensemble(data, "balanced", get_algorithm("ST"), 100, seed=1)
>>> pr = evaluate_ensemble(data, "balanced", get_algorithm("PR"), 100, seed=1)
>>> len(set(st.tolist())) > 1 and len(set(pr.tolist())) == 1
True

Top-level re-exports cover the public API's main entry points; the
subpackages (``repro.summation``, ``repro.trees``, ``repro.mpi``,
``repro.selection``, ``repro.experiments``, ...) hold the full surface.
"""

from repro.exact import ExactSum, exact_sum, exact_sum_fraction
from repro.interval import Interval, sum_interval_array
from repro.generators import generate_sum_set, nbody_force_terms, zero_sum_series, zero_sum_set
from repro.metrics import condition_number, dynamic_range, error_stats, profile_set
from repro.mpi import MachineTopology, SimComm, make_reduction_op
from repro.precision import EmulatedPrecisionSum, tune_precision
from repro.selection import (
    AdaptiveReducer,
    AnalyticPolicy,
    GridClassifier,
    HierarchicalReducer,
)
from repro.summation import (
    PAPER_CODES,
    SumContext,
    all_algorithms,
    get_algorithm,
    paper_algorithms,
)
from repro.trees import balanced, evaluate_ensemble, evaluate_tree, random_shape, serial

__version__ = "1.0.0"

__all__ = [
    "AdaptiveReducer",
    "AnalyticPolicy",
    "EmulatedPrecisionSum",
    "ExactSum",
    "HierarchicalReducer",
    "Interval",
    "GridClassifier",
    "MachineTopology",
    "PAPER_CODES",
    "SimComm",
    "SumContext",
    "__version__",
    "all_algorithms",
    "balanced",
    "condition_number",
    "dynamic_range",
    "error_stats",
    "evaluate_ensemble",
    "evaluate_tree",
    "exact_sum",
    "exact_sum_fraction",
    "generate_sum_set",
    "get_algorithm",
    "make_reduction_op",
    "nbody_force_terms",
    "paper_algorithms",
    "profile_set",
    "random_shape",
    "serial",
    "sum_interval_array",
    "tune_precision",
    "zero_sum_series",
    "zero_sum_set",
]
