"""Prefix reductions (``MPI_Scan``) with selectable summation algorithms.

Extension beyond the paper: reductions are not the only collective whose
floating-point result depends on evaluation structure — prefix sums
(``MPI_Scan``) have the same nonassociativity exposure, and are widely used
for particle binning, load balancing, and stream compaction.  This module
provides:

* :func:`scan` — inclusive prefix reduction over per-rank partials, using
  any registry algorithm's accumulators.  With a deterministic algorithm
  (PR) the whole prefix vector is bitwise reproducible regardless of how the
  scan is internally scheduled.
* :func:`exscan` — the exclusive variant (rank 0 receives the identity 0.0).

Scheduling: the sequential schedule is the semantic reference; the
Hillis-Steele (``log p`` step) schedule models what a real implementation
runs.  For non-deterministic algorithms the two schedules may disagree in
the last bits — exposed deliberately, and pinned by tests: under PR they are
bitwise identical.
"""

from __future__ import annotations

from typing import Literal, Optional, Sequence

import numpy as np

from repro.summation.base import SumContext
from repro.summation.registry import get_algorithm

__all__ = ["scan", "exscan"]

Schedule = Literal["sequential", "hillis-steele"]


def _local_values(
    chunks: Sequence[np.ndarray], code: str, context: Optional[SumContext]
) -> list:
    alg = get_algorithm(code)
    accs = []
    for chunk in chunks:
        acc = alg.make_accumulator(context if alg.needs_context else None)
        acc.add_array(np.asarray(chunk, dtype=np.float64))
        accs.append(acc)
    return accs


def _context_for(chunks: Sequence[np.ndarray], code: str) -> Optional[SumContext]:
    alg = get_algorithm(code)
    if not alg.needs_context:
        return None
    max_abs = 0.0
    total = 0
    for c in chunks:
        c = np.asarray(c, dtype=np.float64)
        if c.size:
            max_abs = max(max_abs, float(np.max(np.abs(c))))
        total += c.size
    return SumContext(max_abs=max_abs, n_hint=total)


def scan(
    chunks: Sequence[np.ndarray],
    code: str = "PR",
    *,
    schedule: Schedule = "hillis-steele",
) -> np.ndarray:
    """Inclusive prefix reduction: out[r] = reduce(chunks[0..r]).

    ``chunks[r]`` is rank ``r``'s local data; the returned vector holds one
    double per rank, exactly as ``MPI_Scan`` would deliver.
    """
    if not chunks:
        raise ValueError("need at least one rank")
    context = _context_for(chunks, code)
    alg = get_algorithm(code)

    if schedule == "sequential":
        accs = _local_values(chunks, code, context)
        out = np.empty(len(chunks), dtype=np.float64)
        running = accs[0]
        out[0] = running.result()
        for r in range(1, len(chunks)):
            running.merge(accs[r])
            out[r] = running.result()
        return out

    if schedule == "hillis-steele":
        # log-step scan over accumulators; each step r receives the partial
        # from r - stride and merges it *in front* (order preserved by
        # merging the received left-partial into a copy that then absorbs
        # the local state).
        accs = _local_values(chunks, code, context)
        p = len(chunks)
        stride = 1
        while stride < p:
            new_accs = []
            for r in range(p):
                if r >= stride:
                    left = _clone_accumulator(accs[r - stride], alg, context)
                    left.merge(accs[r])
                    new_accs.append(left)
                else:
                    new_accs.append(accs[r])
            accs = new_accs
            stride *= 2
        return np.array([a.result() for a in accs], dtype=np.float64)

    raise ValueError(f"unknown schedule {schedule!r}")


def exscan(
    chunks: Sequence[np.ndarray],
    code: str = "PR",
    *,
    schedule: Schedule = "hillis-steele",
) -> np.ndarray:
    """Exclusive prefix reduction: out[0] = 0, out[r] = reduce(chunks[0..r-1])."""
    if not chunks:
        raise ValueError("need at least one rank")
    inclusive = scan(chunks[:-1], code, schedule=schedule) if len(chunks) > 1 else np.array([])
    return np.concatenate(([0.0], inclusive))


def _clone_accumulator(acc, alg, context):
    """Deep-copy an accumulator through the cheapest faithful route."""
    if hasattr(acc, "copy"):
        return acc.copy()
    import copy

    return copy.deepcopy(acc)
