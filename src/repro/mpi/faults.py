"""Fault injection over simulated reductions.

Sec. V.B: "To cope with intermittent faults and inconsistently available
resources, we expect that the reduction trees employed by an exascale system
will vary not only in terms of arrangement of data among their leaves but
also in overall shape."  This module turns that expectation into a
measurable knob: a :class:`FaultModel` draws per-run rank stalls, and
:func:`run_campaign` measures how the *shape* variability it induces shows
up in the reduced values of each summation algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mpi.comm import ReduceResult, SimComm
from repro.mpi.ops import ReductionOp
from repro.util.rng import SeedLike

__all__ = ["FaultModel", "CampaignResult", "run_campaign"]


@dataclass(frozen=True)
class FaultModel:
    """Stall model for one class of machine weather.

    ``fault_prob`` is the per-rank, per-run probability of a stall (e.g. a
    recovered transient error or a page migration); ``fault_delay`` its mean
    duration in simulated time units; ``jitter`` the everyday OS noise.
    """

    jitter: float = 0.25
    fault_prob: float = 0.02
    fault_delay: float = 25.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.fault_prob <= 1.0:
            raise ValueError("fault_prob must be a probability")
        if self.jitter < 0 or self.fault_delay < 0:
            raise ValueError("jitter/fault_delay must be non-negative")


@dataclass(frozen=True)
class CampaignResult:
    """Values and realised tree depths over a fault campaign."""

    values: np.ndarray  # (n_runs,) reduced values
    depths: np.ndarray  # (n_runs,) realised tree depths
    times: np.ndarray  # (n_runs,) simulated completion times
    algorithm_code: str

    @property
    def n_distinct_values(self) -> int:
        return int(np.unique(self.values).size)


def run_campaign(
    comm: SimComm,
    chunks: list[np.ndarray],
    op: ReductionOp,
    model: FaultModel,
    n_runs: int,
) -> CampaignResult:
    """Repeat a nondeterministic reduction ``n_runs`` times under ``model``.

    Each run draws a fresh arrival schedule from the communicator's RNG, so
    tree shapes differ run to run; the returned depths quantify the shape
    variability and the values its numerical consequence.
    """
    if n_runs < 1:
        raise ValueError("n_runs must be >= 1")
    values = np.empty(n_runs, dtype=np.float64)
    depths = np.empty(n_runs, dtype=np.int64)
    times = np.empty(n_runs, dtype=np.float64)
    for i in range(n_runs):
        res: ReduceResult = comm.reduce_nondeterministic(
            chunks,
            op,
            jitter=model.jitter,
            fault_prob=model.fault_prob,
            fault_delay=model.fault_delay,
        )
        values[i] = res.value
        depths[i] = res.tree.depth()
        times[i] = res.simulated_time
    return CampaignResult(
        values=values, depths=depths, times=times, algorithm_code=op.code
    )
