"""Nondeterministic arrival-order reduction.

At extreme scale a reduction cannot wait for a fixed schedule; it combines
whichever partial results are available, so the effective reduction tree
varies run to run (Sec. II.B).  :func:`arrival_order_reduction` models this:
every rank's contribution becomes ready at

    ready(rank) = base_compute + Exp(jitter)   [+ fault delay, if injected]

and the reducer greedily merges the two earliest-ready partials, paying the
link latency between their owners.  The function returns both the reduced
tree *and* its :class:`~repro.trees.tree.ReductionTree`, so experiments can
correlate realised shapes with realised errors.

With ``jitter = 0`` and a symmetric topology the process degenerates to a
deterministic balanced-ish tree; larger jitter produces progressively more
skewed, run-varying shapes — the knob the fault-injection experiments turn.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.mpi.topology import MachineTopology
from repro.trees.tree import ReductionTree
from repro.util.rng import SeedLike, resolve_rng

__all__ = ["ArrivalReduction", "ArrivalSchedule", "sample_arrival_times", "arrival_order_tree"]


@dataclass(frozen=True)
class ArrivalSchedule:
    """Per-rank readiness times for one simulated reduction run."""

    ready: np.ndarray  # (n_ranks,) float64

    @property
    def n_ranks(self) -> int:
        return int(self.ready.size)


def sample_arrival_times(
    n_ranks: int,
    *,
    base: float = 1.0,
    jitter: float = 0.25,
    fault_prob: float = 0.0,
    fault_delay: float = 25.0,
    seed: SeedLike = None,
) -> ArrivalSchedule:
    """Draw readiness times: base + exponential jitter + rare fault stalls."""
    if n_ranks < 1:
        raise ValueError("need at least one rank")
    if jitter < 0 or fault_prob < 0 or fault_prob > 1:
        raise ValueError("bad jitter/fault parameters")
    rng = resolve_rng(seed)
    ready = np.full(n_ranks, base, dtype=np.float64)
    if jitter > 0:
        ready += rng.exponential(jitter, size=n_ranks)
    if fault_prob > 0:
        faulted = rng.random(n_ranks) < fault_prob
        ready += faulted * rng.exponential(fault_delay, size=n_ranks)
    return ArrivalSchedule(ready=ready)


@dataclass(frozen=True)
class ArrivalReduction:
    """An arrival-order reduction run: the realised tree and when it ended."""

    tree: ReductionTree
    completion_time: float


def arrival_order_tree(
    schedule: ArrivalSchedule,
    topology: MachineTopology | None = None,
) -> ArrivalReduction:
    """Greedy earliest-ready reduction tree induced by an arrival schedule.

    The two earliest-ready partial results merge first; the merged partial
    becomes ready after the inter-owner link latency plus compute cost.
    Deterministic given the schedule, so one seed = one run.  The returned
    completion time includes the arrival delays themselves, so fault stalls
    show up in it.
    """
    n = schedule.n_ranks
    if topology is not None and topology.n_ranks != n:
        raise ValueError("topology size mismatch")
    if n == 1:
        tree = ReductionTree(
            n_leaves=1, schedule=np.empty((0, 2), dtype=np.int64), kind="custom"
        )
        return ArrivalReduction(tree=tree, completion_time=float(schedule.ready[0]))
    # heap of (ready_time, slot, owner_rank)
    heap: list[tuple[float, int, int]] = [
        (float(schedule.ready[r]), r, r) for r in range(n)
    ]
    heapq.heapify(heap)
    merge_schedule = np.empty((n - 1, 2), dtype=np.int64)
    done = 0.0
    for t in range(n - 1):
        ta, slot_a, owner_a = heapq.heappop(heap)
        tb, slot_b, owner_b = heapq.heappop(heap)
        if topology is not None:
            lat = topology.link_latency(owner_a, owner_b)
            cost = topology.compute_cost
        else:
            lat, cost = 1.0, 0.1
        merge_schedule[t] = (slot_a, slot_b)
        done = max(ta, tb) + lat + cost
        heapq.heappush(heap, (done, n + t, owner_a))
    tree = ReductionTree(n_leaves=n, schedule=merge_schedule, kind="custom")
    return ArrivalReduction(tree=tree, completion_time=done)
