"""SimComm: a single-process simulator of MPI collective reductions.

The paper's testbed runs MPI on a dedicated 48-core node; no MPI is
available here, and more importantly the *phenomenon under study is
arithmetic*, not transport.  :class:`SimComm` therefore executes collectives
SPMD-style in one process: the caller supplies every rank's local data at
once, and the communicator applies the same local-accumulate + tree-combine
structure a real ``MPI_Reduce`` with a custom op would, including:

* deterministic reduction down a *fixed* tree (``reduce(..., tree=...)``),
* topology-aware trees (Balaji & Kimpe style, via the machine model),
* **nondeterministic arrival-order reduction** (``reduce_nondeterministic``)
  whose effective tree varies run to run with jitter and fault injection —
  the exascale behaviour of Sec. II.B.

API shape follows mpi4py's lowercase conventions loosely (``reduce``,
``allreduce``, ``max_allreduce``) adapted to the SPMD-at-once calling style.

Execution engines
-----------------
Every collective accepts ``engine``:

* ``"object"`` — the reference path: one accumulator per rank
  (``op.local``) and one Python ``op.combine`` per tree node.
* ``"vector"`` — the compiled fast path: all rank-local states in one
  :meth:`~repro.summation.base.VectorOps.fold` sweep over a zero-padded
  ``(R, M)`` chunk matrix, then the rank tree executed as a compiled level
  schedule (:mod:`repro.trees.schedule`, structural-key cached) with one
  batched ``merge_at`` per dependency level.  Requires the op's algorithm
  to expose VectorOps; raises otherwise.
* ``"auto"`` (default) — ``"vector"`` when the op supports it, else
  ``"object"``.

The two engines are bitwise-equal by contract (fold rows match
``op.local`` states; grouping merges into levels cannot change results
because each slot is written once), and the collective-engine property
tests pin that across algorithms, ragged chunk sizes and tree shapes.
``reduce_batch`` amortises packing, compilation and level sweeps across a
whole stream of same-shape reductions — the heavy-traffic serving path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.mpi.nondet import arrival_order_tree, sample_arrival_times
from repro.mpi.ops import ReductionOp
from repro.obs import get_registry
from repro.mpi.topology import MachineTopology, topology_aware_tree, tree_cost
from repro.summation.base import SumContext
from repro.trees import _ckernels
from repro.trees.schedule import compile_tree
from repro.trees.shapes import balanced, serial
from repro.trees.tree import ReductionTree
from repro.util.chunking import split_indices
from repro.util.rng import SeedLike, resolve_rng

__all__ = ["ReduceResult", "SimComm"]

_OBS = get_registry()


@dataclass(frozen=True)
class ReduceResult:
    """Outcome of a simulated global reduction."""

    value: float
    tree: ReductionTree
    simulated_time: float  # critical-path cost on the topology (0 if none)
    algorithm_code: str


class SimComm:
    """A simulated communicator of ``n_ranks`` ranks.

    Parameters
    ----------
    n_ranks:
        Communicator size; if ``topology`` is given its rank count wins.
    topology:
        Optional machine model used for topology-aware trees, link costs and
        arrival-time simulation.
    seed:
        Seeds the communicator's private RNG stream (nondeterministic
        reductions draw from it, so two communicators with equal seeds
        replay identical "nondeterminism").
    """

    def __init__(
        self,
        n_ranks: int | None = None,
        *,
        topology: MachineTopology | None = None,
        seed: SeedLike = None,
    ) -> None:
        if topology is not None:
            n_ranks = topology.n_ranks
        if n_ranks is None or n_ranks < 1:
            raise ValueError("n_ranks must be >= 1 (or provide a topology)")
        self.n_ranks = int(n_ranks)
        self.topology = topology
        self._rng = resolve_rng(seed)

    # -- data distribution ---------------------------------------------------
    def scatter_array(self, data: np.ndarray) -> list[np.ndarray]:
        """Block-scatter a global vector into per-rank chunks."""
        data = np.asarray(data, dtype=np.float64).ravel()
        return [data[s] for s in split_indices(data.size, self.n_ranks)]

    # -- collectives --------------------------------------------------------
    def max_allreduce(self, local_values: Sequence[float]) -> float:
        """Exact, order-independent max reduction (PR's "pre" pass).

        NaN handling is deterministic: a NaN contribution from *any* rank
        poisons the result regardless of operand order.  (Python's ``max``
        is order-dependent under NaN — ``max(nan, x) != max(x, nan)`` — which
        would make PR's pre-pass context depend on rank ordering; NumPy's
        ``np.max`` propagates NaN unconditionally.)
        """
        self._check_size(local_values)
        return float(np.max(np.asarray(local_values, dtype=np.float64)))

    def reduce(
        self,
        chunks: Sequence[np.ndarray],
        op: ReductionOp,
        tree: "ReductionTree | str" = "topology",
        engine: str = "auto",
    ) -> ReduceResult:
        """Deterministic global reduction down a fixed tree of ranks.

        ``chunks[r]`` is rank ``r``'s local data.  ``tree`` may be a
        ready-made rank tree or one of ``"balanced"``, ``"serial"``,
        ``"topology"`` (topology-aware when a topology exists, else
        balanced).  ``engine`` selects the execution path (see module
        docs); both paths are bitwise-equal.
        """
        self._check_size(chunks)
        op = self._contextualize(op, chunks)
        tree = self._resolve_tree(tree)
        use_vector = self._use_vector(op, engine)
        if _OBS.enabled:
            _OBS.counter(
                "repro_comm_dispatch_total",
                engine="vector" if use_vector else "object",
            ).inc()
        if use_vector:
            value = self._execute_vector(chunks, op, tree)
        else:
            value = self._execute_object(chunks, op, tree)
        cost = tree_cost(tree, self.topology) if self.topology else 0.0
        return ReduceResult(
            value=value, tree=tree, simulated_time=cost, algorithm_code=op.code
        )

    def allreduce(
        self,
        chunks: Sequence[np.ndarray],
        op: ReductionOp,
        tree: "ReductionTree | str" = "topology",
        engine: str = "auto",
    ) -> list[float]:
        """Reduce then broadcast: every rank sees the same value (bitwise)."""
        result = self.reduce(chunks, op, tree, engine)
        return [result.value] * self.n_ranks

    def reduce_nondeterministic(
        self,
        chunks: Sequence[np.ndarray],
        op: ReductionOp,
        *,
        jitter: float = 0.25,
        fault_prob: float = 0.0,
        fault_delay: float = 25.0,
        engine: str = "auto",
    ) -> ReduceResult:
        """One *run* of an arrival-order reduction (tree varies per call).

        Each call draws fresh arrival times from the communicator's RNG
        stream, so repeated calls model repeated application runs on a busy
        machine.
        """
        self._check_size(chunks)
        op = self._contextualize(op, chunks)
        schedule = sample_arrival_times(
            self.n_ranks,
            jitter=jitter,
            fault_prob=fault_prob,
            fault_delay=fault_delay,
            seed=self._rng,
        )
        run = arrival_order_tree(schedule, self.topology)
        tree = run.tree
        use_vector = self._use_vector(op, engine)
        if _OBS.enabled:
            _OBS.counter(
                "repro_comm_dispatch_total",
                engine="vector" if use_vector else "object",
            ).inc()
        if use_vector:
            value = self._execute_vector(chunks, op, tree)
        else:
            value = self._execute_object(chunks, op, tree)
        return ReduceResult(
            value=value,
            tree=tree,
            simulated_time=run.completion_time,
            algorithm_code=op.code,
        )

    def reduce_batch(
        self,
        batches: Sequence[Sequence[np.ndarray]],
        op: ReductionOp,
        tree: "ReductionTree | str" = "topology",
        engine: str = "auto",
    ) -> list[ReduceResult]:
        """Reduce a stream of independent collectives sharing ``op`` + tree.

        ``batches[i]`` is one reduction's per-rank chunk list.  On the vector
        engine all ``B * n_ranks`` chunks are packed into one padded matrix,
        the local phase is a single :meth:`VectorOps.fold` sweep, and the
        rank tree runs once with a ``(B, n_ranks)`` batch axis broadcasting
        through every level — amortising packing, compilation and kernel
        dispatch across the whole stream.  Each element of the returned list
        is bitwise-equal to ``self.reduce(batches[i], op, tree)``.
        """
        tree = self._resolve_tree(tree)
        for chunks in batches:
            self._check_size(chunks)
        if not batches:
            return []
        if not self._use_vector(op, engine):
            # per-item object fallback: each delegated reduce() records its
            # own engine="object" dispatch, so totals still sum to one
            # dispatch per collective
            if _OBS.enabled:
                _OBS.counter("repro_comm_batch_fallback_total").inc()
            return [self.reduce(chunks, op, tree, engine="object") for chunks in batches]
        if _OBS.enabled:
            _OBS.counter("repro_comm_batch_calls_total").inc()
            _OBS.counter("repro_comm_dispatch_total", engine="batch").inc(
                len(batches)
            )
        vops = op.vector_ops
        flat: list = []
        for chunks in batches:
            flat.extend(chunks)
        n_batches = len(batches)
        if tree.kind == "balanced" and _ckernels.has_reduce_kernel(vops):
            # fused fast path: fold + balanced rank tree + result extraction
            # for the whole stream in ONE compiled call (bitwise-equal to the
            # fold/reduce_states path below; the engine property tests pin it)
            if _OBS.enabled:
                _OBS.counter("repro_comm_batch_fused_total").inc()
            values = _ckernels.reduce_balanced_chunks(flat, self.n_ranks, vops)
        else:
            states = op.local_states(flat)
            states = tuple(c.reshape(n_batches, self.n_ranks) for c in states)
            root = compile_tree(tree).reduce_states(states, vops)
            values = np.asarray(vops.result(root), dtype=np.float64).reshape(
                n_batches
            )
        cost = tree_cost(tree, self.topology) if self.topology else 0.0
        return [
            ReduceResult(
                value=float(v), tree=tree, simulated_time=cost, algorithm_code=op.code
            )
            for v in values
        ]

    # -- engines ---------------------------------------------------------------
    def _use_vector(self, op: ReductionOp, engine: str) -> bool:
        if engine == "auto":
            return op.supports_vector
        if engine == "vector":
            if not op.supports_vector:
                raise ValueError(
                    f"algorithm {op.code!r} does not support the vector engine "
                    "(no VectorOps, or it needs a per-reduction context)"
                )
            return True
        if engine == "object":
            return False
        raise ValueError(f"unknown engine {engine!r} (use 'auto', 'vector' or 'object')")

    def _execute_object(
        self, chunks: Sequence[np.ndarray], op: ReductionOp, tree: ReductionTree
    ) -> float:
        """Reference path: per-rank accumulators + per-node Python merges."""
        accs: list = [op.local(chunk) for chunk in chunks]
        slots: list = accs + [None] * (self.n_ranks - 1)
        for a, b, out in tree.iter_steps():
            slots[out] = op.combine(slots[a], slots[b])
        return op.finalize(slots[tree.root_slot])

    def _execute_vector(
        self, chunks: Sequence[np.ndarray], op: ReductionOp, tree: ReductionTree
    ) -> float:
        """Compiled path: one fold sweep + one level-scheduled tree walk."""
        vops = op.vector_ops
        states = op.local_states(chunks)
        root = compile_tree(tree).reduce_states(states, vops)
        return float(np.asarray(vops.result(root), dtype=np.float64))

    # -- helpers ---------------------------------------------------------------
    def _check_size(self, seq: Sequence) -> None:
        if len(seq) != self.n_ranks:
            raise ValueError(
                f"expected one entry per rank ({self.n_ranks}), got {len(seq)}"
            )

    def _contextualize(self, op: ReductionOp, chunks: Sequence[np.ndarray]) -> ReductionOp:
        """Run the pre-pass (max allreduce) for context-needing algorithms."""
        if not op.algorithm.needs_context or op.context is not None:
            return op
        local_maxes = [
            float(np.max(np.abs(c))) if np.asarray(c).size else 0.0 for c in chunks
        ]
        total = int(sum(np.asarray(c).size for c in chunks))  # repro: allow[FP002] -- integer element counts, not floats
        return op.with_context_for(self.max_allreduce(local_maxes), total)

    def _resolve_tree(self, tree: "ReductionTree | str") -> ReductionTree:
        if isinstance(tree, ReductionTree):
            if tree.n_leaves != self.n_ranks:
                raise ValueError("tree leaf count != communicator size")
            return tree
        if tree == "balanced":
            return balanced(self.n_ranks)
        if tree == "serial":
            return serial(self.n_ranks)
        if tree == "topology":
            if self.topology is not None:
                return topology_aware_tree(self.topology)
            return balanced(self.n_ranks)
        raise ValueError(f"unknown tree spec {tree!r}")
