"""Custom reduction operators: the ``MPI_Op`` layer over summation
accumulators.

The paper's Fig. 4 experiment "globally reduce[s] the local sums by using
MPI_Reduce with custom reduction operators for Kahan, composite precision,
and prerounded summations".  A :class:`ReductionOp` packages a summation
algorithm the same way: the *local* phase turns a rank's chunk into an
accumulator (the custom datatype an MPI op would ship), and the *combine*
phase merges two accumulators (the op callback).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.summation.base import Accumulator, SumContext, SummationAlgorithm

__all__ = ["ReductionOp", "make_reduction_op"]


@dataclass(frozen=True)
class ReductionOp:
    """A summation algorithm packaged as a reduction operator.

    ``context`` carries pre-pass information (the global max magnitude for
    PR); build it with :meth:`with_context_for` before reducing data the
    algorithm needs to see globally.
    """

    algorithm: SummationAlgorithm
    context: Optional[SumContext] = None

    @property
    def code(self) -> str:
        return self.algorithm.code

    def with_context_for(self, global_max_abs: float, n_hint: int | None = None) -> "ReductionOp":
        """Bind the global-max context (the max-allreduce's result)."""
        return ReductionOp(
            self.algorithm, SumContext(max_abs=global_max_abs, n_hint=n_hint)
        )

    def local(self, chunk: np.ndarray) -> Accumulator:
        """Rank-local phase: fold a chunk into a fresh accumulator."""
        acc = self.algorithm.make_accumulator(self.context)
        acc.add_array(np.asarray(chunk, dtype=np.float64))
        return acc

    def combine(self, a: Accumulator, b: Accumulator) -> Accumulator:
        """Op callback: merge ``b`` into ``a`` and return ``a``."""
        a.merge(b)
        return a

    def finalize(self, acc: Accumulator) -> float:
        return acc.result()


def make_reduction_op(
    algorithm: SummationAlgorithm, context: Optional[SumContext] = None
) -> ReductionOp:
    """Convenience constructor mirroring ``MPI.Op.Create``."""
    return ReductionOp(algorithm, context)
