"""Custom reduction operators: the ``MPI_Op`` layer over summation
accumulators.

The paper's Fig. 4 experiment "globally reduce[s] the local sums by using
MPI_Reduce with custom reduction operators for Kahan, composite precision,
and prerounded summations".  A :class:`ReductionOp` packages a summation
algorithm the same way: the *local* phase turns a rank's chunk into an
accumulator (the custom datatype an MPI op would ship), and the *combine*
phase merges two accumulators (the op callback).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.summation.base import Accumulator, SumContext, SummationAlgorithm, VectorOps
from repro.trees import _ckernels
from repro.util.chunking import pack_ragged

__all__ = ["ReductionOp", "make_reduction_op"]


@dataclass(frozen=True)
class ReductionOp:
    """A summation algorithm packaged as a reduction operator.

    ``context`` carries pre-pass information (the global max magnitude for
    PR); build it with :meth:`with_context_for` before reducing data the
    algorithm needs to see globally.
    """

    algorithm: SummationAlgorithm
    context: Optional[SumContext] = None

    @property
    def code(self) -> str:
        return self.algorithm.code

    def with_context_for(self, global_max_abs: float, n_hint: int | None = None) -> "ReductionOp":
        """Bind the global-max context (the max-allreduce's result)."""
        return ReductionOp(
            self.algorithm, SumContext(max_abs=global_max_abs, n_hint=n_hint)
        )

    @property
    def vector_ops(self) -> "VectorOps | None":
        """The algorithm's batched state algebra (None = object path only)."""
        return self.algorithm.vector_ops

    @property
    def supports_vector(self) -> bool:
        """True when the collective fast path can execute this op: the
        algorithm exposes VectorOps and needs no per-reduction context
        (context-needing algorithms keep their pre-pass on the object
        path)."""
        return self.algorithm.vector_ops is not None and not self.algorithm.needs_context

    def local(self, chunk: np.ndarray) -> Accumulator:
        """Rank-local phase: fold a chunk into a fresh accumulator."""
        acc = self.algorithm.make_accumulator(self.context)
        acc.add_array(np.asarray(chunk, dtype=np.float64))
        return acc

    def local_matrix(self, matrix: np.ndarray, lengths: np.ndarray):
        """Vectorised rank-local phase: all rank states from a padded
        ``(R, M)`` chunk matrix in one sweep, each row bitwise-equal to
        :meth:`local` on the corresponding chunk (see
        :meth:`repro.summation.base.VectorOps.fold`).  Routes through the
        fused compiled kernel when the algebra ships one."""
        vops = self._require_vector_ops()
        if _ckernels.has_fold_kernel(vops):
            return _ckernels.fold_matrix(matrix, lengths, vops)
        return vops.fold(matrix, lengths)

    def local_states(self, chunks):
        """Vectorised rank-local phase straight from a chunk list.

        Same contract as :meth:`local_matrix` but the compiled kernel reads
        each chunk in place through a pointer table — the padded matrix is
        never materialised.  The NumPy fallback packs first.
        """
        vops = self._require_vector_ops()
        if _ckernels.has_fold_kernel(vops):
            return _ckernels.fold_chunks(chunks, vops)
        matrix, lengths = pack_ragged(chunks)
        return vops.fold(matrix, lengths)

    def _require_vector_ops(self) -> VectorOps:
        vops = self.algorithm.vector_ops
        if vops is None:
            raise TypeError(
                f"algorithm {self.code!r} has no VectorOps; use the object path"
            )
        return vops

    def combine(self, a: Accumulator, b: Accumulator) -> Accumulator:
        """Op callback: merge ``b`` into ``a`` and return ``a``."""
        a.merge(b)
        return a

    def finalize(self, acc: Accumulator) -> float:
        return acc.result()


def make_reduction_op(
    algorithm: SummationAlgorithm, context: Optional[SumContext] = None
) -> ReductionOp:
    """Convenience constructor mirroring ``MPI.Op.Create``."""
    return ReductionOp(algorithm, context)
