"""Reduction tracing and replay: capture the tree that produced a value.

The debugging pain the paper opens with — "variability in floating-point
error accumulation may become so great that debugging is impaired" — has a
practical mitigation once reductions are simulated: record the *provenance*
of a reduced value (tree schedule, leaf-to-rank assignment, algorithm,
context) and replay it later, bit for bit.  A nondeterministic run that
produced a suspicious number becomes a deterministic test case.

Traces serialise to JSON (schedules as flat lists), so they can be attached
to bug reports; :func:`replay` reconstructs the value and raises loudly if
the recomputation does not match the recorded one — detecting environment
drift (different libm, different compile flags) as a side effect.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.mpi.ops import ReductionOp, make_reduction_op
from repro.summation.base import SumContext
from repro.summation.registry import get_algorithm
from repro.trees.tree import ReductionTree

__all__ = ["ReductionTrace", "record", "replay"]


@dataclass(frozen=True)
class ReductionTrace:
    """Everything needed to reproduce one global reduction bitwise."""

    algorithm_code: str
    n_ranks: int
    schedule: tuple  # ((a, b), ...) merge steps over rank slots
    chunk_lengths: tuple  # per-rank local data lengths
    data_hex: tuple  # operands as hex strings (exact, compact)
    context_max_abs: Optional[float]
    recorded_value_hex: str

    # -- serialisation ------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {
                "algorithm": self.algorithm_code,
                "n_ranks": self.n_ranks,
                "schedule": [list(step) for step in self.schedule],
                "chunk_lengths": list(self.chunk_lengths),
                "data_hex": list(self.data_hex),
                "context_max_abs": self.context_max_abs,
                "recorded_value_hex": self.recorded_value_hex,
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "ReductionTrace":
        d = json.loads(text)
        return cls(
            algorithm_code=str(d["algorithm"]),
            n_ranks=int(d["n_ranks"]),
            schedule=tuple(tuple(int(v) for v in s) for s in d["schedule"]),
            chunk_lengths=tuple(int(v) for v in d["chunk_lengths"]),
            data_hex=tuple(str(v) for v in d["data_hex"]),
            context_max_abs=(
                None if d["context_max_abs"] is None else float(d["context_max_abs"])
            ),
            recorded_value_hex=str(d["recorded_value_hex"]),
        )


def record(
    chunks: Sequence[np.ndarray],
    op: ReductionOp,
    tree: ReductionTree,
) -> tuple[float, ReductionTrace]:
    """Execute a reduction and capture its full provenance.

    Returns ``(value, trace)``; the trace embeds the operands in hex so the
    replay is exact regardless of locale or printing precision.
    """
    if tree.n_leaves != len(chunks):
        raise ValueError("tree leaf count != number of rank chunks")
    arrays = [np.asarray(c, dtype=np.float64).ravel() for c in chunks]
    alg = op.algorithm
    context = op.context
    if alg.needs_context and context is None:
        flat = np.concatenate(arrays) if arrays else np.array([])
        context = SumContext.for_data(flat)
    accs = []
    for a in arrays:
        acc = alg.make_accumulator(context)
        acc.add_array(a)
        accs.append(acc)
    slots: list = accs + [None] * (len(arrays) - 1)
    for a, b, out in tree.iter_steps():
        slots[a].merge(slots[b])
        slots[out] = slots[a]
    value = slots[tree.root_slot].result()
    trace = ReductionTrace(
        algorithm_code=alg.code,
        n_ranks=len(arrays),
        schedule=tuple(tuple(int(v) for v in step) for step in tree.schedule),
        chunk_lengths=tuple(a.size for a in arrays),
        data_hex=tuple(v.hex() for a in arrays for v in a.tolist()),
        context_max_abs=None if context is None else context.max_abs,
        recorded_value_hex=float(value).hex(),
    )
    return value, trace


def replay(trace: ReductionTrace, *, verify: bool = True) -> float:
    """Re-execute a recorded reduction bit for bit.

    With ``verify=True`` (default) a mismatch against the recorded value
    raises ``RuntimeError`` — the signal that the replaying environment
    rounds differently than the recording one.
    """
    data = np.array([float.fromhex(h) for h in trace.data_hex], dtype=np.float64)
    chunks = []
    start = 0
    for length in trace.chunk_lengths:
        chunks.append(data[start : start + length])
        start += length
    if start != data.size:
        raise ValueError("corrupt trace: chunk lengths do not cover the data")
    tree = ReductionTree(
        n_leaves=trace.n_ranks,
        schedule=np.array(trace.schedule, dtype=np.int64).reshape(-1, 2),
    )
    tree.validate()
    alg = get_algorithm(trace.algorithm_code)
    context = (
        SumContext(max_abs=trace.context_max_abs)
        if trace.context_max_abs is not None
        else None
    )
    op = make_reduction_op(alg, context)
    value, _ = record(chunks, op, tree)
    if verify:
        recorded = float.fromhex(trace.recorded_value_hex)
        if value != recorded and not (np.isnan(value) and np.isnan(recorded)):
            raise RuntimeError(
                f"replay mismatch: recomputed {value!r} != recorded {recorded!r} "
                "(environment rounds differently?)"
            )
    return value
