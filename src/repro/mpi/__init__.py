"""Simulated-MPI substrate: communicator, topology model, custom reduction
operators, nondeterministic arrival-order reduction, fault injection."""

from repro.mpi.allreduce import allreduce_recursive_doubling, allreduce_ring
from repro.mpi.comm import ReduceResult, SimComm
from repro.mpi.faults import CampaignResult, FaultModel, run_campaign
from repro.mpi.nondet import (
    ArrivalReduction,
    ArrivalSchedule,
    arrival_order_tree,
    sample_arrival_times,
)
from repro.mpi.ops import ReductionOp, make_reduction_op
from repro.mpi.scan import exscan, scan
from repro.mpi.trace import ReductionTrace, record, replay
from repro.mpi.topology import (
    MachineTopology,
    binomial_tree,
    topology_aware_tree,
    tree_cost,
)

__all__ = [
    "ArrivalReduction",
    "allreduce_recursive_doubling",
    "allreduce_ring",
    "ArrivalSchedule",
    "CampaignResult",
    "FaultModel",
    "MachineTopology",
    "ReduceResult",
    "ReductionOp",
    "SimComm",
    "arrival_order_tree",
    "ReductionTrace",
    "exscan",
    "record",
    "replay",
    "scan",
    "binomial_tree",
    "make_reduction_op",
    "run_campaign",
    "sample_arrival_times",
    "topology_aware_tree",
    "tree_cost",
]
