"""Machine-topology model and topology-aware reduction trees.

Balaji & Kimpe (paper reference [4]) showed that MPI reduction trees which
conform to the physical topology outperform fixed-order trees, with the gap
growing with core count — and that conforming trees reduce values "in an
order based on which core produced them, not necessarily their arithmetical
properties".  This module provides the machine model that lets us reproduce
that tension:

* :class:`MachineTopology` — nodes x sockets-per-node x cores-per-socket,
  with a three-tier link-latency model (intra-socket < intra-node <
  inter-node).
* :func:`topology_aware_tree` — hierarchical reduction: serial within a
  socket, binomial across sockets of a node, binomial across nodes.  This is
  the "performant" tree whose shape follows hardware, not data.
* :func:`tree_cost` — critical-path completion time of any reduction tree on
  the topology, so benches can compare topology-aware vs data-aware orders.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trees.tree import ReductionTree

__all__ = ["MachineTopology", "topology_aware_tree", "binomial_tree", "tree_cost"]


@dataclass(frozen=True)
class MachineTopology:
    """A homogeneous cluster: ``nodes`` x ``sockets`` x ``cores``.

    Latencies are per-message costs in arbitrary time units; computation
    cost per merge is ``compute_cost``.
    """

    nodes: int = 1
    sockets_per_node: int = 2
    cores_per_socket: int = 24
    latency_socket: float = 1.0
    latency_node: float = 5.0
    latency_network: float = 50.0
    compute_cost: float = 0.5

    def __post_init__(self) -> None:
        if min(self.nodes, self.sockets_per_node, self.cores_per_socket) < 1:
            raise ValueError("topology extents must be >= 1")

    @property
    def n_ranks(self) -> int:
        return self.nodes * self.sockets_per_node * self.cores_per_socket

    def coords(self, rank: int) -> tuple[int, int, int]:
        """``(node, socket, core)`` of a rank (block placement)."""
        if not 0 <= rank < self.n_ranks:
            raise ValueError(f"rank {rank} out of range")
        per_node = self.sockets_per_node * self.cores_per_socket
        node, rem = divmod(rank, per_node)
        socket, core = divmod(rem, self.cores_per_socket)
        return node, socket, core

    def link_latency(self, a: int, b: int) -> float:
        """Latency of one message between two ranks."""
        na, sa, _ = self.coords(a)
        nb, sb, _ = self.coords(b)
        if na != nb:
            return self.latency_network
        if sa != sb:
            return self.latency_node
        return self.latency_socket


def binomial_tree(n: int, offset: int = 0) -> list[tuple[int, int]]:
    """Merge steps of a binomial reduction over ``n`` items.

    Returns ``(survivor, absorbed)`` pairs in execution order over item ids
    ``offset .. offset+n-1``; survivor ``offset`` holds the result.
    """
    steps: list[tuple[int, int]] = []
    stride = 1
    while stride < n:
        for i in range(0, n - stride, 2 * stride):
            steps.append((offset + i, offset + i + stride))
        stride *= 2
    return steps


def topology_aware_tree(topology: MachineTopology) -> ReductionTree:
    """Hierarchical reduction tree over all ranks of ``topology``.

    Socket-serial, then binomial across sockets, then binomial across nodes
    — leaves are ranks (leaf ``i`` carries rank ``i``'s value).
    """
    n = topology.n_ranks
    if n == 1:
        return ReductionTree(n_leaves=1, schedule=np.empty((0, 2), dtype=np.int64), kind="custom")
    schedule = np.empty((n - 1, 2), dtype=np.int64)
    t = 0
    # current slot holding each subgroup's partial (indexed by leader rank)
    holder = {r: r for r in range(n)}

    def merge(a_rank: int, b_rank: int) -> None:
        nonlocal t
        schedule[t] = (holder[a_rank], holder[b_rank])
        holder[a_rank] = n + t
        t += 1

    cps = topology.cores_per_socket
    spn = topology.sockets_per_node
    # 1) serial within each socket
    for node in range(topology.nodes):
        for socket in range(spn):
            base = (node * spn + socket) * cps
            for core in range(1, cps):
                merge(base, base + core)
    # 2) binomial across sockets within each node
    for node in range(topology.nodes):
        leaders = [(node * spn + s) * cps for s in range(spn)]
        for i, j in binomial_tree(len(leaders)):
            merge(leaders[i], leaders[j])
    # 3) binomial across nodes
    node_leaders = [node * spn * cps for node in range(topology.nodes)]
    for i, j in binomial_tree(len(node_leaders)):
        merge(node_leaders[i], node_leaders[j])
    assert t == n - 1
    return ReductionTree(n_leaves=n, schedule=schedule, kind="custom")


def tree_cost(
    tree: ReductionTree,
    topology: MachineTopology,
    leaf_rank: "np.ndarray | None" = None,
) -> float:
    """Critical-path completion time of ``tree`` on ``topology``.

    Each merge finishes when both inputs are ready plus the link latency
    between the ranks that own them plus the merge compute cost.  Ownership
    of a partial result follows the left input (the survivor).  ``leaf_rank``
    maps leaves to ranks (identity by default).
    """
    n = tree.n_leaves
    if leaf_rank is None:
        leaf_rank = np.arange(n)
    leaf_rank = np.asarray(leaf_rank, dtype=np.int64)
    if leaf_rank.size != n:
        raise ValueError("leaf_rank must map every leaf")
    ready = np.zeros(tree.n_nodes, dtype=np.float64)
    owner = np.empty(tree.n_nodes, dtype=np.int64)
    owner[:n] = leaf_rank
    for a, b, out in tree.iter_steps():
        lat = topology.link_latency(int(owner[a]), int(owner[b]))
        ready[out] = max(ready[a], ready[b]) + lat + topology.compute_cost
        owner[out] = owner[a]
    return float(ready[tree.root_slot])
