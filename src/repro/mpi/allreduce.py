"""Allreduce strategies: recursive doubling vs ring reduce-scatter.

Real MPI libraries pick among several allreduce algorithms by message size
and communicator shape — and the *strategy choice alone* changes the
combination order, hence the bits (one of the system-level nondeterminism
sources Sec. II surveys: reductions follow the network, not the data).  Two
classic strategies are implemented over the accumulator interface:

* :func:`allreduce_recursive_doubling` — the butterfly: at stage ``s`` rank
  ``r`` exchanges partials with ``r XOR 2**s`` and merges the received
  partial into its own.  Every rank applies the merges in *its own* order,
  so with an asymmetric merge (Kahan's is) different ranks can end the
  collective holding **different values** — the classic consistency hazard
  this module makes observable.
* :func:`allreduce_ring` — reduce-scatter + allgather: each data segment
  travels the ring starting from a different rank, so segments are reduced
  in rotated orders; all ranks agree bitwise (the allgather shares final
  segments) but the value differs from the butterfly's.

With the prerounded operator both strategies, all starting rotations, and
every rank agree bitwise — the selector's guarantee extends across
collective-algorithm choice, which the tests assert.

Non-power-of-two communicator sizes use the standard pre-fold: the trailing
ranks fold into their partners first, the power-of-two core runs the
butterfly, and results are re-broadcast.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.mpi.ops import ReductionOp
from repro.summation.base import Accumulator, SumContext

__all__ = ["allreduce_recursive_doubling", "allreduce_ring"]


def _locals(chunks: Sequence[np.ndarray], op: ReductionOp) -> list[Accumulator]:
    op = _contextualize(op, chunks)
    return [op.local(np.asarray(c, dtype=np.float64)) for c in chunks], op


def _contextualize(op: ReductionOp, chunks: Sequence[np.ndarray]) -> ReductionOp:
    if not op.algorithm.needs_context or op.context is not None:
        return op
    max_abs = 0.0
    total = 0
    for c in chunks:
        c = np.asarray(c, dtype=np.float64)
        if c.size:
            max_abs = max(max_abs, float(np.max(np.abs(c))))
        total += c.size
    return op.with_context_for(max_abs, total)


def _clone(acc: Accumulator) -> Accumulator:
    if hasattr(acc, "copy"):
        return acc.copy()  # type: ignore[attr-defined]
    import copy

    return copy.deepcopy(acc)


def allreduce_recursive_doubling(
    chunks: Sequence[np.ndarray], op: ReductionOp
) -> list[float]:
    """Butterfly allreduce; returns each rank's final value.

    Faithful to the message pattern: at every stage each rank merges the
    *received* partial into its own state, so merge-order asymmetries are
    preserved per rank.
    """
    if not chunks:
        raise ValueError("need at least one rank")
    accs, op = _locals(chunks, op)
    p = len(accs)
    # pre-fold the non-power-of-two tail into the core
    core = 1 << (p.bit_length() - 1)
    if core != p:
        for r in range(core, p):
            partner = r - core
            accs[partner].merge(accs[r])
    stride = 1
    while stride < core:
        snapshot = [_clone(a) for a in accs[:core]]
        for r in range(core):
            partner = r ^ stride
            if partner < core:
                accs[r].merge(snapshot[partner])
        stride *= 2
    results = [accs[r % core].result() for r in range(core)]
    # tail ranks receive from their fold partner (as real implementations do)
    return [results[r] if r < core else results[r - core] for r in range(p)]


def allreduce_ring(
    chunks: Sequence[np.ndarray], op: ReductionOp, *, segments: "int | None" = None
) -> list[float]:
    """Ring reduce-scatter + allgather; returns each rank's final value.

    Each rank's chunk is split into ``segments`` pieces (default: one per
    rank); segment ``j`` is reduced travelling the ring starting at rank
    ``(j + 1) % p``, so different segments see rotated combination orders.
    After the allgather every rank holds identical segment totals, which are
    folded left-to-right into the final value — bitwise identical on all
    ranks by construction.
    """
    if not chunks:
        raise ValueError("need at least one rank")
    p = len(chunks)
    segments = p if segments is None else int(segments)
    if segments < 1:
        raise ValueError("segments must be >= 1")
    op = _contextualize(op, chunks)
    # per-rank, per-segment local accumulators
    seg_accs: list[list[Accumulator]] = []
    for c in chunks:
        c = np.asarray(c, dtype=np.float64)
        parts = np.array_split(c, segments)
        seg_accs.append([op.local(part) for part in parts])
    # ring reduce-scatter: segment j accumulates in ring order starting at
    # rank (j + 1) % p and ending at rank j
    seg_totals: list[Accumulator] = []
    for j in range(segments):
        start = (j + 1) % p
        acc = _clone(seg_accs[start][j])
        for step in range(1, p):
            r = (start + step) % p
            acc.merge(seg_accs[r][j])
        seg_totals.append(acc)
    # allgather + identical final fold on every rank
    final = seg_totals[0]
    for j in range(1, segments):
        final.merge(seg_totals[j])
    value = final.result()
    return [value] * p
