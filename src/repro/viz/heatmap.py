"""ASCII heatmaps for the grid figures (9-12).

matplotlib is not part of the offline dependency set, so the experiment
harness renders grids as text: each cell is shaded by the decade of its
value, reproducing the paper's "shade the cell according to the standard
deviation" visual as a character ramp.  The same renderer draws Fig. 12's
categorical algorithm grids with one letter per algorithm.
"""

from __future__ import annotations

import math
from typing import Callable, Mapping, Sequence

__all__ = ["shade_char", "render_value_grid", "render_category_grid"]

#: dark-to-light character ramp (index 0 = smallest values)
_RAMP = " .:-=+*#%@"


def shade_char(value: float, lo_decade: float, hi_decade: float) -> str:
    """Map a non-negative value onto the ramp by its decade.

    Values at or below ``10**lo_decade`` map to ' ', at or above
    ``10**hi_decade`` to '@'; zero always maps to ' '.
    """
    if value < 0:
        raise ValueError("heatmap values must be non-negative")
    if value == 0.0:  # repro: allow[FP001] -- exact zero rendered distinctly
        return _RAMP[0]
    d = math.log10(value)
    if hi_decade <= lo_decade:
        raise ValueError("hi_decade must exceed lo_decade")
    frac = (d - lo_decade) / (hi_decade - lo_decade)
    idx = int(frac * (len(_RAMP) - 1))
    return _RAMP[max(0, min(len(_RAMP) - 1, idx))]


def render_value_grid(
    rows: Sequence[str],
    cols: Sequence[str],
    values: Mapping[tuple[str, str], float],
    *,
    title: str = "",
    lo_decade: float | None = None,
    hi_decade: float | None = None,
    cell_width: int = 9,
) -> str:
    """Render a labelled grid of non-negative values with decade shading.

    ``values[(row, col)]`` may be missing (rendered as '?'); NaN renders as
    'n/a'.  Each cell shows the shade character and the value in %.1e.
    """
    finite = [
        v
        for v in values.values()
        if v is not None and not math.isnan(v) and v > 0.0
    ]
    if lo_decade is None:
        lo_decade = math.floor(math.log10(min(finite))) if finite else -18.0
    if hi_decade is None:
        hi_decade = math.ceil(math.log10(max(finite))) if finite else 0.0
    if hi_decade <= lo_decade:
        hi_decade = lo_decade + 1.0
    out: list[str] = []
    if title:
        out.append(title)
    header = " " * 10 + "".join(f"{c:>{cell_width}}" for c in cols)
    out.append(header)
    for r in rows:
        cells = []
        for c in cols:
            v = values.get((r, c))
            if v is None:
                cells.append(f"{'?':>{cell_width}}")
            elif math.isnan(v):
                cells.append(f"{'n/a':>{cell_width}}")
            else:
                ch = shade_char(v, lo_decade, hi_decade)
                cells.append(f"{ch} {v:.1e}".rjust(cell_width))
        out.append(f"{r:>10}" + "".join(cells))
    out.append(
        f"{'':>10}(shade: ' '<=1e{lo_decade:+.0f} ... '@'>=1e{hi_decade:+.0f})"
    )
    return "\n".join(out)


def render_category_grid(
    rows: Sequence[str],
    cols: Sequence[str],
    labels: Mapping[tuple[str, str], str],
    *,
    title: str = "",
    cell_width: int = 6,
) -> str:
    """Render a categorical grid (Fig. 12: algorithm code per cell)."""
    out: list[str] = []
    if title:
        out.append(title)
    out.append(" " * 10 + "".join(f"{c:>{cell_width}}" for c in cols))
    for r in rows:
        line = f"{r:>10}"
        for c in cols:
            line += f"{labels.get((r, c), '?'):>{cell_width}}"
        out.append(line)
    return "\n".join(out)
