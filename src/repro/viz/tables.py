"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["render_table"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str = "",
) -> str:
    """Render rows as an aligned monospace table.

    Floats are formatted as ``%.4g``; everything else via ``str``.
    """

    def fmt(v: object) -> str:
        if isinstance(v, float):
            return f"{v:.4g}"
        return str(v)

    str_rows = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    out: list[str] = []
    if title:
        out.append(title)
    out.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append("  ".join("-" * w for w in widths))
    for r in str_rows:
        out.append("  ".join(c.rjust(w) for c, w in zip(r, widths)))
    return "\n".join(out)
