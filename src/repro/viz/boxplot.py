"""Text boxplots for the Fig. 6/7 error-distribution panels."""

from __future__ import annotations

import math
from typing import Sequence

from repro.metrics.errors import BoxplotSummary

__all__ = ["render_boxplot_row", "render_boxplot_panel"]


def render_boxplot_row(
    label: str,
    summary: BoxplotSummary,
    *,
    lo: float,
    hi: float,
    width: int = 52,
) -> str:
    """One horizontal boxplot over a log10 axis from ``lo`` to ``hi``.

    Zero-valued statistics (bitwise-reproducible algorithms) are clamped to
    the left edge and annotated, since log axes cannot show zero.
    """

    def pos(v: float) -> int:
        if v <= 0.0:
            return 0
        d = math.log10(v)
        frac = (d - lo) / (hi - lo)
        return max(0, min(width - 1, int(frac * (width - 1))))

    line = [" "] * width
    w_lo, w_hi = pos(summary.whisker_low), pos(summary.whisker_high)
    for i in range(w_lo, w_hi + 1):
        line[i] = "-"
    q1, q3 = pos(summary.q1), pos(summary.q3)
    for i in range(q1, q3 + 1):
        line[i] = "="
    line[pos(summary.median)] = "M"
    for o in summary.outliers:
        line[pos(o)] = "o"
    note = " (all zero)" if summary.whisker_high == 0.0 else ""  # repro: allow[FP001] -- exactly-zero whisker labels the all-zero case
    return f"{label:>14} |{''.join(line)}|{note}"


def render_boxplot_panel(
    title: str,
    entries: "Sequence[tuple[str, BoxplotSummary]]",
    *,
    width: int = 52,
) -> str:
    """A labelled panel of boxplots on a shared log10 |error| axis."""
    positive = [
        v
        for _, s in entries
        for v in (s.whisker_low, s.whisker_high, s.median, *s.outliers)
        if v > 0.0
    ]
    if positive:
        lo = math.floor(math.log10(min(positive))) - 0.5
        hi = math.ceil(math.log10(max(positive))) + 0.5
    else:
        lo, hi = -18.0, 0.0
    header = f"{title}\n{'':>14} |{'|error| in 1e%+.0f .. 1e%+.0f (log scale)' % (lo, hi):^{width}}|"
    rows = [render_boxplot_row(lbl, s, lo=lo, hi=hi, width=width) for lbl, s in entries]
    return "\n".join([header, *rows])
