"""Text renderers: decade-shaded heatmaps, log-axis boxplots, tables."""

from repro.viz.boxplot import render_boxplot_panel, render_boxplot_row
from repro.viz.heatmap import render_category_grid, render_value_grid, shade_char
from repro.viz.tables import render_table

__all__ = [
    "render_boxplot_panel",
    "render_boxplot_row",
    "render_category_grid",
    "render_table",
    "render_value_grid",
    "shade_char",
]
