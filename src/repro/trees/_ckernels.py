"""Optional compiled balanced-sweep kernels (ctypes + cc, NumPy fallback).

The 2-D balanced matrix sweep in :mod:`repro.trees.evaluate` is limited by
NumPy's one-temporary-per-ufunc execution model: every level of the tree
reads and writes full ensemble-sized intermediates, so the sweep runs at
memory bandwidth while the arithmetic itself is a handful of flops per
element.  A fused C kernel evaluates each tree's whole level schedule out of
an L1-resident scratch buffer — including the leaf gather, so the permuted
operand matrix is never materialised at all.

The kernels are **bitwise-identical** to the NumPy level sweep: they apply
the exact same IEEE-754 double operations in the exact same order (compiled
with ``-ffp-contract=off`` so no FMA contraction can perturb a rounding),
and the engine property tests pin them against the generic node-walk just
like every other fast path.

Availability is strictly optional.  The C source is compiled on first use
with the system C compiler into a content-addressed cache under the user's
temp directory; if no compiler is present, compilation fails, or
``REPRO_NO_CKERNELS`` is set (any non-empty value), :func:`has_kernel`
returns False and callers stay on the pure-NumPy path.  Nothing is ever
downloaded or installed.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
from typing import Optional

import numpy as np

__all__ = ["has_kernel", "sweep_matrix", "sweep_indexed", "kernels_available"]

#: One function per accumulator algebra.  ``idx == NULL`` means matrix mode
#: (row r's leaves are ``data[r*n : (r+1)*n]``); otherwise ``data`` is the
#: base operand vector and row r's leaves are ``data[idx[r*n + j]]``.
#: Every function mirrors the level loop of ``balanced_ensemble_vops``:
#: pair adjacent nodes, carry an odd trailing node up unchanged.
_C_SOURCE = r"""
#include <math.h>
#include <stdint.h>
#include <stdlib.h>

#define LEAF(j) (idx ? data[idx[(size_t)r * (size_t)n + (size_t)(j)]] \
                     : data[(size_t)r * (size_t)n + (size_t)(j)])

int balanced_sweep_st(const double *data, const int64_t *idx,
                      int64_t n_rows, int64_t n, double *out)
{
    int64_t h = (n + 1) / 2;
    double *s = (double *)malloc((size_t)h * sizeof(double));
    if (!s) return 1;
    for (int64_t r = 0; r < n_rows; r++) {
        int64_t even = n - (n & 1), hw = even / 2;
        for (int64_t i = 0; i < hw; i++)
            s[i] = LEAF(2 * i) + LEAF(2 * i + 1);
        int64_t w = hw;
        if (n & 1) { s[w] = LEAF(n - 1); w++; }
        while (w > 1) {
            int64_t e2 = w - (w & 1), h2 = e2 / 2;
            for (int64_t i = 0; i < h2; i++)
                s[i] = s[2 * i] + s[2 * i + 1];
            if (w & 1) s[h2] = s[w - 1];
            w = h2 + (w & 1);
        }
        out[r] = s[0];
    }
    free(s);
    return 0;
}

int balanced_sweep_kahan(const double *data, const int64_t *idx,
                         int64_t n_rows, int64_t n, double *out)
{
    int64_t h = (n + 1) / 2;
    double *s = (double *)malloc((size_t)h * sizeof(double));
    double *c = (double *)malloc((size_t)h * sizeof(double));
    if (!s || !c) { free(s); free(c); return 1; }
    for (int64_t r = 0; r < n_rows; r++) {
        int64_t even = n - (n & 1), hw = even / 2;
        for (int64_t i = 0; i < hw; i++) {
            double a = LEAF(2 * i), b = LEAF(2 * i + 1);
            double t = a + b;
            s[i] = t;
            c[i] = (t - a) - b;
        }
        int64_t w = hw;
        if (n & 1) { s[w] = LEAF(n - 1); c[w] = 0.0; w++; }
        while (w > 1) {
            int64_t e2 = w - (w & 1), h2 = e2 / 2;
            for (int64_t i = 0; i < h2; i++) {
                double a0 = s[2 * i], b0 = s[2 * i + 1];
                double a1 = c[2 * i], b1 = c[2 * i + 1];
                double y = b0 - (a1 + b1);
                double t = a0 + y;
                s[i] = t;
                c[i] = (t - a0) - y;
            }
            if (w & 1) { s[h2] = s[w - 1]; c[h2] = c[w - 1]; }
            w = h2 + (w & 1);
        }
        out[r] = s[0];
    }
    free(s); free(c);
    return 0;
}

int balanced_sweep_kbn(const double *data, const int64_t *idx,
                       int64_t n_rows, int64_t n, double *out)
{
    int64_t h = (n + 1) / 2;
    double *s = (double *)malloc((size_t)h * sizeof(double));
    double *c = (double *)malloc((size_t)h * sizeof(double));
    if (!s || !c) { free(s); free(c); return 1; }
    for (int64_t r = 0; r < n_rows; r++) {
        int64_t even = n - (n & 1), hw = even / 2;
        for (int64_t i = 0; i < hw; i++) {
            double a = LEAF(2 * i), b = LEAF(2 * i + 1);
            double t = a + b;
            double comp = (fabs(a) >= fabs(b)) ? (a - t) + b : (b - t) + a;
            s[i] = t;
            c[i] = comp + 0.0;
        }
        int64_t w = hw;
        if (n & 1) { s[w] = LEAF(n - 1); c[w] = 0.0; w++; }
        while (w > 1) {
            int64_t e2 = w - (w & 1), h2 = e2 / 2;
            for (int64_t i = 0; i < h2; i++) {
                double a0 = s[2 * i], b0 = s[2 * i + 1];
                double a1 = c[2 * i], b1 = c[2 * i + 1];
                double t = a0 + b0;
                double comp = (fabs(a0) >= fabs(b0)) ? (a0 - t) + b0
                                                     : (b0 - t) + a0;
                s[i] = t;
                c[i] = (a1 + comp) + b1;
            }
            if (w & 1) { s[h2] = s[w - 1]; c[h2] = c[w - 1]; }
            w = h2 + (w & 1);
        }
        out[r] = s[0] + c[0];
    }
    free(s); free(c);
    return 0;
}

int balanced_sweep_cp(const double *data, const int64_t *idx,
                      int64_t n_rows, int64_t n, double *out)
{
    int64_t h = (n + 1) / 2;
    double *s = (double *)malloc((size_t)h * sizeof(double));
    double *c = (double *)malloc((size_t)h * sizeof(double));
    if (!s || !c) { free(s); free(c); return 1; }
    for (int64_t r = 0; r < n_rows; r++) {
        int64_t even = n - (n & 1), hw = even / 2;
        for (int64_t i = 0; i < hw; i++) {
            double a = LEAF(2 * i), b = LEAF(2 * i + 1);
            double sum = a + b;
            double bb = sum - a;
            double delta = (a - (sum - bb)) + (b - bb);
            s[i] = sum;
            c[i] = delta + 0.0;
        }
        int64_t w = hw;
        if (n & 1) { s[w] = LEAF(n - 1); c[w] = 0.0; w++; }
        while (w > 1) {
            int64_t e2 = w - (w & 1), h2 = e2 / 2;
            for (int64_t i = 0; i < h2; i++) {
                double a0 = s[2 * i], b0 = s[2 * i + 1];
                double a1 = c[2 * i], b1 = c[2 * i + 1];
                double sum = a0 + b0;
                double bb = sum - a0;
                double delta = (a0 - (sum - bb)) + (b0 - bb);
                s[i] = sum;
                c[i] = a1 + b1 + delta;
            }
            if (w & 1) { s[h2] = s[w - 1]; c[h2] = c[w - 1]; }
            w = h2 + (w & 1);
        }
        out[r] = s[0] + c[0];
    }
    free(s); free(c);
    return 0;
}

int balanced_sweep_dd(const double *data, const int64_t *idx,
                      int64_t n_rows, int64_t n, double *out)
{
    int64_t h = (n + 1) / 2;
    double *s = (double *)malloc((size_t)h * sizeof(double));
    double *c = (double *)malloc((size_t)h * sizeof(double));
    if (!s || !c) { free(s); free(c); return 1; }
    for (int64_t r = 0; r < n_rows; r++) {
        int64_t even = n - (n & 1), hw = even / 2;
        for (int64_t i = 0; i < hw; i++) {
            double hi1 = LEAF(2 * i), hi2 = LEAF(2 * i + 1);
            double sum = hi1 + hi2;
            double bb = sum - hi1;
            double e = (hi1 - (sum - bb)) + (hi2 - bb);
            e = e + 0.0 + 0.0;
            double s2 = sum + e;
            s[i] = s2;
            c[i] = e - (s2 - sum);
        }
        int64_t w = hw;
        if (n & 1) { s[w] = LEAF(n - 1); c[w] = 0.0; w++; }
        while (w > 1) {
            int64_t e2 = w - (w & 1), h2 = e2 / 2;
            for (int64_t i = 0; i < h2; i++) {
                double hi1 = s[2 * i], hi2 = s[2 * i + 1];
                double lo1 = c[2 * i], lo2 = c[2 * i + 1];
                double sum = hi1 + hi2;
                double bb = sum - hi1;
                double e = (hi1 - (sum - bb)) + (hi2 - bb);
                e = e + lo1 + lo2;
                double s2 = sum + e;
                s[i] = s2;
                c[i] = e - (s2 - sum);
            }
            if (w & 1) { s[h2] = s[w - 1]; c[h2] = c[w - 1]; }
            w = h2 + (w & 1);
        }
        out[r] = s[0] + c[0];
    }
    free(s); free(c);
    return 0;
}
"""

_FUNCTIONS = (
    "balanced_sweep_st",
    "balanced_sweep_kahan",
    "balanced_sweep_kbn",
    "balanced_sweep_cp",
    "balanced_sweep_dd",
)

_lock = threading.Lock()
_lib: Optional[ctypes.CDLL] = None
_load_attempted = False


def _compile_library() -> Optional[ctypes.CDLL]:
    """Compile (or reuse) the kernel shared object; None on any failure."""
    if os.environ.get("REPRO_NO_CKERNELS"):
        return None
    cc = shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")
    if cc is None:
        return None
    digest = hashlib.blake2b(_C_SOURCE.encode(), digest_size=16).hexdigest()
    cache_dir = os.environ.get("REPRO_CKERNEL_CACHE") or os.path.join(
        tempfile.gettempdir(), "repro-ckernels"
    )
    so_path = os.path.join(cache_dir, f"balanced-{digest}.so")
    try:
        if not os.path.exists(so_path):
            os.makedirs(cache_dir, exist_ok=True)
            with tempfile.TemporaryDirectory(dir=cache_dir) as td:
                src = os.path.join(td, "kernels.c")
                with open(src, "w") as f:
                    f.write(_C_SOURCE)
                tmp_so = os.path.join(td, "kernels.so")
                # -ffp-contract=off: no FMA contraction; every rounding in
                # the source happens exactly as written, matching NumPy.
                subprocess.run(
                    [cc, "-O2", "-fPIC", "-shared", "-ffp-contract=off",
                     src, "-o", tmp_so],
                    check=True,
                    capture_output=True,
                    timeout=120,
                )
                os.replace(tmp_so, so_path)  # atomic within cache_dir
        lib = ctypes.CDLL(so_path)
    except (OSError, subprocess.SubprocessError):
        return None
    argtypes = [
        ctypes.POINTER(ctypes.c_double),
        ctypes.POINTER(ctypes.c_int64),
        ctypes.c_int64,
        ctypes.c_int64,
        ctypes.POINTER(ctypes.c_double),
    ]
    for name in _FUNCTIONS:
        fn = getattr(lib, name)
        fn.argtypes = argtypes
        fn.restype = ctypes.c_int
    return lib


def _get_lib() -> Optional[ctypes.CDLL]:
    global _lib, _load_attempted
    if not _load_attempted:
        with _lock:
            if not _load_attempted:
                _lib = _compile_library()
                _load_attempted = True
    return _lib


def kernels_available() -> bool:
    """True when the compiled kernels loaded (compiler present, not gated)."""
    return _get_lib() is not None


def has_kernel(vops) -> bool:
    """True when ``vops`` advertises a compiled balanced sweep and it loads."""
    return getattr(vops, "ckernel", None) is not None and _get_lib() is not None


_NULL_IDX = ctypes.POINTER(ctypes.c_int64)()


def _call(name: str, data: np.ndarray, idx, n_rows: int, n: int,
          out: np.ndarray) -> None:
    lib = _get_lib()
    assert lib is not None, "compiled kernels not available"
    fn = getattr(lib, "balanced_sweep_" + name)
    data_p = data.ctypes.data_as(ctypes.POINTER(ctypes.c_double))
    idx_p = (
        _NULL_IDX
        if idx is None
        else idx.ctypes.data_as(ctypes.POINTER(ctypes.c_int64))
    )
    out_p = out.ctypes.data_as(ctypes.POINTER(ctypes.c_double))
    status = fn(data_p, idx_p, n_rows, n, out_p)
    if status != 0:  # pragma: no cover - allocation failure
        raise MemoryError(f"balanced_sweep_{name} scratch allocation failed")


def sweep_matrix(mat: np.ndarray, vops, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Balanced-tree values of every row of a ``(P, n)`` operand matrix.

    Bitwise-equal to the NumPy ``balanced_ensemble_vops`` sweep; requires
    ``has_kernel(vops)`` and ``n >= 2``.
    """
    mat = np.ascontiguousarray(mat, dtype=np.float64)
    n_rows, n = mat.shape
    if out is None:
        out = np.empty(n_rows, dtype=np.float64)
    _call(vops.ckernel, mat, None, n_rows, n, out)
    return out


def sweep_indexed(
    data: np.ndarray,
    idx: np.ndarray,
    vops,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Like :func:`sweep_matrix` but row r's leaves are ``data[idx[r]]``.

    The leaf gather happens inside the kernel, so the permuted operand
    matrix is never materialised.  Indices are **not** bounds-checked here;
    callers validate untrusted index matrices up front.
    """
    data = np.ascontiguousarray(data, dtype=np.float64)
    idx = np.ascontiguousarray(idx, dtype=np.int64)
    n_rows, n = idx.shape
    if out is None:
        out = np.empty(n_rows, dtype=np.float64)
    _call(vops.ckernel, data, idx, n_rows, n, out)
    return out
