"""Optional compiled balanced-sweep kernels (ctypes + cc, NumPy fallback).

The 2-D balanced matrix sweep in :mod:`repro.trees.evaluate` is limited by
NumPy's one-temporary-per-ufunc execution model: every level of the tree
reads and writes full ensemble-sized intermediates, so the sweep runs at
memory bandwidth while the arithmetic itself is a handful of flops per
element.  A fused C kernel evaluates each tree's whole level schedule out of
an L1-resident scratch buffer — including the leaf gather, so the permuted
operand matrix is never materialised at all.

The kernels are **bitwise-identical** to the NumPy level sweep: they apply
the exact same IEEE-754 double operations in the exact same order (compiled
with ``-ffp-contract=off`` so no FMA contraction can perturb a rounding),
and the engine property tests pin them against the generic node-walk just
like every other fast path.

Availability is strictly optional.  The C source is compiled on first use
with the system C compiler into a content-addressed cache under the user's
temp directory; if no compiler is present, compilation fails, or
``REPRO_NO_CKERNELS`` is set (any non-empty value), :func:`has_kernel`
returns False and callers stay on the pure-NumPy path.  Nothing is ever
downloaded or installed.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
from typing import Optional

import numpy as np

from repro.obs import get_registry

__all__ = [
    "has_kernel",
    "has_fold_kernel",
    "has_reduce_kernel",
    "sweep_matrix",
    "sweep_indexed",
    "fold_matrix",
    "fold_chunks",
    "reduce_balanced_chunks",
    "kernels_available",
]

#: One function per accumulator algebra.  ``idx == NULL`` means matrix mode
#: (row r's leaves are ``data[r*n : (r+1)*n]``); otherwise ``data`` is the
#: base operand vector and row r's leaves are ``data[idx[r*n + j]]``.
#: Every function mirrors the level loop of ``balanced_ensemble_vops``:
#: pair adjacent nodes, carry an odd trailing node up unchanged.
_C_SOURCE = r"""
#include <math.h>
#include <stdint.h>
#include <stdlib.h>

#define LEAF(j) (idx ? data[idx[(size_t)r * (size_t)n + (size_t)(j)]] \
                     : data[(size_t)r * (size_t)n + (size_t)(j)])

int balanced_sweep_st(const double *data, const int64_t *idx,
                      int64_t n_rows, int64_t n, double *out)
{
    int64_t h = (n + 1) / 2;
    double *s = (double *)malloc((size_t)h * sizeof(double));
    if (!s) return 1;
    for (int64_t r = 0; r < n_rows; r++) {
        int64_t even = n - (n & 1), hw = even / 2;
        for (int64_t i = 0; i < hw; i++)
            s[i] = LEAF(2 * i) + LEAF(2 * i + 1);
        int64_t w = hw;
        if (n & 1) { s[w] = LEAF(n - 1); w++; }
        while (w > 1) {
            int64_t e2 = w - (w & 1), h2 = e2 / 2;
            for (int64_t i = 0; i < h2; i++)
                s[i] = s[2 * i] + s[2 * i + 1];
            if (w & 1) s[h2] = s[w - 1];
            w = h2 + (w & 1);
        }
        out[r] = s[0];
    }
    free(s);
    return 0;
}

int balanced_sweep_kahan(const double *data, const int64_t *idx,
                         int64_t n_rows, int64_t n, double *out)
{
    int64_t h = (n + 1) / 2;
    double *s = (double *)malloc((size_t)h * sizeof(double));
    double *c = (double *)malloc((size_t)h * sizeof(double));
    if (!s || !c) { free(s); free(c); return 1; }
    for (int64_t r = 0; r < n_rows; r++) {
        int64_t even = n - (n & 1), hw = even / 2;
        for (int64_t i = 0; i < hw; i++) {
            double a = LEAF(2 * i), b = LEAF(2 * i + 1);
            double t = a + b;
            s[i] = t;
            c[i] = (t - a) - b;
        }
        int64_t w = hw;
        if (n & 1) { s[w] = LEAF(n - 1); c[w] = 0.0; w++; }
        while (w > 1) {
            int64_t e2 = w - (w & 1), h2 = e2 / 2;
            for (int64_t i = 0; i < h2; i++) {
                double a0 = s[2 * i], b0 = s[2 * i + 1];
                double a1 = c[2 * i], b1 = c[2 * i + 1];
                double y = b0 - (a1 + b1);
                double t = a0 + y;
                s[i] = t;
                c[i] = (t - a0) - y;
            }
            if (w & 1) { s[h2] = s[w - 1]; c[h2] = c[w - 1]; }
            w = h2 + (w & 1);
        }
        out[r] = s[0];
    }
    free(s); free(c);
    return 0;
}

int balanced_sweep_kbn(const double *data, const int64_t *idx,
                       int64_t n_rows, int64_t n, double *out)
{
    int64_t h = (n + 1) / 2;
    double *s = (double *)malloc((size_t)h * sizeof(double));
    double *c = (double *)malloc((size_t)h * sizeof(double));
    if (!s || !c) { free(s); free(c); return 1; }
    for (int64_t r = 0; r < n_rows; r++) {
        int64_t even = n - (n & 1), hw = even / 2;
        for (int64_t i = 0; i < hw; i++) {
            double a = LEAF(2 * i), b = LEAF(2 * i + 1);
            double t = a + b;
            double comp = (fabs(a) >= fabs(b)) ? (a - t) + b : (b - t) + a;
            s[i] = t;
            c[i] = comp + 0.0;
        }
        int64_t w = hw;
        if (n & 1) { s[w] = LEAF(n - 1); c[w] = 0.0; w++; }
        while (w > 1) {
            int64_t e2 = w - (w & 1), h2 = e2 / 2;
            for (int64_t i = 0; i < h2; i++) {
                double a0 = s[2 * i], b0 = s[2 * i + 1];
                double a1 = c[2 * i], b1 = c[2 * i + 1];
                double t = a0 + b0;
                double comp = (fabs(a0) >= fabs(b0)) ? (a0 - t) + b0
                                                     : (b0 - t) + a0;
                s[i] = t;
                c[i] = (a1 + comp) + b1;
            }
            if (w & 1) { s[h2] = s[w - 1]; c[h2] = c[w - 1]; }
            w = h2 + (w & 1);
        }
        out[r] = s[0] + c[0];
    }
    free(s); free(c);
    return 0;
}

int balanced_sweep_cp(const double *data, const int64_t *idx,
                      int64_t n_rows, int64_t n, double *out)
{
    int64_t h = (n + 1) / 2;
    double *s = (double *)malloc((size_t)h * sizeof(double));
    double *c = (double *)malloc((size_t)h * sizeof(double));
    if (!s || !c) { free(s); free(c); return 1; }
    for (int64_t r = 0; r < n_rows; r++) {
        int64_t even = n - (n & 1), hw = even / 2;
        for (int64_t i = 0; i < hw; i++) {
            double a = LEAF(2 * i), b = LEAF(2 * i + 1);
            double sum = a + b;
            double bb = sum - a;
            double delta = (a - (sum - bb)) + (b - bb);
            s[i] = sum;
            c[i] = delta + 0.0;
        }
        int64_t w = hw;
        if (n & 1) { s[w] = LEAF(n - 1); c[w] = 0.0; w++; }
        while (w > 1) {
            int64_t e2 = w - (w & 1), h2 = e2 / 2;
            for (int64_t i = 0; i < h2; i++) {
                double a0 = s[2 * i], b0 = s[2 * i + 1];
                double a1 = c[2 * i], b1 = c[2 * i + 1];
                double sum = a0 + b0;
                double bb = sum - a0;
                double delta = (a0 - (sum - bb)) + (b0 - bb);
                s[i] = sum;
                c[i] = a1 + b1 + delta;
            }
            if (w & 1) { s[h2] = s[w - 1]; c[h2] = c[w - 1]; }
            w = h2 + (w & 1);
        }
        out[r] = s[0] + c[0];
    }
    free(s); free(c);
    return 0;
}

int balanced_sweep_dd(const double *data, const int64_t *idx,
                      int64_t n_rows, int64_t n, double *out)
{
    int64_t h = (n + 1) / 2;
    double *s = (double *)malloc((size_t)h * sizeof(double));
    double *c = (double *)malloc((size_t)h * sizeof(double));
    if (!s || !c) { free(s); free(c); return 1; }
    for (int64_t r = 0; r < n_rows; r++) {
        int64_t even = n - (n & 1), hw = even / 2;
        for (int64_t i = 0; i < hw; i++) {
            double hi1 = LEAF(2 * i), hi2 = LEAF(2 * i + 1);
            double sum = hi1 + hi2;
            double bb = sum - hi1;
            double e = (hi1 - (sum - bb)) + (hi2 - bb);
            e = e + 0.0 + 0.0;
            double s2 = sum + e;
            s[i] = s2;
            c[i] = e - (s2 - sum);
        }
        int64_t w = hw;
        if (n & 1) { s[w] = LEAF(n - 1); c[w] = 0.0; w++; }
        while (w > 1) {
            int64_t e2 = w - (w & 1), h2 = e2 / 2;
            for (int64_t i = 0; i < h2; i++) {
                double hi1 = s[2 * i], hi2 = s[2 * i + 1];
                double lo1 = c[2 * i], lo2 = c[2 * i + 1];
                double sum = hi1 + hi2;
                double bb = sum - hi1;
                double e = (hi1 - (sum - bb)) + (hi2 - bb);
                e = e + lo1 + lo2;
                double s2 = sum + e;
                s[i] = s2;
                c[i] = e - (s2 - sum);
            }
            if (w & 1) { s[h2] = s[w - 1]; c[h2] = c[w - 1]; }
            w = h2 + (w & 1);
        }
        out[r] = s[0] + c[0];
    }
    free(s); free(c);
    return 0;
}

/* -- rank-local fold kernels (the collective fast path) ---------------------
 *
 * One state per chunk: rows[r] points at chunk r's len[r] doubles (rows of
 * a packed matrix or the caller's original chunk buffers in place — no
 * copy).  Each kernel replays the matching accumulator's ``add_array``
 * op-for-op from the zero state (per-row power-of-two zero padding, the
 * TwoSum carry fold, then the algorithm's scalar merge-in recurrence), so
 * out components are bitwise-equal to
 * ``make_accumulator(); add_array(chunk)``.  ``max_len`` bounds the scratch
 * allocation (>= every len[r]).
 */

static int64_t pow2_ceil(int64_t n)
{
    int64_t p = 1;
    while (p < n) p <<= 1;
    return p;
}

/* One carry-fold level: pair adjacent (sum, carry) nodes from (s, c) into
 * (so, co).  Out-of-place with restrict operands so the compiler can SIMD
 * the TwoSum lanes (every lane is an independent, bit-exact IEEE chain).
 */
static void carry_fold_level(const double *restrict s, const double *restrict c,
                             double *restrict so, double *restrict co,
                             int64_t h2)
{
    for (int64_t i = 0; i < h2; i++) {
        double a = s[2 * i], b = s[2 * i + 1];
        double sum = a + b;
        double bb = sum - a;
        double err = (a - (sum - bb)) + (b - bb);
        co[i] = (c[2 * i] + c[2 * i + 1]) + err;
        so[i] = sum;
    }
}

/* First fold level fused with the row load: operand j is row[j] for j < n,
 * an exact-zero pad otherwise.  A TwoSum against a zero pad still runs the
 * full formula (it normalises -0.0 operands to +0.0 exactly like the
 * padded NumPy path), all-pad pairs produce exact (+0, +0) states, and the
 * level-1 carries are 0.0 + err (matching c0 + c1 + err with zero carries).
 * Levels ping-pong between the (sa, ca) and (sb, cb) scratch pairs (same
 * values as an in-place compaction, laid out for vectorisation); the row's
 * (s_blk, e_blk) lands in (*out_s, *out_c).
 */
static void carry_fold_row(const double *restrict row, int64_t n,
                           double *restrict sa, double *restrict ca,
                           double *restrict sb, double *restrict cb,
                           double *out_s, double *out_c)
{
    if (n <= 1) {               /* pow2 pad of 0/1 elements: no fold level */
        *out_s = n ? row[0] : 0.0;
        *out_c = 0.0;
        return;
    }
    if (n == 2) {               /* single level, no scratch */
        double a = row[0], b = row[1];
        double sum = a + b;
        double bb = sum - a;
        double err = (a - (sum - bb)) + (b - bb);
        *out_s = sum;
        *out_c = 0.0 + err;
        return;
    }
    /* Levels 1+2 fused: each output slot consumes a quad of leaves, so the
     * widest level's partials never touch scratch.  Pad leaves are exact
     * zeros; two_sum against them runs the full formula (identical to the
     * unfused odd-tail op), and all-pad quads reduce to exact (+0, +0) —
     * the same values the unfused zero-fill stores. */
    int64_t h2 = pow2_ceil(n) / 4, q = n / 4;
    for (int64_t i = 0; i < q; i++) {
        double a0 = row[4 * i], a1 = row[4 * i + 1];
        double a2 = row[4 * i + 2], a3 = row[4 * i + 3];
        double s1 = a0 + a1;
        double b1 = s1 - a0;
        double c1 = 0.0 + ((a0 - (s1 - b1)) + (a1 - b1));
        double s2 = a2 + a3;
        double b2 = s2 - a2;
        double c2 = 0.0 + ((a2 - (s2 - b2)) + (a3 - b2));
        double sum = s1 + s2;
        double bb = sum - s1;
        double err = (s1 - (sum - bb)) + (s2 - bb);
        sa[i] = sum;
        ca[i] = (c1 + c2) + err;
    }
    int64_t w = q;
    if (n & 3) {                /* boundary quad: 1-3 real leaves + pads */
        int64_t rem = n & 3;
        double a0 = row[4 * q];
        double a1 = rem > 1 ? row[4 * q + 1] : 0.0;
        double a2 = rem > 2 ? row[4 * q + 2] : 0.0;
        double s1 = a0 + a1;
        double b1 = s1 - a0;
        double c1 = 0.0 + ((a0 - (s1 - b1)) + (a1 - b1));
        double s2 = a2 + 0.0;
        double b2 = s2 - a2;
        double c2 = 0.0 + ((a2 - (s2 - b2)) + (0.0 - b2));
        double sum = s1 + s2;
        double bb = sum - s1;
        double err = (s1 - (sum - bb)) + (s2 - bb);
        sa[w] = sum;
        ca[w] = (c1 + c2) + err;
        w++;
    }
    for (int64_t i = w; i < h2; i++) { sa[i] = 0.0; ca[i] = 0.0; }
    double *s = sa, *c = ca, *t = sb, *d = cb;
    int64_t m = h2;
    while (m > 1) {
        int64_t half = m / 2;
        carry_fold_level(s, c, t, d, half);
        double *tmp;
        tmp = s; s = t; t = tmp;
        tmp = c; c = d; d = tmp;
        m = half;
    }
    *out_s = s[0];
    *out_c = c[0];
}

int fold_st(const double *const *restrict rows, const int64_t *restrict len,
            int64_t n_rows, int64_t max_len, double *restrict out0,
            double *restrict out1)
{
    (void)out1; (void)max_len;
    for (int64_t r = 0; r < n_rows; r++) {
        const double *row = rows[r];
        double acc = 0.0;
        for (int64_t j = 0; j < len[r]; j++)
            acc = acc + row[j];
        out0[r] = acc;
    }
    return 0;
}

/* Shared scratch for the ping-pong carry fold: one allocation, four
 * non-overlapping quarters (cap each). */
static double *fold_scratch(int64_t cap)
{
    return (double *)malloc((size_t)(4 * cap) * sizeof(double));
}

/* -- per-algebra zero-state merge-in: block (s_blk, e_blk) -> accumulator
 * state, replaying ``make_accumulator(); add_array(chunk)`` from (0, 0).
 * Shared between the fold kernels and the fused shard kernels so both
 * paths run the identical op sequence. */

static void kahan_state_from_block(double s_blk, double e_blk,
                                   double *out_s, double *out_c)
{
    double y = s_blk - 0.0;          /* add(s_blk) from (0, 0) */
    double t = 0.0 + y;
    double cc = (t - 0.0) - y;
    y = e_blk - cc;                  /* add(e_blk) */
    double t2 = t + y;
    *out_s = t2;
    *out_c = (t2 - t) - y;
}

static void kbn_state_from_block(double s_blk, double e_blk,
                                 double *out_s, double *out_c)
{
    double t = 0.0 + s_blk;          /* add(s_blk) from (0, 0) */
    double comp = (fabs(0.0) >= fabs(s_blk)) ? (0.0 - t) + s_blk
                                             : (s_blk - t) + 0.0;
    *out_s = t;
    *out_c = (0.0 + comp) + e_blk;   /* then c += float(e_blk) */
}

static void cp_state_from_block(double s_blk, double e_blk,
                                double *out_s, double *out_c)
{
    double sum = 0.0 + s_blk;        /* two_sum(0.0, s_blk) */
    double bb = sum - 0.0;
    double delta = (0.0 - (sum - bb)) + (s_blk - bb);
    *out_s = sum;
    *out_c = 0.0 + (delta + e_blk);
}

/* NumPy's pairwise summation (umath pairwise_sum_DOUBLE), reproduced
 * bit-for-bit for contiguous doubles: < 8 sequential, <= 128 eight-way
 * unrolled partials combined as ((r0+r1)+(r2+r3)) + ((r4+r5)+(r6+r7)),
 * else recursive halving on a multiple-of-8 boundary.  The Kahan fold
 * collapses each level's error mass through ``np.sum``, so the kernel
 * must produce the same bits NumPy's reduction does. */
static double pairwise_sum(const double *a, int64_t n)
{
    if (n < 8) {
        double res = 0.0;
        for (int64_t i = 0; i < n; i++) res += a[i];
        return res;
    }
    else if (n <= 128) {
        double r0 = a[0], r1 = a[1], r2 = a[2], r3 = a[3];
        double r4 = a[4], r5 = a[5], r6 = a[6], r7 = a[7];
        int64_t i;
        for (i = 8; i < n - (n % 8); i += 8) {
            r0 += a[i];     r1 += a[i + 1]; r2 += a[i + 2]; r3 += a[i + 3];
            r4 += a[i + 4]; r5 += a[i + 5]; r6 += a[i + 6]; r7 += a[i + 7];
        }
        double res = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7));
        for (; i < n; i++) res += a[i];
        return res;
    }
    else {
        int64_t n2 = n / 2;
        n2 -= n2 % 8;
        return pairwise_sum(a, n2) + pairwise_sum(a + n2, n - n2);
    }
}

/* One flat-error TwoSum level: pair adjacent sums from s into t, errors
 * into e.  Out-of-place with restrict operands so the lanes SIMD. */
static void twosum_sum_level(const double *restrict s, double *restrict t,
                             double *restrict e, int64_t h2)
{
    for (int64_t i = 0; i < h2; i++) {
        double a = s[2 * i], b = s[2 * i + 1];
        double sum = a + b;
        double bb = sum - a;
        e[i] = (a - (sum - bb)) + (b - bb);
        t[i] = sum;
    }
}

/* Kahan's flat-error row fold (KahanAccumulator.add_array image): pairwise
 * TwoSum levels whose error arrays are collapsed by one NumPy-identical
 * pairwise_sum each, accumulated sequentially across levels — one add per
 * element on the error channel, the cost gap that keeps K cheaper than
 * CP's carried-error fold.  Pads are exact zeros: their TwoSum entries are
 * (+0, +0), level error entries are never -0.0 (the error of an exact sum
 * rounds to +0), and zero tails on power-of-two boundaries leave the
 * pairwise grouping of real entries intact — so a row-local pow2 pad
 * matches the NumPy path's global-width pad bit-for-bit. */
static void kahan_fold_row(const double *restrict row, int64_t n,
                           double *restrict sa, double *restrict sb,
                           double *restrict e1, double *restrict e2,
                           double *out_s, double *out_e)
{
    if (n <= 1) {               /* pow2 pad of 0/1 elements: no fold level */
        *out_s = n ? row[0] : 0.0;
        *out_e = 0.0;
        return;
    }
    if (n == 2) {               /* single level, single error entry */
        double a = row[0], b = row[1];
        double sum = a + b;
        double bb = sum - a;
        *out_s = sum;
        *out_e = 0.0 + ((a - (sum - bb)) + (b - bb));
        return;
    }
    /* Levels 1+2 fused: each quad of leaves yields two level-1 errors (kept
     * in level order in e1), one level-2 error (e2) and one level-2 partial
     * sum (sa) — the widest level's partials never touch scratch.  Pad
     * leaves are exact zeros; their TwoSum entries are the same (+0, +0)
     * the zero-fill stores. */
    int64_t h = pow2_ceil(n) / 2, h2 = pow2_ceil(n) / 4, q = n / 4;
    for (int64_t i = 0; i < q; i++) {
        double a0 = row[4 * i], a1 = row[4 * i + 1];
        double a2 = row[4 * i + 2], a3 = row[4 * i + 3];
        double s1 = a0 + a1;
        double b1 = s1 - a0;
        e1[2 * i] = (a0 - (s1 - b1)) + (a1 - b1);
        double s2 = a2 + a3;
        double b2 = s2 - a2;
        e1[2 * i + 1] = (a2 - (s2 - b2)) + (a3 - b2);
        double sum = s1 + s2;
        double bb = sum - s1;
        e2[i] = (s1 - (sum - bb)) + (s2 - bb);
        sa[i] = sum;
    }
    int64_t w = q;
    if (n & 3) {                /* boundary quad: 1-3 real leaves + pads */
        int64_t rem = n & 3;
        double a0 = row[4 * q];
        double a1 = rem > 1 ? row[4 * q + 1] : 0.0;
        double a2 = rem > 2 ? row[4 * q + 2] : 0.0;
        double s1 = a0 + a1;
        double b1 = s1 - a0;
        e1[2 * q] = (a0 - (s1 - b1)) + (a1 - b1);
        double s2 = a2 + 0.0;
        double b2 = s2 - a2;
        e1[2 * q + 1] = (a2 - (s2 - b2)) + (0.0 - b2);
        double sum = s1 + s2;
        double bb = sum - s1;
        e2[w] = (s1 - (sum - bb)) + (s2 - bb);
        sa[w] = sum;
        w++;
    }
    for (int64_t i = 2 * w; i < h; i++) e1[i] = 0.0;
    for (int64_t i = w; i < h2; i++) { sa[i] = 0.0; e2[i] = 0.0; }
    double err_total = 0.0;
    err_total += pairwise_sum(e1, h);
    err_total += pairwise_sum(e2, h2);
    double *s = sa, *t = sb;
    int64_t m = h2;
    while (m > 1) {
        int64_t half = m / 2;
        twosum_sum_level(s, t, e1, half);
        err_total += pairwise_sum(e1, half);
        double *tmp = s; s = t; t = tmp;
        m = half;
    }
    *out_s = s[0];
    *out_e = err_total;
}

int fold_kahan(const double *const *restrict rows, const int64_t *restrict len,
               int64_t n_rows, int64_t max_len, double *restrict out0,
               double *restrict out1)
{
    int64_t cap = pow2_ceil(max_len > 1 ? max_len : 2) / 2;
    double *buf = fold_scratch(cap);
    if (!buf) return 1;
    for (int64_t r = 0; r < n_rows; r++) {
        double s_blk, e_blk;
        kahan_fold_row(rows[r], len[r], buf, buf + cap, buf + 2 * cap,
                       buf + 3 * cap, &s_blk, &e_blk);
        kahan_state_from_block(s_blk, e_blk, &out0[r], &out1[r]);
    }
    free(buf);
    return 0;
}

int fold_kbn(const double *const *restrict rows, const int64_t *restrict len,
             int64_t n_rows, int64_t max_len, double *restrict out0,
             double *restrict out1)
{
    int64_t cap = pow2_ceil(max_len > 1 ? max_len : 2) / 2;
    double *buf = fold_scratch(cap);
    if (!buf) return 1;
    for (int64_t r = 0; r < n_rows; r++) {
        double s_blk, e_blk;
        carry_fold_row(rows[r], len[r], buf, buf + cap, buf + 2 * cap,
                       buf + 3 * cap, &s_blk, &e_blk);
        kbn_state_from_block(s_blk, e_blk, &out0[r], &out1[r]);
    }
    free(buf);
    return 0;
}

int fold_cp(const double *const *restrict rows, const int64_t *restrict len,
            int64_t n_rows, int64_t max_len, double *restrict out0,
            double *restrict out1)
{
    int64_t cap = pow2_ceil(max_len > 1 ? max_len : 2) / 2;
    double *buf = fold_scratch(cap);
    if (!buf) return 1;
    for (int64_t r = 0; r < n_rows; r++) {
        double s_blk, e_blk;
        carry_fold_row(rows[r], len[r], buf, buf + cap, buf + 2 * cap,
                       buf + 3 * cap, &s_blk, &e_blk);
        cp_state_from_block(s_blk, e_blk, &out0[r], &out1[r]);
    }
    free(buf);
    return 0;
}

/* One pairwise dd_add level out-of-place (see fold_dd). */
static void dd_fold_level(const double *restrict s, const double *restrict c,
                          double *restrict so, double *restrict co, int64_t h2)
{
    for (int64_t i = 0; i < h2; i++) {
        double hi1 = s[2 * i], hi2 = s[2 * i + 1];
        double lo1 = c[2 * i], lo2 = c[2 * i + 1];
        double sum = hi1 + hi2;
        double bb = sum - hi1;
        double e = (hi1 - (sum - bb)) + (hi2 - bb);
        e = e + lo1 + lo2;
        double s2 = sum + e;
        so[i] = s2;
        co[i] = e - (s2 - sum);
    }
}

/* One row's DD accumulator state (pairwise dd_add fold + normalized +
 * merge_parts from the zero state), using the caller's 4-quarter scratch. */
static void dd_fold_row(const double *restrict row, int64_t n,
                        double *restrict sa, double *restrict ca,
                        double *restrict sb, double *restrict cb,
                        double *out_s, double *out_c)
{
    double hi, lo;
    if (n <= 1) {
        hi = n ? row[0] : 0.0;
        lo = 0.0;
    } else {
        /* fused level 1: leaf lo components are exact zeros */
        int64_t h = pow2_ceil(n) / 2, full = n / 2;
        for (int64_t i = 0; i < full; i++) {
            double hi1 = row[2 * i], hi2 = row[2 * i + 1];
            double sum = hi1 + hi2;
            double bb = sum - hi1;
            double e = (hi1 - (sum - bb)) + (hi2 - bb);
            e = e + 0.0 + 0.0;
            double s2 = sum + e;
            sa[i] = s2;
            ca[i] = e - (s2 - sum);
        }
        int64_t w = full;
        if (n & 1) {
            double hi1 = row[n - 1];
            double sum = hi1 + 0.0;
            double bb = sum - hi1;
            double e = (hi1 - (sum - bb)) + (0.0 - bb);
            e = e + 0.0 + 0.0;
            double s2 = sum + e;
            sa[w] = s2;
            ca[w] = e - (s2 - sum);
            w++;
        }
        for (int64_t i = w; i < h; i++) { sa[i] = 0.0; ca[i] = 0.0; }
        double *s = sa, *c = ca, *t = sb, *d = cb;
        int64_t m = h;
        while (m > 1) {              /* pairwise dd_add levels */
            int64_t h2 = m / 2;
            dd_fold_level(s, c, t, d, h2);
            double *tmp;
            tmp = s; s = t; t = tmp;
            tmp = c; c = d; d = tmp;
            m = h2;
        }
        hi = s[0];
        lo = c[0];
    }
    double sum = hi + lo;            /* DoubleDouble.normalized */
    double bb = sum - hi;
    double err = (hi - (sum - bb)) + (lo - bb);
    hi = sum; lo = err;
    double s0 = 0.0 + hi;            /* merge_parts from (0, 0) */
    double bb2 = s0 - 0.0;
    double delta = (0.0 - (s0 - bb2)) + (hi - bb2);
    double e2 = delta + (0.0 + lo);
    double s2 = s0 + e2;
    *out_s = s2;
    *out_c = e2 - (s2 - s0);
}

int fold_dd(const double *const *restrict rows, const int64_t *restrict len,
            int64_t n_rows, int64_t max_len, double *restrict out0,
            double *restrict out1)
{
    int64_t cap = pow2_ceil(max_len > 1 ? max_len : 2) / 2;
    double *buf = fold_scratch(cap);
    if (!buf) return 1;
    for (int64_t r = 0; r < n_rows; r++)
        dd_fold_row(rows[r], len[r], buf, buf + cap, buf + 2 * cap,
                    buf + 3 * cap, &out0[r], &out1[r]);
    free(buf);
    return 0;
}

/* -- fused shard kernels: one call per shard of whole items ------------------
 *
 * Item-major pointer tables: item i's rank-r chunk is rows[i*n_ranks + r]
 * with len[i*n_ranks + r] doubles.  Each item is served end-to-end inside
 * the kernel: every rank chunk folds to its accumulator state (the exact
 * fold_* op sequence), the rank states collapse through the balanced
 * reduction tree (pair adjacent states in rank order, an odd trailing
 * state rides up unchanged — the `shapes.balanced` level schedule), and
 * the algebra's result extraction lands the item's value in out[i].  The
 * state-merge recurrences are the VectorOps ``merge`` formulas, identical
 * to the upper level loops of the balanced_sweep_* kernels, so out is
 * bitwise-equal to fold + compile_tree(balanced).reduce_states + result.
 */

int reduce_balanced_st(const double *const *restrict rows,
                       const int64_t *restrict len, int64_t n_items,
                       int64_t n_ranks, int64_t max_len, double *restrict out)
{
    (void)max_len;
    double *s = (double *)malloc((size_t)n_ranks * sizeof(double));
    if (!s) return 1;
    for (int64_t it = 0; it < n_items; it++) {
        const double *const *item = rows + it * n_ranks;
        const int64_t *ilen = len + it * n_ranks;
        for (int64_t r = 0; r < n_ranks; r++) {
            const double *row = item[r];
            double acc = 0.0;
            for (int64_t j = 0; j < ilen[r]; j++)
                acc = acc + row[j];
            s[r] = acc;
        }
        int64_t w = n_ranks;
        while (w > 1) {
            int64_t h2 = w / 2;
            for (int64_t i = 0; i < h2; i++)
                s[i] = s[2 * i] + s[2 * i + 1];
            if (w & 1) s[h2] = s[w - 1];
            w = h2 + (w & 1);
        }
        out[it] = s[0];
    }
    free(s);
    return 0;
}

int reduce_balanced_kahan(const double *const *restrict rows,
                          const int64_t *restrict len, int64_t n_items,
                          int64_t n_ranks, int64_t max_len,
                          double *restrict out)
{
    int64_t cap = pow2_ceil(max_len > 1 ? max_len : 2) / 2;
    double *buf = fold_scratch(cap);
    double *s = (double *)malloc((size_t)(2 * n_ranks) * sizeof(double));
    if (!buf || !s) { free(buf); free(s); return 1; }
    double *c = s + n_ranks;
    for (int64_t it = 0; it < n_items; it++) {
        const double *const *item = rows + it * n_ranks;
        const int64_t *ilen = len + it * n_ranks;
        for (int64_t r = 0; r < n_ranks; r++) {
            double s_blk, e_blk;
            kahan_fold_row(item[r], ilen[r], buf, buf + cap, buf + 2 * cap,
                           buf + 3 * cap, &s_blk, &e_blk);
            kahan_state_from_block(s_blk, e_blk, &s[r], &c[r]);
        }
        int64_t w = n_ranks;
        while (w > 1) {
            int64_t h2 = w / 2;
            for (int64_t i = 0; i < h2; i++) {
                double a0 = s[2 * i], b0 = s[2 * i + 1];
                double a1 = c[2 * i], b1 = c[2 * i + 1];
                double y = b0 - (a1 + b1);
                double t = a0 + y;
                s[i] = t;
                c[i] = (t - a0) - y;
            }
            if (w & 1) { s[h2] = s[w - 1]; c[h2] = c[w - 1]; }
            w = h2 + (w & 1);
        }
        out[it] = s[0];
    }
    free(buf); free(s);
    return 0;
}

int reduce_balanced_kbn(const double *const *restrict rows,
                        const int64_t *restrict len, int64_t n_items,
                        int64_t n_ranks, int64_t max_len,
                        double *restrict out)
{
    int64_t cap = pow2_ceil(max_len > 1 ? max_len : 2) / 2;
    double *buf = fold_scratch(cap);
    double *s = (double *)malloc((size_t)(2 * n_ranks) * sizeof(double));
    if (!buf || !s) { free(buf); free(s); return 1; }
    double *c = s + n_ranks;
    for (int64_t it = 0; it < n_items; it++) {
        const double *const *item = rows + it * n_ranks;
        const int64_t *ilen = len + it * n_ranks;
        for (int64_t r = 0; r < n_ranks; r++) {
            double s_blk, e_blk;
            carry_fold_row(item[r], ilen[r], buf, buf + cap, buf + 2 * cap,
                           buf + 3 * cap, &s_blk, &e_blk);
            kbn_state_from_block(s_blk, e_blk, &s[r], &c[r]);
        }
        int64_t w = n_ranks;
        while (w > 1) {
            int64_t h2 = w / 2;
            for (int64_t i = 0; i < h2; i++) {
                double a0 = s[2 * i], b0 = s[2 * i + 1];
                double a1 = c[2 * i], b1 = c[2 * i + 1];
                double t = a0 + b0;
                double comp = (fabs(a0) >= fabs(b0)) ? (a0 - t) + b0
                                                     : (b0 - t) + a0;
                s[i] = t;
                c[i] = (a1 + comp) + b1;
            }
            if (w & 1) { s[h2] = s[w - 1]; c[h2] = c[w - 1]; }
            w = h2 + (w & 1);
        }
        out[it] = s[0] + c[0];
    }
    free(buf); free(s);
    return 0;
}

int reduce_balanced_cp(const double *const *restrict rows,
                       const int64_t *restrict len, int64_t n_items,
                       int64_t n_ranks, int64_t max_len, double *restrict out)
{
    int64_t cap = pow2_ceil(max_len > 1 ? max_len : 2) / 2;
    double *buf = fold_scratch(cap);
    double *s = (double *)malloc((size_t)(2 * n_ranks) * sizeof(double));
    if (!buf || !s) { free(buf); free(s); return 1; }
    double *c = s + n_ranks;
    for (int64_t it = 0; it < n_items; it++) {
        const double *const *item = rows + it * n_ranks;
        const int64_t *ilen = len + it * n_ranks;
        for (int64_t r = 0; r < n_ranks; r++) {
            double s_blk, e_blk;
            carry_fold_row(item[r], ilen[r], buf, buf + cap, buf + 2 * cap,
                           buf + 3 * cap, &s_blk, &e_blk);
            cp_state_from_block(s_blk, e_blk, &s[r], &c[r]);
        }
        int64_t w = n_ranks;
        while (w > 1) {
            int64_t h2 = w / 2;
            for (int64_t i = 0; i < h2; i++) {
                double a0 = s[2 * i], b0 = s[2 * i + 1];
                double a1 = c[2 * i], b1 = c[2 * i + 1];
                double sum = a0 + b0;
                double bb = sum - a0;
                double delta = (a0 - (sum - bb)) + (b0 - bb);
                s[i] = sum;
                c[i] = a1 + b1 + delta;
            }
            if (w & 1) { s[h2] = s[w - 1]; c[h2] = c[w - 1]; }
            w = h2 + (w & 1);
        }
        out[it] = s[0] + c[0];
    }
    free(buf); free(s);
    return 0;
}

int reduce_balanced_dd(const double *const *restrict rows,
                       const int64_t *restrict len, int64_t n_items,
                       int64_t n_ranks, int64_t max_len, double *restrict out)
{
    int64_t cap = pow2_ceil(max_len > 1 ? max_len : 2) / 2;
    double *buf = fold_scratch(cap);
    double *s = (double *)malloc((size_t)(2 * n_ranks) * sizeof(double));
    if (!buf || !s) { free(buf); free(s); return 1; }
    double *c = s + n_ranks;
    for (int64_t it = 0; it < n_items; it++) {
        const double *const *item = rows + it * n_ranks;
        const int64_t *ilen = len + it * n_ranks;
        for (int64_t r = 0; r < n_ranks; r++)
            dd_fold_row(item[r], ilen[r], buf, buf + cap, buf + 2 * cap,
                        buf + 3 * cap, &s[r], &c[r]);
        int64_t w = n_ranks;
        while (w > 1) {
            int64_t h2 = w / 2;
            for (int64_t i = 0; i < h2; i++) {
                double hi1 = s[2 * i], hi2 = s[2 * i + 1];
                double lo1 = c[2 * i], lo2 = c[2 * i + 1];
                double sum = hi1 + hi2;
                double bb = sum - hi1;
                double e = (hi1 - (sum - bb)) + (hi2 - bb);
                e = e + lo1 + lo2;
                double s2 = sum + e;
                s[i] = s2;
                c[i] = e - (s2 - sum);
            }
            if (w & 1) { s[h2] = s[w - 1]; c[h2] = c[w - 1]; }
            w = h2 + (w & 1);
        }
        out[it] = s[0] + c[0];
    }
    free(buf); free(s);
    return 0;
}
"""

_FUNCTIONS = (
    "balanced_sweep_st",
    "balanced_sweep_kahan",
    "balanced_sweep_kbn",
    "balanced_sweep_cp",
    "balanced_sweep_dd",
)

#: per-algebra rank-local fold kernels; component count mirrors the VectorOps
_FOLD_FUNCTIONS = {
    "st": ("fold_st", 1),
    "kahan": ("fold_kahan", 2),
    "kbn": ("fold_kbn", 2),
    "cp": ("fold_cp", 2),
    "dd": ("fold_dd", 2),
}

#: per-algebra fused shard kernels: fold + balanced rank tree + result
_REDUCE_FUNCTIONS = {
    "st": "reduce_balanced_st",
    "kahan": "reduce_balanced_kahan",
    "kbn": "reduce_balanced_kbn",
    "cp": "reduce_balanced_cp",
    "dd": "reduce_balanced_dd",
}

_lock = threading.Lock()
_lib: Optional[ctypes.CDLL] = None
_load_attempted = False

_OBS = get_registry()


def _record_compile_event(outcome: str) -> None:
    """Count one kernel-load outcome (compiled / reused / gated / ...).

    Load happens once per process, so enabling metrics *before* the first
    kernel-using call is what captures the event; the counter exists so
    a serving snapshot can state which fast-path tier the process runs on.
    """
    if _OBS.enabled:
        _OBS.counter("repro_ckernels_compile_events_total", outcome=outcome).inc()


def _count_stale_kernels(cache_dir: str, so_path: str) -> int:
    """Cached kernels whose content digest no longer matches this build."""
    try:
        entries = sorted(os.listdir(cache_dir))
    except OSError:
        return 0
    want = os.path.basename(so_path)
    return sum(
        1
        for name in entries
        if name.startswith("balanced-") and name.endswith(".so") and name != want
    )


def _compile_library() -> Optional[ctypes.CDLL]:
    """Compile (or reuse) the kernel shared object; None on any failure."""
    # Build gate only: disabling C kernels falls back to the Python fold the
    # kernels are digest-verified bitwise-equal to.
    # repro: allow[FP009] -- build gate, fallback is bitwise-equal
    if os.environ.get("REPRO_NO_CKERNELS"):
        _record_compile_event("gated")
        return None
    cc = shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")
    if cc is None:
        _record_compile_event("no_compiler")
        return None
    # -ffp-contract=off: no FMA contraction; every rounding in the source
    # happens exactly as written, matching NumPy.  -O3/-march=native only
    # widen the SIMD lanes of the elementwise level loops (identical
    # per-element IEEE ops); sequential FP reductions are never reassociated
    # without -ffast-math, so results stay bitwise.
    flags = ["-O3", "-march=native", "-fPIC", "-shared", "-ffp-contract=off"]
    digest = hashlib.blake2b(
        (_C_SOURCE + "\0" + " ".join(flags)).encode(), digest_size=16
    ).hexdigest()
    # Cache *location* only; the kernel loaded from any directory is the same
    # digest-addressed, bitwise-verified object.
    # repro: allow[FP009] -- cache path knob, kernel bytes digest-pinned
    cache_dir = os.environ.get("REPRO_CKERNEL_CACHE") or os.path.join(
        tempfile.gettempdir(), "repro-ckernels"
    )
    so_path = os.path.join(cache_dir, f"balanced-{digest}.so")
    try:
        if not os.path.exists(so_path):
            # any cached kernels under other digests were built from a
            # different source/flag set: record the mismatch so snapshots
            # can explain a surprise recompile in a warmed environment
            stale = _count_stale_kernels(cache_dir, so_path)
            if stale and _OBS.enabled:
                _OBS.counter("repro_ckernels_digest_mismatch_total").inc(stale)
            outcome = "compiled"
            os.makedirs(cache_dir, exist_ok=True)
            with tempfile.TemporaryDirectory(dir=cache_dir) as td:
                src = os.path.join(td, "kernels.c")
                with open(src, "w") as f:
                    f.write(_C_SOURCE)
                tmp_so = os.path.join(td, "kernels.so")
                try:
                    subprocess.run(
                        [cc, *flags, src, "-o", tmp_so],
                        check=True,
                        capture_output=True,
                        timeout=120,
                    )
                except subprocess.CalledProcessError:
                    # some toolchains lack -march=native (e.g. cross cc)
                    safe = [f for f in flags if f != "-march=native"]
                    subprocess.run(
                        [cc, *safe, src, "-o", tmp_so],
                        check=True,
                        capture_output=True,
                        timeout=120,
                    )
                os.replace(tmp_so, so_path)  # atomic within cache_dir
        else:
            outcome = "reused"
        lib = ctypes.CDLL(so_path)
    except (OSError, subprocess.SubprocessError):
        _record_compile_event("failed")
        return None
    _record_compile_event(outcome)
    argtypes = [
        ctypes.POINTER(ctypes.c_double),
        ctypes.POINTER(ctypes.c_int64),
        ctypes.c_int64,
        ctypes.c_int64,
        ctypes.POINTER(ctypes.c_double),
    ]
    for name in _FUNCTIONS:
        fn = getattr(lib, name)
        fn.argtypes = argtypes
        fn.restype = ctypes.c_int
    fold_argtypes = [
        ctypes.POINTER(ctypes.c_void_p),  # per-row data pointers
        ctypes.POINTER(ctypes.c_int64),
        ctypes.c_int64,
        ctypes.c_int64,
        ctypes.POINTER(ctypes.c_double),
        ctypes.POINTER(ctypes.c_double),
    ]
    for name, _ in _FOLD_FUNCTIONS.values():
        fn = getattr(lib, name)
        fn.argtypes = fold_argtypes
        fn.restype = ctypes.c_int
    reduce_argtypes = [
        ctypes.POINTER(ctypes.c_void_p),  # item-major per-chunk pointers
        ctypes.POINTER(ctypes.c_int64),
        ctypes.c_int64,
        ctypes.c_int64,
        ctypes.c_int64,
        ctypes.POINTER(ctypes.c_double),
    ]
    for name in _REDUCE_FUNCTIONS.values():
        fn = getattr(lib, name)
        fn.argtypes = reduce_argtypes
        fn.restype = ctypes.c_int
    return lib


def _get_lib() -> Optional[ctypes.CDLL]:
    global _lib, _load_attempted
    if not _load_attempted:
        with _lock:
            if not _load_attempted:
                _lib = _compile_library()
                _load_attempted = True
    return _lib


def kernels_available() -> bool:
    """True when the compiled kernels loaded (compiler present, not gated)."""
    return _get_lib() is not None


def has_kernel(vops) -> bool:
    """True when ``vops`` advertises a compiled balanced sweep and it loads."""
    advertised = getattr(vops, "ckernel", None) is not None
    available = advertised and _get_lib() is not None
    if advertised and not available and _OBS.enabled:
        # the algebra *would* run compiled but can't: a NumPy fallback
        # activation (gated, no compiler, or compile/load failure)
        _OBS.counter("repro_ckernels_fallback_total", kernel="sweep").inc()
    return available


def has_fold_kernel(vops) -> bool:
    """True when ``vops``'s algebra has a compiled rank-local fold."""
    advertised = getattr(vops, "ckernel", None) in _FOLD_FUNCTIONS
    available = advertised and _get_lib() is not None
    if advertised and not available and _OBS.enabled:
        _OBS.counter("repro_ckernels_fallback_total", kernel="fold").inc()
    return available


def has_reduce_kernel(vops) -> bool:
    """True when ``vops``'s algebra has a compiled fused shard kernel."""
    advertised = getattr(vops, "ckernel", None) in _REDUCE_FUNCTIONS
    available = advertised and _get_lib() is not None
    if advertised and not available and _OBS.enabled:
        _OBS.counter("repro_ckernels_fallback_total", kernel="reduce").inc()
    return available


_NULL_IDX = ctypes.POINTER(ctypes.c_int64)()


def _call(name: str, data: np.ndarray, idx, n_rows: int, n: int,
          out: np.ndarray) -> None:
    lib = _get_lib()
    assert lib is not None, "compiled kernels not available"
    fn = getattr(lib, "balanced_sweep_" + name)
    data_p = data.ctypes.data_as(ctypes.POINTER(ctypes.c_double))
    idx_p = (
        _NULL_IDX
        if idx is None
        else idx.ctypes.data_as(ctypes.POINTER(ctypes.c_int64))
    )
    out_p = out.ctypes.data_as(ctypes.POINTER(ctypes.c_double))
    status = fn(data_p, idx_p, n_rows, n, out_p)
    if status != 0:  # pragma: no cover - allocation failure
        raise MemoryError(f"balanced_sweep_{name} scratch allocation failed")


def sweep_matrix(mat: np.ndarray, vops, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Balanced-tree values of every row of a ``(P, n)`` operand matrix.

    Bitwise-equal to the NumPy ``balanced_ensemble_vops`` sweep; requires
    ``has_kernel(vops)`` and ``n >= 2``.
    """
    mat = np.ascontiguousarray(mat, dtype=np.float64)
    n_rows, n = mat.shape
    if out is None:
        out = np.empty(n_rows, dtype=np.float64)
    _call(vops.ckernel, mat, None, n_rows, n, out)
    return out


def sweep_indexed(
    data: np.ndarray,
    idx: np.ndarray,
    vops,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Like :func:`sweep_matrix` but row r's leaves are ``data[idx[r]]``.

    The leaf gather happens inside the kernel, so the permuted operand
    matrix is never materialised.  Indices are **not** bounds-checked here;
    callers validate untrusted index matrices up front.
    """
    data = np.ascontiguousarray(data, dtype=np.float64)
    idx = np.ascontiguousarray(idx, dtype=np.int64)
    n_rows, n = idx.shape
    if out is None:
        out = np.empty(n_rows, dtype=np.float64)
    _call(vops.ckernel, data, idx, n_rows, n, out)
    return out


def _call_fold(vops, row_ptrs: np.ndarray, lengths: np.ndarray, max_len: int) -> tuple:
    """Shared fold-kernel dispatch: per-row pointers in, state tuple out."""
    lib = _get_lib()
    assert lib is not None, "compiled kernels not available"
    name, n_components = _FOLD_FUNCTIONS[vops.ckernel]
    n_rows = int(lengths.size)
    out0 = np.empty(n_rows, dtype=np.float64)
    out1 = np.empty(n_rows, dtype=np.float64) if n_components == 2 else out0
    fn = getattr(lib, name)
    status = fn(
        row_ptrs.ctypes.data_as(ctypes.POINTER(ctypes.c_void_p)),
        lengths.ctypes.data_as(ctypes.POINTER(ctypes.c_int64)),
        n_rows,
        max_len,
        out0.ctypes.data_as(ctypes.POINTER(ctypes.c_double)),
        out1.ctypes.data_as(ctypes.POINTER(ctypes.c_double)),
    )
    if status != 0:  # pragma: no cover - allocation failure
        raise MemoryError(f"{name} scratch allocation failed")
    return (out0,) if n_components == 1 else (out0, out1)


def fold_matrix(matrix: np.ndarray, lengths: np.ndarray, vops) -> tuple:
    """Rank-local states of every row of a zero-padded ``(R, width)`` matrix.

    The compiled counterpart of :meth:`repro.summation.base.VectorOps.fold`:
    returns the component tuple of ``(R,)`` arrays, each row bitwise-equal
    to the algorithm's accumulator fed the unpadded chunk.  Requires
    ``has_fold_kernel(vops)``.
    """
    matrix = np.ascontiguousarray(matrix, dtype=np.float64)
    lengths = np.ascontiguousarray(lengths, dtype=np.int64)
    n_rows, width = matrix.shape
    base = matrix.ctypes.data
    row_ptrs = np.arange(n_rows, dtype=np.uintp) * np.uintp(width * 8) + np.uintp(base)
    return _call_fold(vops, row_ptrs, lengths, width)


def fold_chunks(chunks, vops) -> tuple:
    """Rank-local states straight from a list of 1-D chunks — no packing.

    Zero-copy counterpart of ``pack_ragged`` + :func:`fold_matrix`: the
    kernel reads each chunk in place through a per-row pointer table, so
    ragged chunk lists cost no padded-matrix materialisation at all.
    Requires ``has_fold_kernel(vops)``.
    """
    arrays = [
        np.ascontiguousarray(np.asarray(c, dtype=np.float64).ravel())
        for c in chunks
    ]
    n_rows = len(arrays)
    if n_rows == 0:
        name, n_components = _FOLD_FUNCTIONS[vops.ckernel]
        empty = np.empty(0, dtype=np.float64)
        return (empty,) * n_components
    lengths = np.array([a.size for a in arrays], dtype=np.int64)
    row_ptrs = np.array([a.ctypes.data for a in arrays], dtype=np.uintp)
    states = _call_fold(vops, row_ptrs, lengths, int(lengths.max()))
    del arrays  # keep the chunk buffers alive through the kernel call
    return states


def reduce_balanced_chunks(
    chunks, n_ranks: int, vops, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """Balanced rank-tree values of whole items in one fused kernel call.

    ``chunks`` is an item-major flat list: ``n_items`` consecutive groups of
    ``n_ranks`` 1-D chunks each (item ``i``'s rank ``r`` chunk at index
    ``i * n_ranks + r``).  Each item folds its rank chunks to accumulator
    states and collapses them through the balanced reduction tree inside the
    kernel, so a worker serves its whole contiguous shard in one ``ctypes``
    call.  Bitwise-equal to :func:`fold_chunks` +
    ``compile_tree(balanced(n_ranks)).reduce_states`` + ``vops.result``;
    requires ``has_reduce_kernel(vops)``.  ``out`` (when given) must be a
    contiguous float64 vector of ``n_items`` — e.g. a result-arena view, so
    values land in shared memory with no extra copy.
    """
    if n_ranks <= 0:
        raise ValueError("n_ranks must be positive")
    arrays = [
        np.ascontiguousarray(np.asarray(c, dtype=np.float64).ravel())
        for c in chunks
    ]
    if len(arrays) % n_ranks:
        raise ValueError(
            f"chunk count {len(arrays)} is not a multiple of n_ranks {n_ranks}"
        )
    n_items = len(arrays) // n_ranks
    if out is None:
        out = np.empty(n_items, dtype=np.float64)
    elif out.dtype != np.float64 or not out.flags.c_contiguous or out.size != n_items:
        raise ValueError("out must be a contiguous float64 vector of n_items")
    if n_items == 0:
        return out
    lib = _get_lib()
    assert lib is not None, "compiled kernels not available"
    lengths = np.array([a.size for a in arrays], dtype=np.int64)
    row_ptrs = np.array([a.ctypes.data for a in arrays], dtype=np.uintp)
    fn = getattr(lib, _REDUCE_FUNCTIONS[vops.ckernel])
    status = fn(
        row_ptrs.ctypes.data_as(ctypes.POINTER(ctypes.c_void_p)),
        lengths.ctypes.data_as(ctypes.POINTER(ctypes.c_int64)),
        n_items,
        n_ranks,
        int(lengths.max()),
        out.ctypes.data_as(ctypes.POINTER(ctypes.c_double)),
    )
    if status != 0:  # pragma: no cover - allocation failure
        raise MemoryError("reduce_balanced scratch allocation failed")
    del arrays  # keep the chunk buffers alive through the kernel call
    return out
