"""Vectorised evaluation of serial (completely unbalanced) tree ensembles.

A serial tree is an inherently sequential recurrence, so a single tree cannot
be vectorised along the data axis.  What *can* be vectorised is an ensemble:
the Fig. 7 experiments evaluate 100 permuted-leaf serial trees over the same
data, and at position ``i`` every ensemble member performs the same state
merge on its own operand.  We therefore keep the accumulator state as
``(P,)``-shaped component arrays (one lane per tree) and step through the
``n`` positions once, which turns 100 x 2**20 scalar merges into 2**20
NumPy calls on 100-wide vectors.

The standard algorithm gets an even faster path: NumPy's ``cumsum`` is a true
left-to-right recurrence (each prefix is the rounded previous prefix plus the
next element), so a whole ensemble row-block reduces to one ``cumsum`` per
row.
"""

from __future__ import annotations

import numpy as np

from repro.summation.base import VectorOps

__all__ = ["serial_ensemble_standard", "serial_ensemble_vops"]


def serial_ensemble_standard(permuted: np.ndarray) -> np.ndarray:
    """Serial (left-to-right) ST sums of each row of ``permuted``.

    ``permuted`` has shape ``(P, n)``: row ``p`` is the data in tree ``p``'s
    leaf order.  Returns the ``(P,)`` final sums, each bitwise equal to the
    scalar loop ``((x0 + x1) + x2) + ...``.
    """
    permuted = np.asarray(permuted, dtype=np.float64)
    if permuted.ndim != 2:
        raise ValueError("expected a (P, n) matrix of permuted data")
    return np.cumsum(permuted, axis=1)[:, -1]


def serial_ensemble_vops(permuted: np.ndarray, vops: VectorOps) -> np.ndarray:
    """Serial-tree ensemble values for any VectorOps algorithm.

    Row-parallel emulation of the left-comb tree: state lanes are merged with
    the singleton state of each successive leaf column.  Bitwise identical to
    the generic node-walk of :func:`repro.trees.shapes.serial` on each row.
    """
    permuted = np.asarray(permuted, dtype=np.float64)
    if permuted.ndim != 2:
        raise ValueError("expected a (P, n) matrix of permuted data")
    P, n = permuted.shape
    if n == 0:
        raise ValueError("empty data")
    state = vops.init(permuted[:, 0].copy())
    for i in range(1, n):
        leaf = vops.init(permuted[:, i].copy())
        state = vops.merge(state, leaf)
    return np.asarray(vops.result(state), dtype=np.float64)
