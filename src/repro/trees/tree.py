"""Reduction-tree representation.

Following Sec. II.B, a reduction tree is "a full binary tree whose N leaf
nodes correspond to floating-point operands and whose internal nodes
correspond to the partial reductions formed in the process of computing the
final result".  Trees vary in two ways: **shape** (how nodes are linked) and
**assignment of operands to leaves** (a permutation of the data).

For scalability (the paper evaluates 2**20-leaf trees) the tree is not stored
as linked node objects but as a *merge schedule*: an ``(n-1, 2)`` integer
array where row ``t`` names the two slots whose partial reductions are merged
at step ``t``, the result being written to slot ``n + t``.  Slots ``0..n-1``
are the leaves; slot ``2n-2`` is the root.  Any full binary tree has exactly
one such bottom-up schedule ordering compatible with its structure (modulo
reordering of independent steps, which cannot change results since each slot
is written once), so the schedule is a faithful encoding.

Fast evaluators special-case the two shapes the paper studies (completely
balanced, completely unbalanced/serial); the schedule form supports arbitrary
shapes for the fault-injection and random-shape extensions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np

__all__ = ["ReductionTree"]


@dataclass(frozen=True)
class ReductionTree:
    """A full binary reduction tree over ``n_leaves`` operands.

    Attributes
    ----------
    n_leaves:
        Number of operands (leaves).
    schedule:
        ``(n_leaves - 1, 2)`` int64 array of merge steps (see module docs).
        For ``n_leaves == 1`` the schedule is empty and the root is leaf 0.
    kind:
        ``"balanced"``, ``"serial"`` or ``"custom"`` — a hint that unlocks
        fast evaluation paths; the schedule is always authoritative.
    """

    n_leaves: int
    schedule: np.ndarray
    kind: str = "custom"

    def __post_init__(self) -> None:
        if self.n_leaves < 1:
            raise ValueError("a reduction tree needs at least one leaf")
        sched = np.asarray(self.schedule, dtype=np.int64)
        expected = (max(self.n_leaves - 1, 0), 2)
        if sched.shape != expected:
            raise ValueError(f"schedule shape {sched.shape} != {expected}")
        object.__setattr__(self, "schedule", sched)

    # -- structural queries --------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Total node count of the full binary tree: ``2 * n_leaves - 1``."""
        return 2 * self.n_leaves - 1

    @property
    def root_slot(self) -> int:
        return self.n_nodes - 1 if self.n_leaves > 1 else 0

    def validate(self) -> None:
        """Check the schedule encodes a full binary tree (each slot consumed
        exactly once; every step reads already-produced slots)."""
        n = self.n_leaves
        if n == 1:
            return
        consumed = np.zeros(self.n_nodes, dtype=bool)
        for t, (a, b) in enumerate(self.schedule):
            for side in (a, b):
                if not 0 <= side < n + t:
                    raise ValueError(
                        f"step {t} reads slot {side}, which does not exist yet"
                    )
                if consumed[side]:
                    raise ValueError(f"slot {side} consumed twice (step {t})")
                consumed[side] = True
            if a == b:
                raise ValueError(f"step {t} merges slot {a} with itself")
        if consumed[self.root_slot]:
            raise ValueError("root slot was consumed")
        if int(np.count_nonzero(consumed[: self.root_slot])) != self.n_nodes - 1:
            raise ValueError("some slot was never consumed")

    def depth(self) -> int:
        """Longest leaf-to-root path length in edges.

        Balanced n-leaf trees have depth ``ceil(log2 n)``; serial trees have
        depth ``n - 1``.
        """
        n = self.n_leaves
        if n == 1:
            return 0
        d = np.zeros(self.n_nodes, dtype=np.int64)
        for t, (a, b) in enumerate(self.schedule):
            d[n + t] = max(d[a], d[b]) + 1
        return int(d[self.root_slot])

    def parents(self) -> np.ndarray:
        """Parent slot of every node (root's parent is -1)."""
        p = np.full(self.n_nodes, -1, dtype=np.int64)
        n = self.n_leaves
        for t, (a, b) in enumerate(self.schedule):
            p[a] = n + t
            p[b] = n + t
        return p

    def leaf_depths(self) -> np.ndarray:
        """Depth of every leaf (number of merges its operand flows through)."""
        n = self.n_leaves
        if n == 1:
            return np.zeros(1, dtype=np.int64)
        parent = self.parents()
        # depth of node = 1 + depth of parent, computed top-down.
        depth = np.zeros(self.n_nodes, dtype=np.int64)
        # process internal nodes in reverse creation order: parents always
        # have a higher slot id than their children.
        for slot in range(self.n_nodes - 2, -1, -1):
            depth[slot] = depth[parent[slot]] + 1
        return depth[:n]

    # -- conversions -----------------------------------------------------------
    def to_networkx(self):
        """Export as a ``networkx.DiGraph`` (edges child -> parent).

        Optional dependency used by docs and structural tests.
        """
        import networkx as nx

        g = nx.DiGraph()
        g.add_nodes_from(range(self.n_nodes))
        parent = self.parents()
        for child, par in enumerate(parent):
            if par >= 0:
                g.add_edge(child, int(par))
        return g

    def iter_steps(self) -> Iterator[tuple[int, int, int]]:
        """Yield ``(left_slot, right_slot, out_slot)`` in schedule order."""
        n = self.n_leaves
        for t, (a, b) in enumerate(self.schedule):
            yield int(a), int(b), n + t

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ReductionTree(kind={self.kind!r}, n_leaves={self.n_leaves}, "
            f"depth={self.depth() if self.n_leaves <= 1 << 16 else '...'})"
        )
