"""Tree evaluation: compute the floating-point value a reduction tree yields.

Semantics
---------
Every leaf is a *singleton accumulator* holding one operand (the local value
a rank contributes), and every internal node is an accumulator ``merge`` —
exactly the custom-``MPI_Op`` view of a parallel reduction.  The root's
``result()`` is the value of the tree.

Three execution strategies produce identical semantics:

* :func:`evaluate_tree_generic` — literal node-walk over the merge schedule.
  Works for any shape and any algorithm; O(n) Python-level merges.
* level-wise vectorised evaluation for **balanced** trees of algorithms with
  :class:`~repro.summation.base.VectorOps` (each tree level is one batch of
  elementwise merges);
* position-stepped vectorised evaluation for **serial** trees across a whole
  *ensemble* of leaf permutations at once (see
  :mod:`repro.trees.serial_batch`).

:func:`evaluate_tree` picks the fastest valid strategy; tests pin the
strategies against the generic walk so the fast paths cannot silently
diverge.

Deterministic algorithms (PR, EX) are evaluated through their real
accumulators in the generic path, but :func:`evaluate_ensemble` exploits
``algorithm.deterministic`` to compute once and tile — after the test suite
has proven bitwise tree-independence.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.summation.base import SumContext, SummationAlgorithm
from repro.trees.serial_batch import serial_ensemble_standard, serial_ensemble_vops
from repro.trees.tree import ReductionTree
from repro.util.rng import SeedLike, permutation_stream

__all__ = [
    "evaluate_tree",
    "evaluate_tree_generic",
    "evaluate_balanced_vectorized",
    "evaluate_ensemble",
]


def evaluate_tree_generic(
    tree: ReductionTree,
    data: np.ndarray,
    algorithm: SummationAlgorithm,
    context: Optional[SumContext] = None,
) -> float:
    """Literal node-walk: every internal node is one accumulator merge."""
    data = np.asarray(data, dtype=np.float64).ravel()
    if data.size != tree.n_leaves:
        raise ValueError(f"{data.size} operands for a {tree.n_leaves}-leaf tree")
    if context is None and algorithm.needs_context:
        context = SumContext.for_data(data)
    if tree.n_leaves == 1:
        acc = algorithm.make_accumulator(context)
        acc.add(float(data[0]))
        return acc.result()
    slots: list = [None] * tree.n_nodes
    for i, v in enumerate(data.tolist()):
        acc = algorithm.make_accumulator(context)
        acc.add(v)
        slots[i] = acc
    for a, b, out in tree.iter_steps():
        left, right = slots[a], slots[b]
        left.merge(right)
        slots[out] = left
        slots[a] = slots[b] = None  # free promptly; each slot is read once
    return slots[tree.root_slot].result()


def evaluate_balanced_vectorized(
    data: np.ndarray,
    algorithm: SummationAlgorithm,
    context: Optional[SumContext] = None,
) -> float:
    """Level-wise evaluation of the canonical balanced tree via VectorOps.

    Matches :func:`shapes.balanced`'s schedule: nodes are paired in order at
    each level and an odd trailing node is carried up unchanged.
    """
    vops = algorithm.vector_ops
    if vops is None:
        raise TypeError(f"{algorithm.code} has no vectorised state ops")
    data = np.asarray(data, dtype=np.float64).ravel()
    if data.size == 0:
        raise ValueError("empty data")
    state = vops.init(data)
    width = data.size
    while width > 1:
        even = width - (width % 2)
        heads = tuple(c[:even:2] for c in state)
        tails = tuple(c[1:even:2] for c in state)
        merged = vops.merge(heads, tails)
        if width % 2:
            carry = tuple(c[width - 1 : width] for c in state)
            merged = tuple(
                np.concatenate((m, c)) for m, c in zip(merged, carry)
            )
        state = merged
        width = state[0].size
    return float(vops.result(state)[0])


def evaluate_tree(
    tree: ReductionTree,
    data: np.ndarray,
    algorithm: SummationAlgorithm,
    context: Optional[SumContext] = None,
    *,
    force_generic: bool = False,
) -> float:
    """Value of ``tree`` applied to ``data`` under ``algorithm``.

    Dispatches to the fastest strategy whose semantics match the generic
    node-walk; pass ``force_generic=True`` to pin the literal walk (used by
    the equivalence tests).
    """
    data = np.asarray(data, dtype=np.float64).ravel()
    if context is None and algorithm.needs_context:
        context = SumContext.for_data(data)
    if force_generic:
        return evaluate_tree_generic(tree, data, algorithm, context)
    if tree.kind == "balanced" and algorithm.vector_ops is not None:
        return evaluate_balanced_vectorized(data, algorithm, context)
    if tree.kind == "serial" and algorithm.vector_ops is not None:
        vops = algorithm.vector_ops
        out = serial_ensemble_vops(data[np.newaxis, :], vops)
        return float(out[0])
    return evaluate_tree_generic(tree, data, algorithm, context)


def evaluate_ensemble(
    data: np.ndarray,
    shape: str,
    algorithm: SummationAlgorithm,
    n_trees: int,
    seed: SeedLike = None,
    context: Optional[SumContext] = None,
    *,
    batch_elems: int = 1 << 24,
) -> np.ndarray:
    """Values of ``n_trees`` same-shape trees with permuted leaf assignments.

    This is the paper's core measurement: "we generate distinct reduction
    trees by randomly assigning operands to leaves" and study the spread of
    the computed sums.  ``shape`` is ``"balanced"`` or ``"serial"``.

    The first tree always uses the identity assignment.  Deterministic
    algorithms are computed once and tiled (their tree-independence is
    established by the property-test suite).
    """
    data = np.asarray(data, dtype=np.float64).ravel()
    n = data.size
    if n == 0:
        raise ValueError("empty data")
    if shape not in ("balanced", "serial"):
        raise ValueError(f"shape must be 'balanced' or 'serial', got {shape!r}")
    if context is None and algorithm.needs_context:
        context = SumContext.for_data(data)

    if algorithm.deterministic:
        value = algorithm.sum_array(data, context)
        return np.full(n_trees, value, dtype=np.float64)

    vops = algorithm.vector_ops
    perms = permutation_stream(n, n_trees, seed)

    if shape == "balanced":
        if vops is None:
            from repro.trees.shapes import balanced as balanced_shape

            tree = balanced_shape(n)
            return np.array(
                [
                    evaluate_tree_generic(tree, data[p], algorithm, context)
                    for p in perms
                ]
            )
        return np.array(
            [
                evaluate_balanced_vectorized(data[p], algorithm, context)
                for p in perms
            ]
        )

    # serial shape
    if algorithm.code == "ST":
        return _batched_serial(data, perms, n_trees, serial_ensemble_standard, batch_elems)
    if vops is not None:
        return _batched_serial(
            data, perms, n_trees, lambda mat: serial_ensemble_vops(mat, vops), batch_elems
        )
    from repro.trees.shapes import serial as serial_shape

    tree = serial_shape(n)
    return np.array(
        [evaluate_tree_generic(tree, data[p], algorithm, context) for p in perms]
    )


def _batched_serial(data, perms, n_trees, kernel, batch_elems) -> np.ndarray:
    """Run a serial-ensemble kernel over permutation batches bounded in memory."""
    n = data.size
    per_batch = max(1, batch_elems // max(n, 1))
    out = np.empty(n_trees, dtype=np.float64)
    buf: list[np.ndarray] = []
    start = 0
    for p in perms:
        buf.append(data[p])
        if len(buf) == per_batch:
            out[start : start + len(buf)] = kernel(np.vstack(buf))
            start += len(buf)
            buf = []
    if buf:
        out[start : start + len(buf)] = kernel(np.vstack(buf))
    return out
