"""Tree evaluation: compute the floating-point value a reduction tree yields.

Semantics
---------
Every leaf is a *singleton accumulator* holding one operand (the local value
a rank contributes), and every internal node is an accumulator ``merge`` —
exactly the custom-``MPI_Op`` view of a parallel reduction.  The root's
``result()`` is the value of the tree.

Four execution strategies produce identical semantics:

* :func:`evaluate_tree_generic` — literal node-walk over the merge schedule.
  Works for any shape and any algorithm; O(n) Python-level merges.
* level-wise vectorised evaluation for **balanced** trees of algorithms with
  :class:`~repro.summation.base.VectorOps`; single trees use
  :func:`evaluate_balanced_vectorized`, ensembles the 2-D
  :func:`balanced_ensemble_vops` sweep (each tree level is one batch of
  elementwise merges over every ensemble member at once);
* position-stepped vectorised evaluation for **serial** trees across a whole
  *ensemble* of leaf permutations at once (see
  :mod:`repro.trees.serial_batch`);
* compiled level schedules for **arbitrary** shapes — random, skewed,
  fault-perturbed — via :mod:`repro.trees.schedule`: the structure is
  lowered once to per-level gather indices and every level becomes one
  batched ``merge_at`` over ``(n_trees, n_nodes)`` state buffers.

Balanced ensembles of algebras that advertise a compiled kernel
additionally route through the optional fused C sweep of
:mod:`repro.trees._ckernels` (bitwise-identical, NumPy fallback when no
compiler is present or ``REPRO_NO_CKERNELS`` is set).

:func:`evaluate_tree` and :func:`evaluate_ensemble` pick the fastest valid
strategy; tests pin every strategy against the generic walk bitwise so the
fast paths cannot silently diverge.

Deterministic algorithms (PR, EX) are evaluated through their real
accumulators in the generic path, but :func:`evaluate_ensemble` exploits
``algorithm.deterministic`` to compute once and tile — after the test suite
has proven bitwise tree-independence.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Union

import numpy as np

from repro.summation.base import SumContext, SummationAlgorithm, VectorOps
from repro.trees import _ckernels
from repro.trees.schedule import compile_tree
from repro.trees.serial_batch import serial_ensemble_standard, serial_ensemble_vops
from repro.trees.tree import ReductionTree
from repro.util.pool import arena_pair, arena_view, get_pool, shard_plan
from repro.util.rng import SeedLike, permutation_stream

__all__ = [
    "evaluate_tree",
    "evaluate_tree_generic",
    "evaluate_balanced_vectorized",
    "balanced_ensemble_vops",
    "evaluate_ensemble",
]

#: shapes `evaluate_ensemble` accepts: a named extreme or any explicit tree
ShapeLike = Union[str, ReductionTree]


def evaluate_tree_generic(
    tree: ReductionTree,
    data: np.ndarray,
    algorithm: SummationAlgorithm,
    context: Optional[SumContext] = None,
) -> float:
    """Literal node-walk: every internal node is one accumulator merge.

    This is the semantic oracle every fast path is pinned against.
    """
    data = np.asarray(data, dtype=np.float64).ravel()
    if data.size != tree.n_leaves:
        raise ValueError(f"{data.size} operands for a {tree.n_leaves}-leaf tree")
    if context is None and algorithm.needs_context:
        context = SumContext.for_data(data)
    if tree.n_leaves == 1:
        acc = algorithm.make_accumulator(context)
        acc.add(float(data[0]))
        return acc.result()
    slots: list = [None] * tree.n_nodes
    for i, v in enumerate(data.tolist()):
        acc = algorithm.make_accumulator(context)
        acc.add(v)
        slots[i] = acc
    for a, b, out in tree.iter_steps():
        left, right = slots[a], slots[b]
        left.merge(right)
        slots[out] = left
        slots[a] = slots[b] = None  # free promptly; each slot is read once
    return slots[tree.root_slot].result()


def evaluate_balanced_vectorized(
    data: np.ndarray,
    algorithm: SummationAlgorithm,
    context: Optional[SumContext] = None,
) -> float:
    """Level-wise evaluation of the canonical balanced tree via VectorOps.

    Matches :func:`shapes.balanced`'s schedule: nodes are paired in order at
    each level and an odd trailing node is carried up unchanged.
    """
    vops = algorithm.vector_ops
    if vops is None:
        raise TypeError(f"{algorithm.code} has no vectorised state ops")
    data = np.asarray(data, dtype=np.float64).ravel()
    if data.size == 0:
        raise ValueError("empty data")
    return float(balanced_ensemble_vops(data[np.newaxis, :], vops)[0])


def balanced_ensemble_vops(
    permuted: np.ndarray, vops: VectorOps, *, allow_ckernel: bool = True
) -> np.ndarray:
    """Balanced-tree values of every row of ``permuted`` in one matrix sweep.

    ``permuted`` has shape ``(P, n)``: row ``p`` is the data in tree ``p``'s
    leaf order.  The level loop of :func:`evaluate_balanced_vectorized` runs
    on ``(P, width)`` component matrices, so one ensemble costs the same
    number of NumPy calls as a single tree.  Each row's value is bitwise
    equal to the generic node-walk of :func:`shapes.balanced` on that row.

    When the algebra advertises a compiled kernel and the optional
    :mod:`repro.trees._ckernels` backend is available, the sweep runs fused
    in C out of an L1-resident scratch buffer (bitwise-equal by
    construction and pinned by the engine tests); ``allow_ckernel=False``
    forces the pure-NumPy sweep, which the equivalence tests use to pin
    both implementations independently.
    """
    permuted = np.asarray(permuted, dtype=np.float64)
    if permuted.ndim != 2:
        raise ValueError("expected a (P, n) matrix of permuted data")
    width = permuted.shape[1]
    if width == 0:
        raise ValueError("empty data")
    if width == 1:
        state = vops.init(permuted)
        return np.asarray(
            vops.result(tuple(c[:, 0] for c in state)), dtype=np.float64
        )
    if allow_ckernel and _ckernels.has_kernel(vops):
        return _ckernels.sweep_matrix(permuted, vops)
    # First level straight from the raw operands: ``merge_leaves`` skips the
    # operand copy and the all-zero compensation components ``init`` would
    # materialise, roughly halving the sweep's memory traffic.
    even = width - (width % 2)
    state = vops.merge_leaves(permuted[:, :even:2], permuted[:, 1:even:2])
    if width % 2:
        carry = vops.init(permuted[:, width - 1 : width])
        state = tuple(np.concatenate((m, c), axis=1) for m, c in zip(state, carry))
    width = state[0].shape[1]
    while width > 1:
        even = width - (width % 2)
        heads = tuple(c[:, :even:2] for c in state)
        tails = tuple(c[:, 1:even:2] for c in state)
        merged = vops.merge(heads, tails)
        if width % 2:
            carry = tuple(c[:, width - 1 : width] for c in state)
            merged = tuple(
                np.concatenate((m, c), axis=1) for m, c in zip(merged, carry)
            )
        state = merged
        width = state[0].shape[1]
    return np.asarray(vops.result(tuple(c[:, 0] for c in state)), dtype=np.float64)


def evaluate_tree(
    tree: ReductionTree,
    data: np.ndarray,
    algorithm: SummationAlgorithm,
    context: Optional[SumContext] = None,
    *,
    force_generic: bool = False,
) -> float:
    """Value of ``tree`` applied to ``data`` under ``algorithm``.

    Dispatches to the fastest strategy whose semantics match the generic
    node-walk; pass ``force_generic=True`` to pin the literal walk (used by
    the equivalence tests).  Arbitrary (``custom``-kind) shapes of VectorOps
    algorithms run through the compiled level schedule of
    :mod:`repro.trees.schedule` instead of per-node Python merges.
    """
    data = np.asarray(data, dtype=np.float64).ravel()
    if context is None and algorithm.needs_context:
        context = SumContext.for_data(data)
    if force_generic:
        return evaluate_tree_generic(tree, data, algorithm, context)
    vops = algorithm.vector_ops
    if vops is None:
        return evaluate_tree_generic(tree, data, algorithm, context)
    if tree.kind == "balanced":
        return evaluate_balanced_vectorized(data, algorithm, context)
    if tree.kind == "serial":
        out = serial_ensemble_vops(data[np.newaxis, :], vops)
        return float(out[0])
    out = compile_tree(tree).execute(data[np.newaxis, :], vops)
    return float(out[0])


def evaluate_ensemble(
    data: np.ndarray,
    shape: ShapeLike,
    algorithm: SummationAlgorithm,
    n_trees: int,
    seed: SeedLike = None,
    context: Optional[SumContext] = None,
    *,
    batch_elems: int = 1 << 24,
    perms: Optional[np.ndarray] = None,
    workers: Optional[int] = None,
) -> np.ndarray:
    """Values of ``n_trees`` same-shape trees with permuted leaf assignments.

    This is the paper's core measurement: "we generate distinct reduction
    trees by randomly assigning operands to leaves" and study the spread of
    the computed sums.  ``shape`` is ``"balanced"``, ``"serial"``, or any
    explicit :class:`ReductionTree` (random, skewed, fault-perturbed, ...)
    whose leaf count matches ``data``.

    The first tree always uses the identity assignment.  Deterministic
    algorithms are computed once and tiled (their tree-independence is
    established by the property-test suite).  For VectorOps algorithms every
    shape is evaluated as a batched matrix sweep — balanced/serial through
    their dedicated 2-D kernels, everything else through the compiled level
    schedule — with working memory bounded by ``batch_elems``.

    ``perms`` optionally supplies the leaf assignments explicitly as an
    ``(n_trees, n)`` integer index matrix, overriding the seeded stream —
    used when several paths must consume bit-identical permutations (e.g.
    the perf-trajectory bench) or when assignments come from a recorded
    trace.  Indices are bounds-checked once up front.

    ``workers`` shards the tree/permutation axis over the persistent
    multicore pool (:mod:`repro.util.pool`): contiguous permutation-row
    shards evaluate in worker processes against shared-memory views of the
    data and permutation matrix, and the reassembled value vector is
    bitwise-identical to the serial sweep — each tree's value is independent
    of every other tree's.  ``workers=None`` defers to
    ``REPRO_WORKERS``/cpu-count behind the adaptive bytes-and-items cutover;
    an explicit ``workers >= 2`` always parallelises; deterministic
    algorithms always use the compute-once-and-tile shortcut.
    """
    data = np.asarray(data, dtype=np.float64).ravel()
    n = data.size
    if n == 0:
        raise ValueError("empty data")
    if isinstance(shape, ReductionTree):
        tree: Optional[ReductionTree] = shape
        if tree.n_leaves != n:
            raise ValueError(
                f"{n} operands for a {tree.n_leaves}-leaf ensemble shape"
            )
        kind = tree.kind
    elif shape in ("balanced", "serial"):
        tree = None
        kind = shape
    else:
        raise ValueError(
            f"shape must be 'balanced', 'serial' or a ReductionTree, got {shape!r}"
        )
    if context is None and algorithm.needs_context:
        context = SumContext.for_data(data)

    if algorithm.deterministic:
        value = algorithm.sum_array(data, context)
        return np.full(n_trees, value, dtype=np.float64)

    if perms is not None:
        perm_arr = np.asarray(perms)
        if perm_arr.ndim != 2 or perm_arr.shape != (n_trees, n):
            raise ValueError(
                f"perms must have shape ({n_trees}, {n}), got {perm_arr.shape}"
            )
        if not np.issubdtype(perm_arr.dtype, np.integer):
            raise ValueError("perms must be an integer index matrix")
        # the batched gather runs with mode="clip" (no per-element bounds
        # checks), so validate user-supplied indices once here
        if perm_arr.size and (perm_arr.min() < 0 or perm_arr.max() >= n):
            raise ValueError("perms contains out-of-range leaf indices")
        perm_iter: Iterable[np.ndarray] = iter(perm_arr)
    else:
        perm_iter = permutation_stream(n, n_trees, seed)

    # multicore cutover: shard the permutation axis over the persistent pool
    pool_workers, n_shards = shard_plan(
        n_trees, n_trees * n * 8 + data.nbytes, workers
    )
    if n_shards > 1:
        perm_matrix = (
            perm_arr if perms is not None else np.stack(list(perm_iter))
        )
        return _ensemble_parallel(
            data,
            tree if tree is not None else kind,
            algorithm,
            perm_matrix,
            context,
            batch_elems,
            pool_workers,
            n_shards,
        )

    vops = algorithm.vector_ops

    if kind == "serial" and algorithm.code == "ST":
        # cumsum is a true left-to-right recurrence: fastest serial kernel
        return _batched_perm_ensemble(
            data, perm_iter, n_trees, serial_ensemble_standard, batch_elems
        )
    if vops is not None:
        if kind == "balanced" and n >= 2 and _ckernels.has_kernel(vops):
            # fused C sweep: the leaf gather happens inside the kernel, so
            # the permuted operand matrix is never materialised at all
            perm_source = perm_arr if perms is not None else perm_iter
            return _batched_balanced_indexed(
                data, perm_source, n_trees, vops, batch_elems
            )
        if kind == "balanced":
            kernel: Callable[[np.ndarray], np.ndarray] = (
                lambda mat: balanced_ensemble_vops(mat, vops)
            )
            # Cache-block the matrix sweep: the level loop revisits every
            # row log2(n) times, so blocks of ~L2-sized working set are
            # several times faster than one memory-bound full-ensemble pass.
            batch_elems = min(batch_elems, max(8 * n, _BALANCED_BLOCK_ELEMS))
        elif kind == "serial":
            kernel = lambda mat: serial_ensemble_vops(mat, vops)
        else:
            assert tree is not None  # custom kinds only arise from real trees
            compiled = compile_tree(tree)
            kernel = lambda mat: compiled.execute(mat, vops)
            # the engine's slot buffers are ~2x n_components wider than the
            # permuted operand matrix; shrink the batch budget to match
            batch_elems = max(n, batch_elems // (2 * max(vops.n_components, 1)))
        return _batched_perm_ensemble(data, perm_iter, n_trees, kernel, batch_elems)

    # no vectorised state ops: literal node-walk per ensemble member
    if tree is None:
        if kind == "balanced":
            from repro.trees.shapes import balanced as balanced_shape

            tree = balanced_shape(n)
        else:
            from repro.trees.shapes import serial as serial_shape

            tree = serial_shape(n)
    return np.array(
        [
            evaluate_tree_generic(tree, data[p], algorithm, context)
            for p in perm_iter
        ]
    )


#: L2-sized row-block budget for the balanced matrix sweep (in float64 elems)
_BALANCED_BLOCK_ELEMS = 1 << 18


def _ensemble_parallel(
    data: np.ndarray,
    shape: ShapeLike,
    algorithm: SummationAlgorithm,
    perm_matrix: np.ndarray,
    context: Optional[SumContext],
    batch_elems: int,
    pool_workers: int,
    n_shards: int,
) -> np.ndarray:
    """Shard an ensemble's permutation rows over worker processes.

    The data vector and the full permutation matrix pack once into the
    persistent input arena; each worker evaluates a contiguous row shard
    through the normal serial strategy dispatch (so every fast path — C
    sweeps, compiled schedules, cumsum serial kernels — still applies
    inside the worker) and writes its value-vector slice straight into the
    result arena, so the pickle pipe only carries ``None``.  The assembled
    value vector is bitwise-identical to the serial sweep over the same
    permutation matrix.
    """
    from repro.util.chunking import split_indices

    n = data.size
    n_trees = perm_matrix.shape[0]
    shards = split_indices(n_trees, n_shards)
    pool = get_pool(pool_workers)
    # input arena: [data f64 x n][perms i64 x (n_trees, n)]
    with arena_pair() as (arena_in, arena_res):
        in_handle = arena_in.reserve(8 * (n + n_trees * n))
        res_handle = arena_res.reserve(8 * n_trees)
        data_v = arena_in.view(np.float64, (n,))
        data_v[:] = data
        perm_v = arena_in.view(np.int64, (n_trees, n), offset=8 * n)
        perm_v[:] = perm_matrix
        del data_v, perm_v
        payloads = [
            (
                in_handle,
                res_handle,
                n,
                n_trees,
                s.start,
                s.stop,
                shape,
                algorithm,
                context,
                batch_elems,
            )
            for s in shards
        ]
        pool.map(_ensemble_shard, payloads, chunksize=1, path="ensemble")
        out = arena_res.view(np.float64, (n_trees,)).copy()
    return out


def _ensemble_shard(payload: tuple) -> None:
    """Worker: evaluate one contiguous block of permutation rows.

    Operates on zero-copy views sliced out of the cached input-arena
    attachment (attach once per arena epoch, not once per task) and writes
    its value slice directly into the result arena.  Every arena view is
    dropped before returning — a lingering view would block the attachment
    swap on the next arena regrow epoch.
    """
    (
        in_handle,
        res_handle,
        n,
        n_trees,
        start,
        stop,
        shape,
        algorithm,
        context,
        batch_elems,
    ) = payload
    data = arena_view(in_handle, np.float64, (n,))
    perms = arena_view(in_handle, np.int64, (n_trees, n), offset=8 * n)
    out_v = arena_view(res_handle, np.float64, (n_trees,))
    out_v[start:stop] = evaluate_ensemble(
        data,
        shape,
        algorithm,
        stop - start,
        context=context,
        batch_elems=batch_elems,
        perms=perms[start:stop],
        workers=1,
    )
    del out_v, data, perms
    return None


def _batched_balanced_indexed(
    data: np.ndarray,
    perm_source: Union[np.ndarray, Iterable[np.ndarray]],
    n_trees: int,
    vops: VectorOps,
    batch_elems: int,
) -> np.ndarray:
    """Balanced ensemble via the compiled indexed sweep, memory-bounded.

    A pre-stacked ``(n_trees, n)`` permutation matrix is sliced block-wise
    with zero copies; a streamed permutation source is staged into a
    ``batch_elems``-bounded index block first.
    """
    n = data.size
    data = np.ascontiguousarray(data, dtype=np.float64)
    out = np.empty(n_trees, dtype=np.float64)
    per_batch = min(max(1, batch_elems // max(n, 1)), max(n_trees, 1))
    if isinstance(perm_source, np.ndarray):
        arr = np.ascontiguousarray(perm_source, dtype=np.int64)
        for s in range(0, n_trees, per_batch):
            blk = arr[s : s + per_batch]
            _ckernels.sweep_indexed(data, blk, vops, out=out[s : s + blk.shape[0]])
        return out
    idx = np.empty((per_batch, n), dtype=np.int64)
    start = 0
    filled = 0
    for p in perm_source:
        idx[filled] = p
        filled += 1
        if filled == per_batch:
            _ckernels.sweep_indexed(data, idx, vops, out=out[start : start + filled])
            start += filled
            filled = 0
    if filled:
        _ckernels.sweep_indexed(
            data, idx[:filled], vops, out=out[start : start + filled]
        )
    return out


def _batched_perm_ensemble(
    data: np.ndarray,
    perms: Iterable[np.ndarray],
    n_trees: int,
    kernel: Callable[[np.ndarray], np.ndarray],
    batch_elems: int,
) -> np.ndarray:
    """Run an ensemble kernel over permutation batches bounded in memory.

    Permutations are staged into a preallocated ``(per_batch, n)`` index
    matrix and the whole block is gathered with one ``np.take(...,
    mode="clip")`` call — the fastest NumPy gather for this access pattern
    (clip mode skips per-element bounds checks; indices are trusted here
    because permutation streams are valid by construction and user-supplied
    ``perms`` are validated up front).  No per-tree Python lists, no
    ``vstack`` copies, no slow row-at-a-time buffered takes.
    """
    n = data.size
    per_batch = min(max(1, batch_elems // max(n, 1)), max(n_trees, 1))
    out = np.empty(n_trees, dtype=np.float64)
    idx = np.empty((per_batch, n), dtype=np.intp)
    mat = np.empty((per_batch, n), dtype=np.float64)
    start = 0
    filled = 0
    for p in perms:
        idx[filled] = p
        filled += 1
        if filled == per_batch:
            np.take(data, idx, out=mat, mode="clip")
            out[start : start + filled] = kernel(mat)
            start += filled
            filled = 0
    if filled:
        np.take(data, idx[:filled], out=mat[:filled], mode="clip")
        out[start : start + filled] = kernel(mat[:filled])
    return out
