"""Compiled level schedules: batched evaluation of arbitrary-shape ensembles.

The paper's core measurement (Sec. V) evaluates each summation algorithm over
~1000 leaf-permuted reduction trees per grid cell.  The permutations change
*which operand sits on which leaf* but never the tree's *structure*, so the
dependency analysis of the merge schedule can be done once per structure and
reused for every member of the ensemble.

This module performs that analysis: :func:`compile_tree` lowers a
:class:`~repro.trees.tree.ReductionTree` into a :class:`CompiledSchedule` — a
sequence of *dependency levels*, each an index triple ``(left, right, out)``
into a flat accumulator-slot buffer.  Steps within a level are independent
(every slot is written exactly once and read exactly once), so one level is
one batched :meth:`~repro.summation.base.VectorOps.merge_at` call.  Executing
a compiled schedule over an ensemble keeps the slot buffers as
``(n_trees, n_nodes)`` component matrices: each tree level becomes ONE
elementwise merge over the whole ensemble instead of ``n_trees`` Python-level
accumulator merges.  This is the level-parallel structure exploited by
parallel summation algorithms (cf. arXiv:1605.05436) applied across the
ensemble axis.

Grouping independent merges into levels cannot change results: the merge
schedule writes each slot once, so any execution order compatible with the
dependencies computes bitwise-identical partial reductions.  The property
tests pin :meth:`CompiledSchedule.execute` against
:func:`~repro.trees.evaluate.evaluate_tree_generic` for every VectorOps
algorithm and shape.

Compilation costs one O(n) pass per *structure* and is cached under a
structural key (shape kind, leaf count, topology digest) — never object
identity — so ensembles, repeated sweeps, and pickled worker payloads all
share compiled schedules.  The cache is bounded (LRU) and exposes
:func:`clear_schedule_cache` so long sweeps can bound memory explicitly.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.obs import get_registry
from repro.summation.base import VectorOps
from repro.trees.tree import ReductionTree

__all__ = [
    "CompiledSchedule",
    "structural_key",
    "compile_tree",
    "clear_schedule_cache",
    "schedule_cache_info",
    "ensemble_via_schedule",
]

#: maximum number of compiled structures kept in the LRU cache
SCHEDULE_CACHE_MAX = 64


def structural_key(tree: ReductionTree) -> tuple:
    """Structural identity of a tree: ``(kind, n_leaves, topology digest)``.

    Two trees with equal keys have byte-identical merge schedules, so a
    compiled schedule may be shared between them regardless of object
    identity (e.g. across pickled process-pool payloads that rebuild the
    same shape from a seed).
    """
    sched = np.ascontiguousarray(tree.schedule, dtype=np.int64)
    digest = hashlib.blake2b(sched.tobytes(), digest_size=16).hexdigest()
    return (tree.kind, tree.n_leaves, digest)


@dataclass(frozen=True)
class CompiledSchedule:
    """A reduction tree lowered to gather/scatter dependency levels.

    Attributes
    ----------
    n_leaves:
        Operand count; slots ``0..n_leaves-1`` of the flat buffer are leaves.
    root_slot:
        Buffer slot holding the final reduction.
    levels:
        Per-level ``(left, right, out)`` int64 index triples into the slot
        buffer.  Level ``i`` may only read slots produced at levels ``< i``
        (or leaves), which :func:`compile_tree` guarantees.
    key:
        The :func:`structural_key` this schedule was compiled from.
    """

    n_leaves: int
    root_slot: int
    levels: Tuple[Tuple[np.ndarray, np.ndarray, np.ndarray], ...]
    key: tuple

    @property
    def depth(self) -> int:
        """Number of dependency levels (== the tree's depth)."""
        return len(self.levels)

    @property
    def n_nodes(self) -> int:
        return 2 * self.n_leaves - 1

    def execute(self, permuted: np.ndarray, vops: VectorOps) -> np.ndarray:
        """Values of every row of ``permuted`` under this tree structure.

        ``permuted`` has shape ``(n_trees, n_leaves)``: row ``p`` is the data
        in ensemble member ``p``'s leaf order (a 1-D array is treated as a
        single-tree ensemble).  States live in ``(n_trees, n_nodes)``
        component buffers; each level is one batched ``merge_at``.  Returns
        the ``(n_trees,)`` root values, each bitwise equal to the generic
        node-walk of the same tree on the same row.
        """
        permuted = np.asarray(permuted, dtype=np.float64)
        if permuted.ndim == 1:
            permuted = permuted[np.newaxis, :]
        if permuted.ndim != 2:
            raise ValueError("expected a (n_trees, n_leaves) matrix")
        n_trees, n = permuted.shape
        if n != self.n_leaves:
            raise ValueError(
                f"{n} operands per row for a {self.n_leaves}-leaf schedule"
            )
        leaf_state = vops.init(permuted)
        if n == 1:
            root = tuple(c[:, 0] for c in leaf_state)
            return np.asarray(vops.result(root), dtype=np.float64)
        buffers = tuple(
            np.zeros((n_trees, self.n_nodes), dtype=np.float64)
            for _ in range(len(leaf_state))
        )
        for buf, comp in zip(buffers, leaf_state):
            buf[:, :n] = comp
        for left, right, out in self.levels:
            vops.merge_at(buffers, left, right, out)
        root = tuple(buf[:, self.root_slot] for buf in buffers)
        return np.asarray(vops.result(root), dtype=np.float64)

    def reduce_states(
        self, states: Tuple[np.ndarray, ...], vops: VectorOps
    ) -> Tuple[np.ndarray, ...]:
        """Reduce ready-made per-leaf accumulator states to the root state.

        ``states`` is a component tuple whose *last* axis indexes leaves
        (length ``n_leaves``); leading axes are independent ensemble lanes
        (e.g. the batch axis of :meth:`repro.mpi.comm.SimComm.reduce_batch`)
        that broadcast through every merge.  This is :meth:`execute` minus
        the leaf lifting — the entry point for the collective fast path,
        where leaf states are rank-local partial reductions produced by
        :meth:`~repro.summation.base.VectorOps.fold` rather than raw
        operands.  Returns the root state components with the leaf axis
        collapsed; results are bitwise-equal to walking the source tree's
        merge schedule node by node.
        """
        n = states[0].shape[-1]
        if n != self.n_leaves:
            raise ValueError(f"{n} leaf states for a {self.n_leaves}-leaf schedule")
        if n == 1:
            return tuple(c[..., 0] for c in states)
        lead = states[0].shape[:-1]
        buffers = tuple(
            np.zeros(lead + (self.n_nodes,), dtype=np.float64) for _ in states
        )
        for buf, comp in zip(buffers, states):
            buf[..., :n] = comp
        for left, right, out in self.levels:
            vops.merge_at(buffers, left, right, out)
        return tuple(buf[..., self.root_slot] for buf in buffers)


def _compile(tree: ReductionTree, key: tuple) -> CompiledSchedule:
    """Group the merge schedule into dependency levels (one O(n) pass)."""
    n = tree.n_leaves
    if n == 1:
        return CompiledSchedule(n_leaves=1, root_slot=0, levels=(), key=key)
    steps = tree.schedule.tolist()
    node_level = [0] * (2 * n - 1)
    step_level = np.empty(n - 1, dtype=np.int64)
    for t, (a, b) in enumerate(steps):
        la, lb = node_level[a], node_level[b]
        lvl = (la if la >= lb else lb) + 1
        step_level[t] = lvl
        node_level[n + t] = lvl
    order = np.argsort(step_level, kind="stable")
    sorted_levels = step_level[order]
    depth = int(sorted_levels[-1])
    bounds = np.searchsorted(sorted_levels, np.arange(1, depth + 2))
    sched = tree.schedule
    levels = []
    for i in range(depth):
        members = order[bounds[i] : bounds[i + 1]]
        levels.append(
            (
                np.ascontiguousarray(sched[members, 0]),
                np.ascontiguousarray(sched[members, 1]),
                np.ascontiguousarray(members + n),
            )
        )
    return CompiledSchedule(
        n_leaves=n, root_slot=2 * n - 2, levels=tuple(levels), key=key
    )


_cache: "OrderedDict[tuple, CompiledSchedule]" = OrderedDict()
_cache_lock = threading.Lock()
_cache_hits = 0
_cache_misses = 0

_OBS = get_registry()


def compile_tree(tree: ReductionTree, *, cache: bool = True) -> CompiledSchedule:
    """Compiled level schedule for ``tree``, shared via the structural cache.

    The cache key is :func:`structural_key` — structure, not object identity
    — so two ``balanced(4096)`` instances (or the same random shape rebuilt
    from its seed in another process) compile exactly once.  Pass
    ``cache=False`` to bypass the cache entirely (used by tests).
    """
    global _cache_hits, _cache_misses
    key = structural_key(tree)
    if cache:
        with _cache_lock:
            hit = _cache.get(key)
            if hit is not None:
                _cache.move_to_end(key)
                _cache_hits += 1
            else:
                _cache_misses += 1
        if _OBS.enabled:
            _OBS.counter(
                "repro_schedule_cache_events_total",
                event="hit" if hit is not None else "miss",
            ).inc()
        if hit is not None:
            return hit
    compiled = _compile(tree, key)
    if cache:
        evictions = 0
        with _cache_lock:
            _cache[key] = compiled
            _cache.move_to_end(key)
            while len(_cache) > SCHEDULE_CACHE_MAX:
                # Per-process memo cache: a given key always maps to a
                # bitwise-identical compiled plan, so worker copies cannot
                # diverge in value — only in what they have cached.
                # repro: allow[FP010] -- memo cache, key -> bitwise-same plan
                _cache.popitem(last=False)
                evictions += 1
        if evictions and _OBS.enabled:
            _OBS.counter(
                "repro_schedule_cache_events_total", event="evict"
            ).inc(evictions)
    return compiled


def clear_schedule_cache() -> None:
    """Drop every cached schedule (bounds memory over long sweeps)."""
    global _cache_hits, _cache_misses
    with _cache_lock:
        _cache.clear()
        _cache_hits = 0
        _cache_misses = 0


def schedule_cache_info() -> dict:
    """Cache statistics: ``{"size", "max_size", "hits", "misses"}``."""
    with _cache_lock:
        return {
            "size": len(_cache),
            "max_size": SCHEDULE_CACHE_MAX,
            "hits": _cache_hits,
            "misses": _cache_misses,
        }


def ensemble_via_schedule(
    tree: ReductionTree, permuted: np.ndarray, vops: VectorOps
) -> np.ndarray:
    """Evaluate a whole permuted-leaf ensemble of ``tree`` in one level sweep."""
    return compile_tree(tree).execute(permuted, vops)
