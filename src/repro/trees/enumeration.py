"""Exhaustive enumeration of reduction trees for small n (the WoDet study).

The paper builds on Chiang et al. [3], where "a set of eight identical
floating-point values is summed via three differently shaped reduction
trees, yielding in each case a different value", and eight values summed via
same-shape trees with different leaf assignments also all disagree.  For
small n we can do better than three examples: enumerate *every* full binary
tree shape (there are Catalan(n-1) of them) and map the complete set of
achievable floating-point values — the exact space over which an exascale
run nondeterministically samples.

Used by the ``extenum`` extension experiment and the structural tests; the
shape count grows as ~4^n so this is strictly a small-n microscope
(n <= 14 keeps things interactive).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro.summation.base import SumContext, SummationAlgorithm
from repro.trees.evaluate import evaluate_tree_generic
from repro.trees.tree import ReductionTree
from repro.util.rng import SeedLike, permutation_stream

__all__ = [
    "catalan",
    "n_shapes",
    "enumerate_shapes",
    "achievable_values",
    "ValueSpace",
]


def catalan(n: int) -> int:
    """The n-th Catalan number."""
    if n < 0:
        raise ValueError("n must be >= 0")
    return math.comb(2 * n, n) // (n + 1)


def n_shapes(n_leaves: int) -> int:
    """Number of full binary tree shapes over an ordered leaf sequence."""
    if n_leaves < 1:
        raise ValueError("need >= 1 leaf")
    return catalan(n_leaves - 1)


def _structures(lo: int, hi: int):
    """All binary bracketings of leaves [lo, hi): nested (left, right) pairs."""
    if hi - lo == 1:
        yield lo
        return
    for mid in range(lo + 1, hi):
        for left in _structures(lo, mid):
            for right in _structures(mid, hi):
                yield (left, right)


def _to_tree(structure, n: int) -> ReductionTree:
    schedule = np.empty((n - 1, 2), dtype=np.int64)
    t = 0

    def build(node) -> int:
        nonlocal t
        if isinstance(node, int):
            return node
        a = build(node[0])
        b = build(node[1])
        schedule[t] = (a, b)
        t += 1
        return n + t - 1

    build(structure)
    assert t == n - 1
    return ReductionTree(n_leaves=n, schedule=schedule, kind="custom")


def enumerate_shapes(n_leaves: int, limit: Optional[int] = None) -> Iterator[ReductionTree]:
    """Yield every full binary tree shape over ``n_leaves`` ordered leaves.

    ``limit`` truncates the enumeration (useful above n ~ 14, where
    Catalan(n-1) explodes).
    """
    if n_leaves < 1:
        raise ValueError("need >= 1 leaf")
    if n_leaves == 1:
        yield ReductionTree(
            n_leaves=1, schedule=np.empty((0, 2), dtype=np.int64), kind="custom"
        )
        return
    count = 0
    for structure in _structures(0, n_leaves):
        yield _to_tree(structure, n_leaves)
        count += 1
        if limit is not None and count >= limit:
            return


@dataclass(frozen=True)
class ValueSpace:
    """The complete set of achievable values for (data, algorithm)."""

    values: tuple[float, ...]  # distinct, sorted
    n_shapes: int
    n_assignments: int

    @property
    def n_distinct(self) -> int:
        return len(self.values)

    @property
    def spread(self) -> float:
        return self.values[-1] - self.values[0] if self.values else 0.0


def achievable_values(
    data: np.ndarray,
    algorithm: SummationAlgorithm,
    *,
    n_assignments: int = 1,
    seed: SeedLike = None,
    shape_limit: Optional[int] = None,
) -> ValueSpace:
    """Every value the reduction can produce over all shapes (and sampled
    leaf assignments).

    ``n_assignments = 1`` uses only the identity assignment (pure shape
    study, the first half of [3]); larger values add random permutations
    (the assignment study, its second half).
    """
    data = np.asarray(data, dtype=np.float64).ravel()
    n = data.size
    if n < 1:
        raise ValueError("empty data")
    context = SumContext.for_data(data) if algorithm.needs_context else None
    perms = list(permutation_stream(n, n_assignments, seed))
    values: set[float] = set()
    shapes = 0
    for tree in enumerate_shapes(n, limit=shape_limit):
        shapes += 1
        for p in perms:
            values.add(evaluate_tree_generic(tree, data[p], algorithm, context))
    return ValueSpace(
        values=tuple(sorted(values)), n_shapes=shapes, n_assignments=len(perms)
    )
