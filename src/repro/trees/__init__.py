"""Reduction-tree model: shapes, leaf assignments, evaluation strategies."""

from repro.trees.enumeration import (
    ValueSpace,
    achievable_values,
    catalan,
    enumerate_shapes,
    n_shapes,
)
from repro.trees.evaluate import (
    balanced_ensemble_vops,
    evaluate_balanced_vectorized,
    evaluate_ensemble,
    evaluate_tree,
    evaluate_tree_generic,
)
from repro.trees.schedule import (
    CompiledSchedule,
    clear_schedule_cache,
    compile_tree,
    ensemble_via_schedule,
    schedule_cache_info,
    structural_key,
)
from repro.trees.serial_batch import serial_ensemble_standard, serial_ensemble_vops
from repro.trees.shapes import balanced, from_parent_array, random_shape, serial, skewed
from repro.trees.tree import ReductionTree

__all__ = [
    "CompiledSchedule",
    "ReductionTree",
    "ValueSpace",
    "achievable_values",
    "balanced",
    "balanced_ensemble_vops",
    "catalan",
    "clear_schedule_cache",
    "compile_tree",
    "ensemble_via_schedule",
    "enumerate_shapes",
    "evaluate_balanced_vectorized",
    "evaluate_ensemble",
    "evaluate_tree",
    "evaluate_tree_generic",
    "from_parent_array",
    "n_shapes",
    "random_shape",
    "schedule_cache_info",
    "serial",
    "serial_ensemble_standard",
    "serial_ensemble_vops",
    "skewed",
    "structural_key",
]
