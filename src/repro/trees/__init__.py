"""Reduction-tree model: shapes, leaf assignments, evaluation strategies."""

from repro.trees.enumeration import (
    ValueSpace,
    achievable_values,
    catalan,
    enumerate_shapes,
    n_shapes,
)
from repro.trees.evaluate import (
    evaluate_balanced_vectorized,
    evaluate_ensemble,
    evaluate_tree,
    evaluate_tree_generic,
)
from repro.trees.serial_batch import serial_ensemble_standard, serial_ensemble_vops
from repro.trees.shapes import balanced, from_parent_array, random_shape, serial, skewed
from repro.trees.tree import ReductionTree

__all__ = [
    "ReductionTree",
    "ValueSpace",
    "achievable_values",
    "catalan",
    "enumerate_shapes",
    "n_shapes",
    "balanced",
    "evaluate_balanced_vectorized",
    "evaluate_ensemble",
    "evaluate_tree",
    "evaluate_tree_generic",
    "from_parent_array",
    "random_shape",
    "serial",
    "serial_ensemble_standard",
    "serial_ensemble_vops",
    "skewed",
]
