"""Constructors for reduction-tree shapes.

The paper's experiments use the two extremes of Fig. 1 — completely balanced
(parallel) and completely unbalanced (serial) — plus, in the discussion of
exascale behaviour, trees whose shape fluctuates due to faults and resource
availability.  This module builds all of them as merge schedules:

* :func:`balanced` — level-wise pairing; an odd node at a level is carried
  up unchanged.  Depth ``ceil(log2 n)``.
* :func:`serial` — left comb: ``((x0 + x1) + x2) + ...``.  Depth ``n-1``.
* :func:`random_shape` — uniform-ish random full binary tree via random
  pairwise coalescence (the "Huffman on random pairs" process), modelling
  reductions that combine whichever partial results are available first.
* :func:`skewed` — interpolates between serial and balanced via a skew
  parameter, for ablation sweeps over tree depth.
* :func:`from_parent_array` — import any externally described full binary
  tree (used by the topology-aware builder in :mod:`repro.mpi.topology`).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.trees.tree import ReductionTree
from repro.util.rng import SeedLike, resolve_rng

__all__ = ["balanced", "serial", "random_shape", "skewed", "from_parent_array"]


def balanced(n: int) -> ReductionTree:
    """Completely balanced (parallel) reduction tree over ``n`` leaves."""
    if n < 1:
        raise ValueError("n must be >= 1")
    schedule = np.empty((max(n - 1, 0), 2), dtype=np.int64)
    level = list(range(n))
    next_slot = n
    t = 0
    while len(level) > 1:
        nxt: list[int] = []
        for i in range(0, len(level) - 1, 2):
            schedule[t, 0] = level[i]
            schedule[t, 1] = level[i + 1]
            nxt.append(next_slot)
            next_slot += 1
            t += 1
        if len(level) % 2:
            nxt.append(level[-1])  # odd node rides up to the next level
        level = nxt
    return ReductionTree(n_leaves=n, schedule=schedule, kind="balanced")


def serial(n: int) -> ReductionTree:
    """Completely unbalanced (serial) left-comb tree over ``n`` leaves."""
    if n < 1:
        raise ValueError("n must be >= 1")
    schedule = np.empty((max(n - 1, 0), 2), dtype=np.int64)
    if n > 1:
        schedule[0] = (0, 1)
        for t in range(1, n - 1):
            schedule[t] = (n + t - 1, t + 1)
    return ReductionTree(n_leaves=n, schedule=schedule, kind="serial")


def random_shape(n: int, seed: SeedLike = None) -> ReductionTree:
    """Random full binary tree by repeated coalescence of random pairs.

    Models a reduction that greedily combines whichever two partial results
    happen to be ready, as on a machine with jittered completion times.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = resolve_rng(seed)
    active = list(range(n))
    schedule = np.empty((max(n - 1, 0), 2), dtype=np.int64)
    next_slot = n
    for t in range(n - 1):
        i, j = rng.choice(len(active), size=2, replace=False)
        i, j = (int(i), int(j)) if i < j else (int(j), int(i))
        schedule[t, 0] = active[i]
        schedule[t, 1] = active[j]
        # remove j first (higher index), then i
        active.pop(j)
        active.pop(i)
        active.append(next_slot)
        next_slot += 1
    return ReductionTree(n_leaves=n, schedule=schedule, kind="custom")


def skewed(n: int, skew: float) -> ReductionTree:
    """Interpolate between balanced (``skew=0``) and serial (``skew=1``).

    At each level the first ``round(skew * width)`` elements are folded
    serially into a single running node; the remainder are paired.
    """
    if not 0.0 <= skew <= 1.0:
        raise ValueError("skew must be in [0, 1]")
    if n < 1:
        raise ValueError("n must be >= 1")
    if skew == 0.0:  # repro: allow[FP001] -- exact endpoint sentinel (balanced)
        return balanced(n)
    if skew == 1.0:  # repro: allow[FP001] -- exact endpoint sentinel (serial)
        return serial(n)
    schedule = np.empty((max(n - 1, 0), 2), dtype=np.int64)
    level = list(range(n))
    next_slot = n
    t = 0
    while len(level) > 1:
        serial_count = min(len(level), max(2, round(skew * len(level))))
        run = level[0]
        for i in range(1, serial_count):
            schedule[t] = (run, level[i])
            run = next_slot
            next_slot += 1
            t += 1
        rest = level[serial_count:]
        nxt = [run]
        for i in range(0, len(rest) - 1, 2):
            schedule[t] = (rest[i], rest[i + 1])
            nxt.append(next_slot)
            next_slot += 1
            t += 1
        if len(rest) % 2:
            nxt.append(rest[-1])
        level = nxt
    assert t == n - 1, "every merge reduces the node count by one"
    return ReductionTree(n_leaves=n, schedule=schedule, kind="custom")


def from_parent_array(parent: Sequence[int], n_leaves: int) -> ReductionTree:
    """Build a tree from a parent array over nodes ``0..2n-2``.

    ``parent[i]`` is the parent node id of node ``i`` (root has parent
    ``-1``); leaves must be nodes ``0..n_leaves-1``.  Internal node ids are
    re-labelled into schedule order (children before parents).
    """
    parent = np.asarray(parent, dtype=np.int64)
    n_nodes = parent.size
    if n_nodes != 2 * n_leaves - 1:
        raise ValueError("parent array must cover 2*n_leaves - 1 nodes")
    children: dict[int, list[int]] = {}
    root = -1
    for child, par in enumerate(parent.tolist()):
        if par == -1:
            if root != -1:
                raise ValueError("multiple roots")
            root = child
        else:
            children.setdefault(par, []).append(child)
    if root == -1:
        raise ValueError("no root found")
    for node, kids in children.items():
        if len(kids) != 2:
            raise ValueError(f"node {node} has {len(kids)} children; tree not full")
    # post-order walk assigning new slot ids to internal nodes
    schedule = np.empty((max(n_leaves - 1, 0), 2), dtype=np.int64)
    new_id: dict[int, int] = {i: i for i in range(n_leaves)}
    t = 0
    stack: list[tuple[int, bool]] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if node < n_leaves:
            continue
        if not expanded:
            stack.append((node, True))
            for kid in children[node]:
                stack.append((kid, False))
        else:
            a, b = children[node]
            schedule[t] = (new_id[a], new_id[b])
            new_id[node] = n_leaves + t
            t += 1
    if t != n_leaves - 1:
        raise ValueError("tree is disconnected or malformed")
    return ReductionTree(n_leaves=n_leaves, schedule=schedule, kind="custom")
