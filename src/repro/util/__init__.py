"""Shared utilities: seeded RNG plumbing, timing, chunking, process pools."""

from repro.util.chunking import iter_chunks, safe_block_len, split_indices
from repro.util.parallel import default_workers, map_parallel
from repro.util.rng import SeedLike, derive_seed, permutation_stream, resolve_rng, spawn
from repro.util.timing import Stopwatch, TimingResult, time_callable

__all__ = [
    "SeedLike",
    "Stopwatch",
    "TimingResult",
    "default_workers",
    "derive_seed",
    "iter_chunks",
    "map_parallel",
    "permutation_stream",
    "resolve_rng",
    "safe_block_len",
    "spawn",
    "split_indices",
    "time_callable",
]
