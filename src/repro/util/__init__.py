"""Shared utilities: seeded RNG plumbing, timing, chunking, process pools."""

from repro.util.chunking import iter_chunks, safe_block_len, split_indices
from repro.util.parallel import default_workers, map_parallel
from repro.util.pool import (
    SharedArray,
    WorkerPool,
    attach_shared,
    get_pool,
    in_worker,
    parallel_cutover,
    pool_info,
    shard_plan,
    shutdown_pool,
)
from repro.util.rng import SeedLike, derive_seed, permutation_stream, resolve_rng, spawn
from repro.util.timing import Stopwatch, TimingResult, time_callable

__all__ = [
    "SeedLike",
    "SharedArray",
    "Stopwatch",
    "TimingResult",
    "WorkerPool",
    "attach_shared",
    "default_workers",
    "derive_seed",
    "get_pool",
    "in_worker",
    "iter_chunks",
    "map_parallel",
    "parallel_cutover",
    "permutation_stream",
    "pool_info",
    "resolve_rng",
    "safe_block_len",
    "shard_plan",
    "shutdown_pool",
    "spawn",
    "split_indices",
    "time_callable",
]
