"""Array chunking helpers.

The exact superaccumulator and the binned (prerounded) summation both
accumulate 53-bit integer mantissas in 64-bit lanes; to keep those partial
sums overflow-free we bound the number of terms per vectorised reduction.
These helpers centralise that arithmetic.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["iter_chunks", "pack_ragged", "safe_block_len", "split_indices"]

#: Mantissa width of IEEE binary64 (including the implicit bit).
_MANTISSA_BITS = 53


def safe_block_len(value_bits: int = _MANTISSA_BITS, lane_bits: int = 63) -> int:
    """Largest block length such that summing that many ``value_bits``-wide
    non-negative integers cannot overflow a signed ``lane_bits``-bit lane."""
    if value_bits >= lane_bits:
        raise ValueError("value width must be smaller than lane width")
    return 1 << (lane_bits - value_bits)


def iter_chunks(n: int, block: int) -> Iterator[slice]:
    """Yield slices covering ``range(n)`` in blocks of at most ``block``."""
    if block <= 0:
        raise ValueError("block must be positive")
    for start in range(0, n, block):
        yield slice(start, min(start + block, n))


def pack_ragged(chunks) -> "tuple[np.ndarray, np.ndarray]":
    """Pack ragged 1-D chunks into a zero-padded ``(R, M)`` float64 matrix.

    Returns ``(matrix, lengths)`` with ``M = max(len(chunk))`` (0 when every
    chunk is empty) and ``lengths[r]`` the true element count of chunk ``r``.
    The collective fast path feeds this to
    :meth:`repro.summation.base.VectorOps.fold`, whose kernels treat the
    zero padding as bitwise inert.
    """
    arrays = [np.asarray(c, dtype=np.float64).ravel() for c in chunks]
    lengths = np.array([a.size for a in arrays], dtype=np.int64)
    width = int(lengths.max()) if len(arrays) else 0
    if len(arrays) and int(lengths.min()) == width:
        # uniform widths (the common collective case): one fused copy
        return np.concatenate(arrays).reshape(len(arrays), width), lengths
    matrix = np.zeros((len(arrays), width), dtype=np.float64)
    for r, a in enumerate(arrays):
        matrix[r, : a.size] = a
    return matrix, lengths


def split_indices(n: int, parts: int) -> list[slice]:
    """Split ``range(n)`` into ``parts`` nearly equal contiguous slices.

    Used to shard a global vector across simulated MPI ranks; mirrors the
    block distribution of an ``MPI_Scatterv`` with balanced counts.
    """
    if parts <= 0:
        raise ValueError("parts must be positive")
    base, extra = divmod(n, parts)
    out: list[slice] = []
    start = 0
    for p in range(parts):
        length = base + (1 if p < extra else 0)
        out.append(slice(start, start + length))
        start += length
    return out
