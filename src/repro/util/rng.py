"""Centralised random-number-generation utilities.

Every stochastic component of :mod:`repro` — workload generators, leaf
permutations, nondeterministic message-arrival simulation, CESTAC random
rounding — draws randomness through this module so that experiments are
themselves reproducible end to end.  The convention throughout the package is
that public functions accept a ``seed`` argument that may be

* ``None`` — fresh OS entropy (non-reproducible, for interactive use),
* an ``int`` — deterministic stream derived from that integer, or
* an existing :class:`numpy.random.Generator` — used as-is (the caller owns
  the stream and may thread it through several calls).

Independent child streams are derived with :func:`spawn`, which uses NumPy's
``SeedSequence.spawn`` so that children are statistically independent no
matter how many are created.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]

__all__ = ["SeedLike", "resolve_rng", "spawn", "derive_seed", "permutation_stream"]


def resolve_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed form.

    Parameters
    ----------
    seed:
        ``None``, an integer, a ``SeedSequence``, or an existing
        ``Generator``.  Generators are returned unchanged so callers can
        thread one stream through a multi-step pipeline.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators.

    When ``seed`` is already a ``Generator`` the children are spawned from its
    internal bit generator's seed sequence, so repeated calls advance the
    parent deterministically.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    if isinstance(seed, np.random.Generator):
        return [np.random.default_rng(s) for s in seed.bit_generator.seed_seq.spawn(n)]
    seq = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in seq.spawn(n)]


def derive_seed(seed: SeedLike, *tokens: Union[int, str]) -> int:
    """Derive a stable 63-bit integer seed from a base seed and context tokens.

    Used where a plain integer must be shipped across a process boundary
    (e.g. multiprocessing workers in grid sweeps).  Token order matters.
    """
    base = 0 if seed is None else (seed if isinstance(seed, int) else 0)
    entropy: list[int] = [base & 0x7FFFFFFFFFFFFFFF]
    for tok in tokens:
        if isinstance(tok, str):
            # Stable across processes (unlike hash()): fold bytes into an int.
            acc = 1469598103934665603  # FNV offset basis
            for b in tok.encode():
                acc = ((acc ^ b) * 1099511628211) & 0xFFFFFFFFFFFFFFFF
            entropy.append(acc)
        else:
            entropy.append(int(tok) & 0xFFFFFFFFFFFFFFFF)
    seq = np.random.SeedSequence(entropy)
    return int(seq.generate_state(1, np.uint64)[0] & 0x7FFFFFFFFFFFFFFF)


def permutation_stream(
    n: int, count: int, seed: SeedLike = None
) -> Iterable[np.ndarray]:
    """Yield ``count`` independent permutations of ``range(n)``.

    The first permutation is always the identity so that ensembles include
    the "canonical" assignment the paper's figures implicitly contain.
    """
    if n < 0 or count < 0:
        raise ValueError("n and count must be non-negative")
    rng = resolve_rng(seed)
    for i in range(count):
        if i == 0:
            yield np.arange(n, dtype=np.intp)
        else:
            yield rng.permutation(n)
