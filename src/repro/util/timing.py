"""Lightweight timing helpers used by the Fig. 4/5 experiments.

pytest-benchmark drives the headline timing benches; these helpers exist for
the in-library experiment harness (``repro.experiments.fig4_timing``) which
reports mean/min wall times over repeated runs with a warmed cache, matching
the paper's methodology ("Each test is repeated 20 times with a warmed
cache").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

__all__ = ["TimingResult", "time_callable", "Stopwatch"]


@dataclass(frozen=True)
class TimingResult:
    """Wall-clock statistics for a repeated measurement."""

    label: str
    samples: tuple[float, ...]

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples)

    @property
    def best(self) -> float:
        return min(self.samples)

    @property
    def worst(self) -> float:
        return max(self.samples)

    def penalty_vs(self, baseline: "TimingResult") -> float:
        """Slowdown factor relative to ``baseline`` (paper Fig. 5)."""
        if baseline.mean == 0:
            raise ZeroDivisionError("baseline mean time is zero")
        return self.mean / baseline.mean


def time_callable(
    fn: Callable[[], object],
    *,
    label: str = "",
    repeats: int = 20,
    warmup: int = 2,
) -> TimingResult:
    """Time ``fn`` with ``warmup`` discarded runs then ``repeats`` samples."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return TimingResult(label=label, samples=tuple(samples))


@dataclass
class Stopwatch:
    """Accumulating stopwatch for instrumenting phases inside the selector."""

    elapsed: float = 0.0
    _t0: float | None = field(default=None, repr=False)

    def __enter__(self) -> "Stopwatch":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._t0 is not None
        self.elapsed += time.perf_counter() - self._t0
        self._t0 = None
