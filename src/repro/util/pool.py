"""Persistent multicore serving pool with zero-copy shared-memory dispatch.

The serving-path engines (``AdaptiveReducer.reduce_many``, ensemble sweeps,
grid experiments) fan independent work units out over processes.  Before this
module each fan-out built a fresh ``ProcessPoolExecutor`` — paying worker
spawn plus a full interpreter/NumPy import per call — and shipped every array
operand through the IPC pipe as pickled bytes.  Both costs are hoisted here:

* **Persistent pool** — one process-global :class:`WorkerPool`, lazily
  started on first dispatch and reused by every subsequent call (explicit
  :func:`shutdown_pool` plus an ``atexit`` hook).  Worker count comes from
  ``REPRO_WORKERS`` or cpu_count − 1; the start method prefers ``forkserver``
  (fork-safety with threads, workers importable once then forked) and falls
  back to ``spawn``, overridable via ``REPRO_POOL_START``.  A crashed worker
  breaks a ``ProcessPoolExecutor`` irrecoverably, so :meth:`WorkerPool.map`
  detects ``BrokenProcessPool``, rebuilds the executor, retries the batch
  once (dispatched tasks are deterministic and idempotent by construction),
  and counts the restart.
* **Persistent arenas** — the serving engines dispatch through a
  pool-lifetime shared-memory segment pair (:func:`arena_pair`: an input
  arena and a result arena), sized geometrically by :meth:`SharedArena.reserve`
  and reused across calls, so a warm dispatch performs **zero** segment
  create/unlink syscalls.  Workers cache their attachment per arena epoch
  (:func:`arena_view`; attach once per segment generation, not once per
  task) and write results — reduced values *and* decision codes — straight
  into the result arena instead of pickling them back through the IPC pipe.
  Only tiny descriptors (segment name, generation, shard bounds) are
  pickled.  :class:`SharedArray`/:func:`attach_shared` remain as the
  one-shot building blocks for ad-hoc payloads.
* **Adaptive cutover** — :func:`shard_plan` keeps small batches serial: IPC
  only pays for itself past a bytes-and-items threshold (tunable via
  ``REPRO_PARALLEL_MIN_ITEMS`` / ``REPRO_PARALLEL_MIN_BYTES``, parsed once
  per process — see :func:`reload_parallel_env`), while an explicit
  ``workers >= 2`` request always parallelises.

Determinism contract: callers shard work into *contiguous* ranges and
workers receive bit-identical operand bytes (``float64`` views of the packed
segment), so every parallel result is bitwise-equal to the serial path —
sharding selects *where* each independent item is computed, never *how*.
The property tests in ``tests/test_parallel_determinism.py`` pin this across
worker counts.

Observability (parent-side, via :mod:`repro.obs`): tasks dispatched, shard
sizes, pool starts/worker restarts, shared-memory bytes in flight, and
dispatch/roundtrip latency histograms.
"""

from __future__ import annotations

import atexit
import os
import sys
import threading
import time
import warnings
from contextlib import contextmanager
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Sequence, TypeVar

import multiprocessing as mp
from multiprocessing import shared_memory

import numpy as np

from repro.obs import get_registry

T = TypeVar("T")
R = TypeVar("R")

__all__ = [
    "default_workers",
    "in_worker",
    "WorkerPool",
    "get_pool",
    "shutdown_pool",
    "pool_info",
    "SharedArray",
    "attach_shared",
    "SharedArena",
    "arena_pair",
    "arena_view",
    "arena_info",
    "parallel_cutover",
    "shard_plan",
    "reload_parallel_env",
    "register_worker_state",
    "worker_state",
    "MIN_PARALLEL_ITEMS",
    "MIN_PARALLEL_BYTES",
    "MAX_AUTO_PARALLEL_BYTES",
]

_OBS = get_registry()

#: auto-cutover floors, recalibrated for warm-arena dispatch: a reused arena
#: pays one memcpy in plus a ~100 µs pool round trip (no segment create or
#: unlink syscalls, no pickled result return), so parallel breaks even on
#: much smaller batches than the one-shot SharedArray path did (was 8 items /
#: 2 MiB)
MIN_PARALLEL_ITEMS = 4
MIN_PARALLEL_BYTES = 1 << 18  # 256 KiB of float64 payload

#: auto mode refuses to materialise/pack payloads beyond this (the caller can
#: still force it with an explicit ``workers=``); guards against an implicit
#: multi-GiB shared-memory copy of a paper-scale ensemble
MAX_AUTO_PARALLEL_BYTES = 1 << 31

#: shard-size histogram bounds (items per dispatched shard, not seconds)
_SHARD_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0,
                  1024.0, 4096.0, 16384.0, 65536.0)


#: set in each pool worker by the executor initializer.  Nested dispatch is
#: disabled inside workers: a shard function that (transitively) reaches an
#: auto-parallel path — e.g. a grid cell calling ``evaluate_ensemble`` with
#: ``REPRO_WORKERS`` inherited from the parent — must run it serially, or
#: every worker forks its own pool and the executors deadlock joining their
#: grandchildren at exit.
_IN_WORKER = False


def _mark_worker() -> None:
    global _IN_WORKER
    _IN_WORKER = True


def in_worker() -> bool:
    """True inside a pool worker process, where nested dispatch is disabled."""
    return _IN_WORKER


# -- registered worker state ---------------------------------------------------
#
# Module-level mutable state read inside pool workers is a determinism trap:
# forkserver/spawn workers materialise modules fresh, so whatever the parent
# mutated after import is silently absent in the worker.  The sanctioned
# protocol is to register a *factory* at import time — import runs in every
# process, so every worker (and the parent) builds the same value from the
# same inputs — and fetch it with :func:`worker_state` where needed.  The
# flow analyzer (rule FP010) recognises exactly this protocol: accesses to
# state whose only writers are registered factories/initializers don't fire.

_WORKER_STATE_FACTORIES: "dict[str, Callable[[], object]]" = {}
_WORKER_STATE: "dict[str, object]" = {}


def register_worker_state(name: str, factory: "Callable[[], object]") -> "Callable[[], object]":
    """Register ``factory`` as the per-process builder for ``name``.

    Call at module import time (so the registration exists in every
    process).  The factory runs lazily, at most once per process, on the
    first :func:`worker_state` lookup.  Re-registering a name replaces the
    factory and drops any value already materialised in *this* process.
    Returns the factory, so it stacks as a decorator.
    """
    if not callable(factory):
        raise TypeError(f"factory for {name!r} is not callable")
    # repro: allow[FP010] -- this IS the registration protocol: both dicts are
    # (re)built identically in every process by import-time registration calls
    _WORKER_STATE_FACTORIES[name] = factory
    _WORKER_STATE.pop(name, None)  # repro: allow[FP010] -- see above
    return factory


def worker_state(name: str) -> object:
    """The per-process value registered under ``name`` (built on first use).

    Safe to call in the parent and in workers; each process materialises its
    own copy via the registered factory, which is what makes the state
    deterministic across start methods.
    """
    if name not in _WORKER_STATE:
        try:
            # reading the factory table is the protocol itself; it was
            # filled by import-time registration in every process
            factory = _WORKER_STATE_FACTORIES[name]  # repro: allow[FP010] -- see above
        except KeyError:
            raise KeyError(
                f"no worker state registered under {name!r}; call "
                "register_worker_state(name, factory) at module import time"
            ) from None
        # repro: allow[FP010] -- lazy per-process materialisation is the
        # protocol itself; the factory was registered at import in every process
        _WORKER_STATE[name] = factory()
    return _WORKER_STATE[name]  # repro: allow[FP010] -- see above


def _env_int(name: str, default: int) -> int:
    """Integer env override with warn-and-fallback on malformed values."""
    # Cutover/placement knob: decides WHERE shards run, never how a reduction
    # associates; parallel==serial is bitwise by contract.
    # repro: allow[FP009] -- placement knob only, reduction order unaffected
    env = os.environ.get(name)
    if not env:
        return default
    try:
        return int(env)
    except ValueError:
        warnings.warn(
            f"ignoring malformed {name}={env!r}; using default {default}",
            RuntimeWarning,
            stacklevel=2,
        )
        return default


def _build_cutover_config() -> "tuple[int, int, int]":
    """Parse the ``REPRO_PARALLEL_*`` cutover knobs once per process.

    Registered as worker state so the hot dispatch path never re-reads the
    environment: ``(min_items, min_bytes, max_bytes)`` is materialised on
    first use in each process and cached until :func:`reload_parallel_env`.
    """
    return (
        _env_int("REPRO_PARALLEL_MIN_ITEMS", MIN_PARALLEL_ITEMS),
        _env_int("REPRO_PARALLEL_MIN_BYTES", MIN_PARALLEL_BYTES),
        _env_int("REPRO_PARALLEL_MAX_BYTES", MAX_AUTO_PARALLEL_BYTES),
    )


register_worker_state("pool.cutover_config", _build_cutover_config)


def reload_parallel_env() -> "tuple[int, int, int]":
    """Re-parse ``REPRO_PARALLEL_*`` after an environment change.

    The cutover floors are cached per process at first use; a long-lived
    server (or a test monkeypatching the environment) that edits the knobs
    afterwards calls this to drop the cache.  Parsing happens eagerly here,
    so a malformed value warns at the reload site; returns the fresh
    ``(min_items, min_bytes, max_bytes)`` triple.
    """
    register_worker_state("pool.cutover_config", _build_cutover_config)
    return worker_state("pool.cutover_config")  # type: ignore[return-value]


def default_workers() -> int:
    """Worker count: ``REPRO_WORKERS`` env var, else cpu_count − 1 (min 1).

    A malformed ``REPRO_WORKERS`` (e.g. ``abc``) warns and falls back to the
    cpu-count default instead of raising from deep inside a sweep.
    """
    # Worker-count knob: changes shard placement only; every shard receives
    # bit-identical operand bytes regardless of the count.
    # repro: allow[FP009] -- placement knob only, reduction order unaffected
    env = os.environ.get("REPRO_WORKERS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            warnings.warn(
                f"ignoring malformed REPRO_WORKERS={env!r}; "
                "falling back to cpu_count - 1",
                RuntimeWarning,
                stacklevel=2,
            )
    return max(1, (os.cpu_count() or 2) - 1)


def _start_method() -> str:
    """Pool start method: ``REPRO_POOL_START`` override, else forkserver/spawn.

    ``fork`` is accepted when explicitly requested (fastest on Linux), but
    the default avoids it: forked children of a threaded parent deadlock, and
    the serving path must stay safe under caller threads.
    """
    methods = mp.get_all_start_methods()
    # Start-method knob: affects worker spawn mechanics, not reduction order;
    # results are bitwise-equal across start methods.
    # repro: allow[FP009] -- spawn mechanics only, reduction order unaffected
    env = os.environ.get("REPRO_POOL_START")
    if env:
        if env in methods:
            return env
        warnings.warn(
            f"ignoring unknown REPRO_POOL_START={env!r}; known: {methods}",
            RuntimeWarning,
            stacklevel=2,
        )
    return "forkserver" if "forkserver" in methods else "spawn"


class WorkerPool:
    """A lazily-started, restartable process pool bound to one worker count.

    The executor is created on first :meth:`map` and survives across calls —
    repeated grid sweeps and serving batches stop paying pool startup.  A
    ``BrokenProcessPool`` (worker killed by the OS, segfault in a kernel,
    out-of-memory) is detected, counted, and healed by rebuilding the
    executor; the interrupted batch is retried once because every task the
    serving layer dispatches is deterministic and side-effect-free.
    """

    def __init__(self, workers: "int | None" = None, *, start_method: "str | None" = None) -> None:
        self.workers = max(1, int(workers)) if workers is not None else default_workers()
        self.start_method = start_method or _start_method()
        self._executor: "ProcessPoolExecutor | None" = None
        self._lock = threading.RLock()
        self.starts = 0
        self.restarts = 0
        self.tasks_dispatched = 0

    # -- lifecycle ----------------------------------------------------------
    def _ensure_executor(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._executor is None:
                ctx = mp.get_context(self.start_method)
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=ctx,
                    initializer=_mark_worker,
                )
                self.starts += 1
                if _OBS.enabled:
                    _OBS.counter("repro_pool_starts_total").inc()
                    _OBS.gauge("repro_pool_live_workers").inc(self.workers)
            return self._executor

    def _handle_broken(self) -> None:
        with self._lock:
            if self._executor is not None:
                self._executor.shutdown(wait=False, cancel_futures=True)
                self._executor = None
                if _OBS.enabled:
                    _OBS.gauge("repro_pool_live_workers").dec(self.workers)
            self.restarts += 1
            if _OBS.enabled:
                _OBS.counter("repro_pool_worker_restarts_total").inc()

    def shutdown(self) -> None:
        """Stop the workers; the next :meth:`map` lazily restarts them."""
        with self._lock:
            if self._executor is not None:
                self._executor.shutdown(wait=True, cancel_futures=True)
                self._executor = None
                if _OBS.enabled:
                    _OBS.gauge("repro_pool_live_workers").dec(self.workers)

    @property
    def live(self) -> bool:
        return self._executor is not None

    def info(self) -> dict:
        """Lifecycle counters: ``{"workers", "start_method", "live",
        "starts", "restarts", "tasks_dispatched"}``."""
        return {
            "workers": self.workers,
            "start_method": self.start_method,
            "live": self.live,
            "starts": self.starts,
            "restarts": self.restarts,
            "tasks_dispatched": self.tasks_dispatched,
        }

    # -- dispatch -----------------------------------------------------------
    def map(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        *,
        chunksize: "int | None" = None,
        path: str = "map",
    ) -> "list[R]":
        """Ordered parallel map through the persistent executor.

        ``path`` labels the dispatch in the pool metrics (``"map"``,
        ``"reduce_many"``, ``"ensemble"``, ...).  Worker exceptions propagate
        unchanged; only a *broken pool* (crashed worker) triggers the
        rebuild-and-retry cycle.
        """
        items = list(items)
        if not items:
            return []
        if chunksize is None:
            chunksize = max(1, len(items) // (self.workers * 4))
        for attempt in (0, 1):
            executor = self._ensure_executor()
            t0 = time.perf_counter()
            try:
                iterator = executor.map(fn, items, chunksize=chunksize)
                dispatch_s = time.perf_counter() - t0
                results = list(iterator)
            except BrokenProcessPool:
                self._handle_broken()
                if attempt:
                    raise
                continue
            roundtrip_s = time.perf_counter() - t0
            with self._lock:
                self.tasks_dispatched += len(items)
            if _OBS.enabled:
                _OBS.counter("repro_pool_tasks_total", path=path).inc(len(items))
                _OBS.histogram("repro_pool_dispatch_seconds").observe(dispatch_s)
                _OBS.histogram("repro_pool_roundtrip_seconds").observe(roundtrip_s)
                shard_hist = _OBS.histogram(
                    "repro_pool_shard_items", buckets=_SHARD_BUCKETS
                )
                for size in _shard_sizes(len(items), chunksize):
                    shard_hist.observe(size)
            return results
        raise AssertionError("unreachable")  # pragma: no cover


def _shard_sizes(n_items: int, chunksize: int) -> "list[int]":
    full, rem = divmod(n_items, max(1, chunksize))
    return [chunksize] * full + ([rem] if rem else [])


# -- the process-global pools --------------------------------------------------
#
# One persistent pool *per worker count*: benches and tests sweep workers in
# {1, 2, 4, ...} back to back, and resizing a single pool would pay a full
# worker spin-up on every alternation.  Distinct sizes in one process are few,
# so keeping each warm costs little and makes every repeat dispatch cheap.

_POOLS: "dict[int, WorkerPool]" = {}
_GLOBAL_LOCK = threading.Lock()


def get_pool(workers: "int | None" = None) -> WorkerPool:
    """The process-global pool for this worker count, created on demand.

    ``workers=None`` sizes the pool from :func:`default_workers`.  The
    returned pool persists for the life of the process (or until
    :func:`shutdown_pool`), so repeated dispatches skip executor startup.
    """
    want = max(1, int(workers)) if workers is not None else default_workers()
    with _GLOBAL_LOCK:
        pool = _POOLS.get(want)
        if pool is None:
            pool = WorkerPool(want)
            # Statically pool-reachable, dynamically parent-only: inside a
            # worker shard_plan() returns (1, 1) (see _IN_WORKER), so the
            # parallel branch that calls get_pool never runs there and
            # worker-side _POOLS stays empty.
            # repro: allow[FP010] -- parent-only in practice; workers serial
            _POOLS[want] = pool
        return pool


#: reentrancy guard for :func:`shutdown_pool`.  ``atexit`` does not run on
#: SIGTERM, so long-lived daemons (``repro-serve``) install signal handlers
#: that call :func:`shutdown_pool` themselves — and a handler can fire while
#: an earlier shutdown (atexit, another handler, an explicit call) is already
#: mid-flight on the same thread.  The RLock + flag turn that reentrant call
#: into a no-op instead of a deadlock or a double unlink.
_SHUTDOWN_GUARD = threading.RLock()
_SHUTDOWN_ACTIVE = False


def shutdown_pool() -> None:
    """Stop every global pool's workers and unlink the arenas.

    Registered as an ``atexit`` hook, but ``atexit`` does not run on
    SIGTERM — a killed daemon would leak arena segments under ``/dev/shm``
    — so signal-terminated services must call this from their own
    SIGTERM/SIGINT handling (``repro-serve`` does).  The call is
    **idempotent** (a second call with nothing running is a no-op) and
    **reentrant-safe** (a call re-entered from a signal handler while a
    shutdown is already in progress returns immediately instead of
    deadlocking).

    Pool objects are dropped entirely, so a later :func:`get_pool` starts
    fresh — used by tests and long-lived servers that want to release cores.
    The persistent arenas are unlinked too (workers are gone, so no mapping
    outlives this), returning ``repro_pool_shm_bytes_in_flight`` to zero.
    """
    global _SHUTDOWN_ACTIVE
    with _SHUTDOWN_GUARD:
        if _SHUTDOWN_ACTIVE:
            return  # reentered from a signal handler mid-shutdown
        _SHUTDOWN_ACTIVE = True
        try:
            with _GLOBAL_LOCK:
                for pool in _POOLS.values():
                    pool.shutdown()
                _POOLS.clear()
            _close_arenas()
        finally:
            _SHUTDOWN_ACTIVE = False


atexit.register(shutdown_pool)


def pool_info() -> dict:
    """Aggregate lifecycle counters across the global pools.

    ``{"pools": [per-pool info], "live_workers", "starts", "restarts",
    "tasks_dispatched"}`` — all-zero/empty if no pool was ever created.
    """
    with _GLOBAL_LOCK:
        pools = [p.info() for p in _POOLS.values()]
    return {
        "pools": pools,
        "live_workers": sum(p["workers"] for p in pools if p["live"]),
        "starts": sum(p["starts"] for p in pools),
        "restarts": sum(p["restarts"] for p in pools),
        "tasks_dispatched": sum(p["tasks_dispatched"] for p in pools),
    }


# -- zero-copy shared-memory payloads ------------------------------------------


class SharedArray:
    """One ndarray in a shared-memory segment (parent-side owner).

    One copy in at construction; workers attach views with
    :func:`attach_shared`, so the bytes never transit the IPC pipe.  The
    owner must call :meth:`close` (or use the instance as a context manager)
    after the consuming futures complete — the segment is unlinked there and
    the bytes-in-flight gauge returns to zero.
    """

    def __init__(self, array: np.ndarray) -> None:
        array = np.ascontiguousarray(array)
        self.nbytes = int(array.nbytes)
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(1, self.nbytes)
        )
        if self.nbytes:
            view = _buffer_view(self._shm, array.dtype, array.shape)
            view[...] = array
            del view
        #: picklable descriptor workers pass to :func:`attach_shared`
        self.handle: tuple = (self._shm.name, array.dtype.str, array.shape)
        if _OBS.enabled:
            _OBS.gauge("repro_pool_shm_bytes_in_flight").inc(self.nbytes)

    def close(self) -> None:
        if self._shm is None:
            return
        shm, self._shm = self._shm, None
        try:
            shm.close()
        except BufferError:  # pragma: no cover - defensive
            pass
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
        if _OBS.enabled:
            _OBS.gauge("repro_pool_shm_bytes_in_flight").dec(self.nbytes)

    def __enter__(self) -> "SharedArray":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without registering it for tracking.

    The parent owns the segment's lifetime; letting the worker's resource
    tracker register an attach-only handle produces spurious unlink attempts
    and "leaked shared_memory" warnings at worker exit.  Python 3.13 exposes
    ``track=False``; earlier versions need the registration briefly no-op'd.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:  # pragma: no cover - depends on Python version
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None  # type: ignore[assignment]
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original  # type: ignore[assignment]


def _buffer_view(
    shm: shared_memory.SharedMemory, dtype, shape, offset: int = 0
) -> np.ndarray:
    """Writable ndarray over ``shm.buf`` that *holds* the buffer export.

    ``np.frombuffer`` keeps a live export on the segment's memoryview for
    the array's lifetime, so closing the mapping under a lingering view
    raises :class:`BufferError` deterministically.  ``np.ndarray(buffer=...)``
    would instead release its export immediately — the close would succeed
    and the lingering view would dangle into unmapped memory.
    """
    if not isinstance(shape, (tuple, list)):
        shape = (shape,)
    count = 1
    for dim in shape:
        count *= int(dim)
    return np.frombuffer(
        shm.buf, dtype=np.dtype(dtype), count=count, offset=offset
    ).reshape(shape)


class attach_shared:
    """Worker-side context manager: ndarray view of a :class:`SharedArray`.

    ``with attach_shared(handle) as arr:`` yields a zero-copy view; every
    reference into the view must be dropped before the block exits (results
    returned from workers are fresh scalars/arrays, never views).
    """

    def __init__(self, handle: tuple) -> None:
        self._name, self._dtype, self._shape = handle
        self._shm: "shared_memory.SharedMemory | None" = None
        self._view: "np.ndarray | None" = None

    def __enter__(self) -> np.ndarray:
        self._shm = _attach_segment(self._name)
        # deliberately NOT _buffer_view: the ``with ... as`` target outlives
        # __exit__ by construction, so a held export would make every clean
        # exit fail; escape detection is the refcount check below instead
        self._view = np.ndarray(
            self._shape, dtype=np.dtype(self._dtype), buffer=self._shm.buf
        )
        return self._view

    def __exit__(self, exc_type, exc, tb) -> None:
        # Deterministic release, no gc.collect() retries: at this point the
        # only sanctioned references to the view are our own attribute, the
        # caller's ``with ... as`` target, and getrefcount's argument (3
        # total).  Anything beyond that escaped the block — aliased into a
        # list, stashed on an object — and would dangle into unmapped memory
        # once the segment closes, so surface it as a hard error.  (Skipped
        # while an exception propagates: traceback frames hold extra
        # references to the caller's locals.)
        view, self._view = self._view, None
        shm, self._shm = self._shm, None
        leaked = (
            exc_type is None
            and view is not None
            and sys.getrefcount(view) > 3
        )
        del view
        if shm is not None:
            try:
                shm.close()
            except BufferError:
                leaked = True
        if leaked:
            raise RuntimeError(
                f"shared segment {self._name!r} still has live ndarray "
                "views at attach_shared exit; drop every view (and any "
                "array aliasing it) before leaving the block, or the "
                "segment mapping leaks"
            ) from None


# -- persistent shared-memory arenas -------------------------------------------
#
# The one-shot SharedArray path pays three fixed costs per dispatch: a segment
# create + unlink syscall pair, a fresh attach in every worker task, and a
# pickled result return.  The serving engines instead dispatch through one
# process-global pair of pool-lifetime arenas ("input" and "result"): the
# parent reserves capacity (grown geometrically, so steady-state traffic
# reuses the same segment), writes operands in, and workers write results
# back into the result arena — the IPC pipe carries only tiny descriptors in
# both directions.

#: arena segments never shrink below this (one page-ish floor keeps tiny
#: dispatches from thrashing generations)
_MIN_ARENA_BYTES = 1 << 16


def _pow2_at_least(n: int) -> int:
    return 1 << max(0, int(n - 1).bit_length())


class SharedArena:
    """A pool-lifetime, geometrically grown shared-memory segment.

    ``reserve(nbytes)`` returns a picklable ``(name, generation, tag)``
    handle after ensuring capacity.  Growth allocates a fresh segment at the
    next power of two, unlinks the old one, and bumps ``generation`` — the
    signal workers use to re-attach (see :func:`arena_view`); a reserve
    satisfied from existing capacity is the steady state and touches no
    kernel object at all.  The owner (the dispatching parent) is the only
    writer of input regions; workers write disjoint shard slices of the
    result arena.  :func:`arena_pair` serialises dispatches, so capacity and
    contents never change while a batch is in flight.
    """

    def __init__(self, tag: str) -> None:
        self.tag = tag
        self.generation = 0
        self.capacity = 0
        self._shm: "shared_memory.SharedMemory | None" = None

    def reserve(self, nbytes: int) -> "tuple[str, int, str]":
        nbytes = max(1, int(nbytes))
        if self._shm is None or nbytes > self.capacity:
            new_cap = _pow2_at_least(max(nbytes, _MIN_ARENA_BYTES))
            old, old_cap = self._shm, self.capacity
            self._shm = shared_memory.SharedMemory(create=True, size=new_cap)
            self.generation += 1
            self.capacity = new_cap
            if old is not None:
                # workers still attached to the old epoch release it on
                # their next task; the parent mapping must be view-free here
                try:
                    old.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass
                try:
                    old.close()
                except BufferError:
                    raise RuntimeError(
                        f"arena segment {old.name!r} (tag {self.tag!r}) "
                        "still has live ndarray views at regrow; the "
                        "dispatcher must del its arena views before the "
                        "next reserve()"
                    ) from None
            if _OBS.enabled:
                _OBS.counter("repro_pool_arena_grow_total", tag=self.tag).inc()
                _OBS.gauge("repro_pool_shm_bytes_in_flight").inc(new_cap - old_cap)
        elif _OBS.enabled:
            _OBS.counter("repro_pool_arena_reuse_total", tag=self.tag).inc()
        return (self._shm.name, self.generation, self.tag)

    def view(self, dtype, shape, offset: int = 0) -> np.ndarray:
        """Parent-side ndarray view of a region of the current segment.

        Views must be dropped (``del``) before the next :meth:`reserve` can
        grow or :meth:`close` can run — both surface lingering views as
        errors rather than leaking the mapping.
        """
        assert self._shm is not None, "reserve() before view()"
        return _buffer_view(self._shm, dtype, shape, offset=offset)

    def write(self, array: np.ndarray, offset: int = 0) -> None:
        """Copy ``array`` into the segment at ``offset`` (view-free).

        The transient view is dropped before returning, so callers using
        these helpers never hold an export that would block the next
        :meth:`reserve` regrow.
        """
        array = np.asarray(array)
        view = self.view(array.dtype, array.shape, offset=offset)
        view[...] = array
        del view

    def write_concat(
        self, arrays: "Sequence[np.ndarray]", total: int, dtype, offset: int = 0
    ) -> None:
        """Concatenate 1-D ``arrays`` straight into the segment at ``offset``.

        This is the zero-intermediate ingest path for packed dispatch: each
        source array — typically a ``memoryview``-backed slice of a socket
        receive buffer — is copied exactly once, directly into shared
        memory (``np.concatenate(out=...)``), with no staging allocation.
        """
        if not arrays:
            return
        view = self.view(dtype, (int(total),), offset=offset)
        try:
            np.concatenate(arrays, out=view)
        finally:
            del view

    def read(self, dtype, shape, offset: int = 0) -> np.ndarray:
        """Copy a region out of the segment (the view-free result path)."""
        view = self.view(dtype, shape, offset=offset)
        out = view.copy()
        del view
        return out

    def close(self) -> None:
        """Unlink and release the segment (idempotent)."""
        if self._shm is None:
            return
        shm, self._shm = self._shm, None
        cap, self.capacity = self.capacity, 0
        if _OBS.enabled:
            _OBS.gauge("repro_pool_shm_bytes_in_flight").dec(cap)
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
        try:
            shm.close()
        except BufferError:
            raise RuntimeError(
                f"arena segment {shm.name!r} (tag {self.tag!r}) still has "
                "live ndarray views at close; the dispatcher must del its "
                "arena views before shutdown"
            ) from None

    def info(self) -> dict:
        return {
            "tag": self.tag,
            "generation": self.generation,
            "capacity": self.capacity,
            "live": self._shm is not None,
        }


_ARENAS: "dict[str, SharedArena]" = {}
#: held for the whole of every arena dispatch: shards write disjoint result
#: regions, but two concurrent batches would overwrite each other's operands
_ARENA_DISPATCH_LOCK = threading.Lock()


@contextmanager
def arena_pair():
    """Exclusive use of the process-global ``(input, result)`` arena pair.

    The lock spans the entire dispatch — reserve, operand copy-in, pool map,
    result copy-out — because the arenas are shared mutable buffers; callers
    must copy results out of the result arena before leaving the block.
    Statically pool-reachable but dynamically parent-only: inside a worker
    ``shard_plan`` returns ``(1, 1)`` (see ``_IN_WORKER``), so the parallel
    branches that dispatch through arenas never run there.
    """
    with _ARENA_DISPATCH_LOCK:
        # repro: allow[FP010] -- parent-only in practice; workers serial
        inp = _ARENAS.get("input")
        if inp is None:
            inp = _ARENAS["input"] = SharedArena("input")  # repro: allow[FP010] -- see above
        res = _ARENAS.get("result")  # repro: allow[FP010] -- see above
        if res is None:
            res = _ARENAS["result"] = SharedArena("result")  # repro: allow[FP010] -- see above
        yield inp, res


def arena_info() -> dict:
    """Generation/capacity snapshot of the global arenas (empty if unused)."""
    with _ARENA_DISPATCH_LOCK:
        # repro: allow[FP010] -- parent-only in practice; workers serial
        return {tag: arena.info() for tag, arena in _ARENAS.items()}


def _close_arenas() -> None:
    with _ARENA_DISPATCH_LOCK:
        # repro: allow[FP010] -- parent-only in practice; workers serial
        for arena in _ARENAS.values():
            arena.close()
        _ARENAS.clear()  # repro: allow[FP010] -- see above


# Worker-side attachment cache, keyed by arena tag: each entry holds the
# (name, generation, SharedMemory) a worker is currently mapped to.  Goes
# through the registered-state protocol so every process (parent included)
# materialises its own empty cache deterministically.
register_worker_state("pool.arena_attachments", dict)


def arena_view(handle: "tuple[str, int, str]", dtype, shape, offset: int = 0) -> np.ndarray:
    """Worker-side ndarray view of an arena region, attachment cached.

    The mapping is established once per arena **epoch** — a task whose
    handle names the segment this process is already attached to reuses the
    cached mapping with zero syscalls; a new name (the arena grew, or the
    pool crashed and was rebuilt) releases the stale attachment and maps the
    fresh segment.  A stale attachment that still has live views raises a
    clear error instead of silently leaking the old segment.  Views handed
    out here must be dropped before the task returns.
    """
    name, generation, tag = handle
    cache: dict = worker_state("pool.arena_attachments")  # type: ignore[assignment]
    entry = cache.get(tag)
    if entry is None or entry[0] != name:
        if entry is not None:
            try:
                entry[2].close()
            except BufferError:
                raise RuntimeError(
                    f"stale arena attachment {entry[0]!r} (tag {tag!r}, "
                    f"generation {entry[1]}) still has live ndarray views; "
                    "shard functions must drop every arena view before "
                    "returning so old epochs can be released"
                ) from None
            del cache[tag]
        entry = (name, generation, _attach_segment(name))
        cache[tag] = entry
    return _buffer_view(entry[2], dtype, shape, offset=offset)


# -- serial/parallel cutover ---------------------------------------------------


def parallel_cutover(n_items: int, total_bytes: int, workers: int) -> bool:
    """Auto-mode decision: is this payload worth the IPC round trip?

    Calibrated against the measured fixed costs of a warm **arena** dispatch
    (one memcpy of the payload into the reused input arena plus a ~100 µs
    pool round trip; no segment create/unlink, no pickled result return):
    both the item floor and the byte floor must clear, and the payload must
    stay under the auto-materialisation cap.  The ``REPRO_PARALLEL_*``
    overrides are parsed once per process (see :func:`reload_parallel_env`),
    never per call.
    """
    if _IN_WORKER or workers <= 1 or n_items < 2:
        return False
    min_items, min_bytes, max_bytes = worker_state("pool.cutover_config")  # type: ignore[misc]
    if total_bytes > max_bytes:
        return False
    return n_items >= min_items and total_bytes >= min_bytes


def shard_plan(
    n_items: int, total_bytes: int, workers: "int | None"
) -> "tuple[int, int]":
    """Plan a dispatch: ``(pool_workers, n_shards)``.

    ``n_shards == 1`` means "run serial, don't touch the pool".  An explicit
    ``workers >= 2`` always parallelises (the caller asked); ``workers`` of
    ``None`` defers to :func:`default_workers` gated by
    :func:`parallel_cutover`, so small batches never pay IPC.
    """
    if n_items < 2:
        return (1, 1)
    if workers is None:
        w = default_workers()
        if not parallel_cutover(n_items, total_bytes, w):
            return (1, 1)
    else:
        w = int(workers)
        if w <= 1:
            return (1, 1)
        if _IN_WORKER:
            warnings.warn(
                "nested parallel dispatch inside a pool worker is disabled; "
                "running this batch serially",
                RuntimeWarning,
                stacklevel=2,
            )
            return (1, 1)
    return (w, min(w, n_items))
