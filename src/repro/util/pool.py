"""Persistent multicore serving pool with zero-copy shared-memory dispatch.

The serving-path engines (``AdaptiveReducer.reduce_many``, ensemble sweeps,
grid experiments) fan independent work units out over processes.  Before this
module each fan-out built a fresh ``ProcessPoolExecutor`` — paying worker
spawn plus a full interpreter/NumPy import per call — and shipped every array
operand through the IPC pipe as pickled bytes.  Both costs are hoisted here:

* **Persistent pool** — one process-global :class:`WorkerPool`, lazily
  started on first dispatch and reused by every subsequent call (explicit
  :func:`shutdown_pool` plus an ``atexit`` hook).  Worker count comes from
  ``REPRO_WORKERS`` or cpu_count − 1; the start method prefers ``forkserver``
  (fork-safety with threads, workers importable once then forked) and falls
  back to ``spawn``, overridable via ``REPRO_POOL_START``.  A crashed worker
  breaks a ``ProcessPoolExecutor`` irrecoverably, so :meth:`WorkerPool.map`
  detects ``BrokenProcessPool``, rebuilds the executor, retries the batch
  once (dispatched tasks are deterministic and idempotent by construction),
  and counts the restart.
* **Zero-copy payloads** — :class:`SharedArray` places one ndarray in a
  ``multiprocessing.shared_memory`` segment (a single copy in); workers
  attach with :func:`attach_shared` and operate on ndarray *views* of the
  segment, so large ``float64`` batches never transit the pipe at all.  Only
  tiny descriptors (segment name, dtype, shape, shard bounds) are pickled.
* **Adaptive cutover** — :func:`shard_plan` keeps small batches serial: IPC
  only pays for itself past a bytes-and-items threshold (tunable via
  ``REPRO_PARALLEL_MIN_ITEMS`` / ``REPRO_PARALLEL_MIN_BYTES``), while an
  explicit ``workers >= 2`` request always parallelises.

Determinism contract: callers shard work into *contiguous* ranges and
workers receive bit-identical operand bytes (``float64`` views of the packed
segment), so every parallel result is bitwise-equal to the serial path —
sharding selects *where* each independent item is computed, never *how*.
The property tests in ``tests/test_parallel_determinism.py`` pin this across
worker counts.

Observability (parent-side, via :mod:`repro.obs`): tasks dispatched, shard
sizes, pool starts/worker restarts, shared-memory bytes in flight, and
dispatch/roundtrip latency histograms.
"""

from __future__ import annotations

import atexit
import os
import threading
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Sequence, TypeVar

import multiprocessing as mp
from multiprocessing import shared_memory

import numpy as np

from repro.obs import get_registry

T = TypeVar("T")
R = TypeVar("R")

__all__ = [
    "default_workers",
    "in_worker",
    "WorkerPool",
    "get_pool",
    "shutdown_pool",
    "pool_info",
    "SharedArray",
    "attach_shared",
    "parallel_cutover",
    "shard_plan",
    "register_worker_state",
    "worker_state",
    "MIN_PARALLEL_ITEMS",
    "MIN_PARALLEL_BYTES",
    "MAX_AUTO_PARALLEL_BYTES",
]

_OBS = get_registry()

#: auto-cutover floors: below either, serial always wins (IPC round trip plus
#: shared-memory packing costs ~hundreds of microseconds; these floors keep
#: that overhead under a few percent of the serial compute it displaces)
MIN_PARALLEL_ITEMS = 8
MIN_PARALLEL_BYTES = 1 << 21  # 2 MiB of float64 payload

#: auto mode refuses to materialise/pack payloads beyond this (the caller can
#: still force it with an explicit ``workers=``); guards against an implicit
#: multi-GiB shared-memory copy of a paper-scale ensemble
MAX_AUTO_PARALLEL_BYTES = 1 << 31

#: shard-size histogram bounds (items per dispatched shard, not seconds)
_SHARD_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0,
                  1024.0, 4096.0, 16384.0, 65536.0)


#: set in each pool worker by the executor initializer.  Nested dispatch is
#: disabled inside workers: a shard function that (transitively) reaches an
#: auto-parallel path — e.g. a grid cell calling ``evaluate_ensemble`` with
#: ``REPRO_WORKERS`` inherited from the parent — must run it serially, or
#: every worker forks its own pool and the executors deadlock joining their
#: grandchildren at exit.
_IN_WORKER = False


def _mark_worker() -> None:
    global _IN_WORKER
    _IN_WORKER = True


def in_worker() -> bool:
    """True inside a pool worker process, where nested dispatch is disabled."""
    return _IN_WORKER


# -- registered worker state ---------------------------------------------------
#
# Module-level mutable state read inside pool workers is a determinism trap:
# forkserver/spawn workers materialise modules fresh, so whatever the parent
# mutated after import is silently absent in the worker.  The sanctioned
# protocol is to register a *factory* at import time — import runs in every
# process, so every worker (and the parent) builds the same value from the
# same inputs — and fetch it with :func:`worker_state` where needed.  The
# flow analyzer (rule FP010) recognises exactly this protocol: accesses to
# state whose only writers are registered factories/initializers don't fire.

_WORKER_STATE_FACTORIES: "dict[str, Callable[[], object]]" = {}
_WORKER_STATE: "dict[str, object]" = {}


def register_worker_state(name: str, factory: "Callable[[], object]") -> "Callable[[], object]":
    """Register ``factory`` as the per-process builder for ``name``.

    Call at module import time (so the registration exists in every
    process).  The factory runs lazily, at most once per process, on the
    first :func:`worker_state` lookup.  Re-registering a name replaces the
    factory and drops any value already materialised in *this* process.
    Returns the factory, so it stacks as a decorator.
    """
    if not callable(factory):
        raise TypeError(f"factory for {name!r} is not callable")
    # repro: allow[FP010] -- this IS the registration protocol: both dicts are
    # (re)built identically in every process by import-time registration calls
    _WORKER_STATE_FACTORIES[name] = factory
    _WORKER_STATE.pop(name, None)  # repro: allow[FP010] -- see above
    return factory


def worker_state(name: str) -> object:
    """The per-process value registered under ``name`` (built on first use).

    Safe to call in the parent and in workers; each process materialises its
    own copy via the registered factory, which is what makes the state
    deterministic across start methods.
    """
    if name not in _WORKER_STATE:
        try:
            factory = _WORKER_STATE_FACTORIES[name]
        except KeyError:
            raise KeyError(
                f"no worker state registered under {name!r}; call "
                "register_worker_state(name, factory) at module import time"
            ) from None
        # repro: allow[FP010] -- lazy per-process materialisation is the
        # protocol itself; the factory was registered at import in every process
        _WORKER_STATE[name] = factory()
    return _WORKER_STATE[name]  # repro: allow[FP010] -- see above


def _env_int(name: str, default: int) -> int:
    """Integer env override with warn-and-fallback on malformed values."""
    # Cutover/placement knob: decides WHERE shards run, never how a reduction
    # associates; parallel==serial is bitwise by contract.
    # repro: allow[FP009] -- placement knob only, reduction order unaffected
    env = os.environ.get(name)
    if not env:
        return default
    try:
        return int(env)
    except ValueError:
        warnings.warn(
            f"ignoring malformed {name}={env!r}; using default {default}",
            RuntimeWarning,
            stacklevel=2,
        )
        return default


def default_workers() -> int:
    """Worker count: ``REPRO_WORKERS`` env var, else cpu_count − 1 (min 1).

    A malformed ``REPRO_WORKERS`` (e.g. ``abc``) warns and falls back to the
    cpu-count default instead of raising from deep inside a sweep.
    """
    # Worker-count knob: changes shard placement only; every shard receives
    # bit-identical operand bytes regardless of the count.
    # repro: allow[FP009] -- placement knob only, reduction order unaffected
    env = os.environ.get("REPRO_WORKERS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            warnings.warn(
                f"ignoring malformed REPRO_WORKERS={env!r}; "
                "falling back to cpu_count - 1",
                RuntimeWarning,
                stacklevel=2,
            )
    return max(1, (os.cpu_count() or 2) - 1)


def _start_method() -> str:
    """Pool start method: ``REPRO_POOL_START`` override, else forkserver/spawn.

    ``fork`` is accepted when explicitly requested (fastest on Linux), but
    the default avoids it: forked children of a threaded parent deadlock, and
    the serving path must stay safe under caller threads.
    """
    methods = mp.get_all_start_methods()
    # Start-method knob: affects worker spawn mechanics, not reduction order;
    # results are bitwise-equal across start methods.
    # repro: allow[FP009] -- spawn mechanics only, reduction order unaffected
    env = os.environ.get("REPRO_POOL_START")
    if env:
        if env in methods:
            return env
        warnings.warn(
            f"ignoring unknown REPRO_POOL_START={env!r}; known: {methods}",
            RuntimeWarning,
            stacklevel=2,
        )
    return "forkserver" if "forkserver" in methods else "spawn"


class WorkerPool:
    """A lazily-started, restartable process pool bound to one worker count.

    The executor is created on first :meth:`map` and survives across calls —
    repeated grid sweeps and serving batches stop paying pool startup.  A
    ``BrokenProcessPool`` (worker killed by the OS, segfault in a kernel,
    out-of-memory) is detected, counted, and healed by rebuilding the
    executor; the interrupted batch is retried once because every task the
    serving layer dispatches is deterministic and side-effect-free.
    """

    def __init__(self, workers: "int | None" = None, *, start_method: "str | None" = None) -> None:
        self.workers = max(1, int(workers)) if workers is not None else default_workers()
        self.start_method = start_method or _start_method()
        self._executor: "ProcessPoolExecutor | None" = None
        self._lock = threading.RLock()
        self.starts = 0
        self.restarts = 0
        self.tasks_dispatched = 0

    # -- lifecycle ----------------------------------------------------------
    def _ensure_executor(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._executor is None:
                ctx = mp.get_context(self.start_method)
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=ctx,
                    initializer=_mark_worker,
                )
                self.starts += 1
                if _OBS.enabled:
                    _OBS.counter("repro_pool_starts_total").inc()
                    _OBS.gauge("repro_pool_live_workers").inc(self.workers)
            return self._executor

    def _handle_broken(self) -> None:
        with self._lock:
            if self._executor is not None:
                self._executor.shutdown(wait=False, cancel_futures=True)
                self._executor = None
                if _OBS.enabled:
                    _OBS.gauge("repro_pool_live_workers").dec(self.workers)
            self.restarts += 1
            if _OBS.enabled:
                _OBS.counter("repro_pool_worker_restarts_total").inc()

    def shutdown(self) -> None:
        """Stop the workers; the next :meth:`map` lazily restarts them."""
        with self._lock:
            if self._executor is not None:
                self._executor.shutdown(wait=True, cancel_futures=True)
                self._executor = None
                if _OBS.enabled:
                    _OBS.gauge("repro_pool_live_workers").dec(self.workers)

    @property
    def live(self) -> bool:
        return self._executor is not None

    def info(self) -> dict:
        """Lifecycle counters: ``{"workers", "start_method", "live",
        "starts", "restarts", "tasks_dispatched"}``."""
        return {
            "workers": self.workers,
            "start_method": self.start_method,
            "live": self.live,
            "starts": self.starts,
            "restarts": self.restarts,
            "tasks_dispatched": self.tasks_dispatched,
        }

    # -- dispatch -----------------------------------------------------------
    def map(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        *,
        chunksize: "int | None" = None,
        path: str = "map",
    ) -> "list[R]":
        """Ordered parallel map through the persistent executor.

        ``path`` labels the dispatch in the pool metrics (``"map"``,
        ``"reduce_many"``, ``"ensemble"``, ...).  Worker exceptions propagate
        unchanged; only a *broken pool* (crashed worker) triggers the
        rebuild-and-retry cycle.
        """
        items = list(items)
        if not items:
            return []
        if chunksize is None:
            chunksize = max(1, len(items) // (self.workers * 4))
        for attempt in (0, 1):
            executor = self._ensure_executor()
            t0 = time.perf_counter()
            try:
                iterator = executor.map(fn, items, chunksize=chunksize)
                dispatch_s = time.perf_counter() - t0
                results = list(iterator)
            except BrokenProcessPool:
                self._handle_broken()
                if attempt:
                    raise
                continue
            roundtrip_s = time.perf_counter() - t0
            with self._lock:
                self.tasks_dispatched += len(items)
            if _OBS.enabled:
                _OBS.counter("repro_pool_tasks_total", path=path).inc(len(items))
                _OBS.histogram("repro_pool_dispatch_seconds").observe(dispatch_s)
                _OBS.histogram("repro_pool_roundtrip_seconds").observe(roundtrip_s)
                shard_hist = _OBS.histogram(
                    "repro_pool_shard_items", buckets=_SHARD_BUCKETS
                )
                for size in _shard_sizes(len(items), chunksize):
                    shard_hist.observe(size)
            return results
        raise AssertionError("unreachable")  # pragma: no cover


def _shard_sizes(n_items: int, chunksize: int) -> "list[int]":
    full, rem = divmod(n_items, max(1, chunksize))
    return [chunksize] * full + ([rem] if rem else [])


# -- the process-global pools --------------------------------------------------
#
# One persistent pool *per worker count*: benches and tests sweep workers in
# {1, 2, 4, ...} back to back, and resizing a single pool would pay a full
# worker spin-up on every alternation.  Distinct sizes in one process are few,
# so keeping each warm costs little and makes every repeat dispatch cheap.

_POOLS: "dict[int, WorkerPool]" = {}
_GLOBAL_LOCK = threading.Lock()


def get_pool(workers: "int | None" = None) -> WorkerPool:
    """The process-global pool for this worker count, created on demand.

    ``workers=None`` sizes the pool from :func:`default_workers`.  The
    returned pool persists for the life of the process (or until
    :func:`shutdown_pool`), so repeated dispatches skip executor startup.
    """
    want = max(1, int(workers)) if workers is not None else default_workers()
    with _GLOBAL_LOCK:
        pool = _POOLS.get(want)
        if pool is None:
            pool = WorkerPool(want)
            # Statically pool-reachable, dynamically parent-only: inside a
            # worker shard_plan() returns (1, 1) (see _IN_WORKER), so the
            # parallel branch that calls get_pool never runs there and
            # worker-side _POOLS stays empty.
            # repro: allow[FP010] -- parent-only in practice; workers serial
            _POOLS[want] = pool
        return pool


def shutdown_pool() -> None:
    """Stop every global pool's workers (registered as an ``atexit`` hook).

    Pool objects are dropped entirely, so a later :func:`get_pool` starts
    fresh — used by tests and long-lived servers that want to release cores.
    """
    with _GLOBAL_LOCK:
        for pool in _POOLS.values():
            pool.shutdown()
        _POOLS.clear()


atexit.register(shutdown_pool)


def pool_info() -> dict:
    """Aggregate lifecycle counters across the global pools.

    ``{"pools": [per-pool info], "live_workers", "starts", "restarts",
    "tasks_dispatched"}`` — all-zero/empty if no pool was ever created.
    """
    with _GLOBAL_LOCK:
        pools = [p.info() for p in _POOLS.values()]
    return {
        "pools": pools,
        "live_workers": sum(p["workers"] for p in pools if p["live"]),
        "starts": sum(p["starts"] for p in pools),
        "restarts": sum(p["restarts"] for p in pools),
        "tasks_dispatched": sum(p["tasks_dispatched"] for p in pools),
    }


# -- zero-copy shared-memory payloads ------------------------------------------


class SharedArray:
    """One ndarray in a shared-memory segment (parent-side owner).

    One copy in at construction; workers attach views with
    :func:`attach_shared`, so the bytes never transit the IPC pipe.  The
    owner must call :meth:`close` (or use the instance as a context manager)
    after the consuming futures complete — the segment is unlinked there and
    the bytes-in-flight gauge returns to zero.
    """

    def __init__(self, array: np.ndarray) -> None:
        array = np.ascontiguousarray(array)
        self.nbytes = int(array.nbytes)
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(1, self.nbytes)
        )
        if self.nbytes:
            view = np.ndarray(array.shape, dtype=array.dtype, buffer=self._shm.buf)
            view[...] = array
            del view
        #: picklable descriptor workers pass to :func:`attach_shared`
        self.handle: tuple = (self._shm.name, array.dtype.str, array.shape)
        if _OBS.enabled:
            _OBS.gauge("repro_pool_shm_bytes_in_flight").inc(self.nbytes)

    def close(self) -> None:
        if self._shm is None:
            return
        shm, self._shm = self._shm, None
        try:
            shm.close()
        except BufferError:  # pragma: no cover - defensive
            pass
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
        if _OBS.enabled:
            _OBS.gauge("repro_pool_shm_bytes_in_flight").dec(self.nbytes)

    def __enter__(self) -> "SharedArray":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without registering it for tracking.

    The parent owns the segment's lifetime; letting the worker's resource
    tracker register an attach-only handle produces spurious unlink attempts
    and "leaked shared_memory" warnings at worker exit.  Python 3.13 exposes
    ``track=False``; earlier versions need the registration briefly no-op'd.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:  # pragma: no cover - depends on Python version
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None  # type: ignore[assignment]
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original  # type: ignore[assignment]


class attach_shared:
    """Worker-side context manager: ndarray view of a :class:`SharedArray`.

    ``with attach_shared(handle) as arr:`` yields a zero-copy view; every
    reference into the view must be dropped before the block exits (results
    returned from workers are fresh scalars/arrays, never views).
    """

    def __init__(self, handle: tuple) -> None:
        self._name, self._dtype, self._shape = handle
        self._shm: "shared_memory.SharedMemory | None" = None
        self._view: "np.ndarray | None" = None

    def __enter__(self) -> np.ndarray:
        self._shm = _attach_segment(self._name)
        self._view = np.ndarray(
            self._shape, dtype=np.dtype(self._dtype), buffer=self._shm.buf
        )
        return self._view

    def __exit__(self, *exc) -> None:
        self._view = None
        if self._shm is not None:
            try:
                self._shm.close()
            except BufferError:  # pragma: no cover - lingering view reference
                import gc

                gc.collect()
                try:
                    self._shm.close()
                except BufferError:
                    pass
            self._shm = None


# -- serial/parallel cutover ---------------------------------------------------


def parallel_cutover(n_items: int, total_bytes: int, workers: int) -> bool:
    """Auto-mode decision: is this payload worth the IPC round trip?

    Calibrated against the measured fixed costs of a warm dispatch (~1 ms
    round trip plus one memcpy of the payload into shared memory): both the
    item floor and the byte floor must clear, and the payload must stay
    under the auto-materialisation cap.
    """
    if _IN_WORKER or workers <= 1 or n_items < 2:
        return False
    if total_bytes > _env_int("REPRO_PARALLEL_MAX_BYTES", MAX_AUTO_PARALLEL_BYTES):
        return False
    return (
        n_items >= _env_int("REPRO_PARALLEL_MIN_ITEMS", MIN_PARALLEL_ITEMS)
        and total_bytes >= _env_int("REPRO_PARALLEL_MIN_BYTES", MIN_PARALLEL_BYTES)
    )


def shard_plan(
    n_items: int, total_bytes: int, workers: "int | None"
) -> "tuple[int, int]":
    """Plan a dispatch: ``(pool_workers, n_shards)``.

    ``n_shards == 1`` means "run serial, don't touch the pool".  An explicit
    ``workers >= 2`` always parallelises (the caller asked); ``workers`` of
    ``None`` defers to :func:`default_workers` gated by
    :func:`parallel_cutover`, so small batches never pay IPC.
    """
    if n_items < 2:
        return (1, 1)
    if workers is None:
        w = default_workers()
        if not parallel_cutover(n_items, total_bytes, w):
            return (1, 1)
    else:
        w = int(workers)
        if w <= 1:
            return (1, 1)
        if _IN_WORKER:
            warnings.warn(
                "nested parallel dispatch inside a pool worker is disabled; "
                "running this batch serially",
                RuntimeWarning,
                stacklevel=2,
            )
            return (1, 1)
    return (w, min(w, n_items))
