"""Host-side parallelism for grid sweeps.

The (k, dr) / (n, dr) / (n, k) grid experiments of Sec. V.C evaluate hundreds
of cells, each of which sums a set over ~1000 permuted reduction trees.  Cells
are independent, so we fan them out over a process pool.  Workers receive
plain picklable payloads (integer seeds, parameter tuples) — never live
generators — so results are bitwise identical regardless of pool size.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["default_workers", "map_parallel"]


def default_workers() -> int:
    """Worker count: ``REPRO_WORKERS`` env var, else cpu_count − 1 (min 1)."""
    env = os.environ.get("REPRO_WORKERS")
    if env:
        return max(1, int(env))
    return max(1, (os.cpu_count() or 2) - 1)


def map_parallel(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    workers: int | None = None,
    chunksize: int | None = None,
) -> list[R]:
    """Map ``fn`` over ``items``, in-process when small or when ``workers<=1``.

    Falls back to a serial loop for short item lists where pool startup would
    dominate, and always preserves input order in the result list.

    When ``chunksize`` is ``None`` it is derived as
    ``max(1, len(items) // (workers * 4))``: large enough that many small
    grid cells amortise the per-item IPC round trip, small enough (~4 chunks
    of slack per worker) that uneven cell costs still balance.  Pass an
    explicit integer to override.
    """
    workers = default_workers() if workers is None else workers
    if workers <= 1 or len(items) <= 2:
        return [fn(item) for item in items]
    if chunksize is None:
        chunksize = max(1, len(items) // (workers * 4))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, items, chunksize=chunksize))
