"""Host-side parallelism for grid sweeps.

The (k, dr) / (n, dr) / (n, k) grid experiments of Sec. V.C evaluate hundreds
of cells, each of which sums a set over ~1000 permuted reduction trees.  Cells
are independent, so we fan them out over the process-global persistent pool
of :mod:`repro.util.pool` — repeated sweeps (the runner's ``run all`` path
executes four grid experiments back to back) reuse warm workers instead of
paying ``ProcessPoolExecutor`` startup per call.  Workers receive plain
picklable payloads (integer seeds, parameter tuples) — never live
generators — so results are bitwise identical regardless of pool size.

The adaptive-cutover knobs (``REPRO_PARALLEL_MIN_ITEMS`` / ``_MIN_BYTES`` /
``_MAX_BYTES``) are parsed once per process, off the hot dispatch path; a
sweep runner that edits them mid-process must call
:func:`reload_parallel_env` (re-exported here) for the change to take
effect.  ``REPRO_WORKERS`` stays per-call so per-sweep worker overrides
keep working unchanged.
"""

from __future__ import annotations

from typing import Callable, Iterable, TypeVar

from repro.util.pool import (
    default_workers,
    get_pool,
    in_worker,
    reload_parallel_env,
)

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["default_workers", "map_parallel", "reload_parallel_env"]


def map_parallel(
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    workers: int | None = None,
    chunksize: int | None = None,
) -> list[R]:
    """Map ``fn`` over ``items``, in-process when small or when ``workers<=1``.

    Accepts any iterable (materialised exactly once), falls back to a serial
    loop for short item lists where dispatch overhead would dominate, and
    always preserves input order in the result list.  Parallel runs go
    through the persistent :func:`repro.util.pool.get_pool` pool, so
    back-to-back sweeps stop paying per-call executor construction.

    When ``chunksize`` is ``None`` it is derived as
    ``max(1, len(items) // (workers * 4))``: large enough that many small
    grid cells amortise the per-item IPC round trip, small enough (~4 chunks
    of slack per worker) that uneven cell costs still balance.  Pass an
    explicit integer to override.
    """
    items = list(items)
    workers = default_workers() if workers is None else workers
    # nested dispatch inside a pool worker deadlocks the executors at exit
    if workers <= 1 or len(items) <= 2 or in_worker():
        return [fn(item) for item in items]
    if chunksize is None:
        chunksize = max(1, len(items) // (workers * 4))
    return get_pool(workers).map(fn, items, chunksize=chunksize, path="map")
