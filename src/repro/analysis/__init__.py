"""Static FP-safety & determinism analysis (the ``repro-lint`` subsystem).

The paper's central hazard — floating-point nonassociativity meeting
nondeterministic reduction order — is invisible to ordinary linters: code
that compares floats exactly, sums with ``np.sum`` where order matters, or
iterates a ``set`` into an accumulator parses, type-checks and often even
*tests* clean, then drifts at scale.  This package is a custom AST-based
pass that catches those hazards statically:

* :mod:`repro.analysis.base` — the rule framework: :class:`Rule`,
  :class:`Finding`, severity levels, the rule registry (mirroring
  :mod:`repro.summation.registry`) and the ``# repro: allow[RULE-ID]``
  inline-suppression syntax.
* :mod:`repro.analysis.rules` — the concrete rules: syntactic FP001–FP008
  plus catalogue metadata for the whole-program FP009–FP013.
* :mod:`repro.analysis.engine` — file walking, suppression and baseline
  filtering; ``lint_paths(..., flow=True)`` merges the whole-program pass.
* :mod:`repro.analysis.flow` — the interprocedural layer: call-graph
  construction, taint dataflow (rules FP009–FP013) and the serving-path
  determinism certificates.
* :mod:`repro.analysis.baseline` — the JSON baseline (accepted legacy
  findings) used by ``repro-lint --baseline``.
* :mod:`repro.analysis.sarif` — SARIF 2.1.0 output for CI code scanning.
* :mod:`repro.analysis.cli` — the ``repro-lint`` console entry point.
* :mod:`repro.analysis.determinism` — a *static* audit of operator
  commutativity × tree-nondeterminism combinations, consumed (together with
  :func:`repro.analysis.flow.serving_flow_verdict`) by
  :func:`repro.selection.certify.certify`.
"""

from repro.analysis.base import (
    FileContext,
    Finding,
    Rule,
    Severity,
    all_rules,
    get_rule,
    register,
)
from repro.analysis.baseline import Baseline
from repro.analysis.determinism import DeterminismReport, Verdict, audit_reduction
from repro.analysis.engine import LintResult, lint_file, lint_paths

__all__ = [
    "Severity",
    "Finding",
    "Rule",
    "FileContext",
    "register",
    "get_rule",
    "all_rules",
    "Baseline",
    "LintResult",
    "lint_file",
    "lint_paths",
    "DeterminismReport",
    "Verdict",
    "audit_reduction",
]
