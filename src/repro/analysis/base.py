"""Rule framework for the FP-safety & determinism linter.

A :class:`Rule` inspects one parsed file (a :class:`FileContext`) and yields
:class:`Finding` records.  Rules register themselves in a module-level
registry keyed by rule id — the same last-write-wins pattern as
:mod:`repro.summation.registry` — so the CLI, the self-lint gate and the
docs generator all iterate one authoritative catalogue.

Suppressions
------------
A finding is suppressed by an inline comment on the *flagged line* or on the
comment line immediately above it::

    if x == 0.0:  # repro: allow[FP001] -- exact-zero is the sentinel here
        ...

    # repro: allow[FP002,FP003] -- naive on purpose: this IS the baseline alg
    total = np.sum(values)

The optional ``-- reason`` tail is encouraged: it is the paper trail a
reviewer reads instead of re-deriving why the hazard is intentional.
``allow[*]`` suppresses every rule on the target line.
"""

from __future__ import annotations

import abc
import ast
import enum
import re
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import Dict, Iterable, Iterator, List, Set, Tuple

__all__ = [
    "Severity",
    "Finding",
    "FileContext",
    "Rule",
    "register",
    "get_rule",
    "all_rules",
    "parse_suppressions",
    "RULE_ID_PATTERN",
]

#: Rule ids look like ``FP001``; ``*`` is the wildcard in suppressions.
RULE_ID_PATTERN = re.compile(r"^FP\d{3}$")

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Z0-9*,\s]+)\]")


class Severity(enum.IntEnum):
    """Finding severity; the CLI can gate on a minimum level."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name.lower()


@dataclass(frozen=True)
class Finding:
    """One hazard at one source location."""

    rule_id: str
    severity: Severity
    path: str  # posix-style, as handed to the engine
    line: int  # 1-based
    col: int  # 0-based
    message: str
    snippet: str = ""  # stripped source line, used for the baseline fingerprint

    def fingerprint(self) -> str:
        """Line-number-independent identity used by the JSON baseline.

        Moving a line must not invalidate the baseline, so the fingerprint is
        (rule, file, normalised source text); duplicates on different lines
        are disambiguated by the baseline's per-fingerprint counts.
        """
        norm = " ".join(self.snippet.split())
        return f"{self.rule_id}|{PurePosixPath(self.path).as_posix()}|{norm}"

    def format_text(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col + 1}: "
            f"{self.rule_id} [{self.severity}] {self.message}"
        )

    def to_dict(self) -> dict:
        return {
            "rule": self.rule_id,
            "severity": str(self.severity),
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint(),
        }


@dataclass
class FileContext:
    """Everything a rule may inspect about one file (parsed once, shared)."""

    path: str  # posix-style display path
    source: str
    tree: ast.AST
    lines: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()

    @property
    def is_test(self) -> bool:
        """True for files under a ``tests/`` directory or named ``test_*.py``."""
        p = PurePosixPath(self.path)
        return "tests" in p.parts or p.name.startswith("test_")

    @property
    def module_parts(self) -> Tuple[str, ...]:
        return PurePosixPath(self.path).parts

    def in_package(self, *fragments: str) -> bool:
        """True when any ``fragment`` (e.g. ``"repro/fp"``) is a subpath."""
        posix = PurePosixPath(self.path).as_posix()
        return any(f"/{frag}/" in f"/{posix}" or posix.startswith(frag) for frag in fragments)

    def line_at(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def finding(
        self,
        rule: "Rule",
        node: ast.AST,
        message: str,
        *,
        severity: Severity | None = None,
    ) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule_id=rule.id,
            severity=rule.severity if severity is None else severity,
            path=self.path,
            line=line,
            col=col,
            message=message,
            snippet=self.line_at(line),
        )


class Rule(abc.ABC):
    """One static check with a stable id, severity and rationale.

    Subclasses set the class attributes and implement :meth:`check`; the
    docstring-adjacent ``rationale`` feeds ``repro-lint --list-rules`` and
    ``docs/LINT.md``.
    """

    #: stable id, e.g. ``"FP001"``
    id: str = "FP000"
    #: one-line human title
    title: str = "?"
    #: default severity of findings
    severity: Severity = Severity.WARNING
    #: why this hazard matters for reproducible reductions
    rationale: str = ""

    def applies_to(self, ctx: FileContext) -> bool:
        """Whether this rule runs on ``ctx`` at all (path-based gating)."""
        return True

    @abc.abstractmethod
    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one parsed file."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Rule {self.id}: {self.title}>"


# -- registry (mirrors repro.summation.registry) ------------------------------

_REGISTRY: Dict[str, Rule] = {}


def register(rule: Rule) -> Rule:
    """Add a rule instance to the registry (last write wins)."""
    if not RULE_ID_PATTERN.match(rule.id):
        raise ValueError(f"bad rule id {rule.id!r}; expected FPnnn")
    _REGISTRY[rule.id] = rule
    return rule


def get_rule(rule_id: str) -> Rule:
    """Look up a rule by id (``"FP001"`` ... ``"FP008"``)."""
    _ensure_loaded()
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown rule {rule_id!r}; known: {sorted(_REGISTRY)}"
        ) from None


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by id."""
    _ensure_loaded()
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def _ensure_loaded() -> None:
    # The concrete rules live in repro.analysis.rules, which registers on
    # import; importing lazily here avoids a base <-> rules import cycle.
    if not _REGISTRY:
        import repro.analysis.rules  # noqa: F401


# -- suppressions -------------------------------------------------------------

def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> set of suppressed rule ids (``"*"`` = all).

    A ``# repro: allow[...]`` comment suppresses its own line; a *standalone*
    comment line (nothing but the comment) also suppresses the next line, so
    formatters that push trailing comments onto their own line don't silently
    re-arm findings.
    """
    suppressed: Dict[int, Set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = _ALLOW_RE.search(text)
        if not m:
            continue
        ids = {tok.strip() for tok in m.group(1).split(",") if tok.strip()}
        for tok in ids:
            if tok != "*" and not RULE_ID_PATTERN.match(tok):
                # Malformed ids are ignored rather than fatal: a typo in a
                # suppression should surface the finding, not crash the lint.
                continue
        targets = [lineno]
        if text.lstrip().startswith("#"):
            targets.append(lineno + 1)
        for t in targets:
            suppressed.setdefault(t, set()).update(ids)
    return suppressed


def is_suppressed(finding: Finding, suppressions: Dict[int, Set[str]]) -> bool:
    ids = suppressions.get(finding.line)
    if not ids:
        return False
    return "*" in ids or finding.rule_id in ids


def iter_findings(
    rules: Iterable[Rule], ctx: FileContext
) -> Iterator[Finding]:
    """Run every applicable rule over one file context."""
    for rule in rules:
        if rule.applies_to(ctx):
            yield from rule.check(ctx)
