"""JSON baseline: accepted legacy findings for ``repro-lint --baseline``.

A baseline lets the linter land on a brownfield codebase at full strictness:
known findings are recorded once (``--write-baseline``), the gate fails only
on *new* findings, and the recorded debt burns down as entries are fixed.
Matching is by :meth:`Finding.fingerprint` — (rule, file, normalised source
text) — so reformatting or moving a line does not invalidate the baseline,
while editing the flagged expression does.  Identical lines in one file are
handled with per-fingerprint counts (a multiset), so adding a *second* copy
of a baselined hazard still fails.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from repro.analysis.base import Finding

__all__ = ["Baseline", "BASELINE_VERSION"]

BASELINE_VERSION = 1


@dataclass
class Baseline:
    """Multiset of accepted finding fingerprints."""

    counts: Counter = field(default_factory=Counter)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        return cls(Counter(f.fingerprint() for f in findings))

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        data = json.loads(Path(path).read_text())
        version = data.get("version")
        if version != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version {version!r} in {path}"
            )
        counts: Counter = Counter()
        for entry in data.get("entries", []):
            counts[entry["fingerprint"]] += int(entry.get("count", 1))
        return cls(counts)

    def save(self, path: str | Path) -> None:
        entries = [
            {"fingerprint": fp, "count": n}
            for fp, n in sorted(self.counts.items())
        ]
        payload = {"version": BASELINE_VERSION, "entries": entries}
        Path(path).write_text(json.dumps(payload, indent=2) + "\n")

    def partition(
        self, findings: Iterable[Finding]
    ) -> Tuple[List[Finding], List[Finding]]:
        """Split findings into (new, baselined), consuming multiset counts."""
        budget = Counter(self.counts)
        new: List[Finding] = []
        old: List[Finding] = []
        for f in findings:
            fp = f.fingerprint()
            if budget[fp] > 0:
                budget[fp] -= 1
                old.append(f)
            else:
                new.append(f)
        return new, old

    def __len__(self) -> int:
        return sum(self.counts.values())
