"""SARIF 2.1.0 output for ``repro-lint`` (``--format sarif``).

SARIF (Static Analysis Results Interchange Format) is what CI code-scanning
surfaces ingest; emitting it makes FP001–FP013 findings first-class review
annotations instead of buried job logs.  One run object, one rule entry per
registered rule (so even clean runs publish the catalogue), one result per
finding; parse errors (FP000) ride along at error level.

Only the stable core of the spec is produced — tool metadata, rule
metadata, results with a single physical location — which every consumer
(GitHub code scanning, ``sarif-tools``, VS Code viewers) understands.
"""

from __future__ import annotations

import json
from typing import List

from repro.analysis.base import Finding, Severity, all_rules
from repro.analysis.engine import LintResult

__all__ = ["to_sarif", "sarif_json"]

_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVEL = {
    Severity.INFO: "note",
    Severity.WARNING: "warning",
    Severity.ERROR: "error",
}


def _rule_entries() -> List[dict]:
    entries = [
        {
            "id": "FP000",
            "name": "ParseError",
            "shortDescription": {"text": "file failed to parse"},
            "fullDescription": {
                "text": "a file the linter cannot parse is a file it cannot vouch for"
            },
            "defaultConfiguration": {"level": "error"},
        }
    ]
    for rule in all_rules():
        entries.append(
            {
                "id": rule.id,
                "name": type(rule).__name__,
                "shortDescription": {"text": rule.title},
                "fullDescription": {"text": rule.rationale},
                "defaultConfiguration": {"level": _LEVEL[rule.severity]},
            }
        )
    return entries


def _result(finding: Finding) -> dict:
    return {
        "ruleId": finding.rule_id,
        "level": _LEVEL[finding.severity],
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
        "partialFingerprints": {"reproLintFingerprint/v1": finding.fingerprint()},
    }


def to_sarif(result: LintResult) -> dict:
    """Lower a :class:`LintResult` to a SARIF 2.1.0 log dict."""
    return {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://github.com/",
                        "rules": _rule_entries(),
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": [
                    _result(f) for f in result.parse_errors + result.findings
                ],
            }
        ],
    }


def sarif_json(result: LintResult) -> str:
    return json.dumps(to_sarif(result), indent=2)
