"""Small AST helpers shared by the FP001–FP008 rules.

Nothing here is rule-specific: expression identity, dotted-name resolution,
float-literal classification and parent/scope walking.  Rules stay readable
because the fiddly AST bookkeeping lives in one place.
"""

from __future__ import annotations

import ast
import re
from fractions import Fraction
from typing import Iterator, Optional

__all__ = [
    "dotted_name",
    "call_name",
    "expr_key",
    "is_float_literal",
    "literal_float_value",
    "is_exact_dyadic",
    "walk_functions",
    "iter_loops",
]

#: Denominator cap for "exactly representable on purpose" decimal literals.
#: 3.5 (=7/2), 0.25, 6.5 ... are dyadic with tiny denominators and compare
#: exactly; 0.1 or 15.95 are rounded decimals whose float value is not the
#: mathematical value written in the source.
_DYADIC_DENOM_CAP = 1 << 16


def dotted_name(node: ast.AST) -> Optional[str]:
    """``np.random.seed`` -> ``"np.random.seed"``; None for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> Optional[str]:
    """Dotted name of a call's callee, or None for computed callees."""
    return dotted_name(node.func)


_CTX_RE = re.compile(r"(?:Load|Store|Del)\(\)")


def expr_key(node: ast.AST) -> str:
    """Structural identity of an expression (ignores positions and Load/Store
    context, so an assignment *target* matches later *usages*).

    Used by FP004 to recognise ``(t - s)`` as "the same ``t`` and ``s``"
    seen in an earlier ``t = s + y`` assignment.
    """
    dump = ast.dump(node, annotate_fields=False, include_attributes=False)
    return _CTX_RE.sub("Ctx()", dump)


def is_float_literal(node: ast.AST) -> bool:
    """True for ``1.5`` and for ``-1.5`` (unary minus on a float constant)."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


def literal_float_value(node: ast.AST) -> Optional[float]:
    """The float value of a (possibly signed) float literal, else None."""
    sign = 1.0
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        if isinstance(node.op, ast.USub):
            sign = -1.0
        node = node.operand
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return sign * node.value
    return None


def is_exact_dyadic(value: float) -> bool:
    """True when ``value`` is a dyadic rational with a small denominator.

    Such literals (0.0, 0.5, 3.25, ...) denote exactly the double they parse
    to, so exact comparison against them can be intentional; literals like
    0.1 or 15.95 are decimal approximations and exact comparison against
    them is almost always a tolerance bug.
    """
    if value != value or value in (float("inf"), float("-inf")):
        return False
    frac = Fraction(value)
    return frac.denominator <= _DYADIC_DENOM_CAP


def walk_functions(tree: ast.AST) -> Iterator[ast.AST]:
    """Yield every function/async-function/lambda-free scope node plus the
    module itself, outermost first."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def iter_loops(tree: ast.AST) -> Iterator[ast.AST]:
    """Yield every ``for``/``while`` loop node."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
            yield node
