"""Module-level call-graph construction for the interprocedural flow pass.

The syntactic FP001–FP008 rules see one file at a time; the hazards PR 5
introduced (pool workers, shared-memory views, env-driven cutovers) only
exist *across* files: a nondeterministic source three calls away from
``AdaptiveReducer.reduce`` breaks the same guarantee as one inline.  This
module parses every ``.py`` file under the analysis roots once and lowers
them to a call graph the dataflow pass can walk to fixpoint.

Resolution is deliberately conservative-but-useful, in this order:

* plain names through function-local bindings, module symbols (including
  ``from x import y`` chains and package ``__init__`` re-exports), then
  builtins;
* ``self.method()`` / ``cls.method()`` through the enclosing class and its
  analyzed bases;
* ``self.attr.method()`` and ``obj.method()`` through *attribute/variable
  typing*: ``__init__`` parameter annotations (``comm: SimComm``),
  constructor assignments (``self.policy = AnalyticPolicy()``) and return
  annotations of analyzed functions (``get_pool(...) -> WorkerPool``);
* ``functools.partial(fn, ...)`` peels to ``fn``;
* the pool indirection table: ``map_parallel(fn, ...)``, ``pool.map(fn,
  ...)``, ``executor.submit(fn, ...)`` and ``ProcessPoolExecutor(...,
  initializer=fn)`` all add a ``pool`` edge to ``fn`` — the callee runs in a
  *worker process*, which is what the FP010–FP012 hazard rules key on.

Unresolvable callees (NumPy internals, computed attributes) simply add no
edge; sources are detected syntactically in every function, so an
unresolved call can shorten a reported chain but never hide a source.

Edges are one of three kinds: ``call`` (direct invocation), ``ref`` (a
function object escapes into the callee's closure — nested defs, lambdas,
``partial``, callbacks), and ``pool`` (invoked inside a worker process).
All three propagate taint; only ``pool`` changes the concurrency domain.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.astutils import dotted_name

__all__ = [
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "CallEdge",
    "CallGraph",
    "build_callgraph",
    "module_name_for",
]

#: callables that dispatch their first argument into a pool worker
_POOL_DISPATCH_NAMES = {"map_parallel"}
_POOL_DISPATCH_ATTRS = {"map", "submit"}
#: executor constructors whose ``initializer=`` runs in every worker
_EXECUTOR_CTORS = {"ProcessPoolExecutor", "ThreadPoolExecutor"}
#: container constructors whose module-level result is mutable shared state
_MUTABLE_CTORS = {
    "dict", "list", "set", "OrderedDict", "defaultdict", "Counter", "deque",
    "collections.OrderedDict", "collections.defaultdict",
    "collections.Counter", "collections.deque",
}
#: method names that mutate their receiver in place
MUTATOR_METHODS = {
    "append", "extend", "insert", "add", "update", "pop", "popitem",
    "remove", "discard", "clear", "setdefault", "move_to_end", "sort",
    "fill", "put",
}


@dataclass
class FunctionInfo:
    """One analyzed function, method, nested def or lambda."""

    qname: str  # "pkg.mod:Class.method" / "pkg.mod:fn" / "...<lambda>@12"
    module: str
    name: str  # qualified path inside the module
    node: ast.AST
    path: str  # display path of the defining file
    lineno: int
    class_qname: Optional[str] = None  # owning class for methods
    decorators: Tuple[str, ...] = ()
    is_lambda: bool = False

    @property
    def short(self) -> str:
        return f"{self.module}:{self.name}"


@dataclass
class ClassInfo:
    """One analyzed class: methods, bases, and inferred attribute types."""

    qname: str  # "pkg.mod:Class"
    module: str
    name: str
    bases: Tuple[str, ...] = ()  # raw dotted names, resolved lazily
    methods: Dict[str, str] = field(default_factory=dict)  # name -> fn qname
    attr_types: Dict[str, str] = field(default_factory=dict)  # attr -> class qname
    lock_attrs: Set[str] = field(default_factory=set)  # threading.Lock attrs


@dataclass
class ModuleInfo:
    """One parsed module plus its symbol table."""

    name: str
    path: str
    source: str
    tree: ast.Module
    #: name -> ("func"|"class"|"module"|"instance"|"external", target)
    symbols: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    #: module-level names bound to mutable containers
    mutable_globals: Set[str] = field(default_factory=set)


@dataclass(frozen=True)
class CallEdge:
    """One resolved edge; ``kind`` is ``"call"``, ``"ref"`` or ``"pool"``."""

    caller: str
    callee: str
    kind: str
    lineno: int


def module_name_for(path: Path) -> str:
    """Dotted module name derived by walking up through ``__init__.py``."""
    path = Path(path)
    parts: List[str] = []
    d = path.parent
    while (d / "__init__.py").exists() and d.name:
        parts.insert(0, d.name)
        d = d.parent
    if path.stem != "__init__":
        parts.append(path.stem)
    return ".".join(parts) if parts else path.stem


class CallGraph:
    """The whole-program graph the dataflow pass walks."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.edges: List[CallEdge] = []
        #: functions registered to run in workers via ``initializer=`` or
        #: :func:`repro.util.pool.register_worker_state` factories
        self.registered_worker_init: Set[str] = set()
        #: callee qnames of every ``pool``-kind edge
        self.pool_targets: Set[str] = set()
        self._out: Dict[str, List[CallEdge]] = {}

    # -- graph accessors ------------------------------------------------------
    def add_edge(self, edge: CallEdge) -> None:
        self.edges.append(edge)
        self._out.setdefault(edge.caller, []).append(edge)
        if edge.kind == "pool":
            self.pool_targets.add(edge.callee)

    def out_edges(self, qname: str) -> List[CallEdge]:
        return self._out.get(qname, [])

    def resolve_method(self, class_qname: str, method: str) -> Optional[str]:
        """Look ``method`` up on a class, then on its analyzed bases."""
        seen: Set[str] = set()
        stack = [class_qname]
        while stack:
            cq = stack.pop(0)
            if cq in seen:
                continue
            seen.add(cq)
            info = self.classes.get(cq)
            if info is None:
                continue
            if method in info.methods:
                return info.methods[method]
            mod = self.modules.get(info.module)
            for base in info.bases:
                target = _resolve_symbol_path(self, mod, base) if mod else None
                if target and target[0] == "class":
                    stack.append(target[1])
        return None

    @property
    def n_edges(self) -> int:
        return len(self.edges)


def _display(path: Path) -> str:
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


# -- pass 1: modules, defs, imports --------------------------------------------


def _collect_module(graph: CallGraph, path: Path) -> Optional[ModuleInfo]:
    try:
        source = path.read_text()
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError):
        return None  # the syntactic engine reports parse errors (FP000)
    name = module_name_for(path)
    mod = ModuleInfo(name=name, path=_display(path), source=source, tree=tree)
    graph.modules[name] = mod
    _collect_defs(graph, mod, tree, prefix="", class_qname=None)
    _collect_imports(mod, tree)
    _collect_module_globals(graph, mod, tree)
    return mod


def _collect_defs(
    graph: CallGraph,
    mod: ModuleInfo,
    node: ast.AST,
    prefix: str,
    class_qname: Optional[str],
) -> None:
    """Register every function/class defined (at any depth) in ``node``."""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qual = f"{prefix}{child.name}"
            fq = f"{mod.name}:{qual}"
            info = FunctionInfo(
                qname=fq,
                module=mod.name,
                name=qual,
                node=child,
                path=mod.path,
                lineno=child.lineno,
                class_qname=class_qname,
                decorators=tuple(
                    d for d in (dotted_name(dec) for dec in child.decorator_list) if d
                ),
            )
            graph.functions[fq] = info
            if class_qname is not None:
                graph.classes[class_qname].methods[child.name] = fq
            elif not prefix:
                mod.symbols.setdefault(child.name, ("func", fq))
            _collect_defs(graph, mod, child, prefix=f"{qual}.", class_qname=None)
        elif isinstance(child, ast.ClassDef):
            qual = f"{prefix}{child.name}"
            cq = f"{mod.name}:{qual}"
            graph.classes[cq] = ClassInfo(
                qname=cq,
                module=mod.name,
                name=qual,
                bases=tuple(
                    b for b in (dotted_name(base) for base in child.bases) if b
                ),
            )
            if not prefix:
                mod.symbols.setdefault(child.name, ("class", cq))
            _collect_defs(graph, mod, child, prefix=f"{qual}.", class_qname=cq)
        else:
            _collect_defs(graph, mod, child, prefix=prefix, class_qname=class_qname)


def _collect_imports(mod: ModuleInfo, tree: ast.Module) -> None:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                mod.symbols[bound] = ("module", target)
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                pkg_parts = mod.name.split(".")
                # inside pkg/__init__.py the module name IS the package
                if not mod.path.endswith("__init__.py"):
                    pkg_parts = pkg_parts[:-1]
                anchor = pkg_parts[: len(pkg_parts) - (node.level - 1)]
                base = ".".join(anchor + ([base] if base else []))
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                mod.symbols[bound] = ("import_from", f"{base}.{alias.name}")


def _collect_module_globals(graph: CallGraph, mod: ModuleInfo, tree: ast.Module) -> None:
    """Module-level bindings: mutable containers, instances, aliases."""
    for node in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            continue
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if _is_mutable_container(value):
                mod.mutable_globals.add(target.id)
            elif isinstance(value, ast.Call):
                mod.symbols.setdefault(target.id, ("callresult", _call_repr(value)))
            elif isinstance(value, ast.Lambda):
                mod.symbols.setdefault(
                    target.id, ("func", f"{mod.name}:<lambda>@{value.lineno}")
                )
            elif isinstance(value, ast.Name):
                existing = mod.symbols.get(value.id)
                if existing:
                    mod.symbols.setdefault(target.id, existing)


def _is_mutable_container(node: ast.expr) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return name in _MUTABLE_CTORS
    return False


def _call_repr(node: ast.Call) -> str:
    return dotted_name(node.func) or "<computed>"


# -- pass 2: symbol-chain resolution -------------------------------------------


def _resolve_import_chains(graph: CallGraph) -> None:
    """Resolve ``from x import y`` through analyzed modules (re-exports).

    Package ``__init__`` files that re-export (``from pkg.mod import fn``)
    chain; a few iterations reach a fixed point for any sane import depth.
    """
    for _ in range(6):
        changed = False
        for mod in graph.modules.values():
            for name, (kind, target) in list(mod.symbols.items()):
                if kind != "import_from":
                    continue
                resolved = _resolve_dotted(graph, target)
                if resolved is not None and resolved[0] != "import_from":
                    mod.symbols[name] = resolved
                    changed = True
        if not changed:
            break
    # anything still unresolved is external
    for mod in graph.modules.values():
        for name, (kind, target) in list(mod.symbols.items()):
            if kind == "import_from":
                mod.symbols[name] = ("external", target)


def _resolve_dotted(graph: CallGraph, dotted: str) -> Optional[Tuple[str, str]]:
    """Resolve ``pkg.mod.sym`` against the analyzed module set."""
    if dotted in graph.modules:
        return ("module", dotted)
    if "." not in dotted:
        return None
    parent, leaf = dotted.rsplit(".", 1)
    mod = graph.modules.get(parent)
    if mod is not None:
        sym = mod.symbols.get(leaf)
        if sym is not None:
            return sym
        fq = f"{parent}:{leaf}"
        if fq in graph.functions:
            return ("func", fq)
        if fq in graph.classes:
            return ("class", fq)
        return None
    # maybe pkg.mod.Class.method style — resolve the class first
    resolved = _resolve_dotted(graph, parent)
    if resolved and resolved[0] == "class":
        method = graph.classes[resolved[1]].methods.get(leaf)
        if method:
            return ("func", method)
    return None


def _resolve_symbol_path(
    graph: CallGraph, mod: Optional[ModuleInfo], dotted: str
) -> Optional[Tuple[str, str]]:
    """Resolve a dotted name as seen from inside ``mod``."""
    if mod is None:
        return None
    parts = dotted.split(".")
    sym = mod.symbols.get(parts[0])
    if sym is None:
        # fall back: a fully-qualified analyzed path used without import
        return _resolve_dotted(graph, dotted)
    kind, target = sym
    for attr in parts[1:]:
        if kind == "module":
            nxt = _resolve_dotted(graph, f"{target}.{attr}")
            if nxt is None:
                return ("external", f"{target}.{attr}")
            kind, target = nxt
        elif kind == "class":
            method = graph.resolve_method(target, attr)
            if method is None:
                return None
            kind, target = "func", method
        elif kind == "instance":
            method = graph.resolve_method(target, attr)
            if method is None:
                return None
            kind, target = "func", method
        elif kind == "external":
            target = f"{target}.{attr}"
        else:
            return None
    return (kind, target)


# -- pass 3: class attribute typing --------------------------------------------

_ANNOT_SPLIT = ("Optional[", "]", '"', "'", "|", ",", " ")


def _annotation_class(graph: CallGraph, mod: ModuleInfo, annotation) -> Optional[str]:
    """Best-effort: the analyzed class an annotation refers to, if any."""
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        text = annotation.value
    else:
        name = dotted_name(annotation)
        if name is None:
            if isinstance(annotation, ast.Subscript):
                return _annotation_class(graph, mod, annotation.value)
            return None
        text = name
    for chunk in _split_annotation(text):
        resolved = _resolve_symbol_path(graph, mod, chunk)
        if resolved and resolved[0] == "class":
            return resolved[1]
    return None


def _split_annotation(text: str) -> List[str]:
    for tok in _ANNOT_SPLIT:
        text = text.replace(tok, " " if tok in ('"', "'", "|", ",", " ") else " ")
    return [t for t in text.split() if t and t not in {"None", "Optional"}]


def _infer_attr_types(graph: CallGraph) -> None:
    for cls in graph.classes.values():
        mod = graph.modules.get(cls.module)
        init_fq = cls.methods.get("__init__")
        if mod is None or init_fq is None:
            continue
        init = graph.functions[init_fq].node
        assert isinstance(init, (ast.FunctionDef, ast.AsyncFunctionDef))
        param_types: Dict[str, str] = {}
        for arg in list(init.args.args) + list(init.args.kwonlyargs):
            cq = _annotation_class(graph, mod, arg.annotation)
            if cq:
                param_types[arg.arg] = cq
        for node in ast.walk(init):
            target = None
            value = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value = node.target, node.value
            if (
                not isinstance(target, ast.Attribute)
                or not isinstance(target.value, ast.Name)
                or target.value.id != "self"
            ):
                continue
            attr = target.attr
            if isinstance(node, ast.AnnAssign):
                cq = _annotation_class(graph, mod, node.annotation)
                if cq:
                    cls.attr_types[attr] = cq
            if isinstance(value, ast.Name) and value.id in param_types:
                cls.attr_types[attr] = param_types[value.id]
            elif isinstance(value, ast.Call):
                name = dotted_name(value.func)
                if name in ("threading.Lock", "threading.RLock", "Lock", "RLock"):
                    cls.lock_attrs.add(attr)
                    continue
                resolved = _resolve_symbol_path(graph, mod, name) if name else None
                if resolved and resolved[0] == "class":
                    cls.attr_types[attr] = resolved[1]


# -- pass 4: call/ref/pool edges -----------------------------------------------


class _FunctionScanner:
    """Extract edges from one function body (nested defs excluded)."""

    def __init__(self, graph: CallGraph, mod: ModuleInfo, fn: FunctionInfo) -> None:
        self.graph = graph
        self.mod = mod
        self.fn = fn
        self.env: Dict[str, Tuple[str, str]] = {}  # local name -> symbol
        self._lambda_by_node: Dict[ast.AST, str] = {}

    # every statement/expression directly owned by this function
    def own_nodes(self):
        return iter_own_nodes(self.fn.node)

    def scan(self) -> None:
        node = self.fn.node
        # nested defs and lambdas: ref edges (closures escape into callers)
        for child in iter_own_children_defs(node):
            if isinstance(child, ast.Lambda):
                fq = self._lambda_qname(child)
                self._lambda_by_node[child] = fq
                self.graph.add_edge(
                    CallEdge(self.fn.qname, fq, "ref", child.lineno)
                )
            else:
                fq = f"{self.mod.name}:{self.fn.name}.{child.name}"
                if fq in self.graph.functions:
                    self.env[child.name] = ("func", fq)
                    self.graph.add_edge(
                        CallEdge(self.fn.qname, fq, "ref", child.lineno)
                    )
        self._prepass_locals()
        for sub in self.own_nodes():
            if isinstance(sub, ast.Call):
                self._scan_call(sub)

    def _lambda_qname(self, node: ast.Lambda) -> str:
        fq = f"{self.mod.name}:{self.fn.name}.<lambda>@{node.lineno}"
        if fq not in self.graph.functions:
            self.graph.functions[fq] = FunctionInfo(
                qname=fq,
                module=self.mod.name,
                name=f"{self.fn.name}.<lambda>@{node.lineno}",
                node=node,
                path=self.mod.path,
                lineno=node.lineno,
                is_lambda=True,
            )
        return fq

    def _prepass_locals(self) -> None:
        """Bind simple local assignments: lambdas, aliases, typed instances."""
        for sub in self.own_nodes():
            if not isinstance(sub, ast.Assign) or len(sub.targets) != 1:
                continue
            target = sub.targets[0]
            if not isinstance(target, ast.Name):
                continue
            value = sub.value
            if isinstance(value, ast.Lambda):
                self.env[target.id] = ("func", self._lambda_qname(value))
            elif isinstance(value, ast.Name):
                sym = self._lookup(value.id)
                if sym:
                    self.env[target.id] = sym
            elif isinstance(value, ast.Call):
                resolved = self._resolve_callee(value)
                if resolved is None:
                    continue
                kind, fq = resolved
                if kind == "class":
                    self.env[target.id] = ("instance", fq)
                elif kind == "func":
                    ret = self._return_class(fq)
                    if ret:
                        self.env[target.id] = ("instance", ret)

    def _return_class(self, fn_fq: str) -> Optional[str]:
        info = self.graph.functions.get(fn_fq)
        if info is None or not isinstance(
            info.node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            return None
        owner = self.graph.modules.get(info.module)
        if owner is None:
            return None
        return _annotation_class(self.graph, owner, info.node.returns)

    def _lookup(self, name: str) -> Optional[Tuple[str, str]]:
        sym = self.env.get(name)
        if sym is not None:
            return sym
        return self.mod.symbols.get(name)

    def _resolve_callee(self, call: ast.Call) -> Optional[Tuple[str, str]]:
        func = call.func
        if isinstance(func, ast.Lambda):
            return ("func", self._lambda_qname(func))
        name = dotted_name(func)
        if name is None:
            return None
        parts = name.split(".")
        head = parts[0]
        if head in ("self", "cls") and self.fn.class_qname is not None:
            return self._resolve_self_chain(parts[1:])
        sym = self._lookup(head)
        if sym is None:
            return _resolve_dotted(self.graph, name)
        kind, target = sym
        if len(parts) == 1:
            return sym
        return self._walk_chain(kind, target, parts[1:])

    def _resolve_self_chain(self, attrs: Sequence[str]) -> Optional[Tuple[str, str]]:
        if not attrs or self.fn.class_qname is None:
            return None
        cls = self.graph.classes.get(self.fn.class_qname)
        if cls is None:
            return None
        method = self.graph.resolve_method(cls.qname, attrs[0])
        if method is not None and len(attrs) == 1:
            return ("func", method)
        attr_cls = cls.attr_types.get(attrs[0])
        if attr_cls is not None and len(attrs) >= 2:
            return self._walk_chain("instance", attr_cls, attrs[1:])
        return None

    def _walk_chain(
        self, kind: str, target: str, attrs: Sequence[str]
    ) -> Optional[Tuple[str, str]]:
        for attr in attrs:
            if kind == "module":
                nxt = _resolve_dotted(self.graph, f"{target}.{attr}")
                if nxt is None:
                    return ("external", f"{target}.{attr}")
                kind, target = nxt
            elif kind in ("class", "instance"):
                method = self.graph.resolve_method(target, attr)
                if method is None:
                    cls = self.graph.classes.get(target)
                    attr_cls = cls.attr_types.get(attr) if cls else None
                    if attr_cls is None:
                        return None
                    kind, target = "instance", attr_cls
                else:
                    kind, target = "func", method
            elif kind == "external":
                target = f"{target}.{attr}"
            elif kind == "func":
                return None
            else:
                return None
        return (kind, target)

    def _arg_function(self, node: ast.expr) -> Optional[str]:
        """Resolve a call argument to a function qname (peeling partial)."""
        if isinstance(node, ast.Lambda):
            return self._lambda_qname(node)
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name in ("functools.partial", "partial") and node.args:
                return self._arg_function(node.args[0])
            return None
        name = dotted_name(node)
        if name is None:
            return None
        resolved = (
            self._resolve_self_chain(name.split(".")[1:])
            if name.split(".")[0] in ("self", "cls")
            else None
        )
        if resolved is None:
            sym = self._lookup(name.split(".")[0])
            if sym is None:
                return None
            parts = name.split(".")
            resolved = sym if len(parts) == 1 else self._walk_chain(sym[0], sym[1], parts[1:])
        if resolved and resolved[0] == "func":
            return resolved[1]
        return None

    def _scan_call(self, call: ast.Call) -> None:
        lineno = call.lineno
        callee_name = dotted_name(call.func) or ""
        resolved = self._resolve_callee(call)
        if resolved is not None and resolved[0] == "func":
            self.graph.add_edge(CallEdge(self.fn.qname, resolved[1], "call", lineno))
        elif resolved is not None and resolved[0] == "class":
            init = self.graph.resolve_method(resolved[1], "__init__")
            if init:
                self.graph.add_edge(CallEdge(self.fn.qname, init, "call", lineno))

        # functools.partial / callbacks: the wrapped function escapes
        if callee_name in ("functools.partial", "partial", "atexit.register"):
            for arg in call.args[:1]:
                fq = self._arg_function(arg)
                if fq:
                    self.graph.add_edge(CallEdge(self.fn.qname, fq, "ref", lineno))
            return

        # pool indirection: first argument runs in a worker process
        leaf = callee_name.split(".")[-1]
        is_pool_call = leaf in _POOL_DISPATCH_NAMES or (
            isinstance(call.func, ast.Attribute) and call.func.attr in _POOL_DISPATCH_ATTRS
        )
        if is_pool_call and call.args:
            fq = self._arg_function(call.args[0])
            if fq:
                self.graph.add_edge(CallEdge(self.fn.qname, fq, "pool", lineno))
        if leaf in _EXECUTOR_CTORS:
            for kw in call.keywords:
                if kw.arg == "initializer":
                    fq = self._arg_function(kw.value)
                    if fq:
                        self.graph.add_edge(
                            CallEdge(self.fn.qname, fq, "pool", lineno)
                        )
                        self.graph.registered_worker_init.add(fq)
        if leaf == "register_worker_state" and len(call.args) >= 2:
            fq = self._arg_function(call.args[1])
            if fq:
                self.graph.registered_worker_init.add(fq)
                self.graph.add_edge(CallEdge(self.fn.qname, fq, "pool", lineno))


def _scan_module_registrations(graph: CallGraph, mod: ModuleInfo) -> None:
    """Record ``register_worker_state(name, factory)`` calls at module level.

    The protocol (:func:`repro.util.pool.register_worker_state`) says to
    register at *import time*, which is module-level code no function scanner
    owns — so the registration set is collected here, resolving the factory
    through the module symbol table (peeling ``functools.partial``).
    """
    for node in iter_own_nodes(mod.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func) or ""
        if name.split(".")[-1] != "register_worker_state" or len(node.args) < 2:
            continue
        factory = node.args[1]
        while (
            isinstance(factory, ast.Call)
            and (dotted_name(factory.func) or "").split(".")[-1] == "partial"
            and factory.args
        ):
            factory = factory.args[0]
        target = dotted_name(factory)
        if target is None:
            continue
        resolved = _resolve_symbol_path(graph, mod, target)
        if resolved and resolved[0] == "func":
            graph.registered_worker_init.add(resolved[1])
            graph.pool_targets.add(resolved[1])


def iter_own_children_defs(node: ast.AST):
    """Nested function/lambda nodes directly owned by ``node`` (not deeper)."""
    for sub in iter_own_nodes(node, include_defs=True):
        if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            yield sub


def iter_own_nodes(node: ast.AST, include_defs: bool = False):
    """Walk a function body without descending into nested function bodies."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        sub = stack.pop()
        if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            if include_defs:
                yield sub
            continue
        yield sub
        stack.extend(ast.iter_child_nodes(sub))


def build_callgraph(files: Sequence[Path]) -> CallGraph:
    """Parse ``files`` and lower them to a resolved call graph."""
    graph = CallGraph()
    for path in sorted(Path(f) for f in files):
        _collect_module(graph, path)
    _resolve_import_chains(graph)
    _infer_attr_types(graph)
    for name in sorted(graph.modules):
        _scan_module_registrations(graph, graph.modules[name])
    for fq in sorted(graph.functions):
        fn = graph.functions[fq]
        mod = graph.modules.get(fn.module)
        if mod is not None:
            _FunctionScanner(graph, mod, fn).scan()
    return graph
