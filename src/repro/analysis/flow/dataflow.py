"""Taint-style dataflow over the call graph: sources, sinks, findings.

The propagation model is reachability with witnesses.  Fact extraction
(:mod:`repro.analysis.flow.facts`) anchors every nondeterminism source at
its defining function; this module closes those facts over call, ref and
pool edges until fixpoint and materialises them as engine-compatible
:class:`~repro.analysis.base.Finding` records:

FP009
    A reduction-bearing function whose call closure contains an unguarded
    nondeterminism source.  The finding is anchored at the *source* site —
    one ``# repro: allow[FP009] -- reason`` on the source line retires every
    chain through it, which is the right granularity: the hazard is the
    source, the chains are evidence.  Per source the shortest witness chain
    is kept.
FP010
    Module-level mutable container state accessed inside a pool-worker-
    reachable function without worker-state registration.  Containers whose
    only writers live in the closure of registered initializers (or
    ``register_worker_state`` factories) are sanctioned — that is exactly
    the protocol :func:`repro.util.pool.register_worker_state` exists for.
FP011/FP012/FP013
    Local concurrency hazards from :mod:`repro.analysis.flow.hazards`,
    filtered through the same suppression machinery.

Sources and sinks inside test files are ignored: a nondeterministic test
fails loudly on its own, and FP007/FP008 already police test hygiene.  Test
*code* still participates in the graph, so a test driving a serving-path
chain neither adds noise nor hides anything.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.base import Finding, Severity, is_suppressed, parse_suppressions
from repro.analysis.flow.callgraph import CallGraph, build_callgraph
from repro.analysis.flow.facts import FunctionFacts, SourceFact, extract_facts
from repro.analysis.flow.hazards import Hazard, extract_hazards
from repro.obs import get_registry

__all__ = ["FlowAnalysis", "analyze_files", "FLOW_RULE_IDS"]

_OBS = get_registry()

FLOW_RULE_IDS = ("FP009", "FP010", "FP011", "FP012", "FP013")

_SEVERITY = {
    "FP009": Severity.ERROR,
    "FP010": Severity.WARNING,
    "FP011": Severity.ERROR,
    "FP012": Severity.ERROR,
    "FP013": Severity.WARNING,
}


def _is_test_path(path: str) -> bool:
    p = PurePosixPath(path)
    return "tests" in p.parts or p.name.startswith("test_")


@dataclass
class FlowAnalysis:
    """Everything the flow pass learned about one file set."""

    graph: CallGraph
    facts: Dict[str, FunctionFacts]
    hazards: List[Hazard]
    findings: List[Finding] = field(default_factory=list)
    n_suppressed: int = 0
    elapsed_s: float = 0.0
    #: (rule_id, path, lineno) triples retired by inline suppressions —
    #: certificates count these as *guarded*, not invisible
    guarded_sites: Set[Tuple[str, str, int]] = field(default_factory=set)
    #: FP010 worker-state records: (owning fn qname, path, lineno, guarded,
    #: message) — kept separately so certificates can list guarded ones too
    fp010_entries: List[Tuple[str, str, int, bool, str]] = field(default_factory=list)

    # -- graph walking shared with certificates ------------------------------
    def adjacency(self) -> Dict[str, List[Tuple[str, str]]]:
        adj: Dict[str, List[Tuple[str, str]]] = {}
        for edge in self.graph.edges:
            adj.setdefault(edge.caller, []).append((edge.callee, edge.kind))
        for callees in adj.values():
            callees.sort()
        return adj

    def closure(self, start: str) -> Dict[str, Optional[str]]:
        """Forward-reachable functions from ``start`` with BFS parents."""
        return _bfs(self.adjacency(), [start])

    def is_guarded(self, rule_id: str, path: str, lineno: int) -> bool:
        return (rule_id, path, lineno) in self.guarded_sites


def _bfs(
    adj: Dict[str, List[Tuple[str, str]]], starts: Iterable[str]
) -> Dict[str, Optional[str]]:
    """Multi-source BFS; returns ``node -> parent`` (None for roots)."""
    parents: Dict[str, Optional[str]] = {}
    queue: deque = deque()
    for s in sorted(set(starts)):
        if s not in parents:
            parents[s] = None
            queue.append(s)
    while queue:
        node = queue.popleft()
        for callee, _kind in adj.get(node, []):
            if callee not in parents:
                parents[callee] = node
                queue.append(callee)
    return parents


def _chain(parents: Dict[str, Optional[str]], node: str) -> List[str]:
    """Path from the BFS root to ``node`` (inclusive)."""
    path: List[str] = []
    cur: Optional[str] = node
    while cur is not None:
        path.append(cur)
        cur = parents.get(cur)
    path.reverse()
    return path


def _reverse_adjacency(
    adj: Dict[str, List[Tuple[str, str]]]
) -> Dict[str, List[Tuple[str, str]]]:
    rev: Dict[str, List[Tuple[str, str]]] = {}
    for caller, callees in adj.items():
        for callee, kind in callees:
            rev.setdefault(callee, []).append((caller, kind))
    for callers in rev.values():
        callers.sort()
    return rev


def _short(graph: CallGraph, qname: str) -> str:
    fn = graph.functions.get(qname)
    return fn.short if fn is not None else qname


def _format_chain(graph: CallGraph, chain: Sequence[str]) -> str:
    return " -> ".join(_short(graph, q) for q in chain)


class _FlowPass:
    def __init__(self, graph: CallGraph, facts: Dict[str, FunctionFacts]) -> None:
        self.graph = graph
        self.facts = facts
        self.findings: List[Finding] = []
        self.n_suppressed = 0
        self.guarded_sites: Set[Tuple[str, str, int]] = set()
        self.fp010_entries: List[Tuple[str, str, int, bool, str]] = []
        self._suppressions = {
            mod.path: parse_suppressions(mod.source) for mod in graph.modules.values()
        }
        self._adj: Dict[str, List[Tuple[str, str]]] = {}
        for edge in graph.edges:
            self._adj.setdefault(edge.caller, []).append((edge.callee, edge.kind))
        for callees in self._adj.values():
            callees.sort()
        self._lines = {
            mod.path: mod.source.splitlines() for mod in graph.modules.values()
        }

    def _snippet(self, path: str, lineno: int) -> str:
        lines = self._lines.get(path, [])
        if 1 <= lineno <= len(lines):
            return lines[lineno - 1].strip()
        return ""

    def _emit(
        self, rule_id: str, path: str, lineno: int, col: int, message: str
    ) -> None:
        finding = Finding(
            rule_id=rule_id,
            severity=_SEVERITY[rule_id],
            path=path,
            line=lineno,
            col=col,
            message=message,
            snippet=self._snippet(path, lineno),
        )
        if is_suppressed(finding, self._suppressions.get(path, {})):
            self.n_suppressed += 1
            self.guarded_sites.add((rule_id, path, lineno))
        else:
            self.findings.append(finding)

    def _fact_suppressed(self, rule_id: str, path: str, lineno: int) -> bool:
        probe = Finding(
            rule_id=rule_id,
            severity=_SEVERITY[rule_id],
            path=path,
            line=lineno,
            col=0,
            message="",
        )
        return is_suppressed(probe, self._suppressions.get(path, {}))

    # -- FP009 ---------------------------------------------------------------
    def run_fp009(self) -> None:
        unguarded: List[SourceFact] = []
        for fq in sorted(self.facts):
            for fact in self.facts[fq].sources:
                if _is_test_path(fact.path):
                    continue
                if self._fact_suppressed("FP009", fact.path, fact.lineno):
                    self.n_suppressed += 1
                    self.guarded_sites.add(("FP009", fact.path, fact.lineno))
                    continue
                unguarded.append(fact)
        if not unguarded:
            return

        source_fns = {fact.qname for fact in unguarded}
        rev = _reverse_adjacency(self._adj)
        can_reach_source = set(_bfs(rev, source_fns))

        sink_fns = sorted(
            fq
            for fq, ff in self.facts.items()
            if ff.sinks and not _is_test_path(self.graph.functions[fq].path)
        )
        # per source fact: the shortest witness (chain, sink description)
        best: Dict[SourceFact, Tuple[List[str], str]] = {}
        for sink_fq in sink_fns:
            if sink_fq not in can_reach_source:
                continue
            parents = _bfs(self._adj, [sink_fq])
            sink_detail = self.facts[sink_fq].sinks[0].detail
            for fact in unguarded:
                if fact.qname not in parents:
                    continue
                chain = _chain(parents, fact.qname)
                prev = best.get(fact)
                if prev is None or len(chain) < len(prev[0]):
                    best[fact] = (chain, sink_detail)

        for fact in sorted(best, key=lambda f: (f.path, f.lineno, f.col, f.kind)):
            chain, sink_detail = best[fact]
            self._emit(
                "FP009",
                fact.path,
                fact.lineno,
                fact.col,
                f"{fact.kind} source '{fact.detail}' is reachable from the "
                f"reduction path of '{_short(self.graph, chain[0])}' "
                f"(sink: {sink_detail}); call chain: "
                f"{_format_chain(self.graph, chain)}",
            )

    # -- FP010 ---------------------------------------------------------------
    def run_fp010(self) -> None:
        writers: Dict[Tuple[str, str], Set[str]] = {}
        for fq, ff in self.facts.items():
            for acc in ff.global_accesses:
                if acc.is_write:
                    writers.setdefault((acc.module, acc.name), set()).add(fq)
        if not writers:
            return

        registered_closure = set(
            _bfs(self._adj, self.graph.registered_worker_init)
        )
        worker_parents = _bfs(self._adj, self.graph.pool_targets)

        seen: Set[Tuple[str, str, str]] = set()
        for fq in sorted(worker_parents):
            if fq in registered_closure:
                continue
            for acc in self.facts.get(fq, FunctionFacts()).global_accesses:
                key = (acc.module, acc.name)
                writer_set = writers.get(key)
                if not writer_set:
                    continue  # initialised at import, never mutated at runtime
                if not acc.is_write and writer_set <= registered_closure:
                    continue  # populated only via the registered init protocol
                dedupe = (fq, acc.module, acc.name)
                if dedupe in seen:
                    continue
                seen.add(dedupe)
                chain = _chain(worker_parents, fq)
                verb = "written" if acc.is_write else "read"
                message = (
                    f"module-level mutable state '{acc.module}.{acc.name}' "
                    f"{verb} inside pool-worker-reachable "
                    f"'{_short(self.graph, fq)}' without worker-state "
                    "registration; each worker process sees its own copy — "
                    "register a factory via repro.util.pool."
                    "register_worker_state or document why divergence is "
                    "safe; worker chain: "
                    f"{_format_chain(self.graph, chain)}"
                )
                n_before = self.n_suppressed
                self._emit("FP010", acc.path, acc.lineno, 0, message)
                guarded = self.n_suppressed > n_before
                self.fp010_entries.append(
                    (fq, acc.path, acc.lineno, guarded, message)
                )

    # -- FP011/FP012/FP013 ---------------------------------------------------
    def run_hazards(self, hazards: List[Hazard]) -> None:
        for hz in hazards:
            self._emit(hz.rule_id, hz.path, hz.lineno, hz.col, hz.message)


def analyze_files(files: Sequence[Path]) -> FlowAnalysis:
    """Run the whole-program flow pass over ``files``."""
    t0 = time.perf_counter()
    graph = build_callgraph(files)
    facts = extract_facts(graph)
    hazards = extract_hazards(graph)

    flow = _FlowPass(graph, facts)
    flow.run_fp009()
    flow.run_fp010()
    flow.run_hazards(hazards)
    flow.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    elapsed = time.perf_counter() - t0

    if _OBS.enabled:
        _OBS.histogram("repro_lint_flow_seconds").observe(elapsed)
        _OBS.counter("repro_lint_flow_files_total").inc(len(graph.modules))
        _OBS.counter("repro_lint_flow_edges_total").inc(graph.n_edges)

    return FlowAnalysis(
        graph=graph,
        facts=facts,
        hazards=hazards,
        findings=flow.findings,
        n_suppressed=flow.n_suppressed,
        elapsed_s=elapsed,
        guarded_sites=flow.guarded_sites,
        fp010_entries=flow.fp010_entries,
    )
