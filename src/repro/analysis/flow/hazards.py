"""Concurrency-hazard extraction: shared-memory view lifetimes and lock
discipline.

These checks are local to one function (FP011/FP012) or one class (FP013)
but only make sense with the call graph's vocabulary — worker reachability
decides severity of exposure, and the certificate wants hazards *per
function* so it can intersect them with an entrypoint's closure.

FP011 — ``attach_shared`` view escape
    ``with attach_shared(handle) as view:`` maps another process's shared
    memory; the mapping dies at ``__exit__``.  Any alias of the view (the
    view itself, a slice of it, a container holding slices) that *escapes*
    the function — returned, yielded, stored on ``self`` or a module global
    — is a dangling pointer: NumPy will happily read unmapped pages.
    Aliases are tracked linearly: slicing taints, container literals taint,
    ``.append(view_slice)`` taints the container, ``del`` clears, and
    function-call results do NOT taint (reductions over a view allocate
    fresh output).

FP012 — write to attached shared memory
    ``attach_shared`` is the *consumer* side of the shard protocol; the
    owning process wrote the data before dispatch and every shard reads
    concurrently.  Any store through the view (``view[i] = x``, ``view +=``,
    ``view.fill(...)``, ``np.add(..., out=view)``) is a cross-process data
    race that re-associates someone else's reduction mid-flight.

FP013 — mutation off the owning lock
    A class that creates ``self._lock = threading.Lock()/RLock()`` has
    declared its private state lock-protected.  Every write to an
    underscore-private attribute outside ``__init__`` must happen inside
    ``with self._lock:`` — the obs registry and the worker pool both follow
    this discipline; this rule keeps refactors honest.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.analysis.astutils import dotted_name
from repro.analysis.flow.callgraph import (
    MUTATOR_METHODS,
    CallGraph,
    FunctionInfo,
)

__all__ = ["Hazard", "extract_hazards"]


@dataclass(frozen=True)
class Hazard:
    """One concurrency hazard anchored at a source location."""

    rule_id: str  # FP011 | FP012 | FP013
    qname: str  # owning function/method
    path: str
    lineno: int
    col: int
    message: str


def _loc(node: ast.AST) -> Tuple[int, int]:
    return getattr(node, "lineno", 1), getattr(node, "col_offset", 0)


# -- FP011 / FP012: attach_shared view tracking --------------------------------


class _ViewTracker:
    """Linear alias-taint walk over one function body."""

    def __init__(self, fn: FunctionInfo) -> None:
        self.fn = fn
        self.tainted: Set[str] = set()
        self.hazards: List[Hazard] = []

    def run(self) -> List[Hazard]:
        node = self.fn.node
        body = getattr(node, "body", [])
        if isinstance(body, list):
            self._walk_block(body)
        return self.hazards

    def _hazard(self, rule_id: str, node: ast.AST, message: str) -> None:
        line, col = _loc(node)
        self.hazards.append(
            Hazard(rule_id, self.fn.qname, self.fn.path, line, col, message)
        )

    # taint predicate: does this expression alias shared-view memory?
    def _is_tainted(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self.tainted
        if isinstance(node, ast.Subscript):
            return self._is_tainted(node.value)
        if isinstance(node, (ast.Tuple, ast.List)):
            return any(self._is_tainted(e) for e in node.elts)
        if isinstance(node, ast.Starred):
            return self._is_tainted(node.value)
        if isinstance(node, ast.IfExp):
            return self._is_tainted(node.body) or self._is_tainted(node.orelse)
        return False  # calls, binops, comprehensions allocate fresh storage

    def _walk_block(self, stmts: List[ast.stmt]) -> None:
        for stmt in stmts:
            self._walk_stmt(stmt)

    def _walk_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                ctx = item.context_expr
                if (
                    isinstance(ctx, ast.Call)
                    and (dotted_name(ctx.func) or "").split(".")[-1] == "attach_shared"
                    and isinstance(item.optional_vars, ast.Name)
                ):
                    self.tainted.add(item.optional_vars.id)
            self._walk_block(stmt.body)
            return
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            if self._is_tainted(stmt.value):
                self._hazard(
                    "FP011",
                    stmt,
                    "shared-memory view (or a slice of one) returned from "
                    f"'{self.fn.qname}': the mapping dies when attach_shared "
                    "exits, leaving the caller a dangling buffer; copy "
                    "(np.array(view)) before returning",
                )
            self._check_expr_writes(stmt.value)
            return
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.tainted.discard(target.id)
            return
        if isinstance(stmt, ast.Assign):
            self._check_expr_writes(stmt.value)
            escapes = self._is_tainted(stmt.value)
            for target in stmt.targets:
                self._handle_store(target, escapes, stmt)
            return
        if isinstance(stmt, ast.AugAssign):
            target = stmt.target
            if self._is_tainted(target):
                self._hazard(
                    "FP012",
                    stmt,
                    "in-place write to an attached shared-memory view in "
                    f"'{self.fn.qname}': shards read the owner's buffer "
                    "concurrently; write to a local copy instead",
                )
            self._check_expr_writes(stmt.value)
            return
        if isinstance(stmt, ast.Expr):
            self._check_expr_writes(stmt.value)
            self._check_yield(stmt.value)
            return
        # compound statements: recurse into bodies, scan condition exprs
        for child_block in ("body", "orelse", "finalbody"):
            block = getattr(stmt, child_block, None)
            if isinstance(block, list):
                self._walk_block([s for s in block if isinstance(s, ast.stmt)])
        for handler in getattr(stmt, "handlers", []) or []:
            self._walk_block(handler.body)
        for value in ast.iter_child_nodes(stmt):
            if isinstance(value, ast.expr):
                self._check_expr_writes(value)

    def _handle_store(self, target: ast.expr, escapes: bool, stmt: ast.stmt) -> None:
        if isinstance(target, ast.Name):
            if escapes:
                self.tainted.add(target.id)
            else:
                self.tainted.discard(target.id)
        elif isinstance(target, ast.Subscript):
            if self._is_tainted(target.value):
                self._hazard(
                    "FP012",
                    stmt,
                    "store through an attached shared-memory view in "
                    f"'{self.fn.qname}': attach_shared maps another "
                    "process's buffer read-only by protocol; mutate a copy",
                )
        elif isinstance(target, ast.Attribute) and escapes:
            self._hazard(
                "FP011",
                stmt,
                "shared-memory view stored on an object attribute in "
                f"'{self.fn.qname}': the alias outlives the mapping scope",
            )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._handle_store(elt, escapes, stmt)

    def _check_mutator_calls(self, node: ast.expr) -> None:
        if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
            return
        recv = node.func.value
        attr = node.func.attr
        if attr in MUTATOR_METHODS and self._is_tainted(recv):
            self._hazard(
                "FP012",
                node,
                f"mutating method '.{attr}()' on an attached shared-memory "
                f"view in '{self.fn.qname}': shards share the owner's pages",
            )
        # container.append(view_slice) keeps the alias alive
        if (
            attr in ("append", "extend", "insert", "add")
            and isinstance(recv, ast.Name)
            and any(self._is_tainted(a) for a in node.args)
        ):
            self.tainted.add(recv.id)

    def _check_yield(self, node: ast.expr) -> None:
        if isinstance(node, (ast.Yield, ast.YieldFrom)) and node.value is not None:
            if self._is_tainted(node.value):
                self._hazard(
                    "FP011",
                    node,
                    "shared-memory view yielded from "
                    f"'{self.fn.qname}': the consumer resumes after the "
                    "mapping may have been torn down",
                )

    def _check_expr_writes(self, node: Optional[ast.expr]) -> None:
        """Catch ``out=view`` kwargs and nested mutator calls anywhere."""
        if node is None:
            return
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                for kw in sub.keywords:
                    if kw.arg == "out" and self._is_tainted(kw.value):
                        self._hazard(
                            "FP012",
                            sub,
                            "'out=' targets an attached shared-memory view "
                            f"in '{self.fn.qname}': the kernel would write "
                            "into another process's buffer",
                        )
                self._check_mutator_calls(sub)
            elif isinstance(sub, (ast.Yield, ast.YieldFrom)):
                self._check_yield(sub)


# -- FP013: lock discipline ----------------------------------------------------

_LOCK_EXEMPT_METHODS = {"__init__", "__post_init__", "__del__", "__repr__", "__str__"}


def _lock_hazards(graph: CallGraph) -> List[Hazard]:
    hazards: List[Hazard] = []
    for cq in sorted(graph.classes):
        cls = graph.classes[cq]
        if not cls.lock_attrs:
            continue
        for method_name in sorted(cls.methods):
            if method_name in _LOCK_EXEMPT_METHODS:
                continue
            fn = graph.functions[cls.methods[method_name]]
            hazards.extend(_scan_method_locks(fn, cls.lock_attrs))
    return hazards


def _scan_method_locks(fn: FunctionInfo, lock_attrs: Set[str]) -> List[Hazard]:
    hazards: List[Hazard] = []

    def is_lock_with(stmt: ast.With) -> bool:
        for item in stmt.items:
            name = dotted_name(item.context_expr)
            if name and name.startswith("self.") and name.split(".")[1] in lock_attrs:
                return True
        return False

    def self_private_attr(node: ast.expr) -> Optional[str]:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr.startswith("_")
            and not node.attr.startswith("__")
            and node.attr not in lock_attrs
        ):
            return node.attr
        return None

    def record(node: ast.AST, attr: str, what: str) -> None:
        line, col = _loc(node)
        hazards.append(
            Hazard(
                "FP013",
                fn.qname,
                fn.path,
                line,
                col,
                f"{what} of 'self.{attr}' outside 'with self.<lock>:' in "
                f"'{fn.qname}': this class declares its private state "
                "lock-protected; take the lock or document why the access "
                "is safe",
            )
        )

    def check_exprs(node: ast.AST) -> None:
        """Scan an expression tree for mutator-method calls on self._x."""
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in MUTATOR_METHODS
            ):
                attr = self_private_attr(sub.func.value)
                if attr:
                    record(sub, attr, f"'.{sub.func.attr}()' mutation")

    def check_stmt(stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                attr = self_private_attr(target)
                if attr:
                    record(stmt, attr, "write")
                if isinstance(target, ast.Subscript):
                    attr = self_private_attr(target.value)
                    if attr:
                        record(stmt, attr, "item write")
        elif isinstance(stmt, ast.AugAssign):
            attr = self_private_attr(stmt.target)
            if attr is None and isinstance(stmt.target, ast.Subscript):
                attr = self_private_attr(stmt.target.value)
            if attr:
                record(stmt, attr, "in-place update")

    def scan_block(stmts: List[ast.stmt], locked: bool) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # nested defs are scanned as their own functions
            if isinstance(stmt, ast.With):
                scan_block(stmt.body, locked or is_lock_with(stmt))
                continue
            if not locked:
                check_stmt(stmt)
                # simple statements are pure expression trees; compound ones
                # expose their condition/iter expressions as direct children
                for child in ast.iter_child_nodes(stmt):
                    if isinstance(child, ast.expr):
                        check_exprs(child)
            for block_name in ("body", "orelse", "finalbody"):
                block = getattr(stmt, block_name, None)
                if isinstance(block, list):
                    scan_block([s for s in block if isinstance(s, ast.stmt)], locked)
            for handler in getattr(stmt, "handlers", []) or []:
                scan_block(handler.body, locked)

    scan_block(list(getattr(fn.node, "body", [])), locked=False)
    return hazards


def extract_hazards(graph: CallGraph) -> List[Hazard]:
    """All FP011/FP012/FP013 hazards across the graph, sorted."""
    hazards: List[Hazard] = []
    for fq in sorted(graph.functions):
        fn = graph.functions[fq]
        if isinstance(fn.node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            hazards.extend(_ViewTracker(fn).run())
    hazards.extend(_lock_hazards(graph))
    hazards.sort(key=lambda h: (h.path, h.lineno, h.col, h.rule_id))
    return hazards
