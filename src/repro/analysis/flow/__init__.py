"""Whole-program flow analysis: call graph, taint dataflow, certificates.

Public surface:

* :func:`analyze_files` — run the interprocedural pass over a file set and
  get engine-compatible findings (rules FP009–FP013) plus the graph.
* :func:`flow_certificates` / :func:`certify_serving_path` — determinism
  certificates for the serving entrypoints.
* :func:`serving_flow_verdict` — the one-word verdict
  :func:`repro.selection.certify.certify` embeds.

The syntactic FP001–FP008 rules stay file-local; this package is the layer
that sees *across* files.  See ``docs/LINT.md`` for the model.
"""

from repro.analysis.flow.callgraph import (
    CallEdge,
    CallGraph,
    FunctionInfo,
    build_callgraph,
    module_name_for,
)
from repro.analysis.flow.certificate import (
    SERVING_ENTRYPOINTS,
    certify_serving_path,
    flow_certificates,
    serving_flow_verdict,
)
from repro.analysis.flow.dataflow import FLOW_RULE_IDS, FlowAnalysis, analyze_files
from repro.analysis.flow.facts import SourceFact, extract_facts
from repro.analysis.flow.hazards import Hazard, extract_hazards

__all__ = [
    "CallEdge",
    "CallGraph",
    "FunctionInfo",
    "build_callgraph",
    "module_name_for",
    "SERVING_ENTRYPOINTS",
    "certify_serving_path",
    "flow_certificates",
    "serving_flow_verdict",
    "FLOW_RULE_IDS",
    "FlowAnalysis",
    "analyze_files",
    "SourceFact",
    "extract_facts",
    "Hazard",
    "extract_hazards",
]
