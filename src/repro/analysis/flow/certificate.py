"""Determinism certificates: machine-checkable records that no unguarded
nondeterminism source reaches a serving entrypoint.

The empirical :class:`repro.selection.certify.Certificate` *samples*
reproducibility; the static audit in :mod:`repro.analysis.determinism`
*derives* it for one operator.  A flow certificate closes the remaining
gap: the code *between* the caller and the kernel.  For each serving
entrypoint it records the call closure the flow pass explored, every
nondeterminism source found there (guarded ones included, with their
suppression status — a certificate that hid guarded sources would be
unreviewable), every concurrency hazard, and a single ``clean`` bit CI can
gate on.

Schema (one JSON object per entrypoint)::

    {
      "schema": "repro-flow-certificate/1",
      "entrypoint": "AdaptiveReducer.reduce_many",
      "qname": "repro.selection.selector:AdaptiveReducer.reduce_many",
      "resolved": true,
      "clean": true,
      "n_functions": 63,          # closure size actually explored
      "sources": [                # every source in the closure
        {"kind": "env-read", "detail": "os.environ.get(...)",
         "site": "src/repro/util/pool.py:117", "guarded": true,
         "chain": "repro.selection.selector:AdaptiveReducer.reduce_many -> ..."}
      ],
      "hazards": [ ... same shape, rule ids FP010-FP013 ... ],
      "counts": {"sources_unguarded": 0, "sources_guarded": 2,
                 "hazards_unguarded": 0, "hazards_guarded": 1}
    }

``clean`` is true iff no *unguarded* source and no *unguarded* hazard sits
in the closure.  Guarded entries carry the inline-suppression paper trail
in the repository itself (``# repro: allow[FPnnn] -- reason``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence

from repro.analysis.flow.dataflow import (
    FlowAnalysis,
    _chain,
    _format_chain,
    _is_test_path,
    analyze_files,
)

__all__ = [
    "SERVING_ENTRYPOINTS",
    "flow_certificates",
    "certify_serving_path",
    "serving_flow_verdict",
]

SCHEMA = "repro-flow-certificate/1"

#: the serving surface the certificates cover: public reduction entrypoints
SERVING_ENTRYPOINTS = (
    ("AdaptiveReducer.reduce", "repro.selection.selector:AdaptiveReducer.reduce"),
    ("AdaptiveReducer.reduce_many", "repro.selection.selector:AdaptiveReducer.reduce_many"),
    ("evaluate_ensemble", "repro.trees.evaluate:evaluate_ensemble"),
    ("SimComm.reduce_batch", "repro.mpi.comm:SimComm.reduce_batch"),
)


def _site(path: str, lineno: int) -> str:
    return f"{path}:{lineno}"


def _certificate_for(
    analysis: FlowAnalysis, display: str, qname: str
) -> dict:
    graph = analysis.graph
    if qname not in graph.functions:
        return {
            "schema": SCHEMA,
            "entrypoint": display,
            "qname": qname,
            "resolved": False,
            "clean": False,
            "n_functions": 0,
            "sources": [],
            "hazards": [],
            "counts": {},
        }
    parents = analysis.closure(qname)
    closure = set(parents)

    sources: List[dict] = []
    for fq in sorted(closure):
        facts = analysis.facts.get(fq)
        if facts is None:
            continue
        for fact in facts.sources:
            if _is_test_path(fact.path):
                continue
            guarded = analysis.is_guarded("FP009", fact.path, fact.lineno)
            sources.append(
                {
                    "kind": fact.kind,
                    "detail": fact.detail,
                    "site": _site(fact.path, fact.lineno),
                    "guarded": guarded,
                    "chain": _format_chain(graph, _chain(parents, fact.qname)),
                }
            )

    hazards: List[dict] = []
    for hz in analysis.hazards:
        if hz.qname not in closure:
            continue
        guarded = analysis.is_guarded(hz.rule_id, hz.path, hz.lineno)
        hazards.append(
            {
                "rule": hz.rule_id,
                "site": _site(hz.path, hz.lineno),
                "guarded": guarded,
                "chain": _format_chain(graph, _chain(parents, hz.qname)),
                "message": hz.message,
            }
        )
    # FP010 records are anchored at access sites inside closure functions
    for fq, path, lineno, guarded, message in analysis.fp010_entries:
        if fq not in closure:
            continue
        hazards.append(
            {
                "rule": "FP010",
                "site": _site(path, lineno),
                "guarded": guarded,
                "chain": _format_chain(graph, _chain(parents, fq)),
                "message": message,
            }
        )

    sources.sort(key=lambda s: (s["site"], s["kind"]))
    hazards.sort(key=lambda h: (h["site"], h["rule"]))
    n_src_unguarded = sum(1 for s in sources if not s["guarded"])
    n_hz_unguarded = sum(1 for h in hazards if not h["guarded"])
    return {
        "schema": SCHEMA,
        "entrypoint": display,
        "qname": qname,
        "resolved": True,
        "clean": n_src_unguarded == 0 and n_hz_unguarded == 0,
        "n_functions": len(closure),
        "sources": sources,
        "hazards": hazards,
        "counts": {
            "sources_unguarded": n_src_unguarded,
            "sources_guarded": len(sources) - n_src_unguarded,
            "hazards_unguarded": n_hz_unguarded,
            "hazards_guarded": len(hazards) - n_hz_unguarded,
        },
    }


def flow_certificates(analysis: FlowAnalysis) -> List[dict]:
    """One certificate per serving entrypoint, from an existing analysis."""
    return [
        _certificate_for(analysis, display, qname)
        for display, qname in SERVING_ENTRYPOINTS
    ]


# -- the cached whole-package audit (what `certify` consumes) ------------------

_CACHE: Dict[str, List[dict]] = {}


def certify_serving_path(root: "Path | None" = None) -> List[dict]:
    """Certificates for the serving entrypoints over the installed package.

    The analysis runs once per process per root (the package source is
    immutable for the life of the process) and is shared by every
    :func:`repro.selection.certify.certify` call.
    """
    if root is None:
        import repro

        root = Path(repro.__file__).parent
    key = str(Path(root).resolve())
    if key not in _CACHE:
        files = sorted(
            f for f in Path(root).rglob("*.py") if "__pycache__" not in f.parts
        )
        analysis = analyze_files(files)
        _CACHE[key] = flow_certificates(analysis)
    return _CACHE[key]


def serving_flow_verdict(root: "Path | None" = None) -> str:
    """``"clean"`` | ``"unguarded"`` | ``"unavailable"`` for the serving path."""
    try:
        certs = certify_serving_path(root)
    except Exception:  # pragma: no cover - source tree unreadable
        return "unavailable"
    if not certs or not all(c.get("resolved") for c in certs):
        return "unavailable"
    return "clean" if all(c["clean"] for c in certs) else "unguarded"


def certificates_to_json(certs: Sequence[dict]) -> str:
    return json.dumps(list(certs), indent=2, sort_keys=False)
