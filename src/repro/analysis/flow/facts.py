"""Per-function fact extraction: nondeterminism sources, reduction sinks,
and module-global accesses.

Facts are *syntactic and local* — one pass over each function body, nested
defs excluded (they are functions of their own).  The dataflow pass in
:mod:`repro.analysis.flow.dataflow` then propagates them along call edges;
keeping extraction local means an unresolved call can only shorten a
reported chain, never hide a source.

Source kinds
------------
``unseeded-rng``
    ``np.random.default_rng()`` with no argument or a literal ``None``, and
    any legacy global-state RNG (``np.random.rand``, ``random.random``, ...).
    ``default_rng(seed)`` with a *variable* argument is trusted: the
    repo-wide convention (:func:`repro.util.rng.resolve_rng`) threads seeds
    explicitly, and the unseeded case is ``resolve_rng(None)`` — which is
    flagged at its own literal-``None`` call sites.
``wall-clock``
    ``time.time`` / ``time.time_ns`` / ``datetime.now`` / ``utcnow`` /
    ``today``.  ``perf_counter`` and ``monotonic`` are deliberately *not*
    sources: they are telemetry clocks (Stopwatch) whose values feed metrics,
    not reductions.
``env-read``
    ``os.environ.get`` / ``os.environ[...]`` / ``os.getenv`` inside a
    function body.  Module-level reads are import-time configuration and are
    not flagged.
``unordered-iter``
    Iteration order of a hash-ordered or filesystem-ordered construct
    escaping into a sequence or a loop: ``for x in set(...)``,
    ``list({...})``, comprehensions over sets, unsorted ``os.listdir``.
    Anything wrapped in ``sorted``/``min``/``max`` is order-pinned and
    exempt.  Plain ``dict`` iteration is *not* a source: dicts preserve
    insertion order (guaranteed since Python 3.7).
``pool-order``
    Completion-order primitives: ``as_completed``, ``imap_unordered``,
    ``wait(..., return_when=FIRST_COMPLETED)``.  Results arriving in
    completion order re-associate any subsequent reduction.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.astutils import dotted_name
from repro.analysis.flow.callgraph import (
    MUTATOR_METHODS,
    CallGraph,
    FunctionInfo,
    ModuleInfo,
    iter_own_nodes,
)

__all__ = ["SourceFact", "SinkFact", "GlobalAccess", "FunctionFacts", "extract_facts"]

_LEGACY_RNG_ATTRS = {
    "rand", "randn", "random", "randint", "random_sample", "ranf", "sample",
    "choice", "shuffle", "permutation", "seed", "normal", "uniform",
    "standard_normal", "exponential", "poisson", "bytes",
}
_RANDOM_MODULE_FNS = {
    "random", "randint", "randrange", "uniform", "gauss", "normalvariate",
    "choice", "choices", "shuffle", "sample", "seed", "betavariate",
    "expovariate", "triangular",
}
_WALL_CLOCK = {
    "time.time", "time.time_ns", "datetime.now", "datetime.utcnow",
    "datetime.today", "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "date.today", "datetime.date.today",
}
_FS_ITER = {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
_ORDER_PINNERS = {"sorted", "min", "max", "sum", "len", "frozenset", "set"}
_POOL_ORDER = {"as_completed", "imap_unordered"}

#: syntactic reducer callees (mirrors FP002/FP006 vocabulary)
_REDUCER_NAMES = {"sum", "fsum", "math.fsum", "np.sum", "numpy.sum", "functools.reduce"}
_REDUCER_ATTRS = {"sum", "fsum", "reduce", "allreduce", "reduce_batch",
                  "reduce_nondeterministic", "sum_array", "fold", "reduce_many"}
#: resolved method names that are reduction entry/commit points
_SINK_METHOD_NAMES = {"reduce", "allreduce", "reduce_batch",
                      "reduce_nondeterministic", "reduce_many", "sum_array",
                      "evaluate_ensemble", "fold"}


@dataclass(frozen=True)
class SourceFact:
    """One nondeterminism source at one site inside one function."""

    kind: str  # unseeded-rng | wall-clock | env-read | unordered-iter | pool-order
    qname: str  # owning function
    path: str
    lineno: int
    col: int
    detail: str  # human-readable description of the construct


@dataclass(frozen=True)
class SinkFact:
    """One reduction site inside one function."""

    qname: str
    path: str
    lineno: int
    detail: str


@dataclass(frozen=True)
class GlobalAccess:
    """A read or write of a module-level name from function scope."""

    module: str
    name: str
    qname: str
    path: str
    lineno: int
    is_write: bool


@dataclass
class FunctionFacts:
    """Everything fact extraction learned about one function."""

    sources: List[SourceFact] = field(default_factory=list)
    sinks: List[SinkFact] = field(default_factory=list)
    global_accesses: List[GlobalAccess] = field(default_factory=list)


def _call_detail(name: str) -> str:
    return f"{name}(...)"


class _FactScanner:
    def __init__(self, graph: CallGraph, mod: ModuleInfo, fn: FunctionInfo) -> None:
        self.graph = graph
        self.mod = mod
        self.fn = fn
        self.facts = FunctionFacts()
        self._declared_globals: set = set()

    def scan(self) -> FunctionFacts:
        node = self.fn.node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for sub in iter_own_nodes(node):
                if isinstance(sub, ast.Global):
                    self._declared_globals.update(sub.names)
        for sub in iter_own_nodes(node):
            self._scan_node(sub)
        return self.facts

    # -- helpers --------------------------------------------------------------
    def _src(self, kind: str, node: ast.AST, detail: str) -> None:
        self.facts.sources.append(
            SourceFact(
                kind=kind,
                qname=self.fn.qname,
                path=self.fn.path,
                lineno=getattr(node, "lineno", self.fn.lineno),
                col=getattr(node, "col_offset", 0),
                detail=detail,
            )
        )

    def _sink(self, node: ast.AST, detail: str) -> None:
        self.facts.sinks.append(
            SinkFact(
                qname=self.fn.qname,
                path=self.fn.path,
                lineno=getattr(node, "lineno", self.fn.lineno),
                detail=detail,
            )
        )

    def _global_access(self, name: str, node: ast.AST, is_write: bool) -> None:
        self.facts.global_accesses.append(
            GlobalAccess(
                module=self.mod.name,
                name=name,
                qname=self.fn.qname,
                path=self.fn.path,
                lineno=getattr(node, "lineno", self.fn.lineno),
                is_write=is_write,
            )
        )

    # -- node dispatch --------------------------------------------------------
    def _scan_node(self, node: ast.AST) -> None:
        if isinstance(node, ast.Call):
            self._scan_call(node)
        elif isinstance(node, ast.Subscript):
            name = dotted_name(node.value)
            if name == "os.environ" and isinstance(node.ctx, ast.Load):
                self._src("env-read", node, "os.environ[...]")
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            detail = _unordered_iter_detail(node.iter)
            if detail:
                self._src("unordered-iter", node, f"loop over {detail}")
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            for gen in node.generators:
                detail = _unordered_iter_detail(gen.iter)
                if detail:
                    self._src("unordered-iter", node, f"comprehension over {detail}")
        elif isinstance(node, ast.Name):
            self._scan_name(node)
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            self._scan_store_targets(node)

    def _scan_name(self, node: ast.Name) -> None:
        if node.id not in self.mod.mutable_globals:
            return
        if isinstance(node.ctx, ast.Load):
            self._global_access(node.id, node, is_write=False)
        elif isinstance(node.ctx, ast.Store) and node.id in self._declared_globals:
            self._global_access(node.id, node, is_write=True)

    def _scan_store_targets(self, node: ast.AST) -> None:
        """Catch container mutation through subscripts: ``GLOBAL[k] = v``."""
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Subscript) and isinstance(target.value, ast.Name):
                if target.value.id in self.mod.mutable_globals:
                    self._global_access(target.value.id, node, is_write=True)

    def _scan_call(self, call: ast.Call) -> None:
        name = dotted_name(call.func) or ""
        leaf = name.split(".")[-1]

        # unseeded / legacy RNG ------------------------------------------------
        if leaf == "default_rng":
            if not call.args or (
                isinstance(call.args[0], ast.Constant) and call.args[0].value is None
            ):
                self._src("unseeded-rng", call, "default_rng() without a seed")
        elif name.startswith(("np.random.", "numpy.random.")) and leaf in _LEGACY_RNG_ATTRS:
            self._src("unseeded-rng", call, _call_detail(name))
        elif name.startswith("random.") and leaf in _RANDOM_MODULE_FNS:
            sym = self.mod.symbols.get("random")
            if sym is None or sym == ("module", "random"):
                self._src("unseeded-rng", call, _call_detail(name))

        # wall clock -----------------------------------------------------------
        if name in _WALL_CLOCK:
            self._src("wall-clock", call, _call_detail(name))

        # environment ----------------------------------------------------------
        if name in ("os.environ.get", "os.getenv", "environ.get"):
            self._src("env-read", call, _call_detail(name))

        # completion order -----------------------------------------------------
        if leaf in _POOL_ORDER:
            self._src("pool-order", call, _call_detail(name))
        elif leaf == "wait":
            for kw in call.keywords:
                kw_name = dotted_name(kw.value) or ""
                if kw.arg == "return_when" and kw_name.endswith("FIRST_COMPLETED"):
                    self._src("pool-order", call, "wait(return_when=FIRST_COMPLETED)")

        # unordered iteration escaping into a sequence -------------------------
        if leaf in ("list", "tuple") and call.args:
            detail = _unordered_iter_detail(call.args[0])
            if detail:
                self._src("unordered-iter", call, f"{leaf}({detail})")

        # reduction sinks ------------------------------------------------------
        self._scan_sink(call, name, leaf)

        # container mutator methods on module globals --------------------------
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in MUTATOR_METHODS
            and isinstance(call.func.value, ast.Name)
            and call.func.value.id in self.mod.mutable_globals
        ):
            self._global_access(call.func.value.id, call, is_write=True)

    def _scan_sink(self, call: ast.Call, name: str, leaf: str) -> None:
        if name in _REDUCER_NAMES and call.args:
            self._sink(call, _call_detail(name))
            return
        if isinstance(call.func, ast.Attribute) and call.func.attr in _REDUCER_ATTRS:
            self._sink(call, _call_detail(name or call.func.attr))
            return
        if leaf in _SINK_METHOD_NAMES:
            self._sink(call, _call_detail(name))


def _unordered_iter_detail(node: ast.expr) -> Optional[str]:
    """Description of the unordered construct whose order escapes, if any.

    Unlike the flat walk FP006 used to do, subtrees rooted at an
    order-pinning call (``sorted`` and friends) are pruned — ``sorted(set(
    xs))`` pins the order no matter how deep the set sits.
    """
    if isinstance(node, ast.Call):
        name = dotted_name(node.func) or ""
        leaf = name.split(".")[-1]
        if leaf in _ORDER_PINNERS and leaf not in ("set", "frozenset"):
            return None
        if leaf in ("set", "frozenset"):
            return f"{leaf}(...)"
        if name in _FS_ITER:
            return f"{name}(...)"
        if isinstance(node.func, ast.Attribute) and node.func.attr == "iterdir":
            return "<path>.iterdir()"
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            detail = _unordered_iter_detail(arg)
            if detail:
                return detail
        return None
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Set):
        return "a set literal"
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        detail = _unordered_iter_detail(child)
        if detail:
            return detail
    return None


def extract_facts(graph: CallGraph) -> Dict[str, FunctionFacts]:
    """Run fact extraction over every function in the graph."""
    out: Dict[str, FunctionFacts] = {}
    for fq in sorted(graph.functions):
        fn = graph.functions[fq]
        mod = graph.modules.get(fn.module)
        if mod is None:
            out[fq] = FunctionFacts()
            continue
        out[fq] = _FactScanner(graph, mod, fn).scan()
    return out
