"""Static determinism audit of operator × tree-nondeterminism combinations.

The empirical :func:`repro.selection.certify.certify` *measures* variability;
this module *derives* it from first principles, so the certify path can say
not only "the spread was zero in 100 trials" but "the spread is zero in all
trials, because the operator's merge is exactly associative and commutative".
The distinction matters at the extreme scale the paper targets: an ensemble
samples a vanishing fraction of the ``(2n-3)!!`` parenthetic forms, while the
static argument covers all of them.

The audit crosses two axes:

* **Operator order-sensitivity** — from the registry's ``deterministic``
  flag: prerounded/exact accumulators merge in integer arithmetic
  (associative *and* commutative, hence bitwise order-independent); ST, K
  and CP round at every merge and are order-sensitive.
* **Schedule nondeterminism** — which of the :mod:`repro.mpi` /
  :mod:`repro.trees` configuration knobs make the realised reduction tree
  (shape × leaf order) vary run to run: arrival-order reduction with
  ``jitter > 0``, fault injection (tree reshapes around stalled ranks),
  unseeded random shapes, and leaf permutation ensembles.

Verdicts: ``BITWISE`` (order-independent operator — any tree, any order,
same bits), ``CONDITIONAL`` (order-sensitive operator on a deterministic
schedule — reproducible until the schedule changes), ``NONDETERMINISTIC``
(order-sensitive operator meeting a varying schedule — the paper's hazard).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Sequence, Tuple

from repro.summation.registry import get_algorithm

__all__ = [
    "Verdict",
    "DeterminismReport",
    "audit_reduction",
    "audit_shapes",
]

#: Shape kinds whose construction is a pure function of ``n`` (no RNG).
_FIXED_SHAPES = {"balanced", "serial", "skewed"}
#: Shape kinds drawn from an RNG (deterministic only when seeded).
_RANDOM_SHAPES = {"random", "arrival"}


class Verdict(enum.Enum):
    """Static reproducibility classification of one configuration."""

    BITWISE = "bitwise"  # same bits under every reduction order
    CONDITIONAL = "conditional"  # same bits while the schedule stays fixed
    NONDETERMINISTIC = "nondeterministic"  # bits vary run to run

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class DeterminismReport:
    """Derivation of a configuration's reproducibility class."""

    algorithm_code: str
    verdict: Verdict
    order_independent_op: bool
    schedule_varies: bool
    hazards: Tuple[str, ...] = field(default_factory=tuple)

    @property
    def bitwise_guaranteed(self) -> bool:
        return self.verdict is Verdict.BITWISE

    def explain(self) -> str:
        head = f"{self.algorithm_code}: {self.verdict}"
        if not self.hazards:
            return head
        return head + " (" + "; ".join(self.hazards) + ")"


def audit_reduction(
    algorithm_code: str,
    *,
    shape: str = "balanced",
    seeded: bool = True,
    permuted_leaves: bool = False,
    jitter: float = 0.0,
    fault_prob: float = 0.0,
) -> DeterminismReport:
    """Statically classify one operator × schedule configuration.

    Parameters mirror the knobs of :mod:`repro.trees.shapes` and
    :mod:`repro.mpi.nondet` / :mod:`repro.mpi.faults`:

    ``shape``
        A :func:`repro.trees.shapes` kind (``"balanced"``, ``"serial"``,
        ``"skewed"``, ``"random"``) or ``"arrival"`` for arrival-order
        reduction through the simulated communicator.
    ``seeded``
        Whether every RNG involved is derived from an explicit seed
        (unseeded = fresh OS entropy per run).
    ``permuted_leaves``
        Whether leaves are permuted across runs (the ensemble methodology).
    ``jitter`` / ``fault_prob``
        Arrival-order spread and rank-stall probability; either one makes
        the realised tree shape a random variable.
    """
    if shape not in _FIXED_SHAPES | _RANDOM_SHAPES:
        raise ValueError(
            f"unknown shape {shape!r}; known: {sorted(_FIXED_SHAPES | _RANDOM_SHAPES)}"
        )
    if jitter < 0 or not 0.0 <= fault_prob <= 1.0:
        raise ValueError("bad jitter/fault_prob")
    alg = get_algorithm(algorithm_code)

    hazards = []
    if shape in _RANDOM_SHAPES and not seeded:
        hazards.append(f"{shape} tree drawn from unseeded RNG")
    if shape == "arrival" and jitter > 0.0:
        hazards.append(f"arrival order varies with jitter={jitter:g}")
    if fault_prob > 0.0:
        hazards.append(
            f"fault injection (p={fault_prob:g}) reshapes the tree around stalls"
        )
    if permuted_leaves:
        hazards.append("leaf permutation varies the operand order")
    schedule_varies = bool(hazards)

    if alg.deterministic:
        # Exactly associative + commutative merges: the schedule is irrelevant.
        return DeterminismReport(
            algorithm_code=alg.code,
            verdict=Verdict.BITWISE,
            order_independent_op=True,
            schedule_varies=schedule_varies,
            hazards=(),
        )
    if not schedule_varies:
        hazards = [
            "operator rounds at each merge; reproducible only while the "
            "schedule (shape, leaf order, rank count) stays fixed"
        ]
        return DeterminismReport(
            algorithm_code=alg.code,
            verdict=Verdict.CONDITIONAL,
            order_independent_op=False,
            schedule_varies=False,
            hazards=tuple(hazards),
        )
    return DeterminismReport(
        algorithm_code=alg.code,
        verdict=Verdict.NONDETERMINISTIC,
        order_independent_op=False,
        schedule_varies=True,
        hazards=tuple(hazards),
    )


def audit_shapes(
    algorithm_code: str,
    shapes: Sequence[str],
    *,
    permuted_leaves: bool = True,
    seeded: bool = True,
) -> DeterminismReport:
    """Worst-case audit over an ensemble's shape list (the certify path).

    The certify ensemble evaluates every shape with permuted leaves; the
    combined verdict is the weakest individual one, so an order-sensitive
    operator anywhere in the sweep downgrades the report.
    """
    if not shapes:
        raise ValueError("need at least one shape")
    reports = [
        audit_reduction(
            algorithm_code,
            shape=shape,
            seeded=seeded,
            permuted_leaves=permuted_leaves,
        )
        for shape in shapes
    ]
    order = {Verdict.BITWISE: 0, Verdict.CONDITIONAL: 1, Verdict.NONDETERMINISTIC: 2}
    worst = max(reports, key=lambda r: order[r.verdict])
    hazards = tuple(dict.fromkeys(h for r in reports for h in r.hazards))
    return DeterminismReport(
        algorithm_code=worst.algorithm_code,
        verdict=worst.verdict,
        order_independent_op=worst.order_independent_op,
        schedule_varies=any(r.schedule_varies for r in reports),
        hazards=hazards,
    )
