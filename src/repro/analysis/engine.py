"""Lint engine: walk files, parse once, run rules, filter suppressions.

The engine is deterministic by construction — files are discovered with
``sorted(rglob)`` and findings are emitted in (path, line, col, rule) order —
because a linter about nondeterminism that reported findings in directory-
enumeration order would be its own first finding (FP006).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.analysis.base import (
    FileContext,
    Finding,
    Rule,
    Severity,
    all_rules,
    is_suppressed,
    iter_findings,
    parse_suppressions,
)
from repro.analysis.baseline import Baseline

__all__ = ["LintResult", "lint_file", "lint_paths", "discover_files"]

#: Directory names never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "build", "dist", ".eggs"}


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)  # actionable
    baselined: List[Finding] = field(default_factory=list)
    n_suppressed: int = 0
    n_files: int = 0
    parse_errors: List[Finding] = field(default_factory=list)
    #: whole-program analysis (set when the run included ``--flow``);
    #: typed loosely to keep the engine importable without the flow package
    flow: "object | None" = None

    @property
    def clean(self) -> bool:
        return not self.findings and not self.parse_errors

    def max_severity(self) -> Optional[Severity]:
        if not self.findings:
            return None
        return max(f.severity for f in self.findings)


def discover_files(paths: Sequence[str | Path]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    out: List[Path] = []
    seen: set = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            candidates = sorted(
                f
                for f in p.rglob("*.py")
                if not (set(f.parts) & _SKIP_DIRS)
            )
        elif p.suffix == ".py":
            candidates = [p]
        else:
            candidates = []
        for c in candidates:
            key = c.resolve()
            if key not in seen:
                seen.add(key)
                out.append(c)
    return out


def _display_path(path: Path) -> str:
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_file(
    path: str | Path,
    rules: Optional[Iterable[Rule]] = None,
) -> Tuple[List[Finding], int, Optional[Finding]]:
    """Lint one file.

    Returns ``(findings, n_suppressed, parse_error)``; findings are sorted
    and already filtered through inline suppressions (baseline filtering is
    the caller's concern — it is repo-level, not file-level).
    """
    p = Path(path)
    display = _display_path(p)
    source = p.read_text()
    rules = list(rules) if rules is not None else all_rules()
    try:
        tree = ast.parse(source, filename=str(p))
    except SyntaxError as exc:
        err = Finding(
            rule_id="FP000",
            severity=Severity.ERROR,
            path=display,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            message=f"syntax error: {exc.msg}",
        )
        return [], 0, err
    ctx = FileContext(path=display, source=source, tree=tree)
    suppressions = parse_suppressions(source)
    kept: List[Finding] = []
    n_suppressed = 0
    for finding in iter_findings(rules, ctx):
        if is_suppressed(finding, suppressions):
            n_suppressed += 1
        else:
            kept.append(finding)
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return kept, n_suppressed, None


def lint_paths(
    paths: Sequence[str | Path],
    *,
    rules: Optional[Iterable[Rule]] = None,
    baseline: Optional[Baseline] = None,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    min_severity: Severity = Severity.INFO,
    flow: bool = False,
) -> LintResult:
    """Lint a set of files/directories and return a filtered result.

    With ``flow=True`` the whole-program pass (:mod:`repro.analysis.flow`)
    runs over the same discovered file set; its FP009–FP013 findings merge
    into the result *before* baseline partitioning, so the baseline and
    suppression machinery treat syntactic and flow findings identically.
    """
    active = list(rules) if rules is not None else all_rules()
    if select:
        wanted = set(select)
        active = [r for r in active if r.id in wanted]
    if ignore:
        unwanted = set(ignore)
        active = [r for r in active if r.id not in unwanted]

    result = LintResult()
    collected: List[Finding] = []
    files = discover_files(paths)
    for path in files:
        findings, n_sup, err = lint_file(path, active)
        result.n_files += 1
        result.n_suppressed += n_sup
        if err is not None:
            result.parse_errors.append(err)
        collected.extend(f for f in findings if f.severity >= min_severity)

    if flow:
        from repro.analysis.flow import analyze_files

        analysis = analyze_files(files)
        result.flow = analysis
        result.n_suppressed += analysis.n_suppressed
        active_ids = {r.id for r in active}
        collected.extend(
            f
            for f in analysis.findings
            if f.rule_id in active_ids and f.severity >= min_severity
        )

    collected.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    if baseline is not None:
        result.findings, result.baselined = baseline.partition(collected)
    else:
        result.findings = collected
    return result
