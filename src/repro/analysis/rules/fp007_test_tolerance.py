"""FP007: exact float-equality asserts in tests.

In *this* repository many tests assert bitwise equality on purpose — that
is the reproducibility property under test — so a naive "no float == in
tests" rule would drown the suite in noise.  The rule therefore targets the
shape that is almost never intentional: ``assert expr == <literal>`` where
the literal is a **non-dyadic decimal** (0.1, 15.95, 0.3, ...).  Such a
literal does not denote the value written in the source; it denotes the
nearest double, so the assert encodes "my computation rounds exactly like
the parser" — true today, gone after any reassociation.  Dyadic literals
(0.5, 3.25, 0.0) are exactly representable and exact comparison against
them can legitimately pin a bit pattern.

Fix with ``pytest.approx`` / ``math.isclose``, or — where the rounding
chain really is the property under test — annotate with
``# repro: allow[FP007]`` and a reason.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutils import is_exact_dyadic, literal_float_value
from repro.analysis.base import FileContext, Finding, Rule, Severity


class ExactFloatAssert(Rule):
    id = "FP007"
    title = "exact float-equality assert against a non-dyadic literal"
    severity = Severity.WARNING
    rationale = (
        "assert x == 0.1 compares a computation's rounding history against "
        "the parser's; use pytest.approx / math.isclose, or annotate when "
        "the exact rounding chain is the property under test."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.is_test

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Assert):
                continue
            for sub in ast.walk(node.test):
                if not isinstance(sub, ast.Compare):
                    continue
                operands = [sub.left, *sub.comparators]
                for op, left, right in zip(sub.ops, operands, operands[1:]):
                    if not isinstance(op, (ast.Eq, ast.NotEq)):
                        continue
                    for side in (left, right):
                        value = literal_float_value(side)
                        if value is None or is_exact_dyadic(value):
                            continue
                        yield ctx.finding(
                            self,
                            sub,
                            f"exact assert against non-dyadic literal "
                            f"{value!r}; the literal is already rounded — "
                            "use pytest.approx / math.isclose, or annotate "
                            "why the exact rounding chain is the property "
                            "under test",
                        )
                        break
