"""FP013: private-state mutation off the owning lock.

A class that creates ``self._lock = threading.Lock()`` (or ``RLock``) in
``__init__`` has declared its underscore-private state lock-protected —
the obs registry and the worker pool both rely on that discipline for
exact counters under concurrent ``reduce_many`` streams.  Any write to
``self._x`` outside a ``with self._lock:`` block in such a class is a
torn-update hazard that no test reliably catches: the metrics stay
*approximately* right, which is the worst kind of wrong for a
reproducibility audit trail.

Findings are emitted by the flow engine (``repro-lint --flow``); this class
anchors the id/severity/rationale in the shared catalogue.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.base import FileContext, Finding, Rule, Severity


class UnlockedPrivateMutation(Rule):
    id = "FP013"
    title = "lock-owning class mutates private state outside its lock"
    severity = Severity.WARNING
    rationale = (
        "a class holding self._lock declares its private state "
        "lock-protected; mutating it unlocked tears updates under the "
        "concurrent serving streams the pool and obs layers serve"
    )
    flow = True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())
