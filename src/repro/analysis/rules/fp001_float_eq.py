"""FP001: exact equality comparison against a float literal.

``x == 0.3`` is false for most ``x`` that "should" equal 0.3 — the literal
is a rounded decimal, and the left side carries its own rounding history.
Monroe & Job's parenthetic-forms result makes the sharper point: two
*computationally inequivalent* summations of the same data legitimately
differ in the last ulps, so exact comparison encodes an assumption about
evaluation order that refactors silently break.

Comparisons against ``0.0`` (and other small dyadic literals) are flagged at
WARNING rather than ERROR: exact-zero tests are a legitimate FP idiom (sign
tests, sentinel checks, Sterbenz-exact residuals) but each one should carry
a ``# repro: allow[FP001]`` annotation saying why exactness holds.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutils import is_exact_dyadic, literal_float_value
from repro.analysis.base import FileContext, Finding, Rule, Severity


class FloatLiteralEquality(Rule):
    id = "FP001"
    title = "float == / != comparison against a float literal"
    severity = Severity.ERROR
    rationale = (
        "Floating-point results carry rounding history; exact comparison "
        "against a decimal literal assumes one specific evaluation order and "
        "breaks under reassociation. Use math.isclose / a tolerance, or "
        "annotate intentional exact-zero idioms."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        # Tests assert exact values on purpose all over (bitwise
        # reproducibility IS the property under test); FP007 owns test files
        # and targets only the genuinely hazardous non-dyadic literals.
        return not ctx.is_test

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                for side in (left, right):
                    value = literal_float_value(side)
                    if value is None:
                        continue
                    if is_exact_dyadic(value):
                        yield ctx.finding(
                            self,
                            node,
                            f"exact float comparison against {value!r}; if "
                            "exactness is intentional (sentinel/sign test), "
                            "annotate with `# repro: allow[FP001]` and say why",
                            severity=Severity.WARNING,
                        )
                    else:
                        yield ctx.finding(
                            self,
                            node,
                            f"exact float comparison against non-dyadic "
                            f"literal {value!r}; the literal is a rounded "
                            "decimal — use math.isclose or pytest.approx",
                        )
                    break  # one finding per comparison pair
