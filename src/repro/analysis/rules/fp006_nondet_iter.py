"""FP006: nondeterministic iteration order feeding a reduction.

Floating-point addition is not associative, so a sum over an *unordered*
source is a different computation every run: ``sum(my_set)`` hashes
differently across processes (PYTHONHASHSEED), ``os.listdir`` order is
filesystem-dependent, ``glob.glob`` inherits it.  This is the software
analogue of the paper's arrival-order reduction trees — except here the
nondeterminism is an accident, not a modelling choice.

Flagged shapes:

* ``sum(...)`` / ``math.fsum(...)`` / ``np.sum(...)`` whose argument
  constructs or iterates a ``set``/``frozenset``;
* the same reducers over ``os.listdir`` / ``os.scandir`` / ``glob.glob`` /
  ``.iterdir()`` results not wrapped in ``sorted(...)``;
* a ``for`` loop over one of those sources whose body contains a float
  ``+=`` accumulation.

Wrapping the source in ``sorted(...)`` (a total, value-determined order)
resolves the finding.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.astutils import call_name
from repro.analysis.base import FileContext, Finding, Rule, Severity

_REDUCERS = {"sum", "math.fsum", "fsum", "np.sum", "numpy.sum"}
_FS_SOURCES = {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}


#: calls that pin (or collapse) iteration order: anything unordered *inside*
#: them cannot leak hash/filesystem order into the surrounding reduction
_ORDER_PINNERS = {"sorted", "min", "max", "len"}


def _unordered_source(node: ast.AST) -> Optional[str]:
    """Name of the unordered construct feeding the expression, if any.

    The traversal prunes subtrees rooted at an order-pinning call, so
    ``sorted(set(xs))`` is clean *wherever* it appears — including nested
    inside a generator expression or an ``np.array(...)`` wrapper, which a
    flat ``ast.walk`` used to flag falsely.
    """
    if isinstance(node, ast.Call):
        name = call_name(node)
        if name in _ORDER_PINNERS:
            return None  # order is total below this point
        if name in {"set", "frozenset"}:
            return f"{name}(...)"
        if name in _FS_SOURCES:
            return f"{name}(...)"
        if isinstance(node.func, ast.Attribute) and node.func.attr == "iterdir":
            return "<path>.iterdir()"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Set):
        return "a set literal"
    for child in ast.iter_child_nodes(node):
        src = _unordered_source(child)
        if src:
            return src
    return None


def _sorted_wrapped(node: ast.AST) -> bool:
    """True when the expression's outermost call pins a total order."""
    return isinstance(node, ast.Call) and call_name(node) in _ORDER_PINNERS


class NondeterministicIteration(Rule):
    id = "FP006"
    title = "unordered iteration (set / listdir / glob) feeding a reduction"
    severity = Severity.ERROR
    rationale = (
        "FP addition is not associative, so reducing over hash-ordered or "
        "filesystem-ordered sources yields run-to-run different bits; wrap "
        "the source in sorted(...) or reduce through a deterministic "
        "algorithm."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and call_name(node) in _REDUCERS:
                for arg in node.args:
                    if _sorted_wrapped(arg):
                        continue
                    src = _unordered_source(arg)
                    if src:
                        yield ctx.finding(
                            self,
                            node,
                            f"reduction over {src}: iteration order is "
                            "nondeterministic and FP addition is not "
                            "associative; wrap the source in sorted(...)",
                        )
                        break
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if _sorted_wrapped(node.iter):
                    continue
                src = _unordered_source(node.iter)
                if src is None:
                    continue
                for sub in ast.walk(node):
                    if isinstance(sub, ast.AugAssign) and isinstance(
                        sub.op, (ast.Add, ast.Sub)
                    ):
                        yield ctx.finding(
                            self,
                            node,
                            f"accumulation inside a loop over {src}: "
                            "iteration order is nondeterministic; wrap the "
                            "source in sorted(...)",
                        )
                        break
