"""Concrete FP001–FP013 rules, registered on import.

Mirrors :mod:`repro.summation.registry`: each rule module defines a class,
this package instantiates and registers one of each, and
:func:`repro.analysis.base.all_rules` is the authoritative catalogue.

FP001–FP008 are file-local syntactic rules run by the per-file engine;
FP009–FP013 are *flow* rules — their findings come from the whole-program
pass in :mod:`repro.analysis.flow` (``repro-lint --flow``), and the classes
here carry the catalogue metadata (id, severity, rationale) plus a
``flow = True`` marker so the CLI, baselines and suppressions treat both
kinds uniformly.
"""

from repro.analysis.base import register
from repro.analysis.rules.fp001_float_eq import FloatLiteralEquality
from repro.analysis.rules.fp002_bare_sum import BareSum
from repro.analysis.rules.fp003_naive_accum import NaiveLoopAccumulation
from repro.analysis.rules.fp004_eft_patterns import InlineEFTAlgebra
from repro.analysis.rules.fp005_dtype_downcast import DtypeDowncast
from repro.analysis.rules.fp006_nondet_iter import NondeterministicIteration
from repro.analysis.rules.fp007_test_tolerance import ExactFloatAssert
from repro.analysis.rules.fp008_rng_hazards import SharedRngAndMutableDefaults
from repro.analysis.rules.fp009_flow_nondet_source import FlowNondeterminismSource
from repro.analysis.rules.fp010_worker_global import WorkerSharedGlobal
from repro.analysis.rules.fp011_shared_view_escape import SharedViewEscape
from repro.analysis.rules.fp012_shared_write import SharedMemoryWrite
from repro.analysis.rules.fp013_unlocked_mutation import UnlockedPrivateMutation

__all__ = [
    "FloatLiteralEquality",
    "BareSum",
    "NaiveLoopAccumulation",
    "InlineEFTAlgebra",
    "DtypeDowncast",
    "NondeterministicIteration",
    "ExactFloatAssert",
    "SharedRngAndMutableDefaults",
    "FlowNondeterminismSource",
    "WorkerSharedGlobal",
    "SharedViewEscape",
    "SharedMemoryWrite",
    "UnlockedPrivateMutation",
]

for _rule in (
    FloatLiteralEquality(),
    BareSum(),
    NaiveLoopAccumulation(),
    InlineEFTAlgebra(),
    DtypeDowncast(),
    NondeterministicIteration(),
    ExactFloatAssert(),
    SharedRngAndMutableDefaults(),
    FlowNondeterminismSource(),
    WorkerSharedGlobal(),
    SharedViewEscape(),
    SharedMemoryWrite(),
    UnlockedPrivateMutation(),
):
    register(_rule)
