"""Concrete FP001–FP008 rules, registered on import.

Mirrors :mod:`repro.summation.registry`: each rule module defines a class,
this package instantiates and registers one of each, and
:func:`repro.analysis.base.all_rules` is the authoritative catalogue.
"""

from repro.analysis.base import register
from repro.analysis.rules.fp001_float_eq import FloatLiteralEquality
from repro.analysis.rules.fp002_bare_sum import BareSum
from repro.analysis.rules.fp003_naive_accum import NaiveLoopAccumulation
from repro.analysis.rules.fp004_eft_patterns import InlineEFTAlgebra
from repro.analysis.rules.fp005_dtype_downcast import DtypeDowncast
from repro.analysis.rules.fp006_nondet_iter import NondeterministicIteration
from repro.analysis.rules.fp007_test_tolerance import ExactFloatAssert
from repro.analysis.rules.fp008_rng_hazards import SharedRngAndMutableDefaults

__all__ = [
    "FloatLiteralEquality",
    "BareSum",
    "NaiveLoopAccumulation",
    "InlineEFTAlgebra",
    "DtypeDowncast",
    "NondeterministicIteration",
    "ExactFloatAssert",
    "SharedRngAndMutableDefaults",
]

for _rule in (
    FloatLiteralEquality(),
    BareSum(),
    NaiveLoopAccumulation(),
    InlineEFTAlgebra(),
    DtypeDowncast(),
    NondeterministicIteration(),
    ExactFloatAssert(),
    SharedRngAndMutableDefaults(),
):
    register(_rule)
