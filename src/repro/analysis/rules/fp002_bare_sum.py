"""FP002: bare ``sum()`` / ``np.sum`` in accuracy-sensitive modules.

The whole premise of the selector is that reductions in the hot path go
through :mod:`repro.summation.registry`, where the algorithm (and hence the
error/reproducibility contract) is explicit and auditable.  A bare
``np.sum(x)`` in those modules is a reduction whose ordering contract is
whatever NumPy's pairwise blocking happens to be this release — Hallman &
Ipsen's bounds show exactly how that naive accumulation dominates error at
scale.

The rule is scoped to accuracy-sensitive packages (summation, mpi, trees,
selection, exact, interval, fp and the examples); magnitude sums for
condition estimates in ``metrics/`` or workload construction in
``generators/`` are out of scope by default.  Obvious integer folds
(``sum(1 for ...)``, sums of comparisons) are skipped.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutils import call_name
from repro.analysis.base import FileContext, Finding, Rule, Severity

#: Path fragments where a float reduction must go through the registry.
SENSITIVE_PACKAGES: tuple[str, ...] = (
    "repro/summation",
    "repro/mpi",
    "repro/trees",
    "repro/selection",
    "repro/exact",
    "repro/interval",
    "repro/fp",
    "examples",
)

_NAIVE_CALLS = {"sum", "np.sum", "numpy.sum", "np.nansum", "numpy.nansum"}


def _is_integer_fold(call: ast.Call) -> bool:
    """``sum(1 for ...)`` / ``sum(x > 0 for ...)`` / ``sum(range(n))``."""
    if not call.args:
        return False
    arg = call.args[0]
    if isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
        elt = arg.elt
        if isinstance(elt, ast.Compare) or isinstance(elt, ast.BoolOp):
            return True
        if isinstance(elt, ast.Constant) and isinstance(elt.value, int):
            return True
        return False
    if isinstance(arg, ast.Call) and call_name(arg) in {"range", "len"}:
        return True
    return False


class BareSum(Rule):
    id = "FP002"
    title = "bare sum()/np.sum in an accuracy-sensitive module"
    severity = Severity.ERROR
    rationale = (
        "Reductions in accuracy-sensitive modules must go through "
        "repro.summation.registry so the ordering/error contract is explicit; "
        "bare sum()/np.sum accumulates naively in an order the caller does "
        "not control."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_package(*SENSITIVE_PACKAGES) and not ctx.is_test

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            hit = None
            if name in _NAIVE_CALLS:
                if name == "sum" and _is_integer_fold(node):
                    continue
                hit = name
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in {"sum", "nansum"}
            ):
                # method form: ``arr.sum()``, ``x[0].nansum()``, ...
                hit = f"<expr>.{node.func.attr}"
            if hit is None:
                continue
            yield ctx.finding(
                self,
                node,
                f"bare {hit}(...) reduction; route through "
                "repro.summation.registry (e.g. get_algorithm(code).sum_array) "
                "so the accuracy/reproducibility contract is explicit",
            )
