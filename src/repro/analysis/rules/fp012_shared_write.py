"""FP012: write through an attached shared-memory view.

``attach_shared`` is the consumer side of the shard protocol: the owner
packed the operand bytes before dispatch, and every shard reads the same
pages concurrently.  A store through the view (``view[i] = x``,
``view += ...``, ``view.fill(...)``, ``np.add(..., out=view)``) is a
cross-process data race — it mutates operands a sibling shard may not have
read yet, re-associating someone else's reduction mid-flight and breaking
the bitwise parallel==serial contract the pool advertises.

Findings are emitted by the flow engine (``repro-lint --flow``); this class
anchors the id/severity/rationale in the shared catalogue.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.base import FileContext, Finding, Rule, Severity


class SharedMemoryWrite(Rule):
    id = "FP012"
    title = "write to attached shared memory outside the owning shard"
    severity = Severity.ERROR
    rationale = (
        "attached views alias operand pages every shard reads concurrently; "
        "writing through them races siblings and silently changes reduction "
        "inputs — compute into a local copy and return fresh data"
    )
    flow = True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())
