"""FP009: nondeterminism source reachable from a reduction (interprocedural).

The flow analogue of FP006/FP008: those rules see one file; FP009 follows
call edges.  An unseeded RNG, a wall-clock read, an ``os.environ`` lookup,
hash-ordered iteration or a completion-order primitive anywhere in the call
closure of a reduction-bearing function makes that reduction's result a
function of process state, not of its inputs — exactly the reassociation
hazard the paper quantifies, arrived at through software instead of the
network.

Findings are *emitted by the flow engine* (``repro-lint --flow``), not by
:meth:`check` — this class exists so the rule has a stable id, severity and
rationale in the shared catalogue (``--list-rules``, ``--select``, docs,
baselines and suppressions all key off it).  Each finding is anchored at
the source site and carries the full source→sink call chain; suppressing
the source line retires every chain through it.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.base import FileContext, Finding, Rule, Severity


class FlowNondeterminismSource(Rule):
    id = "FP009"
    title = "nondeterminism source reachable from a reduction (flow)"
    severity = Severity.ERROR
    rationale = (
        "an unseeded RNG, wall-clock, env read, unordered iteration or "
        "completion-order wait in the call closure of a reduction makes the "
        "result depend on process state; guard the source or suppress with "
        "a reason at the source line"
    )
    #: emitted by repro.analysis.flow, not by the per-file engine
    flow = True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())
