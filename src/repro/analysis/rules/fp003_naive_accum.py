"""FP003: loop-carried float accumulation without compensation.

The pattern::

    total = 0.0
    for v in values:
        total += v

is the serial comb tree — worst-case ``(n-1)u`` error growth in Hallman &
Ipsen's bounds, and the exact shape whose run-to-run permutation the paper's
Fig. 7 ensembles show drifting.  Inside this codebase such loops should use
an :class:`~repro.summation.base.Accumulator` (Kahan/CP/PR) or ``math.fsum``.

Detection is deliberately conservative to keep false positives near zero:
the rule fires only when the augmented target was initialised to a float
literal (``x = 0.0`` form) in the *same scope* as the loop, so integer
counters and externally-owned state never trip it.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analysis.base import FileContext, Finding, Rule, Severity


def _walk_scope(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk ``scope`` without descending into nested function definitions."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _float_inits(scope: ast.AST) -> set[str]:
    """Names assigned a bare float literal directly in this scope."""
    names: set[str] = set()
    for node in _walk_scope(scope):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Constant):
            if isinstance(node.value.value, float):
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name):
                        names.add(tgt.id)
    return names


class NaiveLoopAccumulation(Rule):
    id = "FP003"
    title = "loop-carried `acc += x` float accumulation without compensation"
    severity = Severity.WARNING
    rationale = (
        "A += loop is the serial reduction tree with worst-case error growth "
        "and no reproducibility contract; use a summation.registry "
        "accumulator or math.fsum."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        scopes = [ctx.tree] + [
            n
            for n in ast.walk(ctx.tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        seen: set[int] = set()  # nested loops: flag each AugAssign once
        for scope in scopes:
            float_names = _float_inits(scope)
            if not float_names:
                continue
            for loop in _walk_scope(scope):
                if not isinstance(loop, (ast.For, ast.AsyncFor, ast.While)):
                    continue
                for node in ast.walk(loop):
                    if (
                        isinstance(node, ast.AugAssign)
                        and isinstance(node.op, (ast.Add, ast.Sub))
                        and isinstance(node.target, ast.Name)
                        and node.target.id in float_names
                        and id(node) not in seen
                    ):
                        seen.add(id(node))
                        yield ctx.finding(
                            self,
                            node,
                            f"loop-carried float accumulation into "
                            f"`{node.target.id}` has serial-tree error growth "
                            "and no reproducibility contract; use a "
                            "summation.registry accumulator or math.fsum",
                        )
