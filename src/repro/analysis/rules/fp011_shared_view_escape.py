"""FP011: shared-memory view escaping its ``attach_shared`` lifetime scope.

``with attach_shared(handle) as view:`` maps another process's shared
memory; ``__exit__`` unmaps it.  Returning the view, yielding it, storing
it (or a slice of it — NumPy slices alias the same pages) on ``self`` or a
module global hands out a pointer into memory that is about to disappear:
the crash arrives later, in unrelated code, as garbage values or a
segfault.  Results leaving a shard function must be fresh arrays
(``np.array(view[...])``) or scalars.

Findings are emitted by the flow engine (``repro-lint --flow``); this class
anchors the id/severity/rationale in the shared catalogue.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.base import FileContext, Finding, Rule, Severity


class SharedViewEscape(Rule):
    id = "FP011"
    title = "attach_shared view escapes its mapping scope"
    severity = Severity.ERROR
    rationale = (
        "ndarray views of an attached shared-memory segment dangle once the "
        "context manager unmaps it; copy before returning/storing — a "
        "dangling view is a use-after-free dressed as an array"
    )
    flow = True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())
