"""FP005: precision-destroying dtype downcasts.

Hallman & Ipsen's probabilistic bounds scale with the unit roundoff ``u``:
dropping from binary64 (``u = 2**-53``) to binary32 (``u = 2**-24``) costs
*nine decimal digits* of headroom before a single operation has happened,
and mixed-precision pipelines make the final accuracy depend on where the
cast sits relative to the reduction — a silent, order-coupled error source.

The rule flags ``astype`` calls, ``dtype=`` arguments and constructor calls
that name a sub-binary64 float type (``float32``, ``float16``, ``half``,
``single``), in string or attribute form.  Intentional narrowings (e.g.
emulating float32 inputs for a sensitivity study) carry a
``# repro: allow[FP005]`` annotation with the rationale.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.astutils import call_name, dotted_name
from repro.analysis.base import FileContext, Finding, Rule, Severity

_NARROW_NAMES = {
    "float32",
    "float16",
    "half",
    "single",
    "np.float32",
    "np.float16",
    "np.half",
    "np.single",
    "numpy.float32",
    "numpy.float16",
    "numpy.half",
    "numpy.single",
}

_NARROW_STRINGS = {"float32", "float16", "f4", "f2", "<f4", "<f2", ">f4", ">f2", "half", "single"}


def _narrow_dtype_expr(node: ast.AST) -> Optional[str]:
    """Return a display name when ``node`` denotes a narrow float dtype."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        if node.value in _NARROW_STRINGS:
            return repr(node.value)
        return None
    name = dotted_name(node)
    if name in _NARROW_NAMES:
        return name
    if isinstance(node, ast.Call):
        # np.dtype("float32")
        inner = node.args[0] if node.args else None
        if inner is not None:
            return _narrow_dtype_expr(inner)
    return None


class DtypeDowncast(Rule):
    id = "FP005"
    title = "downcast to a sub-binary64 float dtype"
    severity = Severity.WARNING
    rationale = (
        "Casting to float32/float16 multiplies unit roundoff by 2**29+ and "
        "couples final accuracy to where the cast sits relative to the "
        "reduction; narrowings need an explicit rationale."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            # astype(<narrow>) in any receiver form
            if isinstance(node.func, ast.Attribute) and node.func.attr == "astype":
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    hit = _narrow_dtype_expr(arg)
                    if hit:
                        yield ctx.finding(
                            self,
                            node,
                            f"astype({hit}) narrows below binary64; annotate "
                            "the precision rationale or keep float64 through "
                            "the reduction",
                        )
                        break
                continue
            # np.float32(x) constructor
            if name in _NARROW_NAMES and (node.args or node.keywords):
                yield ctx.finding(
                    self,
                    node,
                    f"{name}(...) constructs a sub-binary64 value; annotate "
                    "the precision rationale or keep float64",
                )
                continue
            # dtype=<narrow> keyword on any call (np.zeros, np.asarray, ...)
            for kw in node.keywords:
                if kw.arg == "dtype":
                    hit = _narrow_dtype_expr(kw.value)
                    if hit:
                        yield ctx.finding(
                            self,
                            node,
                            f"dtype={hit} allocates sub-binary64 storage; "
                            "annotate the precision rationale or use float64",
                        )
