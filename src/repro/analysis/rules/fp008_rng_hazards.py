"""FP008: shared-RNG and mutable-default hazards.

Everything stochastic in this package flows through
:mod:`repro.util.rng` so experiments replay bit-for-bit; two patterns break
that contract from a distance:

* **Legacy global RNG** — ``np.random.seed`` / ``np.random.uniform`` (the
  module-level singleton) and the stdlib ``random`` module share hidden
  state across every caller, so adding one draw anywhere reorders every
  stream after it.  Use ``repro.util.rng.resolve_rng`` /
  ``np.random.default_rng`` with an explicit seed.
* **Mutable / RNG-valued default arguments** — ``def f(xs=[])`` shares one
  list across calls; ``def f(rng=np.random.default_rng())`` is worse: the
  generator is created once at import and *advances* across calls, so the
  function's output depends on global call history.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutils import call_name
from repro.analysis.base import FileContext, Finding, Rule, Severity

#: Module-level numpy RNG entry points that are *stateful singletons*.
_LEGACY_OK = {
    "np.random.default_rng",
    "numpy.random.default_rng",
    "np.random.Generator",
    "numpy.random.Generator",
    "np.random.SeedSequence",
    "numpy.random.SeedSequence",
    "np.random.PCG64",
    "numpy.random.PCG64",
    "np.random.BitGenerator",
    "numpy.random.BitGenerator",
}

_STDLIB_RANDOM = {
    "random.random",
    "random.seed",
    "random.randint",
    "random.uniform",
    "random.choice",
    "random.shuffle",
    "random.sample",
    "random.gauss",
    "random.randrange",
}


class SharedRngAndMutableDefaults(Rule):
    id = "FP008"
    title = "shared global RNG or mutable/RNG default argument"
    severity = Severity.ERROR
    rationale = (
        "Hidden shared RNG state (np.random.* singleton, stdlib random, or "
        "a default-arg Generator) makes results depend on global call "
        "history; thread seeds through repro.util.rng instead."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = call_name(node)
                if name is None:
                    continue
                if name.startswith(("np.random.", "numpy.random.")) and name not in _LEGACY_OK:
                    yield ctx.finding(
                        self,
                        node,
                        f"{name}(...) uses numpy's hidden global RNG "
                        "singleton; use repro.util.rng.resolve_rng(seed) so "
                        "streams are explicit and replayable",
                    )
                elif name in _STDLIB_RANDOM:
                    yield ctx.finding(
                        self,
                        node,
                        f"{name}(...) draws from the stdlib's shared global "
                        "RNG; use repro.util.rng.resolve_rng(seed)",
                    )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defaults = list(node.args.defaults) + [
                    d for d in node.args.kw_defaults if d is not None
                ]
                for default in defaults:
                    if isinstance(default, (ast.List, ast.Dict, ast.Set, ast.SetComp,
                                            ast.ListComp, ast.DictComp)):
                        yield ctx.finding(
                            self,
                            default,
                            f"mutable default argument in `{node.name}` is "
                            "shared across calls; default to None and build "
                            "inside the body",
                        )
                    elif isinstance(default, ast.Call):
                        cname = call_name(default) or ""
                        if cname in {"set", "list", "dict"} or "default_rng" in cname or cname.endswith("Generator"):
                            yield ctx.finding(
                                self,
                                default,
                                f"default argument `{cname}(...)` in "
                                f"`{node.name}` is evaluated once at import "
                                "and shared (an RNG default also *advances* "
                                "across calls); default to None",
                            )
