"""FP004: inline error-free-transformation algebra outside ``repro.fp``.

TwoSum's error term ``e = (a - (s - bb)) + (b - bb)`` and FastTwoSum's
``e = b - (s - a)`` are *identically zero in real arithmetic*.  Their value
exists only because each intermediate rounds — which makes them uniquely
fragile: an aggressive optimiser (``-ffast-math`` semantics, a JIT with
reassociation licence) or a well-meaning refactor that "simplifies the
algebra" silently deletes the compensation.  Monroe & Job's parenthetic
forms are exactly this hazard class.

The rule recognises the fingerprint — an assignment ``s = a + b`` followed,
in the same scope, by a subtraction that recomputes an addend via ``s``
(``s - a``, ``s - b``, or the roundoff shapes ``a - s`` / ``b - s``) — and
directs the author to the audited primitives in :mod:`repro.fp.eft`.
``repro/fp`` itself is exempt: that package is where the algebra is allowed
to live, under tests that pin its bit-level behaviour.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from repro.analysis.astutils import expr_key
from repro.analysis.base import FileContext, Finding, Rule, Severity

#: Packages allowed to hand-write EFT algebra.
EXEMPT_PACKAGES: tuple[str, ...] = ("repro/fp",)


def _walk_scope(scope: ast.AST) -> Iterator[ast.AST]:
    stack: List[ast.AST] = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _simple(node: ast.AST) -> bool:
    """Only Name/Attribute/Subscript operands participate — arbitrary
    subexpressions would make structural matching meaningless."""
    return isinstance(node, (ast.Name, ast.Attribute, ast.Subscript))


class InlineEFTAlgebra(Rule):
    id = "FP004"
    title = "inline TwoSum/FastTwoSum algebra outside repro.fp"
    severity = Severity.WARNING
    rationale = (
        "Compensation terms like `b - (s - a)` after `s = a + b` are zero in "
        "real arithmetic and survive only by rounding; reassociation or a "
        "'simplifying' refactor deletes them. Centralise in repro.fp.eft."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return not ctx.in_package(*EXEMPT_PACKAGES)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        scopes = [ctx.tree] + [
            n
            for n in ast.walk(ctx.tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for scope in scopes:
            # sum variable key -> set of addend keys, from `s = a + b`
            sums: Dict[str, Set[str]] = {}
            for node in _walk_scope(scope):
                if (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and _simple(node.targets[0])
                    and isinstance(node.value, ast.BinOp)
                    and isinstance(node.value.op, ast.Add)
                    and _simple(node.value.left)
                    and _simple(node.value.right)
                ):
                    sums.setdefault(expr_key(node.targets[0]), set()).update(
                        (expr_key(node.value.left), expr_key(node.value.right))
                    )
            if not sums:
                continue
            for node in _walk_scope(scope):
                if not (
                    isinstance(node, ast.BinOp)
                    and isinstance(node.op, ast.Sub)
                    and _simple(node.left)
                    and _simple(node.right)
                ):
                    continue
                lk, rk = expr_key(node.left), expr_key(node.right)
                # `s - a` (recover the other addend) or `a - s` (roundoff)
                hit = (lk in sums and rk in sums[lk]) or (
                    rk in sums and lk in sums[rk]
                )
                if hit:
                    yield ctx.finding(
                        self,
                        node,
                        "inline error-free-transformation algebra (recomputing "
                        "an addend through the rounded sum); use "
                        "repro.fp.eft.two_sum / fast_two_sum so the "
                        "compensation is centralised and protected",
                    )
