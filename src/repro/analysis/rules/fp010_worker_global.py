"""FP010: module-level mutable state touched inside pool workers without
worker-state registration.

A ``ProcessPoolExecutor`` worker is a separate process: module-level dicts,
lists and caches mutated there diverge silently from the parent's copy (and
from every sibling's).  Reads are just as hazardous when the parent mutates
the container after pool start — forkserver/spawn workers materialise the
module fresh and see a different snapshot than a forked worker would.

The sanctioned protocol is :func:`repro.util.pool.register_worker_state`:
state registered there is built *inside* each worker by a factory the
analyzer can see (or by an executor ``initializer=``), so every process
constructs the same value from the same inputs.  Accesses whose only
writers live in the closure of registered initializers do not fire.

Findings are emitted by the flow engine (``repro-lint --flow``); this class
anchors the id/severity/rationale in the shared catalogue.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.base import FileContext, Finding, Rule, Severity


class WorkerSharedGlobal(Rule):
    id = "FP010"
    title = "module-level mutable state in pool workers without registration"
    severity = Severity.WARNING
    rationale = (
        "pool workers are separate processes; unregistered module-level "
        "mutable state diverges per process — register a factory via "
        "repro.util.pool.register_worker_state or document why per-worker "
        "divergence cannot change results"
    )
    flow = True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())
