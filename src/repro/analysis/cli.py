"""``repro-lint``: the FP-safety & determinism linter's console entry point.

Usage::

    repro-lint src tests examples                    # text report, exit 1 on findings
    repro-lint src --format json                     # machine-readable
    repro-lint src --format sarif                    # CI code-scanning artifact
    repro-lint src --flow                            # + whole-program FP009-FP013
    repro-lint src --flow --certificates certs.json  # determinism certificates
    repro-lint src --baseline .repro-lint-baseline.json
    repro-lint src --baseline b.json --write-baseline  # (re)record current findings
    repro-lint --list-rules                          # rule catalogue
    repro-lint src --select FP001,FP006              # subset of rules

Exit codes: 0 clean (after suppressions/baseline), 1 findings, 2 parse
errors or usage errors.  Parse errors outrank findings: a file the linter
cannot read is a file it cannot vouch for, and a baseline must never be
written over one.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.base import Severity, all_rules
from repro.analysis.baseline import Baseline
from repro.analysis.engine import LintResult, lint_paths

__all__ = ["main", "build_parser", "run"]

_DEFAULT_PATHS = ("src", "tests", "examples")

#: distinct exit status for parse/usage errors (argparse uses 2 as well)
EXIT_CLEAN, EXIT_FINDINGS, EXIT_ERROR = 0, 1, 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based FP-safety & determinism linter "
            "(syntactic rules FP001-FP008; whole-program flow rules "
            "FP009-FP013 with --flow)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(_DEFAULT_PATHS),
        help=f"files or directories to lint (default: {' '.join(_DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--flow",
        action="store_true",
        help=(
            "also run the whole-program flow pass (call-graph taint "
            "analysis, rules FP009-FP013, determinism certificates)"
        ),
    )
    parser.add_argument(
        "--certificates",
        metavar="FILE",
        help=(
            "with --flow: write the serving-entrypoint determinism "
            "certificates (JSON) to FILE ('-' for stdout)"
        ),
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="JSON baseline of accepted findings; only new findings fail",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to --baseline FILE and exit 0",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="IDS",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--min-severity",
        choices=tuple(s.name.lower() for s in Severity),
        default="info",
        help="report findings at or above this severity (default: info)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="append per-rule finding counts to the text report",
    )
    return parser


def _split_ids(raw: Optional[str]) -> Optional[List[str]]:
    if not raw:
        return None
    return [tok.strip().upper() for tok in raw.split(",") if tok.strip()]


def _print_rules() -> None:
    for rule in all_rules():
        kind = " (flow)" if getattr(rule, "flow", False) else ""
        print(f"{rule.id}  [{rule.severity}]{kind}  {rule.title}")
        print(f"       {rule.rationale}")


def _flow_summary_lines(result: LintResult) -> List[str]:
    analysis = result.flow
    if analysis is None:
        return []
    from repro.analysis.flow import flow_certificates

    lines = [
        f"flow: {len(analysis.graph.modules)} module(s), "
        f"{len(analysis.graph.functions)} function(s), "
        f"{analysis.graph.n_edges} edge(s) in {analysis.elapsed_s:.2f}s"
    ]
    for cert in flow_certificates(analysis):
        if not cert["resolved"]:
            lines.append(
                f"certificate {cert['entrypoint']}: UNRESOLVED "
                "(entrypoint not in the analyzed tree)"
            )
            continue
        counts = cert["counts"]
        status = "clean" if cert["clean"] else "UNGUARDED"
        lines.append(
            f"certificate {cert['entrypoint']}: {status} "
            f"({cert['n_functions']} function(s); "
            f"{counts['sources_unguarded']} unguarded / "
            f"{counts['sources_guarded']} guarded source(s); "
            f"{counts['hazards_unguarded']} unguarded / "
            f"{counts['hazards_guarded']} guarded hazard(s))"
        )
    return lines


def _report_text(result: LintResult, statistics: bool) -> None:
    for finding in result.parse_errors + result.findings:
        print(finding.format_text())
    if statistics and result.findings:
        counts: dict = {}
        for f in result.findings:
            counts[f.rule_id] = counts.get(f.rule_id, 0) + 1
        print()
        for rule_id in sorted(counts):
            print(f"{rule_id}: {counts[rule_id]}")
    for line in _flow_summary_lines(result):
        print(line)
    tail = (
        f"{len(result.findings)} finding(s) in {result.n_files} file(s)"
        f" ({result.n_suppressed} suppressed, {len(result.baselined)} baselined)"
    )
    if result.parse_errors:
        tail += f", {len(result.parse_errors)} file(s) failed to parse"
    print(tail)


def _report_json(result: LintResult) -> None:
    payload = {
        "findings": [f.to_dict() for f in result.findings],
        "parse_errors": [f.to_dict() for f in result.parse_errors],
        "baselined": len(result.baselined),
        "suppressed": result.n_suppressed,
        "files": result.n_files,
        "clean": result.clean,
    }
    if result.flow is not None:
        from repro.analysis.flow import flow_certificates

        analysis = result.flow
        payload["flow"] = {
            "modules": len(analysis.graph.modules),
            "functions": len(analysis.graph.functions),
            "edges": analysis.graph.n_edges,
            "elapsed_seconds": analysis.elapsed_s,
            "certificates": flow_certificates(analysis),
        }
    print(json.dumps(payload, indent=2))


def _report_sarif(result: LintResult) -> None:
    from repro.analysis.sarif import sarif_json

    print(sarif_json(result))


def _write_certificates(result: LintResult, target: str) -> None:
    from repro.analysis.flow import flow_certificates
    from repro.analysis.flow.certificate import certificates_to_json

    text = certificates_to_json(flow_certificates(result.flow))
    if target == "-":
        print(text)
    else:
        Path(target).write_text(text + "\n")


def run(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        _print_rules()
        return EXIT_CLEAN

    if args.write_baseline and not args.baseline:
        parser.error("--write-baseline requires --baseline FILE")
    if args.certificates and not args.flow:
        parser.error("--certificates requires --flow")

    baseline = None
    if args.baseline and not args.write_baseline:
        baseline_path = Path(args.baseline)
        if baseline_path.exists():
            try:
                baseline = Baseline.load(baseline_path)
            except (ValueError, KeyError, json.JSONDecodeError) as exc:
                parser.error(f"cannot read baseline {baseline_path}: {exc}")
        else:
            parser.error(f"baseline file not found: {baseline_path}")

    known = {rule.id for rule in all_rules()}
    for flag in ("select", "ignore"):
        unknown = [i for i in (_split_ids(getattr(args, flag)) or []) if i not in known]
        if unknown:
            # a typo'd --select would otherwise select zero rules and
            # report a clean pass — fail loudly instead
            parser.error(f"--{flag}: unknown rule id(s): {', '.join(unknown)}")

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        parser.error(f"no such path(s): {', '.join(missing)}")

    result = lint_paths(
        args.paths,
        baseline=baseline,
        select=_split_ids(args.select),
        ignore=_split_ids(args.ignore),
        min_severity=Severity[args.min_severity.upper()],
        flow=args.flow,
    )

    if args.write_baseline:
        if result.parse_errors:
            # refusing beats silently blessing a tree we couldn't read
            for err in result.parse_errors:
                print(err.format_text(), file=sys.stderr)
            print(
                "refusing to write a baseline while files fail to parse",
                file=sys.stderr,
            )
            return EXIT_ERROR
        Baseline.from_findings(result.findings).save(args.baseline)
        print(
            f"wrote {len(result.findings)} finding(s) to baseline {args.baseline}"
        )
        return EXIT_CLEAN

    if args.format == "json":
        _report_json(result)
    elif args.format == "sarif":
        _report_sarif(result)
    else:
        _report_text(result, args.statistics)

    if args.certificates:
        _write_certificates(result, args.certificates)

    if result.parse_errors:
        return EXIT_ERROR
    return EXIT_CLEAN if result.clean else EXIT_FINDINGS


def main() -> None:  # pragma: no cover - console wrapper
    sys.exit(run())


if __name__ == "__main__":  # pragma: no cover
    main()
