"""Cost model of the summation algorithms.

Fig. 5 establishes the expense ordering — "Standard summation is the
cheapest and least complex. Kahan's compensated summation, then composite
precision summation, and finally prerounded summation are expected to
progressively provide more accuracy at the expense of performance."  The
selector needs that ordering *quantified* so it can report the expected cost
of its decision and so the ablation bench can locate the crossover where
profiling overhead stops paying for itself.

Default per-element relative costs come from the flop structure of our
kernels (1 add for ST; 6 flops + compensation folds for K; TwoSum + error
propagation for CP; K-fold extraction + integer deposit for PR).  They can
be replaced by *measured* costs via :meth:`CostModel.calibrate`, which times
the actual kernels on this machine — the honest thing to do, since constant
factors are implementation properties, not paper properties.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Mapping

import numpy as np

from repro.summation.base import SumContext
from repro.summation.registry import get_algorithm

__all__ = ["CostModel", "DEFAULT_RELATIVE_COSTS"]

#: Flop-structure defaults, relative to ST = 1.
DEFAULT_RELATIVE_COSTS: Mapping[str, float] = {
    "ST": 1.0,
    "FB": 1.3,
    "K": 2.5,
    "CP": 4.0,
    "PR": 9.0,
    "DD": 5.0,
    "KBN": 3.0,
    "PW": 1.0,
    "SO": 3.0,
    "EX": 30.0,
    "IV": 4.5,
    "AS": 8.0,
}


@dataclass(frozen=True)
class CostModel:
    """Relative per-element reduction costs, ST-normalised."""

    relative: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_RELATIVE_COSTS)
    )
    #: extra passes over the data that runtime profiling costs (ST-units)
    profiling_overhead: float = 2.0

    def cost(self, code: str, n: int) -> float:
        """Cost of reducing ``n`` values with algorithm ``code`` (ST-units)."""
        if code not in self.relative:
            raise KeyError(f"no cost entry for algorithm {code!r}")
        return self.relative[code] * n

    def rank(self, codes: "list[str]") -> "list[str]":
        """Codes sorted cheapest-first."""
        return sorted(codes, key=lambda c: self.relative.get(c, float("inf")))

    def selection_cost(self, code: str, n: int, *, profiled: bool = True) -> float:
        """Total cost of profile-then-reduce vs just reducing."""
        extra = self.profiling_overhead * n if profiled else 0.0
        return self.cost(code, n) + extra

    def calibrate(
        self, codes: "list[str] | None" = None, n: int = 1 << 18, repeats: int = 3
    ) -> "CostModel":
        """Measure real kernel timings on this machine and return an updated
        model (ST stays the unit)."""
        codes = list(self.relative) if codes is None else codes
        rng = np.random.default_rng(0)
        data = rng.uniform(-1.0, 1.0, size=n)
        ctx = SumContext.for_data(data)
        timings: dict[str, float] = {}
        for code in codes:
            alg = get_algorithm(code)
            alg.sum_array(data, ctx)  # warm
            best = float("inf")
            for _ in range(repeats):
                t0 = time.perf_counter()
                alg.sum_array(data, ctx)
                best = min(best, time.perf_counter() - t0)
            timings[code] = best
        st = timings.get("ST")
        if st is None or st == 0.0:  # repro: allow[FP001] -- zero measured std means exact
            raise RuntimeError("calibration needs the ST baseline")
        merged = dict(self.relative)
        merged.update({c: t / st for c, t in timings.items()})
        return replace(self, relative=merged)
