"""AdaptiveReducer: end-to-end intelligent runtime selection.

This is the system the paper argues for (Sec. V.D): "estimable quantities
such as condition number and dynamic range can guide runtime selection of a
reduction operator with the appropriate performance/reproducibility tradeoff
for the application at hand."

Pipeline per reduction:

1. **Profile** — every rank sketches its chunk in one vectorised pass; the
   sketches merge in an (exactly associative) allreduce.
2. **Select** — a policy (analytic model or calibrated grid classifier)
   picks the cheapest algorithm whose predicted variability meets the
   application's tolerance.
3. **Reduce** — the chosen algorithm's accumulator runs as a custom op
   through the simulated communicator; for PR the max from step 1 doubles
   as the pre-pass, so no extra data pass is needed.

The returned :class:`AdaptiveResult` carries the decision record so
applications (and our benches) can audit what was chosen and why.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Protocol, Sequence

import numpy as np

from repro.metrics.properties import SetProfile
from repro.mpi.comm import ReduceResult, SimComm
from repro.mpi.ops import make_reduction_op
from repro.obs import get_registry
from repro.selection.policy import AnalyticPolicy, SelectionDecision
from repro.selection.profile import StreamProfile, profile_batch, profile_chunk
from repro.summation.base import SumContext
from repro.summation.registry import get_algorithm
from repro.trees.tree import ReductionTree
from repro.util.chunking import split_indices
from repro.util.pool import SharedArray, attach_shared, get_pool, shard_plan
from repro.util.timing import Stopwatch

__all__ = ["Policy", "AdaptiveResult", "AdaptiveReducer"]

_OBS = get_registry()

#: default decision-cache capacity: one serving process sees a bounded set
#: of (n, k-decade, dr, threshold) signatures in steady state; 4096 covers
#: the whole Fig. 12 grid cross every threshold the benches use with room
#: to spare, while bounding a pathological high-cardinality stream
DEFAULT_DECISION_CACHE_SIZE = 4096


class Policy(Protocol):
    """Anything that can turn (profile, threshold) into a decision."""

    def select(self, profile: SetProfile, threshold: float) -> SelectionDecision:
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class AdaptiveResult:
    """Reduction value plus the audited decision that produced it."""

    value: float
    decision: SelectionDecision
    reduce_result: ReduceResult
    profile_seconds: float
    reduce_seconds: float


class AdaptiveReducer:
    """Profile -> select -> reduce over a simulated communicator."""

    def __init__(
        self,
        comm: SimComm,
        policy: "Policy | None" = None,
        *,
        threshold: float = 1e-13,
        cache_size: int = DEFAULT_DECISION_CACHE_SIZE,
    ) -> None:
        if threshold < 0:
            raise ValueError("threshold must be >= 0")
        if cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        self.comm = comm
        self.policy = policy if policy is not None else AnalyticPolicy()
        self.threshold = threshold
        self.cache_size = int(cache_size)
        self._decision_cache: "OrderedDict[tuple, SelectionDecision]" = OrderedDict()
        self._cache_hits = 0
        self._cache_misses = 0
        self._cache_evictions = 0

    def profile(self, chunks: Sequence[np.ndarray]) -> StreamProfile:
        """Step 1: sketch + allreduce-merge."""
        total = StreamProfile()
        for chunk in chunks:
            total.merge(profile_chunk(chunk))
        return total

    def reduce(
        self,
        chunks: Sequence[np.ndarray],
        *,
        threshold: "float | None" = None,
        tree: "ReductionTree | str" = "topology",
        nondeterministic: bool = False,
    ) -> AdaptiveResult:
        """Adaptively reduce distributed data to one double.

        ``nondeterministic=True`` routes through the arrival-order reduce,
        modelling a production run whose tree the application cannot pin.
        """
        t = self.threshold if threshold is None else threshold
        if t < 0:
            raise ValueError("threshold must be >= 0")
        with Stopwatch() as sw_profile:
            sketch = self.profile(chunks)
            with Stopwatch() as sw_select:
                if nondeterministic and getattr(
                    self.policy, "supports_shape_hint", False
                ):
                    # arrival-order trees have unknown (chain-heavy) shapes:
                    # profile the tree-shape parameter conservatively, as the
                    # paper's list of profiled quantities (n, k, dr, tree
                    # shape) prescribes
                    decision = self.policy.select(
                        sketch.as_set_profile(), t, shape="unknown"
                    )
                else:
                    decision = self.policy.select(sketch.as_set_profile(), t)
        algorithm = get_algorithm(decision.code)
        # Reuse the profile's global max as PR's pre-pass: no extra data scan.
        context = (
            SumContext(max_abs=sketch.max_abs, n_hint=sketch.n)
            if algorithm.needs_context
            else None
        )
        op = make_reduction_op(algorithm, context)
        with Stopwatch() as sw_reduce:
            if nondeterministic:
                result = self.comm.reduce_nondeterministic(chunks, op)
            else:
                result = self.comm.reduce(chunks, op, tree)
        if _OBS.enabled:
            _OBS.counter(
                "repro_selector_selections_total", algorithm=decision.code
            ).inc()
            _OBS.histogram("repro_selector_profile_seconds").observe(
                sw_profile.elapsed
            )
            _OBS.histogram("repro_selector_select_seconds").observe(
                sw_select.elapsed
            )
            _OBS.histogram("repro_selector_reduce_seconds").observe(
                sw_reduce.elapsed
            )
        return AdaptiveResult(
            value=result.value,
            decision=decision,
            reduce_result=result,
            profile_seconds=sw_profile.elapsed,
            reduce_seconds=sw_reduce.elapsed,
        )

    # -- batched serving path --------------------------------------------------
    def reduce_many(
        self,
        batches: Sequence[Sequence[np.ndarray]],
        *,
        threshold: "float | None" = None,
        tree: "ReductionTree | str" = "topology",
        workers: "int | None" = None,
    ) -> "list[AdaptiveResult]":
        """Adaptively reduce a stream of independent reductions in bulk.

        The serving path: uniform-width streams profile as one vectorised
        sweep (:func:`repro.selection.profile.profile_batch`, bitwise-equal
        to per-item profiling; ragged streams fall back to the loop), the
        selection step is memoised in a decision cache keyed by the profile
        signature (``n``, condition-number decade, dynamic range,
        threshold) — the decade granularity selection actually operates at —
        and items choosing the same algorithm execute together through
        :meth:`SimComm.reduce_batch`, so packing, schedule compilation and
        kernel dispatch are paid once per algorithm instead of once per
        item.  Context-needing algorithms (PR) keep their per-item pre-pass.

        ``workers`` adds the multicore axis: the item stream splits into
        contiguous shards, each shard runs the full profile → select →
        grouped-reduce pipeline in a persistent worker process (operands
        ship zero-copy through shared memory), and the reassembled results
        are *bitwise-identical* to the serial path — every item's reduction
        is independent, so sharding cannot change any value or decision.
        ``workers=None`` defers to ``REPRO_WORKERS``/cpu-count behind an
        adaptive bytes-and-items cutover (small batches never pay IPC);
        an explicit ``workers >= 2`` always parallelises; ``workers<=1``
        forces the serial path.  Parallel shards keep worker-local decision
        caches, so :meth:`decision_cache_info` only reflects serial calls.

        Each item's value is bitwise-equal to a standalone :meth:`reduce`
        with the same decision; ``profile_seconds``/``reduce_seconds`` are
        the *amortised* per-item costs (phase total / number of items).
        """
        t = self.threshold if threshold is None else threshold
        if t < 0:
            raise ValueError("threshold must be >= 0")
        if not batches:
            return []
        pool_workers, n_shards = shard_plan(
            len(batches), _payload_bytes(batches), workers
        )
        if n_shards > 1:
            return self._reduce_many_parallel(batches, t, tree, pool_workers, n_shards)
        with Stopwatch() as sw_profile:
            # uniform-width streams profile as one vectorised sweep; the
            # batched sketches are bitwise-equal to the per-item loop
            sketches = profile_batch(batches)
            if sketches is None:
                sketches = [self.profile(chunks) for chunks in batches]
            with Stopwatch() as sw_select:
                decisions = [self._select_cached(sk, t) for sk in sketches]
        groups: "dict[str, list[int]]" = {}
        for i, decision in enumerate(decisions):
            groups.setdefault(decision.code, []).append(i)
        results: "list[ReduceResult | None]" = [None] * len(batches)
        with Stopwatch() as sw_reduce:
            for code, indices in groups.items():
                algorithm = get_algorithm(code)
                if algorithm.needs_context:
                    for i in indices:
                        sk = sketches[i]
                        op = make_reduction_op(
                            algorithm, SumContext(max_abs=sk.max_abs, n_hint=sk.n)
                        )
                        results[i] = self.comm.reduce(batches[i], op, tree)
                else:
                    op = make_reduction_op(algorithm)
                    group_results = self.comm.reduce_batch(
                        [batches[i] for i in indices], op, tree
                    )
                    for i, rr in zip(indices, group_results):
                        results[i] = rr
        if _OBS.enabled:
            for code, indices in groups.items():
                _OBS.counter(
                    "repro_selector_selections_total", algorithm=code
                ).inc(len(indices))
            _OBS.histogram("repro_selector_profile_seconds").observe(
                sw_profile.elapsed
            )
            _OBS.histogram("repro_selector_select_seconds").observe(
                sw_select.elapsed
            )
            _OBS.histogram("repro_selector_reduce_seconds").observe(
                sw_reduce.elapsed
            )
        n_items = len(batches)
        profile_each = sw_profile.elapsed / n_items
        reduce_each = sw_reduce.elapsed / n_items
        return [
            AdaptiveResult(
                value=rr.value,
                decision=decision,
                reduce_result=rr,
                profile_seconds=profile_each,
                reduce_seconds=reduce_each,
            )
            for rr, decision in zip(results, decisions)
        ]

    def _reduce_many_parallel(
        self,
        batches: Sequence[Sequence[np.ndarray]],
        threshold: float,
        tree: "ReductionTree | str",
        pool_workers: int,
        n_shards: int,
    ) -> "list[AdaptiveResult]":
        """Shard the stream over the persistent pool (bitwise = serial path).

        All chunk bytes are packed once into a single shared-memory segment;
        workers reconstruct their shard's chunk lists as zero-copy float64
        views and run the serial :meth:`reduce_many` pipeline on them.
        Chunks are normalised with the same ``np.asarray(..., float64)``
        coercion the serial pipeline applies, so worker inputs are
        bit-identical to what the serial path would profile and reduce.
        """
        flats: "list[np.ndarray]" = []
        lengths: "list[int]" = []
        ranks: "list[int]" = []
        for chunks in batches:
            ranks.append(len(chunks))
            for c in chunks:
                a = np.asarray(c, dtype=np.float64).ravel()
                flats.append(a)
                lengths.append(a.size)
        flat = (
            np.concatenate(flats) if flats else np.zeros(0, dtype=np.float64)
        )
        lengths_arr = np.asarray(lengths, dtype=np.int64)
        ranks_arr = np.asarray(ranks, dtype=np.int64)
        shards = split_indices(len(batches), n_shards)
        pool = get_pool(pool_workers)
        with SharedArray(flat) as shm:
            payloads = [
                (
                    shm.handle,
                    lengths_arr,
                    ranks_arr,
                    s.start,
                    s.stop,
                    self.comm,
                    self.policy,
                    threshold,
                    self.cache_size,
                    tree,
                )
                for s in shards
            ]
            shard_results = pool.map(
                _reduce_many_shard, payloads, chunksize=1, path="reduce_many"
            )
        results: "list[AdaptiveResult]" = []
        for part in shard_results:
            results.extend(part)
        if _OBS.enabled:
            by_code: "dict[str, int]" = {}
            for r in results:
                by_code[r.decision.code] = by_code.get(r.decision.code, 0) + 1
            for code, count in by_code.items():
                _OBS.counter(
                    "repro_selector_selections_total", algorithm=code
                ).inc(count)
        return results

    def _select_cached(self, sketch: StreamProfile, threshold: float) -> SelectionDecision:
        """Policy query memoised at decision granularity (capped LRU).

        Cache hits splice the item's own profile into the cached decision so
        the audit trail stays per-item; ``predicted_std`` is the bucket
        representative's (selection is decade-granular by design, Fig. 12).
        The cache is an LRU capped at ``cache_size`` entries: a long-lived
        serving process that sweeps many (n, k-decade, dr, threshold)
        signatures evicts the coldest decision instead of growing without
        bound.
        """
        key = self._decision_key(sketch, threshold)
        cached = self._decision_cache.get(key)
        if cached is not None:
            self._cache_hits += 1
            self._decision_cache.move_to_end(key)
            if _OBS.enabled:
                _OBS.counter("repro_selector_decision_cache_hits_total").inc()
            return replace(cached, profile=sketch.as_set_profile())
        self._cache_misses += 1
        if _OBS.enabled:
            _OBS.counter("repro_selector_decision_cache_misses_total").inc()
        decision = self.policy.select(sketch.as_set_profile(), threshold)
        self._decision_cache[key] = decision
        while len(self._decision_cache) > self.cache_size:
            self._decision_cache.popitem(last=False)
            self._cache_evictions += 1
            if _OBS.enabled:
                _OBS.counter(
                    "repro_selector_decision_cache_evictions_total"
                ).inc()
        return decision

    @staticmethod
    def _decision_key(sketch: StreamProfile, threshold: float) -> tuple:
        k = sketch.condition_estimate()
        if math.isinf(k):
            decade: "int | str" = "inf"
        elif k > 0.0:
            decade = int(math.floor(math.log10(k)))
        else:
            decade = 0
        return (sketch.n, decade, sketch.dynamic_range_estimate(), float(threshold))

    def decision_cache_info(self) -> dict:
        """Cache statistics: ``{"size", "max_size", "hits", "misses",
        "evictions"}``."""
        return {
            "size": len(self._decision_cache),
            "max_size": self.cache_size,
            "hits": self._cache_hits,
            "misses": self._cache_misses,
            "evictions": self._cache_evictions,
        }

    def clear_decision_cache(self) -> None:
        self._decision_cache.clear()
        self._cache_hits = 0
        self._cache_misses = 0
        self._cache_evictions = 0


def _payload_bytes(batches: Sequence[Sequence[np.ndarray]]) -> int:
    """Total float64 bytes a stream would ship to workers (cutover input)."""
    total = 0
    for chunks in batches:
        for c in chunks:
            nbytes = getattr(c, "nbytes", None)
            total += int(nbytes) if nbytes is not None else len(c) * 8
    return total


def _reduce_many_shard(payload: tuple) -> "list[AdaptiveResult]":
    """Worker: run the serial serving pipeline on one contiguous shard.

    Rebuilds the reducer from its picklable spec (communicator, policy,
    threshold, cache size), attaches the shared operand segment, and slices
    out zero-copy chunk views for items ``[start, stop)``.  Views never
    escape: results carry only scalars, decisions and trees.
    """
    (
        handle,
        lengths,
        ranks,
        start,
        stop,
        comm,
        policy,
        threshold,
        cache_size,
        tree,
    ) = payload
    offsets = np.concatenate(([0], np.cumsum(lengths)))
    chunk_base = np.concatenate(([0], np.cumsum(ranks)))
    with attach_shared(handle) as flat:
        batches = []
        for i in range(start, stop):
            c0, c1 = int(chunk_base[i]), int(chunk_base[i + 1])
            batches.append(
                [flat[int(offsets[j]) : int(offsets[j + 1])] for j in range(c0, c1)]
            )
        reducer = AdaptiveReducer(
            comm, policy, threshold=threshold, cache_size=cache_size
        )
        results = reducer.reduce_many(
            batches, threshold=threshold, tree=tree, workers=1
        )
        del batches
    return results
