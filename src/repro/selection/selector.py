"""AdaptiveReducer: end-to-end intelligent runtime selection.

This is the system the paper argues for (Sec. V.D): "estimable quantities
such as condition number and dynamic range can guide runtime selection of a
reduction operator with the appropriate performance/reproducibility tradeoff
for the application at hand."

Pipeline per reduction:

0. **Bound tier** (optional, ``bound_confidence=...``) — O(1) Hallman–Ipsen
   analytic certification from one cheap statistics pass
   (:mod:`repro.selection.bound_tier`).  When the provable error bound of
   the policy's cheapest acceptable algorithm already meets the threshold,
   steps 1–2 are skipped entirely; the tier only resolves items where it
   can *prove* the profiling policy would pick the same code, so enabling
   it never changes a selection outcome — only its cost.
1. **Profile** — every rank sketches its chunk in one vectorised pass; the
   sketches merge in an (exactly associative) allreduce.
2. **Select** — a policy (analytic model or calibrated grid classifier)
   picks the cheapest algorithm whose predicted variability meets the
   application's tolerance.
3. **Reduce** — the chosen algorithm's accumulator runs as a custom op
   through the simulated communicator; for PR the max from step 1 doubles
   as the pre-pass, so no extra data pass is needed.

Selection is precision-aware end to end: each item's unit roundoff is taken
from its input dtype (fp16/fp32/fp64), threaded through the bound tier, the
policy query and the decision cache key, so low-precision scenario inputs
are never silently upcast inside the decision (execution stays binary64).

The returned :class:`AdaptiveResult` carries the decision record so
applications (and our benches) can audit what was chosen and why.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Protocol, Sequence

import numpy as np

from repro.fp.properties import UNIT_ROUNDOFF
from repro.metrics.properties import SetProfile
from repro.mpi.comm import ReduceResult, SimComm
from repro.mpi.ops import make_reduction_op
from repro.mpi.topology import tree_cost
from repro.obs import get_registry
from repro.selection.bound_tier import (
    BoundStats,
    BoundTier,
    bound_stats_item,
    bound_stats_stream,
    item_unit_roundoff,
)
from repro.selection.policy import AnalyticPolicy, SelectionDecision
from repro.selection.profile import StreamProfile, profile_batch, profile_chunk
from repro.summation.base import SumContext
from repro.summation.registry import all_algorithms, get_algorithm
from repro.trees.tree import ReductionTree
from repro.util.chunking import split_indices
from repro.util.pool import arena_pair, arena_view, get_pool, shard_plan
from repro.util.timing import Stopwatch

__all__ = ["Policy", "AdaptiveResult", "AdaptiveReducer"]

_OBS = get_registry()

#: default decision-cache capacity: one serving process sees a bounded set
#: of (n, k-decade, dr, threshold) signatures in steady state; 4096 covers
#: the whole Fig. 12 grid cross every threshold the benches use with room
#: to spare, while bounding a pathological high-cardinality stream
DEFAULT_DECISION_CACHE_SIZE = 4096


class Policy(Protocol):
    """Anything that can turn (profile, threshold) into a decision."""

    def select(self, profile: SetProfile, threshold: float) -> SelectionDecision:
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class AdaptiveResult:
    """Reduction value plus the audited decision that produced it."""

    value: float
    decision: SelectionDecision
    reduce_result: ReduceResult
    profile_seconds: float
    reduce_seconds: float


class AdaptiveReducer:
    """Profile -> select -> reduce over a simulated communicator."""

    def __init__(
        self,
        comm: SimComm,
        policy: "Policy | None" = None,
        *,
        threshold: float = 1e-13,
        cache_size: int = DEFAULT_DECISION_CACHE_SIZE,
        bound_confidence: "float | None" = None,
    ) -> None:
        """``bound_confidence`` enables the O(1) analytic fast path:
        ``1.0`` certifies against deterministic Hallman–Ipsen bounds only,
        values in ``(0, 1)`` additionally admit the probabilistic
        (martingale) bounds at that confidence.  ``None`` (default)
        disables the tier — the pipeline is exactly the classic
        profile → select → reduce."""
        if threshold < 0:
            raise ValueError("threshold must be >= 0")
        if cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        self.comm = comm
        self.policy = policy if policy is not None else AnalyticPolicy()
        self.threshold = threshold
        self.cache_size = int(cache_size)
        self.bound_tier = (
            BoundTier(confidence=float(bound_confidence))
            if bound_confidence is not None
            else None
        )
        self._decision_cache: "OrderedDict[tuple, SelectionDecision]" = OrderedDict()
        # Serialises cache lookup/insert and the hit/miss/eviction counters:
        # the serving daemon drives one reducer from executor threads, and
        # unlocked OrderedDict mutation + read-modify-write counters would
        # drift under interleaving (the concurrency tests reconcile
        # hits + misses == queries exactly).  The policy query itself runs
        # outside the lock — it is deterministic, so two racing misses on the
        # same key compute the same decision and the second insert is benign.
        self._cache_lock = threading.Lock()
        self._cache_hits = 0
        self._cache_misses = 0
        self._cache_evictions = 0
        self._cache_invalidations = 0

    @property
    def bound_confidence(self) -> "float | None":
        return None if self.bound_tier is None else self.bound_tier.confidence

    def _engaged_bound_tier(self) -> "BoundTier | None":
        """The tier, iff enabled *and* the policy opts in (the tier must be
        able to prove agreement with the policy's own accept/reject walk)."""
        if self.bound_tier is not None and BoundTier.engages(self.policy):
            return self.bound_tier
        return None

    def profile(self, chunks: Sequence[np.ndarray]) -> StreamProfile:
        """Step 1: sketch + allreduce-merge."""
        total = StreamProfile()
        for chunk in chunks:
            total.merge(profile_chunk(chunk))
        return total

    def reduce(
        self,
        chunks: Sequence[np.ndarray],
        *,
        threshold: "float | None" = None,
        tree: "ReductionTree | str" = "topology",
        nondeterministic: bool = False,
    ) -> AdaptiveResult:
        """Adaptively reduce distributed data to one double.

        ``nondeterministic=True`` routes through the arrival-order reduce,
        modelling a production run whose tree the application cannot pin.

        With the bound tier enabled (``bound_confidence=...``), items whose
        cheapest acceptable algorithm is provably certified by a
        Hallman–Ipsen bound skip the profiling sketch entirely — the cheap
        statistics pass doubles as the PR pre-pass, so the fast path costs
        one data scan instead of the sketch's composite-precision ladder.
        The tier never resolves an item unless the profiling policy would
        provably pick the same code, so results are identical either way.
        Tier decisions bypass the decision cache (they are exact, not
        decade-bucketed).  Arrival-order (``nondeterministic``) reductions
        always take the profiling path: their conservative tree-shape hint
        is the policy's business, not the bound tier's.
        """
        t = self.threshold if threshold is None else threshold
        if t < 0:
            raise ValueError("threshold must be >= 0")
        u = item_unit_roundoff(chunks)
        tier = None if nondeterministic else self._engaged_bound_tier()
        decision = None
        bound_elapsed = 0.0
        select_elapsed = 0.0
        if tier is not None:
            with Stopwatch() as sw_bound:
                stats = bound_stats_item(chunks, u)
                decision = tier.decide_item(stats, t, self.policy)
            bound_elapsed = sw_bound.elapsed
        if decision is not None:
            sketch = stats.as_stream_profile()
            profile_elapsed = bound_elapsed
        else:
            with Stopwatch() as sw_profile:
                sketch = self.profile(chunks)
                with Stopwatch() as sw_select:
                    precision_aware = getattr(
                        self.policy, "supports_unit_roundoff", False
                    )
                    u_kw = {"u": u} if precision_aware else {}
                    if nondeterministic and getattr(
                        self.policy, "supports_shape_hint", False
                    ):
                        # arrival-order trees have unknown (chain-heavy)
                        # shapes: profile the tree-shape parameter
                        # conservatively, as the paper's list of profiled
                        # quantities (n, k, dr, tree shape) prescribes
                        decision = self.policy.select(
                            sketch.as_set_profile(), t, shape="unknown", **u_kw
                        )
                    else:
                        decision = self.policy.select(
                            sketch.as_set_profile(), t, **u_kw
                        )
            profile_elapsed = bound_elapsed + sw_profile.elapsed
            select_elapsed = sw_select.elapsed
        algorithm = get_algorithm(decision.code)
        # Reuse the profile's global max as PR's pre-pass: no extra data scan.
        context = (
            SumContext(max_abs=sketch.max_abs, n_hint=sketch.n)
            if algorithm.needs_context
            else None
        )
        op = make_reduction_op(algorithm, context)
        with Stopwatch() as sw_reduce:
            if nondeterministic:
                result = self.comm.reduce_nondeterministic(chunks, op)
            else:
                result = self.comm.reduce(chunks, op, tree)
        if _OBS.enabled:
            _OBS.counter(
                "repro_selector_selections_total", algorithm=decision.code
            ).inc()
            if tier is not None:
                if decision.tier == "bound":
                    _OBS.counter("repro_select_bound_fast_path_total").inc()
                else:
                    _OBS.counter("repro_select_profile_fallback_total").inc()
                _OBS.histogram("repro_selector_bound_seconds").observe(
                    bound_elapsed
                )
            _OBS.histogram("repro_selector_profile_seconds").observe(
                profile_elapsed
            )
            _OBS.histogram("repro_selector_select_seconds").observe(
                select_elapsed
            )
            _OBS.histogram("repro_selector_reduce_seconds").observe(
                sw_reduce.elapsed
            )
        return AdaptiveResult(
            value=result.value,
            decision=decision,
            reduce_result=result,
            profile_seconds=profile_elapsed,
            reduce_seconds=sw_reduce.elapsed,
        )

    # -- batched serving path --------------------------------------------------
    def reduce_many(
        self,
        batches: Sequence[Sequence[np.ndarray]],
        *,
        threshold: "float | None" = None,
        tree: "ReductionTree | str" = "topology",
        workers: "int | None" = None,
    ) -> "list[AdaptiveResult]":
        """Adaptively reduce a stream of independent reductions in bulk.

        The serving path: uniform-width streams profile as one vectorised
        sweep (:func:`repro.selection.profile.profile_batch`, bitwise-equal
        to per-item profiling; ragged streams fall back to the loop), the
        selection step is memoised in a decision cache keyed by the profile
        signature (``n``, condition-number decade, dynamic range,
        threshold) — the decade granularity selection actually operates at —
        and items choosing the same algorithm execute together through
        :meth:`SimComm.reduce_batch`, so packing, schedule compilation and
        kernel dispatch are paid once per algorithm instead of once per
        item.  Context-needing algorithms (PR) keep their per-item pre-pass.

        ``workers`` adds the multicore axis: the item stream splits into
        contiguous shards, each shard runs the full profile → select →
        grouped-reduce pipeline in a persistent worker process (operands
        ship zero-copy through shared memory), and the reassembled results
        are *bitwise-identical* to the serial path — every item's reduction
        is independent, so sharding cannot change any value or decision.
        ``workers=None`` defers to ``REPRO_WORKERS``/cpu-count behind an
        adaptive bytes-and-items cutover (small batches never pay IPC);
        an explicit ``workers >= 2`` always parallelises; ``workers<=1``
        forces the serial path.  Workers write values, decision codes and
        profile sketches straight into a persistent shared-memory result
        arena; the parent replays selection from those sketches in stream
        order, so :meth:`decision_cache_info` reflects parallel calls too
        and any worker/parent decision drift raises instead of passing
        silently.

        Each item's value is bitwise-equal to a standalone :meth:`reduce`
        with the same decision; ``profile_seconds``/``reduce_seconds`` are
        the *amortised* per-item costs (phase total / number of items).
        """
        t = self.threshold if threshold is None else threshold
        if t < 0:
            raise ValueError("threshold must be >= 0")
        if not batches:
            return []
        us = [item_unit_roundoff(chunks) for chunks in batches]
        pool_workers, n_shards = shard_plan(
            len(batches), _payload_bytes(batches), workers
        )
        if n_shards > 1:
            return self._reduce_many_parallel(
                batches, t, tree, pool_workers, n_shards, us
            )
        sketches, decisions, bound_elapsed, profile_elapsed, select_elapsed = (
            self._tiered_sketch_and_select(batches, t, us)
        )
        results, groups, reduce_elapsed = self._grouped_reduce(
            batches, sketches, decisions, tree
        )
        if _OBS.enabled:
            for code, indices in groups.items():
                _OBS.counter(
                    "repro_selector_selections_total", algorithm=code
                ).inc(len(indices))
            if self._engaged_bound_tier() is not None:
                n_fast = sum(1 for d in decisions if d.tier == "bound")
                _OBS.counter("repro_select_bound_fast_path_total").inc(n_fast)
                _OBS.counter("repro_select_profile_fallback_total").inc(
                    len(decisions) - n_fast
                )
                _OBS.histogram("repro_selector_bound_seconds").observe(
                    bound_elapsed
                )
            _OBS.histogram("repro_selector_profile_seconds").observe(
                bound_elapsed + profile_elapsed
            )
            _OBS.histogram("repro_selector_select_seconds").observe(
                select_elapsed
            )
            _OBS.histogram("repro_selector_reduce_seconds").observe(
                reduce_elapsed
            )
        n_items = len(batches)
        profile_each = (bound_elapsed + profile_elapsed) / n_items
        reduce_each = reduce_elapsed / n_items
        return [
            AdaptiveResult(
                value=rr.value,
                decision=decision,
                reduce_result=rr,
                profile_seconds=profile_each,
                reduce_seconds=reduce_each,
            )
            for rr, decision in zip(results, decisions)
        ]

    def _sketch_and_select(
        self,
        batches: Sequence[Sequence[np.ndarray]],
        threshold: float,
        us: "Sequence[float] | None" = None,
    ) -> tuple:
        """Steps 1+2 for a stream: ``(sketches, decisions, profile elapsed,
        select elapsed)``.  Shared by the serial serving path and the shard
        workers so both run the exact same pipeline.  ``us`` carries each
        item's input-dtype unit roundoff into the policy query (``None``
        means binary64 throughout)."""
        with Stopwatch() as sw_profile:
            # uniform-width streams profile as one vectorised sweep; the
            # batched sketches are bitwise-equal to the per-item loop
            sketches = profile_batch(batches)
            if sketches is None:
                sketches = [self.profile(chunks) for chunks in batches]
            with Stopwatch() as sw_select:
                if us is None:
                    us = [UNIT_ROUNDOFF] * len(sketches)
                decisions = [
                    self._select_cached(sk, threshold, u)
                    for sk, u in zip(sketches, us)
                ]
        return sketches, decisions, sw_profile.elapsed, sw_select.elapsed

    def _tiered_sketch_and_select(
        self,
        batches: Sequence[Sequence[np.ndarray]],
        threshold: float,
        us: Sequence[float],
    ) -> tuple:
        """Steps 0+1+2 for a stream: ``(sketches, decisions, bound elapsed,
        profile elapsed, select elapsed)``.

        With the bound tier engaged, the cheap statistics sweep runs first
        and the expensive profiling sketch only touches the *inconclusive*
        items; per-item results are position-independent, so profiling a
        fallback subset is bitwise-identical to profiling those items inside
        the full stream.  Tier-resolved items reuse their statistics as a
        (lo-parts-zero) sketch — exactly what the reduce stage and the PR
        pre-pass need."""
        tier = self._engaged_bound_tier()
        if tier is None:
            sketches, decisions, profile_elapsed, select_elapsed = (
                self._sketch_and_select(batches, threshold, us)
            )
            return sketches, decisions, 0.0, profile_elapsed, select_elapsed
        with Stopwatch() as sw_bound:
            stats = bound_stats_stream(batches, us)
            tier_decisions = tier.decide_stream(stats, threshold, self.policy)
        n_items = len(batches)
        sketches: "list[StreamProfile | None]" = [None] * n_items
        decisions: "list[SelectionDecision | None]" = list(tier_decisions)
        fallback = []
        for i, d in enumerate(tier_decisions):
            if d is None:
                fallback.append(i)
            else:
                sketches[i] = stats[i].as_stream_profile()
        profile_elapsed = 0.0
        select_elapsed = 0.0
        if fallback:
            fb_sketches, fb_decisions, profile_elapsed, select_elapsed = (
                self._sketch_and_select(
                    [batches[i] for i in fallback],
                    threshold,
                    [us[i] for i in fallback],
                )
            )
            for j, i in enumerate(fallback):
                sketches[i] = fb_sketches[j]
                decisions[i] = fb_decisions[j]
        return sketches, decisions, sw_bound.elapsed, profile_elapsed, select_elapsed

    def _grouped_reduce(
        self,
        batches: Sequence[Sequence[np.ndarray]],
        sketches: "list[StreamProfile]",
        decisions: "list[SelectionDecision]",
        tree: "ReductionTree | str",
    ) -> tuple:
        """Step 3 for a stream: same-decision items execute together.

        Returns ``(per-item ReduceResults, {code: indices}, elapsed)``.
        Context-needing algorithms (PR) keep their per-item pre-pass.
        """
        groups: "dict[str, list[int]]" = {}
        for i, decision in enumerate(decisions):
            groups.setdefault(decision.code, []).append(i)
        results: "list[ReduceResult | None]" = [None] * len(batches)
        with Stopwatch() as sw_reduce:
            for code, indices in groups.items():
                algorithm = get_algorithm(code)
                if algorithm.needs_context:
                    for i in indices:
                        sk = sketches[i]
                        op = make_reduction_op(
                            algorithm, SumContext(max_abs=sk.max_abs, n_hint=sk.n)
                        )
                        results[i] = self.comm.reduce(batches[i], op, tree)
                else:
                    op = make_reduction_op(algorithm)
                    group_results = self.comm.reduce_batch(
                        [batches[i] for i in indices], op, tree
                    )
                    for i, rr in zip(indices, group_results):
                        results[i] = rr
        return results, groups, sw_reduce.elapsed

    def _reduce_many_parallel(
        self,
        batches: Sequence[Sequence[np.ndarray]],
        threshold: float,
        tree: "ReductionTree | str",
        pool_workers: int,
        n_shards: int,
        us: Sequence[float],
    ) -> "list[AdaptiveResult]":
        """Shard the stream over the persistent pool (bitwise = serial path).

        Operands pack once into the persistent **input arena** (lengths,
        per-item rank counts, per-item unit roundoffs, then every chunk's
        float64 bytes); workers slice zero-copy views out of their cached
        attachment and run the same :meth:`_tiered_sketch_and_select` +
        :meth:`_grouped_reduce` pipeline the serial path uses.  Results come
        back through the **result arena** — value, decision-code index,
        bound-tier flag, the 7 profile-sketch fields per item plus three
        phase timings per shard — so the pickle pipe only carries ``None``.
        The parent rebuilds each :class:`StreamProfile` from the arena and
        replays the selection in stream order — bound-tier items re-run
        :meth:`BoundTier.decide_stream` on their round-tripped statistics,
        profiling items replay :meth:`_select_cached` — so the decision
        sequence (and the parent's cache statistics) are exactly what a
        serial run would produce, and a mismatch against the
        worker-recorded code raises instead of passing silently.  Chunks are
        normalised with the same ``np.asarray(..., float64)`` coercion the
        serial pipeline applies, so worker inputs are bit-identical to what
        the serial path would profile and reduce.
        """
        flats: "list[np.ndarray]" = []
        lengths: "list[int]" = []
        ranks: "list[int]" = []
        for chunks in batches:
            ranks.append(len(chunks))
            for c in chunks:
                # normalise without materialising: asarray of an f8 chunk —
                # including a memoryview-backed slice of a socket receive
                # buffer — is a view, and write_concat below is the single
                # copy (straight into the shared input arena).  The old
                # ascontiguousarray staging copy doubled every ingest.
                a = np.asarray(c, dtype=np.float64)
                if a.ndim != 1:
                    a = a.ravel()
                flats.append(a)
                lengths.append(a.size)
        n_items = len(batches)
        n_chunks = len(flats)
        total = int(sum(lengths))  # repro: allow[FP002] -- integer chunk-length count, not an FP reduction
        shards = split_indices(n_items, n_shards)
        pool = get_pool(pool_workers)
        code_table = tuple(alg.code for alg in all_algorithms())
        # input arena: [lengths i64 x n_chunks][ranks i64 x n_items]
        # [u f64 x n_items][flat f64]
        # result arena: [values f64][code idx i64][bound-tier flag i64]
        # [sketch n i64][sketch f64 x6] per item (80 B), then
        # [bound_s, profile_s, reduce_s] f64 per shard (24 B)
        in_bytes = 8 * (n_chunks + 2 * n_items + total)
        res_bytes = 80 * n_items + 24 * len(shards)
        with arena_pair() as (arena_in, arena_res):
            in_handle = arena_in.reserve(in_bytes)
            res_handle = arena_res.reserve(res_bytes)
            arena_in.write(np.asarray(lengths, dtype=np.int64))
            arena_in.write(
                np.asarray(ranks, dtype=np.int64), offset=8 * n_chunks
            )
            arena_in.write(
                np.asarray(us, dtype=np.float64),
                offset=8 * (n_chunks + n_items),
            )
            arena_in.write_concat(
                flats, total, np.float64, offset=8 * (n_chunks + 2 * n_items)
            )
            payloads = [
                (
                    in_handle,
                    res_handle,
                    n_items,
                    n_chunks,
                    total,
                    s.start,
                    s.stop,
                    shard_index,
                    self.comm,
                    self.policy,
                    threshold,
                    self.cache_size,
                    tree,
                    code_table,
                    self.bound_confidence,
                )
                for shard_index, s in enumerate(shards)
            ]
            pool.map(_reduce_many_shard, payloads, chunksize=1, path="reduce_many")
            values = arena_res.read(np.float64, (n_items,))
            code_idx = arena_res.read(np.int64, (n_items,), offset=8 * n_items)
            tier_flag = arena_res.read(np.int64, (n_items,), offset=16 * n_items)
            sk_n = arena_res.read(np.int64, (n_items,), offset=24 * n_items)
            sk_f = arena_res.read(np.float64, (n_items, 6), offset=32 * n_items)
            stats = arena_res.read(
                np.float64, (len(shards), 3), offset=80 * n_items
            )
        sketches = [
            StreamProfile(
                n=int(sk_n[i]),
                max_abs=float(sk_f[i, 0]),
                min_abs_nonzero=float(sk_f[i, 1]),
                abs_sum_hi=float(sk_f[i, 2]),
                abs_sum_lo=float(sk_f[i, 3]),
                sum_hi=float(sk_f[i, 4]),
                sum_lo=float(sk_f[i, 5]),
            )
            for i in range(n_items)
        ]
        # replay the bound tier for all flagged items in one vectorised call
        # (tier lanes are independent, so batching cannot change any lane)
        tier = self._engaged_bound_tier()
        tier_items = [i for i in range(n_items) if tier_flag[i]]
        tier_replayed: "dict[int, SelectionDecision | None]" = {}
        if tier_items:
            if tier is None:
                raise RuntimeError(
                    "parallel decision drift: workers used the bound tier "
                    "but it is not engaged on the parent"
                )
            replay_stats = [
                BoundStats.from_stream_profile(sketches[i], us[i])
                for i in tier_items
            ]
            replay_decisions = tier.decide_stream(
                replay_stats, threshold, self.policy
            )
            tier_replayed = dict(zip(tier_items, replay_decisions))
        tree_resolved = self.comm._resolve_tree(tree)
        cost = (
            tree_cost(tree_resolved, self.comm.topology)
            if self.comm.topology
            else 0.0
        )
        results: "list[AdaptiveResult]" = []
        by_code: "dict[str, int]" = {}
        n_fast = 0
        bound_elapsed_total = 0.0
        for shard_index, s in enumerate(shards):
            span = s.stop - s.start
            bound_elapsed_total += float(stats[shard_index, 0])  # repro: allow[FP003] -- wall-clock telemetry aggregate, not a numerical result
            profile_each = (
                float(stats[shard_index, 0]) + float(stats[shard_index, 1])
            ) / span
            reduce_each = float(stats[shard_index, 2]) / span
            for i in range(s.start, s.stop):
                if tier_flag[i]:
                    decision = tier_replayed[i]
                    if decision is None:
                        raise RuntimeError(
                            f"parallel decision drift at item {i}: worker "
                            "bound tier resolved it, parent replay fell back"
                        )
                    n_fast += 1
                else:
                    decision = self._select_cached(sketches[i], threshold, us[i])
                worker_code = code_table[int(code_idx[i])]
                if decision.code != worker_code:
                    raise RuntimeError(
                        f"parallel decision drift at item {i}: worker chose "
                        f"{worker_code!r}, parent replay chose {decision.code!r}"
                    )
                value = float(values[i])
                results.append(
                    AdaptiveResult(
                        value=value,
                        decision=decision,
                        reduce_result=ReduceResult(
                            value=value,
                            tree=tree_resolved,
                            simulated_time=cost,
                            algorithm_code=decision.code,
                        ),
                        profile_seconds=profile_each,
                        reduce_seconds=reduce_each,
                    )
                )
                by_code[decision.code] = by_code.get(decision.code, 0) + 1
        if _OBS.enabled:
            for code, count in by_code.items():
                _OBS.counter(
                    "repro_selector_selections_total", algorithm=code
                ).inc(count)
            if tier is not None:
                _OBS.counter("repro_select_bound_fast_path_total").inc(n_fast)
                _OBS.counter("repro_select_profile_fallback_total").inc(
                    n_items - n_fast
                )
                _OBS.histogram("repro_selector_bound_seconds").observe(
                    bound_elapsed_total
                )
        return results

    def _select_cached(
        self,
        sketch: StreamProfile,
        threshold: float,
        u: float = UNIT_ROUNDOFF,
    ) -> SelectionDecision:
        """Policy query with a *validated* decision-granular LRU cache.

        The cache key is decade-granular (``n``, k-decade, dr, threshold,
        u) — but selection itself is a step function of the *exact*
        condition estimate, so two bucket-mates can legitimately straddle a
        selection boundary.  Serving a bucket-mate's memoised decision made
        a served value depend on request **arrival order** (the repro-serve
        bench caught exactly that: two of 64 borderline items flipped
        algorithm with the daemon's cache warm in a different order).  The
        policy query costs ~10us against the profiling sketch's
        milliseconds, so the query always runs on the item's own exact
        profile; a cache entry counts as a **hit** only when it agrees with
        that query, and a disagreeing entry is replaced (counted in
        ``invalidations``).  Every returned decision is therefore identical
        to what a cold standalone :meth:`reduce` of the same item computes,
        regardless of what was served before it.

        The cache is an LRU capped at ``cache_size`` entries: a long-lived
        serving process that sweeps many (n, k-decade, dr, threshold)
        signatures evicts the coldest decision instead of growing without
        bound.  ``u`` is the item's input-dtype unit roundoff: it joins the
        cache key (an fp16 stream must never alias a binary64 stream's
        cached decision) and is forwarded to precision-aware policies.
        """
        key = self._decision_key(sketch, threshold, u)
        with self._cache_lock:
            cached = self._decision_cache.get(key)
            if cached is not None:
                self._decision_cache.move_to_end(key)
        if getattr(self.policy, "supports_unit_roundoff", False):
            decision = self.policy.select(sketch.as_set_profile(), threshold, u=u)
        else:
            decision = self.policy.select(sketch.as_set_profile(), threshold)
        if cached is not None and cached.code == decision.code:
            with self._cache_lock:
                self._cache_hits += 1
            if _OBS.enabled:
                _OBS.counter("repro_selector_decision_cache_hits_total").inc()
            return decision
        evictions = 0
        with self._cache_lock:
            self._cache_misses += 1
            if cached is not None:
                self._cache_invalidations += 1
            self._decision_cache[key] = decision
            while len(self._decision_cache) > self.cache_size:
                self._decision_cache.popitem(last=False)
                self._cache_evictions += 1
                evictions += 1
        if _OBS.enabled:
            _OBS.counter("repro_selector_decision_cache_misses_total").inc()
            if cached is not None:
                _OBS.counter(
                    "repro_selector_decision_cache_invalidations_total"
                ).inc()
            if evictions:
                _OBS.counter(
                    "repro_selector_decision_cache_evictions_total"
                ).inc(evictions)
        return decision

    def _decision_key(
        self, sketch: StreamProfile, threshold: float, u: float = UNIT_ROUNDOFF
    ) -> tuple:
        """Decision-granular cache key: ``(n, k-decade, dr, threshold, u,
        bound confidence)``.  The unit roundoff axis keeps fp32/fp16 streams
        from aliasing binary64 decisions; the confidence axis keeps caches
        honest if the same reducer is reconfigured across tier settings."""
        k = sketch.condition_estimate()
        if math.isinf(k):
            decade: "int | str" = "inf"
        elif k > 0.0:
            decade = int(math.floor(math.log10(k)))
        else:
            decade = 0
        return (
            sketch.n,
            decade,
            sketch.dynamic_range_estimate(),
            float(threshold),
            float(u),
            self.bound_confidence,
        )

    def decision_cache_info(self) -> dict:
        """Cache statistics: ``{"size", "max_size", "hits", "misses",
        "evictions"}``."""
        with self._cache_lock:
            return {
                "size": len(self._decision_cache),
                "max_size": self.cache_size,
                "hits": self._cache_hits,
                "misses": self._cache_misses,
                "evictions": self._cache_evictions,
                "invalidations": self._cache_invalidations,
            }

    def clear_decision_cache(self) -> None:
        with self._cache_lock:
            self._decision_cache.clear()
            self._cache_hits = 0
            self._cache_misses = 0
            self._cache_evictions = 0
            self._cache_invalidations = 0


def _payload_bytes(batches: Sequence[Sequence[np.ndarray]]) -> int:
    """Total float64 bytes a stream would ship to workers (cutover input)."""
    total = 0
    for chunks in batches:
        for c in chunks:
            nbytes = getattr(c, "nbytes", None)
            total += int(nbytes) if nbytes is not None else len(c) * 8
    return total


def _reduce_many_shard(payload: tuple) -> None:
    """Worker: run the serving pipeline on one shard, writing results
    straight into the shared result arena.

    Rebuilds the reducer from its picklable spec (communicator, policy,
    threshold, cache size), slices zero-copy chunk views for items
    ``[start, stop)`` out of the cached input-arena attachment
    (:func:`repro.util.pool.arena_view` — attach once per arena epoch, not
    once per task), and writes values, decision-code indices, the 7
    profile-sketch fields per item and the shard's phase timings into the
    result arena, so nothing but ``None`` returns through the pickle pipe.
    Every arena view is dropped before returning: a lingering view would
    block the attachment swap on the next arena regrow epoch.
    """
    (
        in_handle,
        res_handle,
        n_items,
        n_chunks,
        total,
        start,
        stop,
        shard_index,
        comm,
        policy,
        threshold,
        cache_size,
        tree,
        code_table,
        bound_confidence,
    ) = payload
    lengths = arena_view(in_handle, np.int64, (n_chunks,))
    ranks = arena_view(in_handle, np.int64, (n_items,), offset=8 * n_chunks)
    us_all = arena_view(
        in_handle, np.float64, (n_items,), offset=8 * (n_chunks + n_items)
    )
    flat = arena_view(
        in_handle, np.float64, (total,), offset=8 * (n_chunks + 2 * n_items)
    )
    offsets = np.concatenate(([0], np.cumsum(lengths)))
    chunk_base = np.concatenate(([0], np.cumsum(ranks)))
    batches = []
    for i in range(start, stop):
        c0, c1 = int(chunk_base[i]), int(chunk_base[i + 1])
        batches.append(
            [flat[int(offsets[j]) : int(offsets[j + 1])] for j in range(c0, c1)]
        )
    us = [float(us_all[i]) for i in range(start, stop)]
    reducer = AdaptiveReducer(
        comm,
        policy,
        threshold=threshold,
        cache_size=cache_size,
        bound_confidence=bound_confidence,
    )
    sketches, decisions, bound_elapsed, profile_elapsed, _select_elapsed = (
        reducer._tiered_sketch_and_select(batches, threshold, us)
    )
    results, _groups, reduce_elapsed = reducer._grouped_reduce(
        batches, sketches, decisions, tree
    )
    code_index = {code: idx for idx, code in enumerate(code_table)}
    span = slice(start, stop)
    values_v = arena_view(res_handle, np.float64, (n_items,))
    codes_v = arena_view(res_handle, np.int64, (n_items,), offset=8 * n_items)
    tier_v = arena_view(res_handle, np.int64, (n_items,), offset=16 * n_items)
    skn_v = arena_view(res_handle, np.int64, (n_items,), offset=24 * n_items)
    skf_v = arena_view(res_handle, np.float64, (n_items, 6), offset=32 * n_items)
    stats_v = arena_view(
        res_handle, np.float64, (3,), offset=80 * n_items + 24 * shard_index
    )
    values_v[span] = [rr.value for rr in results]
    codes_v[span] = [code_index[d.code] for d in decisions]
    tier_v[span] = [1 if d.tier == "bound" else 0 for d in decisions]
    skn_v[span] = [sk.n for sk in sketches]
    skf_v[span] = [
        [
            sk.max_abs,
            sk.min_abs_nonzero,
            sk.abs_sum_hi,
            sk.abs_sum_lo,
            sk.sum_hi,
            sk.sum_lo,
        ]
        for sk in sketches
    ]
    stats_v[0] = bound_elapsed
    stats_v[1] = profile_elapsed
    stats_v[2] = reduce_elapsed
    del values_v, codes_v, tier_v, skn_v, skf_v, stats_v
    del batches, flat, lengths, ranks, us_all
    return None
