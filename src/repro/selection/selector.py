"""AdaptiveReducer: end-to-end intelligent runtime selection.

This is the system the paper argues for (Sec. V.D): "estimable quantities
such as condition number and dynamic range can guide runtime selection of a
reduction operator with the appropriate performance/reproducibility tradeoff
for the application at hand."

Pipeline per reduction:

1. **Profile** — every rank sketches its chunk in one vectorised pass; the
   sketches merge in an (exactly associative) allreduce.
2. **Select** — a policy (analytic model or calibrated grid classifier)
   picks the cheapest algorithm whose predicted variability meets the
   application's tolerance.
3. **Reduce** — the chosen algorithm's accumulator runs as a custom op
   through the simulated communicator; for PR the max from step 1 doubles
   as the pre-pass, so no extra data pass is needed.

The returned :class:`AdaptiveResult` carries the decision record so
applications (and our benches) can audit what was chosen and why.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

import numpy as np

from repro.metrics.properties import SetProfile
from repro.mpi.comm import ReduceResult, SimComm
from repro.mpi.ops import make_reduction_op
from repro.selection.policy import AnalyticPolicy, SelectionDecision
from repro.selection.profile import StreamProfile, profile_chunk
from repro.summation.base import SumContext
from repro.summation.registry import get_algorithm
from repro.trees.tree import ReductionTree
from repro.util.timing import Stopwatch

__all__ = ["Policy", "AdaptiveResult", "AdaptiveReducer"]


class Policy(Protocol):
    """Anything that can turn (profile, threshold) into a decision."""

    def select(self, profile: SetProfile, threshold: float) -> SelectionDecision:
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class AdaptiveResult:
    """Reduction value plus the audited decision that produced it."""

    value: float
    decision: SelectionDecision
    reduce_result: ReduceResult
    profile_seconds: float
    reduce_seconds: float


class AdaptiveReducer:
    """Profile -> select -> reduce over a simulated communicator."""

    def __init__(
        self,
        comm: SimComm,
        policy: "Policy | None" = None,
        *,
        threshold: float = 1e-13,
    ) -> None:
        if threshold < 0:
            raise ValueError("threshold must be >= 0")
        self.comm = comm
        self.policy = policy if policy is not None else AnalyticPolicy()
        self.threshold = threshold

    def profile(self, chunks: Sequence[np.ndarray]) -> StreamProfile:
        """Step 1: sketch + allreduce-merge."""
        total = StreamProfile()
        for chunk in chunks:
            total.merge(profile_chunk(chunk))
        return total

    def reduce(
        self,
        chunks: Sequence[np.ndarray],
        *,
        threshold: "float | None" = None,
        tree: "ReductionTree | str" = "topology",
        nondeterministic: bool = False,
    ) -> AdaptiveResult:
        """Adaptively reduce distributed data to one double.

        ``nondeterministic=True`` routes through the arrival-order reduce,
        modelling a production run whose tree the application cannot pin.
        """
        t = self.threshold if threshold is None else threshold
        with Stopwatch() as sw_profile:
            sketch = self.profile(chunks)
            if nondeterministic and getattr(self.policy, "supports_shape_hint", False):
                # arrival-order trees have unknown (chain-heavy) shapes:
                # profile the tree-shape parameter conservatively, as the
                # paper's list of profiled quantities (n, k, dr, tree shape)
                # prescribes
                decision = self.policy.select(
                    sketch.as_set_profile(), t, shape="unknown"
                )
            else:
                decision = self.policy.select(sketch.as_set_profile(), t)
        algorithm = get_algorithm(decision.code)
        # Reuse the profile's global max as PR's pre-pass: no extra data scan.
        context = (
            SumContext(max_abs=sketch.max_abs, n_hint=sketch.n)
            if algorithm.needs_context
            else None
        )
        op = make_reduction_op(algorithm, context)
        with Stopwatch() as sw_reduce:
            if nondeterministic:
                result = self.comm.reduce_nondeterministic(chunks, op)
            else:
                result = self.comm.reduce(chunks, op, tree)
        return AdaptiveResult(
            value=result.value,
            decision=decision,
            reduce_result=result,
            profile_seconds=sw_profile.elapsed,
            reduce_seconds=sw_reduce.elapsed,
        )
