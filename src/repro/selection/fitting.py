"""Fit the analytic variability model's constants from measured grids.

The :class:`~repro.selection.policy.VariabilityModel` ships with default
leading constants (``c_st``, ``c_k``, ``c_k2``, ``c_cp``); this module
re-derives them from a grid sweep's measurements by least squares in log
space — the honest calibration loop: run the Fig. 9/11 methodology once on
*this* machine's kernels, fit, and the analytic policy then predicts within
a fraction of a decade instead of "within two decades".

The fit is deliberately simple (each algorithm's model is a single power law
in the profile quantities, linear in its constant): medians of the measured-
to-structural ratios are robust to the grid's outlier cells and need no
optimiser.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.experiments.grid import GridCellResult
from repro.fp.properties import UNIT_ROUNDOFF
from repro.selection.policy import VariabilityModel

__all__ = ["FitReport", "fit_variability_model"]


@dataclass(frozen=True)
class FitReport:
    """Fitted model plus goodness-of-fit per algorithm (decades of rms)."""

    model: VariabilityModel
    rms_decades: dict
    n_cells_used: dict


def _structural(code: str, n: int, k: float, u: float) -> float:
    """The model's k/n-dependent factor, with the constant stripped."""
    if code == "ST":
        return u * math.sqrt(n) * k
    if code == "K":
        return u * k  # first-order floor term (dominant in practice)
    if code == "CP":
        return n * u**2 * k
    raise KeyError(code)


def fit_variability_model(
    cells: Sequence[GridCellResult], u: float = UNIT_ROUNDOFF
) -> FitReport:
    """Fit (c_st, c_k, c_cp) to the measured relative stds of a sweep.

    Cells with zero or undefined measurements (deterministic algorithms,
    exact-zero sums) are skipped for that algorithm.  ``c_k2`` (Kahan's
    second-order term) is left at its default: it only matters at
    concurrencies where the first-order floor is swamped, which a single
    grid rarely constrains.
    """
    ratios: dict[str, list[float]] = {"ST": [], "K": [], "CP": []}
    for cell in cells:
        if math.isinf(cell.condition):
            continue
        for code in ratios:
            if code not in cell.stats:
                continue
            measured = cell.stats[code].rel_std
            if not (measured and measured > 0.0) or math.isnan(measured):
                continue
            base = _structural(code, cell.n, cell.condition, u)
            if base > 0:
                ratios[code].append(measured / base)

    defaults = VariabilityModel()
    fitted = {}
    rms = {}
    used = {}
    for code, rs in ratios.items():
        used[code] = len(rs)
        if not rs:
            fitted[code] = {"ST": defaults.c_st, "K": defaults.c_k, "CP": defaults.c_cp}[code]
            rms[code] = math.nan
            continue
        c = float(np.median(rs))
        fitted[code] = c
        rms[code] = float(
            np.sqrt(np.mean([(math.log10(r / c)) ** 2 for r in rs]))
        )
    model = VariabilityModel(
        c_st=fitted["ST"], c_k=fitted["K"], c_k2=defaults.c_k2, c_cp=fitted["CP"], u=u
    )
    return FitReport(model=model, rms_decades=rms, n_cells_used=used)
