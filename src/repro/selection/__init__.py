"""Intelligent runtime selection: profiling sketches, cost model, analytic
and empirical policies, and the end-to-end adaptive reducer."""

from repro.selection.bound_tier import (
    BoundStats,
    BoundTier,
    bound_stats_item,
    bound_stats_stream,
    item_unit_roundoff,
)
from repro.selection.certify import Certificate, certify
from repro.selection.classifier import GridCell, GridClassifier
from repro.selection.fitting import FitReport, fit_variability_model
from repro.selection.costmodel import DEFAULT_RELATIVE_COSTS, CostModel
from repro.selection.policy import AnalyticPolicy, SelectionDecision, VariabilityModel
from repro.selection.profile import StreamProfile, profile_chunk, profile_stream
from repro.selection.selector import AdaptiveReducer, AdaptiveResult, Policy
from repro.selection.streaming import StreamingSelector, SwitchEvent
from repro.selection.subtree import (
    HierarchicalReducer,
    HierarchicalResult,
    SubtreePlan,
)

__all__ = [
    "AdaptiveReducer",
    "AdaptiveResult",
    "AnalyticPolicy",
    "BoundStats",
    "BoundTier",
    "bound_stats_item",
    "bound_stats_stream",
    "item_unit_roundoff",
    "Certificate",
    "certify",
    "CostModel",
    "DEFAULT_RELATIVE_COSTS",
    "FitReport",
    "GridCell",
    "GridClassifier",
    "HierarchicalReducer",
    "HierarchicalResult",
    "Policy",
    "SelectionDecision",
    "StreamProfile",
    "StreamingSelector",
    "SwitchEvent",
    "SubtreePlan",
    "VariabilityModel",
    "fit_variability_model",
    "profile_chunk",
    "profile_stream",
]
