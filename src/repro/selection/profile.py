"""Runtime profiling of summand sets: cheap estimates of (n, k, dr).

The paper's closing argument: "Achieving reproducible numerical accuracy by
intelligent runtime selection of reduction algorithms depends on being able
to assess the mathematical properties of the floating-point values to be
reduced" — and those properties must be *estimable* at a cost far below the
reduction itself.

:class:`StreamProfile` is a mergeable statistics sketch: each rank folds its
chunk in with one vectorised pass (max, min-nonzero magnitude, |x| sum, and
a composite-precision signed sum so the condition-number estimate stays
meaningful up to k ~ 1e30 instead of saturating at 1/(n·u)); sketches merge
associatively, so profiling costs one extra allreduce of five doubles —
exactly the "profile parameters of interest at runtime" tooling Sec. V.D
calls for.

Accuracy: ``dr`` is exact (it only needs the extreme exponents); ``k̂``
matches the exact condition number to ~n·u² relative, far tighter than the
decade granularity selection needs (tests pin this).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.fp.eft import two_sum, two_sum_array
from repro.fp.properties import exponent
from repro.metrics.properties import SetProfile
from repro.obs import get_registry

__all__ = ["StreamProfile", "profile_chunk", "profile_stream", "profile_batch"]

_OBS = get_registry()


def _record_profile_path(path: str, n_items: int) -> None:
    """Count which profiling path a stream took (batched sweep vs ragged
    per-item fallback) and how many items rode it."""
    if _OBS.enabled:
        _OBS.counter("repro_profile_batch_total", path=path).inc()
        _OBS.counter("repro_profile_items_total", path=path).inc(n_items)


@dataclass
class StreamProfile:
    """Mergeable one-pass sketch of a (distributed) summand set."""

    n: int = 0
    max_abs: float = 0.0
    min_abs_nonzero: float = math.inf
    abs_sum_hi: float = 0.0
    abs_sum_lo: float = 0.0
    sum_hi: float = 0.0
    sum_lo: float = 0.0

    # -- accumulation ----------------------------------------------------------
    def update(self, chunk: np.ndarray) -> None:
        """Fold a chunk in (vectorised; one pass over the data)."""
        chunk = np.asarray(chunk, dtype=np.float64).ravel()
        if chunk.size == 0:
            return
        a = np.abs(chunk)
        self.n += int(chunk.size)
        self.max_abs = max(self.max_abs, float(a.max()))
        # masked min instead of materialising a[a != 0] — one pass, no copy
        mn = float(np.min(a, initial=math.inf, where=(a > 0.0)))
        if mn < self.min_abs_nonzero:
            self.min_abs_nonzero = mn
        # pairwise numpy sums are accurate enough for the magnitudes, but
        # the signed sum needs composite precision to keep k̂ from saturating
        self._add_abs(float(np.sum(a)))  # repro: allow[FP002] -- magnitude sum has no cancellation; pairwise is accurate enough
        s, e = _cp_sum(chunk)
        self._add_signed(s, e)

    def _add_abs(self, value: float) -> None:
        self.abs_sum_hi, err = two_sum(self.abs_sum_hi, value)
        self.abs_sum_lo += err

    def _add_signed(self, hi: float, lo: float) -> None:
        self.sum_hi, err = two_sum(self.sum_hi, hi)
        self.sum_lo += err + lo

    def merge(self, other: "StreamProfile") -> None:
        """Associative sketch merge (the allreduce combine)."""
        self.n += other.n
        self.max_abs = max(self.max_abs, other.max_abs)
        self.min_abs_nonzero = min(self.min_abs_nonzero, other.min_abs_nonzero)
        self._add_abs(other.abs_sum_hi)
        self.abs_sum_lo += other.abs_sum_lo
        self._add_signed(other.sum_hi, other.sum_lo)

    # -- estimates ----------------------------------------------------------------
    @property
    def abs_sum(self) -> float:
        return self.abs_sum_hi + self.abs_sum_lo

    @property
    def approx_sum(self) -> float:
        return self.sum_hi + self.sum_lo

    def condition_estimate(self) -> float:
        """k̂ = Σ|x| / |Σx| from the sketch (inf when the sum vanishes)."""
        if self.n == 0:
            return 1.0
        s = abs(self.approx_sum)
        t = self.abs_sum
        if t == 0.0:  # repro: allow[FP001] -- all-zero input
            return 1.0
        if s == 0.0:  # repro: allow[FP001] -- vanished sum => infinite condition
            return math.inf
        return t / s

    def dynamic_range_estimate(self) -> int:
        """Exact dr: exponent span of the extreme magnitudes."""
        if not math.isfinite(self.min_abs_nonzero) or self.max_abs == 0.0:  # repro: allow[FP001] -- all-zero input guard
            return 0
        return exponent(self.max_abs) - exponent(self.min_abs_nonzero)

    def as_set_profile(self) -> SetProfile:
        return SetProfile(
            n=self.n,
            condition=self.condition_estimate(),
            dynamic_range=self.dynamic_range_estimate(),
            max_abs=self.max_abs,
            abs_sum=self.abs_sum,
        )


def _cp_sum(x: np.ndarray) -> tuple[float, float]:
    """Composite-precision pairwise sum of an array: (hi, lo)."""
    s = x.copy()
    lo = 0.0
    while s.size > 1:
        if s.size % 2:
            tail = float(s[-1])
            s = s[:-1]
        else:
            tail = None
        t, err = two_sum_array(s[0::2], s[1::2])
        # The err mass is magnitude-homogeneous (per-level roundoffs), so a
        # pairwise np.sum into the scalar lo term is second-order accurate.
        lo += float(np.sum(err))  # repro: allow[FP002,FP003]
        s = t if tail is None else np.append(t, tail)
    return (float(s[0]) if s.size else 0.0), lo


def profile_chunk(chunk: np.ndarray) -> StreamProfile:
    """Sketch one rank's chunk."""
    p = StreamProfile()
    p.update(chunk)
    return p


def profile_stream(chunks: "list[np.ndarray]") -> StreamProfile:
    """Sketch a distributed set: profile each chunk, merge (the allreduce)."""
    total = StreamProfile()
    for c in chunks:
        total.merge(profile_chunk(c))
    return total


def _cp_sum_rows(matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Row-wise :func:`_cp_sum`: ``(hi, lo)`` vectors, each row bitwise-equal
    to ``_cp_sum(matrix[r])`` (NumPy applies the same pairwise reduction to
    the contiguous last axis of a matrix as to a 1-D array)."""
    s = matrix.copy()
    n_rows = matrix.shape[0]
    lo = np.zeros(n_rows, dtype=np.float64)
    while s.shape[1] > 1:
        if s.shape[1] % 2:
            tail = s[:, -1:]
            s = s[:, :-1]
        else:
            tail = None
        t, err = two_sum_array(s[:, 0::2], s[:, 1::2])
        lo += np.sum(err, axis=1)  # repro: allow[FP002,FP003]
        s = t if tail is None else np.concatenate([t, tail], axis=1)
    hi = s[:, 0].copy() if s.shape[1] else np.zeros(n_rows, dtype=np.float64)
    return hi, lo


def profile_batch(batches) -> "list[StreamProfile] | None":
    """Sketch a whole stream of same-shape distributed sets in bulk.

    ``batches[i]`` is one reduction's per-rank chunk list.  When every chunk
    across the stream has the same length (the serving-path common case) the
    per-chunk statistics are computed as row sweeps over one packed matrix
    and the per-item rank merges replay the :meth:`StreamProfile.merge`
    recurrence vectorised across items — every returned sketch is
    bitwise-equal to ``AdaptiveReducer.profile`` on the same item.  Returns
    ``None`` for ragged streams (callers fall back to the per-item loop).
    """
    n_items = len(batches)
    if n_items == 0:
        return []
    n_ranks = len(batches[0])
    arrays: list[np.ndarray] = []
    for chunks in batches:
        if len(chunks) != n_ranks:
            _record_profile_path("ragged_fallback", n_items)
            return None
        for c in chunks:
            arrays.append(np.asarray(c, dtype=np.float64).ravel())
    if n_ranks == 0:
        _record_profile_path("batched", n_items)
        return [StreamProfile() for _ in range(n_items)]
    width = arrays[0].size
    if any(a.size != width for a in arrays):
        _record_profile_path("ragged_fallback", n_items)
        return None
    matrix = np.concatenate(arrays).reshape(n_items * n_ranks, width) if width else (
        np.zeros((n_items * n_ranks, 0), dtype=np.float64)
    )
    # per-chunk statistics, one vectorised pass over all rows
    a = np.abs(matrix)
    if width:
        row_max = a.max(axis=1)
        row_min = np.min(a, axis=1, initial=math.inf, where=(a > 0.0))
        row_abs = np.sum(a, axis=1)  # repro: allow[FP002] -- magnitude sum has no cancellation; pairwise is accurate enough
    else:
        row_max = np.zeros(matrix.shape[0], dtype=np.float64)
        row_min = np.full(matrix.shape[0], math.inf)
        row_abs = np.zeros(matrix.shape[0], dtype=np.float64)
    cp_hi, cp_lo = _cp_sum_rows(matrix)
    # profile_chunk from the fresh state: abs two_sum(0, v) is exact for
    # v >= 0, the signed sum replays _add_signed from zero
    chunk_sh, err0 = two_sum_array(0.0, cp_hi)
    chunk_sl = 0.0 + (err0 + cp_lo)

    def col(v: np.ndarray, r: int) -> np.ndarray:
        return v.reshape(n_items, n_ranks)[:, r]

    # the rank-merge chain of AdaptiveReducer.profile, vectorised over items
    max_tot = np.zeros(n_items, dtype=np.float64)
    min_tot = np.full(n_items, math.inf)
    ah = np.zeros(n_items, dtype=np.float64)
    al = np.zeros(n_items, dtype=np.float64)
    sh = np.zeros(n_items, dtype=np.float64)
    sl = np.zeros(n_items, dtype=np.float64)
    for r in range(n_ranks):
        max_tot = np.maximum(max_tot, col(row_max, r))
        min_tot = np.minimum(min_tot, col(row_min, r))
        ah, err = two_sum_array(ah, col(row_abs, r))
        al = (al + err) + 0.0  # other.abs_sum_lo is exactly zero
        sh, err = two_sum_array(sh, col(chunk_sh, r))
        sl = sl + (err + col(chunk_sl, r))
    n_total = n_ranks * width
    _record_profile_path("batched", n_items)
    return [
        StreamProfile(
            n=n_total,
            max_abs=float(max_tot[i]),
            min_abs_nonzero=float(min_tot[i]),
            abs_sum_hi=float(ah[i]),
            abs_sum_lo=float(al[i]),
            sum_hi=float(sh[i]),
            sum_lo=float(sl[i]),
        )
        for i in range(n_items)
    ]
