"""Selection policies: pick the cheapest algorithm meeting a tolerance.

Fig. 12 shades each (k, dr) cell by "the cheapest summation algorithm that
achieves a given degree of reproducibility at that cell", for error-
variability thresholds ``t``.  A policy makes that decision at runtime from
a :class:`~repro.metrics.properties.SetProfile` (measured or estimated):

* :class:`AnalyticPolicy` — closed-form variability estimates per algorithm
  derived from classical error analysis, with empirically calibrated leading
  constants.  Zero calibration data needed; order-of-magnitude accurate,
  which is the granularity selection needs.
* :class:`EmpiricalPolicy` (in :mod:`repro.selection.classifier`) — nearest-
  cell lookup into a measured grid of variabilities, i.e. Fig. 12 itself
  turned into a decision table.

Variability model — the *relative* std of the error across random reduction
trees (error divided by the exact sum; this is the quantity whose grid
reproduces the paper's strong-k/weak-dr shading, since for fixed magnitudes
the absolute mass ``T = Σ|x|`` is k-independent while ``T/|S| = k``).  With
size ``n``, condition ``k``, unit roundoff ``u``:

    ST:  c_st * u * sqrt(n) * k      (random-walk of first-order roundoffs,
                                      amplified by the condition number)
    K:   c_k  * u * k  +  c_k2 * n * u**2 * k   (first-order floor: the
         per-merge compensations that fail to register against large
         partial sums; plus second-order accumulation)
    CP:  c_cp * n * u**2 * k         (pure second-order: the error sum's
         own rounding)
    PR:  0                            (bitwise reproducible)

For exact-zero sums (k = inf) every non-deterministic algorithm predicts
``inf``, so the policy falls through to the most robust candidate — matching
the paper's Sec. V.B observation that only CP/PR behave there, and being
conservative between those two.

The defaults for ``c_*`` were fitted against the measured grids of the
Fig. 9-11 reproduction (see EXPERIMENTS.md); tests assert the model stays
within two decades of measurement across the whole grid, which is what the
decision task requires (cells are decades apart).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.fp.properties import UNIT_ROUNDOFF
from repro.metrics.properties import SetProfile
from repro.selection.costmodel import CostModel

__all__ = ["SelectionDecision", "VariabilityModel", "AnalyticPolicy"]


@dataclass(frozen=True)
class SelectionDecision:
    """The outcome of a policy query — everything needed to audit it.

    ``tier`` records which selection tier produced the decision:
    ``"profile"`` (empirical sketch + calibrated variability model, the
    default) or ``"bound"`` (the O(1) Hallman–Ipsen analytic fast path).
    ``u`` is the unit roundoff the decision was made at — ``2**-53`` for
    binary64 inputs, larger for fp32/fp16 scenario inputs, so low-precision
    data is never silently upcast inside the selection decision.
    """

    code: str
    threshold: float
    predicted_std: float
    profile: SetProfile
    candidate_predictions: Mapping[str, float]
    relative_cost: float
    tier: str = "profile"
    u: float = UNIT_ROUNDOFF

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SelectionDecision({self.code}: predicted std "
            f"{self.predicted_std:.2e} <= t={self.threshold:.2e}, "
            f"cost x{self.relative_cost:.1f}, via {self.tier})"
        )


@dataclass(frozen=True)
class VariabilityModel:
    """Closed-form per-algorithm error-variability estimates.

    ``shape_factor_serial`` encodes the tree-*shape* parameter the paper
    lists among the quantities a runtime should profile: unbalanced (serial)
    reductions are empirically an order of magnitude more variable than
    balanced ones for ST (Fig. 7's row-wise comparison), so predictions for
    an unknown or chain-heavy tree are scaled up by this factor.
    """

    c_st: float = 0.02
    c_k: float = 0.08
    c_k2: float = 4.0
    c_cp: float = 2.0
    u: float = UNIT_ROUNDOFF
    shape_factor_serial: float = 12.0

    def _shape_multiplier(self, code: str, shape: str) -> float:
        if shape == "balanced":
            return 1.0
        if shape in ("serial", "unknown"):
            # Kahan recovers most of the serial penalty (its compensation
            # works against leaf-sized operands); ST eats it fully.
            if code in ("ST", "PW"):
                return self.shape_factor_serial
            if code in ("K", "KBN", "FB"):
                return max(self.shape_factor_serial / 4.0, 1.0)
            return 1.0
        raise ValueError(f"unknown tree shape hint {shape!r}")

    def predict_std(
        self,
        code: str,
        profile: SetProfile,
        *,
        shape: str = "balanced",
        u: "float | None" = None,
    ) -> float:
        """Predicted *relative* std of the error over random reduction trees.

        ``shape`` is ``"balanced"`` (default: the grid experiments'
        setting), ``"serial"``, or ``"unknown"`` (conservative: treated as
        serial).  ``u`` overrides the model's unit roundoff for one query —
        the precision axis: fp32/fp16 scenario inputs predict at their own
        roundoff instead of silently upcasting to binary64.  ``inf`` for
        non-deterministic algorithms on exact-zero sums.
        """
        n = max(profile.n, 1)
        k = profile.condition
        if code in ("PR", "EX", "SO", "AS"):
            return 0.0
        mult = self._shape_multiplier(code, shape)
        if math.isinf(k):
            return math.inf
        u = self.u if u is None else u
        if code in ("ST", "PW"):
            return mult * self.c_st * u * math.sqrt(n) * k
        if code in ("K", "KBN", "FB"):
            return mult * (self.c_k * u * k + self.c_k2 * n * u**2 * k)
        if code in ("CP", "DD", "IV"):
            return mult * self.c_cp * n * u**2 * k
        raise KeyError(f"no variability model for algorithm {code!r}")

    def predict_std_array(
        self, code: str, n, k, *, shape: str = "balanced", u=None
    ):
        """Vectorised :meth:`predict_std` over arrays of ``(n, k)``.

        ``u`` may be a scalar or a per-item array of unit roundoffs.  Each
        lane evaluates the exact scalar expression (same operation order, so
        results are bitwise-equal to per-item :meth:`predict_std` calls) —
        this is what lets the bound tier reason about the profiling policy's
        own accept/reject behaviour without running it per item.
        """
        n = np.maximum(np.asarray(n, dtype=np.float64), 1.0)
        k = np.asarray(k, dtype=np.float64)
        u = self.u if u is None else u
        u = np.asarray(u, dtype=np.float64)
        if code in ("PR", "EX", "SO", "AS"):
            return np.zeros(np.broadcast_shapes(n.shape, k.shape), dtype=np.float64)
        mult = self._shape_multiplier(code, shape)
        if code in ("ST", "PW"):
            return mult * self.c_st * u * np.sqrt(n) * k
        if code in ("K", "KBN", "FB"):
            return mult * (self.c_k * u * k + self.c_k2 * n * u**2 * k)
        if code in ("CP", "DD", "IV"):
            return mult * self.c_cp * n * u**2 * k
        raise KeyError(f"no variability model for algorithm {code!r}")


class AnalyticPolicy:
    """Cheapest-first selection driven by the closed-form model."""

    #: this policy's select() accepts the shape keyword (see AdaptiveReducer)
    supports_shape_hint = True
    #: this policy's select() accepts the u keyword (precision-aware
    #: decisions for fp32/fp16 inputs)
    supports_unit_roundoff = True
    #: the bound tier can introspect this policy (candidates in cost order +
    #: a vectorised variability model) to prove decision agreement
    supports_bound_tier = True

    def __init__(
        self,
        candidates: Sequence[str] = ("ST", "K", "CP", "PR"),
        model: VariabilityModel | None = None,
        cost_model: CostModel | None = None,
        shape: str = "balanced",
    ) -> None:
        if not candidates:
            raise ValueError("need at least one candidate algorithm")
        self.model = model or VariabilityModel()
        self.cost_model = cost_model or CostModel()
        self.candidates = self.cost_model.rank(list(candidates))
        self.shape = shape

    def select(
        self,
        profile: SetProfile,
        threshold: float,
        *,
        shape: "str | None" = None,
        u: "float | None" = None,
    ) -> SelectionDecision:
        """Cheapest candidate whose predicted variability is <= threshold.

        ``shape`` overrides the policy's default tree-shape hint for this
        query; ``u`` overrides the model's unit roundoff (fp32/fp16 inputs
        select at their own precision).  Falls back to the most robust
        candidate when none qualifies (the paper's "step toward bitwise
        reproducibility": tighter thresholds force costlier algorithms;
        below every algorithm's floor the best available one is still
        returned, flagged by predicted > threshold).
        """
        if threshold < 0:
            raise ValueError("threshold must be >= 0")
        shape = self.shape if shape is None else shape
        predictions = {
            code: self.model.predict_std(code, profile, shape=shape, u=u)
            for code in self.candidates
        }
        chosen = self.candidates[-1]
        for code in self.candidates:
            if predictions[code] <= threshold:
                chosen = code
                break
        return SelectionDecision(
            code=chosen,
            threshold=threshold,
            predicted_std=predictions[chosen],
            profile=profile,
            candidate_predictions=predictions,
            relative_cost=self.cost_model.relative.get(chosen, math.nan),
            u=self.model.u if u is None else u,
        )
