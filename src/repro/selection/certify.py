"""Empirical reproducibility certificates.

The paper's notion of *application-specific reproducibility* "requires
developers to specify an upper bound on the amount of variability ... that
can be tolerated" (Sec. V.D).  A policy *predicts* compliance; a
:class:`Certificate` *demonstrates* it: given (data, algorithm, tolerance),
run the ensemble methodology (both tree shapes, permuted leaves) and emit a
signed-off, JSON-portable record of what was measured — the artifact a
reviewer or regression gate can check instead of trusting a model.

Certificates embed the RNG seed and ensemble sizes, so re-running
:func:`certify` with a certificate's parameters reproduces its measurements
exactly (everything in this library is seeded).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass

import numpy as np

from repro.analysis.determinism import audit_shapes
from repro.metrics.errors import error_stats
from repro.metrics.properties import profile_set
from repro.summation.registry import get_algorithm
from repro.trees.evaluate import evaluate_ensemble
from repro.util.rng import derive_seed

__all__ = ["Certificate", "certify"]


@dataclass(frozen=True)
class Certificate:
    """Outcome of an empirical reproducibility check."""

    algorithm_code: str
    tolerance: float
    satisfied: bool
    bitwise: bool
    worst_rel_std: float
    worst_abs_spread: float
    n: int
    condition: float
    dynamic_range: int
    n_trees: int
    shapes: tuple
    seed: int
    #: static determinism verdict from repro.analysis.determinism:
    #: "bitwise" means order-independence is *derived*, not just sampled.
    static_verdict: str = ""
    #: whole-program flow verdict from repro.analysis.flow: "clean" means no
    #: unguarded nondeterminism source reaches any serving entrypoint;
    #: "unguarded" means at least one does; "unavailable" means the package
    #: source could not be analyzed in this environment.
    flow_verdict: str = ""

    def to_json(self) -> str:
        payload = {
            "algorithm": self.algorithm_code,
            "tolerance": self.tolerance,
            "satisfied": bool(self.satisfied),
            "bitwise": bool(self.bitwise),
            "worst_rel_std": _num(self.worst_rel_std),
            "worst_abs_spread": _num(self.worst_abs_spread),
            "n": self.n,
            "condition": _num(self.condition),
            "dynamic_range": self.dynamic_range,
            "n_trees": self.n_trees,
            "shapes": list(self.shapes),
            "seed": self.seed,
            "static_verdict": self.static_verdict,
            "flow_verdict": self.flow_verdict,
        }
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "Certificate":
        d = json.loads(text)
        return cls(
            algorithm_code=str(d["algorithm"]),
            tolerance=float(d["tolerance"]),
            satisfied=bool(d["satisfied"]),
            bitwise=bool(d["bitwise"]),
            worst_rel_std=_denum(d["worst_rel_std"]),
            worst_abs_spread=_denum(d["worst_abs_spread"]),
            n=int(d["n"]),
            condition=_denum(d["condition"]),
            dynamic_range=int(d["dynamic_range"]),
            n_trees=int(d["n_trees"]),
            shapes=tuple(d["shapes"]),
            seed=int(d["seed"]),
            static_verdict=str(d.get("static_verdict", "")),
            flow_verdict=str(d.get("flow_verdict", "")),
        )


def _num(v: float):
    if math.isinf(v):
        return "inf"
    if math.isnan(v):
        return "nan"
    return v


def _denum(v) -> float:
    if v == "inf":
        return math.inf
    if v == "nan":
        return math.nan
    return float(v)


def certify(
    data: np.ndarray,
    algorithm_code: str,
    tolerance: float,
    *,
    n_trees: int = 100,
    shapes: tuple = ("balanced", "serial"),
    seed: int = 0,
) -> Certificate:
    """Empirically check that ``algorithm_code`` reduces ``data`` within the
    relative-variability ``tolerance`` across permuted-tree ensembles.

    For exact-zero sums (relative error undefined) the certificate demands
    bitwise constancy instead, which is the only meaningful reading of a
    tolerance there.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be >= 0")
    if n_trees < 2:
        raise ValueError("need at least 2 trees to measure variability")
    data = np.asarray(data, dtype=np.float64).ravel()
    if data.size == 0:
        raise ValueError("empty data")
    alg = get_algorithm(algorithm_code)
    profile = profile_set(data)
    # Static audit first: for order-independent operators the certificate can
    # assert bitwise reproducibility over *all* reduction orders, not just
    # the ensemble's sample of them.
    static_report = audit_shapes(algorithm_code, shapes, permuted_leaves=True)
    # Whole-program flow audit: does any unguarded nondeterminism source
    # reach a serving entrypoint?  Analyzed once per process and cached —
    # the package source is immutable for the life of the process.
    from repro.analysis.flow import serving_flow_verdict

    flow_verdict = serving_flow_verdict()

    worst_rel = 0.0
    worst_spread = 0.0
    bitwise = True
    satisfied = True
    for shape in shapes:
        values = evaluate_ensemble(
            data, shape, alg, n_trees, seed=derive_seed(seed, "certify", shape)
        )
        stats = error_stats(values, data)
        bitwise = bitwise and stats.reproducible_bitwise
        worst_spread = max(worst_spread, stats.spread)
        if math.isnan(stats.rel_std):
            # zero-sum: tolerance means bitwise constancy
            satisfied = satisfied and stats.reproducible_bitwise
        else:
            worst_rel = max(worst_rel, stats.rel_std)
            satisfied = satisfied and stats.rel_std <= tolerance
    return Certificate(
        algorithm_code=algorithm_code,
        tolerance=tolerance,
        satisfied=satisfied,
        bitwise=bitwise,
        worst_rel_std=worst_rel,
        worst_abs_spread=worst_spread,
        n=profile.n,
        condition=profile.condition,
        dynamic_range=profile.dynamic_range,
        n_trees=n_trees,
        shapes=tuple(shapes),
        seed=seed,
        static_verdict=str(static_report.verdict),
        flow_verdict=flow_verdict,
    )
