"""Streaming selection for applications whose data drifts.

The paper's conclusion singles this scenario out: "In applications where the
conditioning and dynamic range can change dramatically over the course of
the runtime, this effect is especially relevant."  A per-reduction fresh
selection would thrash between algorithms on noisy profiles and re-pay
decision latency every step; :class:`StreamingSelector` adds the two pieces
a production runtime needs:

* **smoothing** — profiles are blended over an exponential window in log-k
  space, so one spiky iteration does not flip the algorithm;
* **hysteresis** — switching *down* to a cheaper algorithm requires the
  smoothed prediction to pass the threshold with a safety margin for
  ``cooldown`` consecutive reductions; switching *up* (toward robustness)
  is immediate, because missing the tolerance is the costly direction.

The decision log records every switch with the profile that caused it, so a
simulation's reproducibility story is auditable after the fact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.metrics.properties import SetProfile
from repro.selection.policy import AnalyticPolicy, SelectionDecision
from repro.selection.profile import StreamProfile, profile_chunk
from repro.selection.selector import Policy

__all__ = ["SwitchEvent", "StreamingSelector"]


@dataclass(frozen=True)
class SwitchEvent:
    """One algorithm switch in the decision log."""

    step: int
    from_code: str
    to_code: str
    smoothed_condition: float
    raw_condition: float


@dataclass
class StreamingSelector:
    """Stateful selector for a sequence of reductions over drifting data.

    Parameters
    ----------
    policy:
        Underlying stateless policy (analytic by default).
    threshold:
        Application tolerance handed to the policy each step.
    alpha:
        Exponential smoothing weight of the newest profile (in log-k space);
        1.0 disables smoothing.
    margin:
        Safety factor for down-switches: a cheaper algorithm is adopted only
        if its predicted variability is <= threshold / margin.
    cooldown:
        Number of consecutive qualifying steps required before switching
        down.
    """

    policy: Optional[Policy] = None
    threshold: float = 1e-13
    alpha: float = 0.3
    margin: float = 10.0
    cooldown: int = 3

    _current_code: Optional[str] = field(default=None, init=False)
    _smoothed_log_k: Optional[float] = field(default=None, init=False)
    _down_candidate: Optional[str] = field(default=None, init=False)
    _down_streak: int = field(default=0, init=False)
    _step: int = field(default=0, init=False)
    log: list = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if self.margin < 1.0:
            raise ValueError("margin must be >= 1")
        if self.cooldown < 1:
            raise ValueError("cooldown must be >= 1")
        if self.policy is None:
            self.policy = AnalyticPolicy()

    # -- internals -----------------------------------------------------------
    def _smooth(self, profile: SetProfile) -> SetProfile:
        raw_log_k = (
            40.0 if math.isinf(profile.condition) else math.log10(max(profile.condition, 1.0))
        )
        if self._smoothed_log_k is None:
            self._smoothed_log_k = raw_log_k
        else:
            self._smoothed_log_k = (
                self.alpha * raw_log_k + (1.0 - self.alpha) * self._smoothed_log_k
            )
        k = math.inf if self._smoothed_log_k >= 39.0 else 10.0**self._smoothed_log_k
        return SetProfile(
            n=profile.n,
            condition=k,
            dynamic_range=profile.dynamic_range,
            max_abs=profile.max_abs,
            abs_sum=profile.abs_sum,
        )

    @staticmethod
    def _rank(code: str) -> int:
        order = {"ST": 0, "PW": 0, "FB": 1, "K": 1, "KBN": 1, "CP": 2, "DD": 2, "IV": 2, "AS": 3, "PR": 3, "EX": 4}
        return order.get(code, 5)

    # -- API ---------------------------------------------------------------------
    def observe(self, chunks: "Sequence[np.ndarray] | np.ndarray") -> SelectionDecision:
        """Profile this step's data and return the algorithm to use now."""
        if isinstance(chunks, np.ndarray):
            chunks = [chunks]
        sketch = StreamProfile()
        for c in chunks:
            sketch.merge(profile_chunk(c))
        raw = sketch.as_set_profile()
        smoothed = self._smooth(raw)
        decision = self.policy.select(smoothed, self.threshold)
        self._step += 1

        if self._current_code is None:
            self._current_code = decision.code
            return decision

        if self._rank(decision.code) > self._rank(self._current_code):
            # escalation: adopt immediately, missing tolerance is worse
            self._switch(decision.code, smoothed, raw)
            self._down_candidate, self._down_streak = None, 0
        elif self._rank(decision.code) < self._rank(self._current_code):
            # de-escalation: demand margin + persistence
            strict = self.policy.select(smoothed, self.threshold / self.margin)
            if self._rank(strict.code) < self._rank(self._current_code):
                if self._down_candidate == strict.code:
                    self._down_streak += 1
                else:
                    self._down_candidate, self._down_streak = strict.code, 1
                if self._down_streak >= self.cooldown:
                    self._switch(strict.code, smoothed, raw)
                    self._down_candidate, self._down_streak = None, 0
            else:
                self._down_candidate, self._down_streak = None, 0
        else:
            self._down_candidate, self._down_streak = None, 0

        return SelectionDecision(
            code=self._current_code,
            threshold=self.threshold,
            predicted_std=decision.candidate_predictions.get(
                self._current_code, decision.predicted_std
            ),
            profile=smoothed,
            candidate_predictions=decision.candidate_predictions,
            relative_cost=decision.relative_cost,
        )

    def _switch(self, to_code: str, smoothed: SetProfile, raw: SetProfile) -> None:
        self.log.append(
            SwitchEvent(
                step=self._step,
                from_code=self._current_code or "?",
                to_code=to_code,
                smoothed_condition=smoothed.condition,
                raw_condition=raw.condition,
            )
        )
        self._current_code = to_code

    @property
    def current_code(self) -> Optional[str]:
        return self._current_code

    @property
    def n_switches(self) -> int:
        return len(self.log)
