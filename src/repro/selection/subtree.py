"""Subtree-level selection: the paper's closing proposal, implemented.

Sec. V.D ends: "These results present a strong case for further research
into tools that, at exascale, profile parameters of interest (e.g., n, k,
dr, and tree shape) at runtime and apply cheaper but acceptably accurate
reduction algorithms **to subtrees** based on the profile."

:class:`HierarchicalReducer` does exactly that for the two-level tree a real
machine induces (rank-local reduction below, cross-rank combine above):

* every rank profiles *its own chunk* and selects the cheapest algorithm
  whose predicted variability meets a per-rank error budget — so a rank
  holding benign data runs ST while its neighbour with cancelling data runs
  CP or PR;
* the cross-rank combine always uses a deterministic merge (PR by default):
  the top of the tree is where nondeterministic schedules live, so this is
  the part that must be order-free, and it touches only ``n_ranks`` values —
  its cost is negligible regardless of algorithm.

The budget split follows the error calculus: local errors add up across
ranks, so each rank gets ``threshold / n_ranks`` of the relative budget
(conservative, first-order).

The result is bitwise reproducible whenever every rank's *local* order is
fixed (it is: a rank reduces its own contiguous chunk in place) and the
cross-rank combine is deterministic — while the work spent is proportional
to how hard each rank's data actually is.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.metrics.properties import SetProfile
from repro.selection.policy import AnalyticPolicy, SelectionDecision
from repro.selection.profile import StreamProfile, profile_chunk
from repro.selection.selector import Policy
from repro.summation.base import SumContext
from repro.summation.prerounded import PreroundedAccumulator, PreroundedSum
from repro.summation.registry import get_algorithm

__all__ = ["SubtreePlan", "HierarchicalResult", "HierarchicalReducer"]


@dataclass(frozen=True)
class SubtreePlan:
    """Per-rank algorithm choices plus the shared combine context."""

    local_codes: tuple[str, ...]
    combine_code: str
    rank_decisions: tuple[SelectionDecision, ...]
    global_max_abs: float
    total_n: int

    @property
    def code_counts(self) -> Mapping[str, int]:
        counts: dict[str, int] = {}
        for c in self.local_codes:
            counts[c] = counts.get(c, 0) + 1
        return counts

    def estimated_cost(self, cost_model, chunk_sizes: Sequence[int]) -> float:
        """Total work in ST-units under a cost model (for the ablation)."""
        return math.fsum(
            cost_model.cost(code, n)
            for code, n in zip(self.local_codes, chunk_sizes)
        )


@dataclass(frozen=True)
class HierarchicalResult:
    """Value plus the audited per-subtree plan."""

    value: float
    plan: SubtreePlan


class HierarchicalReducer:
    """Per-rank (subtree) algorithm selection with a deterministic combine.

    Parameters
    ----------
    policy:
        Any selection policy (analytic by default); queried once per rank
        with that rank's own profile and budget share.
    combine:
        Code of the cross-rank combine algorithm; must be deterministic
        (``"PR"`` or ``"EX"``), because the cross-rank order is the
        nondeterministic part of a real machine's tree.
    """

    def __init__(
        self,
        policy: "Policy | None" = None,
        *,
        combine: str = "PR",
        threshold: float = 1e-13,
    ) -> None:
        if threshold < 0:
            raise ValueError("threshold must be >= 0")
        alg = get_algorithm(combine)
        if not alg.deterministic:
            raise ValueError(
                f"cross-rank combine must be deterministic; {combine!r} is not"
            )
        self.policy = policy if policy is not None else AnalyticPolicy()
        self.combine_code = combine
        self.threshold = threshold

    def plan(self, chunks: Sequence[np.ndarray], threshold: "float | None" = None) -> SubtreePlan:
        """Profile every chunk and choose its local algorithm."""
        if not chunks:
            raise ValueError("need at least one chunk")
        t = self.threshold if threshold is None else threshold
        sketches = [profile_chunk(c) for c in chunks]
        total = StreamProfile()
        for s in sketches:
            total.merge(s)
        # conservative first-order budget split: local errors sum
        per_rank_budget = t / max(len(chunks), 1)
        decisions = tuple(
            self.policy.select(s.as_set_profile(), per_rank_budget) for s in sketches
        )
        return SubtreePlan(
            local_codes=tuple(d.code for d in decisions),
            combine_code=self.combine_code,
            rank_decisions=decisions,
            global_max_abs=total.max_abs,
            total_n=total.n,
        )

    def reduce(
        self,
        chunks: Sequence[np.ndarray],
        threshold: "float | None" = None,
        plan: Optional[SubtreePlan] = None,
    ) -> HierarchicalResult:
        """Execute the two-level reduction under a (possibly cached) plan."""
        if plan is None:
            plan = self.plan(chunks, threshold)
        if len(plan.local_codes) != len(chunks):
            raise ValueError("plan does not match chunk count")
        context = SumContext(max_abs=plan.global_max_abs, n_hint=plan.total_n)
        # local (subtree) phase: each rank's own cheapest-acceptable algorithm
        locals_: list[float] = []
        for code, chunk in zip(plan.local_codes, chunks):
            alg = get_algorithm(code)
            acc = alg.make_accumulator(context if alg.needs_context else None)
            acc.add_array(np.asarray(chunk, dtype=np.float64))
            locals_.append(acc.result())
        # deterministic cross-rank combine over the n_ranks partials
        combine_alg = get_algorithm(plan.combine_code)
        top_ctx = SumContext.for_data(np.asarray(locals_)) if combine_alg.needs_context else None
        value = combine_alg.sum_array(np.asarray(locals_, dtype=np.float64), top_ctx)
        return HierarchicalResult(value=value, plan=plan)
