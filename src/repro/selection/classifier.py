"""Empirical grid classifier: Fig. 12 as a runtime decision table.

The Fig. 9-11 sweeps measure, for every grid cell (a point in (n, k, dr)
space), the std of the error of each algorithm over an ensemble of permuted
reduction trees.  Fig. 12 then shades each cell by the cheapest algorithm
whose measured std meets the threshold.  :class:`GridClassifier` persists
those measurements and answers runtime queries by nearest-cell lookup in
(log10 n, log10 k, dr) space — so the very experiment the paper runs becomes
the calibration table of the selector it advocates.

The table is JSON-(de)serialisable so a calibration computed once (e.g. by
``benchmarks/bench_fig12.py``) can be shipped with an application.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.metrics.properties import SetProfile
from repro.selection.costmodel import CostModel
from repro.selection.policy import SelectionDecision

__all__ = ["GridCell", "GridClassifier"]

#: log10(k) stand-in for exactly-zero sums, larger than any finite grid point.
_INF_LOG_K = 40.0


@dataclass(frozen=True)
class GridCell:
    """One calibrated grid point: parameters plus measured stds."""

    n: int
    condition: float
    dynamic_range: int
    stds: Mapping[str, float]  # algorithm code -> measured error std

    def key(self) -> tuple[float, float, float]:
        log_k = _INF_LOG_K if math.isinf(self.condition) else math.log10(self.condition)
        return (math.log10(max(self.n, 1)), log_k, float(self.dynamic_range))


class GridClassifier:
    """Nearest-cell empirical policy over a calibrated grid."""

    def __init__(
        self, cells: Sequence[GridCell], cost_model: CostModel | None = None
    ) -> None:
        if not cells:
            raise ValueError("need at least one calibrated cell")
        self.cells = list(cells)
        self.cost_model = cost_model or CostModel()
        codes = set(self.cells[0].stds)
        for cell in self.cells:
            if set(cell.stds) != codes:
                raise ValueError("all cells must calibrate the same algorithms")
        self.codes = self.cost_model.rank(sorted(codes))

    # -- queries ---------------------------------------------------------------
    def nearest_cell(self, profile: SetProfile) -> GridCell:
        """Calibrated cell closest to the profile in (log n, log k, dr)."""
        log_k = (
            _INF_LOG_K
            if math.isinf(profile.condition)
            else math.log10(max(profile.condition, 1.0))
        )
        q = (math.log10(max(profile.n, 1)), log_k, float(profile.dynamic_range))
        # dr distances are scaled to decades: 10 binades ~ 3 decades.
        scale = (1.0, 1.0, 0.3)

        def dist(cell: GridCell) -> float:
            ck = cell.key()
            return math.fsum(((a - b) * s) ** 2 for a, b, s in zip(q, ck, scale))

        return min(self.cells, key=dist)

    def cheapest_for(self, cell: GridCell, threshold: float) -> str:
        """Cheapest algorithm whose *measured* std meets the threshold; the
        most robust one when none does."""
        for code in self.codes:
            if cell.stds[code] <= threshold:
                return code
        return self.codes[-1]

    def select(self, profile: SetProfile, threshold: float) -> SelectionDecision:
        cell = self.nearest_cell(profile)
        code = self.cheapest_for(cell, threshold)
        return SelectionDecision(
            code=code,
            threshold=threshold,
            predicted_std=cell.stds[code],
            profile=profile,
            candidate_predictions=dict(cell.stds),
            relative_cost=self.cost_model.relative.get(code, math.nan),
        )

    def decision_grid(self, threshold: float) -> "list[tuple[GridCell, str]]":
        """Fig. 12's content: every cell with its cheapest-acceptable code."""
        return [(cell, self.cheapest_for(cell, threshold)) for cell in self.cells]

    # -- persistence -----------------------------------------------------------
    def to_json(self) -> str:
        payload = {
            "cells": [
                {
                    "n": c.n,
                    "condition": "inf" if math.isinf(c.condition) else c.condition,
                    "dynamic_range": c.dynamic_range,
                    "stds": dict(c.stds),
                }
                for c in self.cells
            ]
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(
        cls, text: str, cost_model: CostModel | None = None
    ) -> "GridClassifier":
        payload = json.loads(text)
        cells = [
            GridCell(
                n=int(c["n"]),
                condition=math.inf if c["condition"] == "inf" else float(c["condition"]),
                dynamic_range=int(c["dynamic_range"]),
                stds={str(k): float(v) for k, v in c["stds"].items()},
            )
            for c in payload["cells"]
        ]
        return cls(cells, cost_model)
