"""Bound-driven selection tier: O(1) analytic certification, no profiling.

The serving path's dominant per-item cost is *empirical profiling* — the
composite-precision sketch (`repro.selection.profile`) costs ~4x the
reduction it informs (BENCH_adaptive.json).  This module implements the
alternative ROADMAP item 4 prescribes: decide from **cheap one-pass
statistics** whether an algorithm's *provable* Hallman–Ipsen error bound
(:func:`repro.metrics.bounds.summation_error_bound`, deterministic or
probabilistic at a requested confidence) already meets the reproducibility
threshold, and skip profiling entirely when it does.

Two properties make the tier safe to run in front of the profiling policy:

1. **Certified statistics.**  The cheap pass computes ``Σ|x|`` and ``Σx``
   with plain (pairwise/sequential) binary64 summation, whose own error is
   bounded by the same Hallman–Ipsen machinery.  That turns the noisy
   estimates into a *certified interval* ``[k_lo, k_hi]`` for the true
   condition number — every bound below is evaluated at the conservative
   end, so a certification is a theorem about the data, not a guess.

2. **Decision agreement.**  A candidate is fast-path certified only when
   (a) its provable bound at ``k_hi`` meets the threshold AND (b) the
   profiling policy's own variability estimate at ``k_hi`` would accept it;
   a candidate is skipped only when the policy's estimate at ``k_lo`` would
   provably reject it.  Anything in between is *inconclusive* and falls
   back to the empirical profiling pipeline unchanged.  Consequently a
   tier-resolved decision always carries the same algorithm code the
   profiling path would have chosen — the fast path changes selection
   *cost*, never selection *outcome* (tests pin this).

The statistics pass is precision-aware: each item carries the unit roundoff
of its input dtype (:func:`item_unit_roundoff`), so fp32/fp16 inputs are
certified against their own roundoff instead of being silently upcast
inside the decision.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.fp.properties import UNIT_ROUNDOFF, exponent, unit_roundoff
from repro.metrics.bounds import summation_error_bound
from repro.metrics.properties import SetProfile
from repro.selection._statskernel import rowstats as _fused_rowstats
from repro.selection.policy import SelectionDecision
from repro.selection.profile import StreamProfile

__all__ = [
    "BoundStats",
    "BoundTier",
    "bound_stats_item",
    "bound_stats_stream",
    "item_unit_roundoff",
]


_ROUNDOFF_BY_DTYPE: "dict" = {}


def item_unit_roundoff(chunks) -> float:
    """Unit roundoff of one reduction's input: the promoted dtype of its
    chunks (fp16 -> 2**-11, fp32 -> 2**-24, fp64 and non-arrays -> 2**-53).

    This is the "no silent upcast in the selection decision" hook: the
    reduction *executes* in binary64 either way, but low-precision scenario
    inputs are selected for at their own roundoff.
    """
    dts = {getattr(c, "dtype", None) for c in chunks}
    if None in dts or not dts:
        return UNIT_ROUNDOFF
    if len(dts) == 1:
        dt = next(iter(dts))
    else:
        dt = np.result_type(*dts)
    u = _ROUNDOFF_BY_DTYPE.get(dt)
    if u is None:
        u = unit_roundoff(dt)
        _ROUNDOFF_BY_DTYPE[dt] = u
    return u


@dataclass(frozen=True)
class BoundStats:
    """One cheap pass over one reduction's operands: everything the bound
    tier needs, nothing the composite-precision profile sketch pays for.

    ``abs_sum`` and ``approx_sum`` are plain binary64 summations (the fused
    kernel's lane-parallel order or NumPy pairwise within chunks, pairwise
    across ranks — any fixed order of height ``<= n-1``); their own
    rounding error is certified by the tier before use.  ``u`` is the input
    dtype's unit roundoff.
    """

    n: int
    max_abs: float
    min_abs_nonzero: float
    abs_sum: float
    approx_sum: float
    u: float

    def dynamic_range_estimate(self) -> int:
        """Exact dr from the extreme magnitudes (0 for all-zero sets)."""
        if not math.isfinite(self.min_abs_nonzero) or self.max_abs == 0.0:  # repro: allow[FP001] -- all-zero input guard
            return 0
        return exponent(self.max_abs) - exponent(self.min_abs_nonzero)

    def as_stream_profile(self) -> StreamProfile:
        """The stats as a (lo-parts-zero) sketch: what the reduce stage and
        the shared-memory result arena consume for fast-path items."""
        return StreamProfile(
            n=self.n,
            max_abs=self.max_abs,
            min_abs_nonzero=self.min_abs_nonzero,
            abs_sum_hi=self.abs_sum,
            abs_sum_lo=0.0,
            sum_hi=self.approx_sum,
            sum_lo=0.0,
        )

    @staticmethod
    def from_stream_profile(sketch: StreamProfile, u: float) -> "BoundStats":
        """Inverse of :meth:`as_stream_profile` (the arena replay path)."""
        return BoundStats(
            n=sketch.n,
            max_abs=sketch.max_abs,
            min_abs_nonzero=sketch.min_abs_nonzero,
            abs_sum=sketch.abs_sum_hi,
            approx_sum=sketch.sum_hi,
            u=u,
        )


def bound_stats_item(chunks, u: float) -> BoundStats:
    """Cheap one-pass statistics of one reduction's chunk list.

    Operation order is pinned to match :func:`bound_stats_stream`'s
    vectorised sweep lane-for-lane: the identical per-chunk row routine
    (the fused C kernel when available, NumPy pairwise reductions
    otherwise), then one pairwise :func:`np.sum` across the per-rank
    partials (NumPy's last-axis reduction applies the identical pairwise
    routine to each row of a contiguous matrix, which the round-trip test
    pins), so uniform shards of a ragged stream produce bitwise-identical
    statistics on either path.
    """
    n_ranks = len(chunks)
    chunk_abs = np.zeros(n_ranks, dtype=np.float64)
    chunk_sum = np.zeros(n_ranks, dtype=np.float64)
    chunk_max = np.zeros(n_ranks, dtype=np.float64)
    chunk_min = np.full(n_ranks, math.inf)
    n = 0
    for j, c in enumerate(chunks):
        arr = np.asarray(c, dtype=np.float64).ravel()
        n += int(arr.size)
        if arr.size:
            planes = _fused_rowstats(arr, 1, arr.size)
            if planes is not None:
                chunk_abs[j] = planes[0][0]
                chunk_sum[j] = planes[1][0]
                chunk_max[j] = planes[2][0]
                chunk_min[j] = planes[3][0]
                continue
            a = np.abs(arr)
            chunk_max[j] = a.max()
            chunk_min[j] = np.min(a, initial=math.inf, where=(a > 0.0))
            chunk_abs[j] = np.sum(a)  # repro: allow[FP002] -- cheap-statistics pass; its rounding error is certified by the tier before any use
            chunk_sum[j] = np.sum(arr)  # repro: allow[FP002] -- same certified cheap-statistics pass
    return BoundStats(
        n=n,
        max_abs=float(np.max(chunk_max, initial=0.0)),
        min_abs_nonzero=float(np.min(chunk_min, initial=math.inf)),
        abs_sum=float(np.sum(chunk_abs)),  # repro: allow[FP002] -- pairwise merge of the certified statistics pass
        approx_sum=float(np.sum(chunk_sum)),  # repro: allow[FP002] -- pairwise merge of the certified statistics pass
        u=u,
    )


#: reused pack/abs scratch buffers keyed by (rows, width): a steady-state
#: serving process sees the same stream shape every call, and reallocating
#: two multi-MB temporaries per call costs more in page faults than the
#: whole statistics computation (same persistent-buffer idiom as the
#: dispatch arenas in repro.util.pool)
_SCRATCH: "dict[tuple[int, int], list]" = {}
_SCRATCH_SHAPES_MAX = 4


def _pack_scratch(rows: int, width: int):
    key = (rows, width)
    bufs = _SCRATCH.get(key)
    if bufs is None:
        if len(_SCRATCH) >= _SCRATCH_SHAPES_MAX:
            # Pure scratch: every buffer is fully overwritten before each
            # read, so per-worker copies can only differ in which shapes
            # they have cached, never in any computed value.
            # repro: allow[FP010] -- scratch cache, buffers overwritten before every read
            _SCRATCH.clear()
        flat = np.empty(rows * width, dtype=np.float64)
        # the |x| buffer is only needed by the NumPy fallback sweep; the
        # fused kernel never materialises it, so allocate lazily
        bufs = [flat, flat.reshape(rows, width), None]
        _SCRATCH[key] = bufs  # repro: allow[FP010] -- scratch cache, see above
    return bufs


def _abs_scratch(bufs) -> np.ndarray:
    if bufs[2] is None:
        bufs[2] = np.empty(bufs[1].shape)  # repro: allow[FP010] -- scratch cache, see above
    return bufs[2]


def bound_stats_stream(
    batches, us: Sequence[float]
) -> "list[BoundStats]":
    """Cheap statistics for a whole stream in one vectorised sweep.

    Uniform-width streams (the serving-path common case) pack into one
    reused matrix: ~5 NumPy passes replace the profiling sketch's ~50 (the
    composite-precision ladder), which is where the tier's latency win
    comes from.  Ragged streams fall back to the bitwise-identical per-item
    loop.
    """
    n_items = len(batches)
    if n_items == 0:
        return []
    n_ranks = len(batches[0])
    if any(len(chunks) != n_ranks for chunks in batches):
        return [bound_stats_item(chunks, u) for chunks, u in zip(batches, us)]
    if n_ranks == 0:
        return [
            BoundStats(0, 0.0, math.inf, 0.0, 0.0, u) for u in us
        ]
    # pack with as little per-chunk Python work as possible: a serving
    # stream is thousands of small chunk objects, so one attribute access
    # per chunk is a measurable fraction of the whole tier.  np.concatenate
    # consumes the raw chunk objects directly (casting floats itself); any
    # shape the fast pack cannot express falls back to the per-chunk
    # normalising loop below, bitwise-identically.
    chunk_list = [c for chunks in batches for c in chunks]
    rows = n_items * n_ranks
    try:
        sizes = np.fromiter(
            (c.size for c in chunk_list), dtype=np.int64, count=rows
        )
    except AttributeError:  # non-array chunks: normalise one by one
        arrays = [np.asarray(c, dtype=np.float64).ravel() for c in chunk_list]
        sizes = np.fromiter((a.size for a in arrays), dtype=np.int64, count=rows)
        chunk_list = arrays
    width = int(sizes[0])
    if not bool((sizes == width).all()):
        return [bound_stats_item(chunks, u) for chunks, u in zip(batches, us)]
    if width:
        bufs = _pack_scratch(rows, width)
        flat, matrix = bufs[0], bufs[1]
        try:
            np.concatenate(chunk_list, out=flat)
        except (TypeError, ValueError):
            # e.g. integer dtypes or multi-d chunks the same-kind cast into
            # the flat binary64 buffer cannot take: normalise per chunk
            np.concatenate(
                [np.asarray(c, dtype=np.float64).ravel() for c in chunk_list],
                out=flat,
            )
        planes = _fused_rowstats(flat, rows, width)
        if planes is not None:
            # single fused read pass: the matrix is touched once and no
            # |x| temporary exists at all (see _statskernel docstring for
            # why the different association order is certified-safe)
            row_abs, row_sum, row_max, row_min = planes
        else:
            absbuf = _abs_scratch(bufs)
            np.abs(matrix, out=absbuf)
            row_max = absbuf.max(axis=1)
            # min-nonzero: the plain row min is right wherever no zero
            # occurs (the serving-path common case); only zero-containing
            # rows pay the slower where-masked reduction
            row_min = absbuf.min(axis=1)
            zero_rows = np.nonzero(row_min == 0.0)[0]  # repro: allow[FP001] -- exact sentinel: a zero row-min means the row contains a literal 0.0
            if zero_rows.size:
                sub = absbuf[zero_rows]
                row_min[zero_rows] = np.min(
                    sub, axis=1, initial=math.inf, where=(sub > 0.0)
                )
            row_abs = np.sum(absbuf, axis=1)  # repro: allow[FP002] -- cheap-statistics pass; its rounding error is certified by the tier before any use
            row_sum = np.sum(matrix, axis=1)  # repro: allow[FP002] -- same certified cheap-statistics pass
    else:
        row_max = np.zeros(rows, dtype=np.float64)
        row_min = np.full(rows, math.inf)
        row_abs = np.zeros(rows, dtype=np.float64)
        row_sum = np.zeros(rows, dtype=np.float64)

    # the rank merge of bound_stats_item, vectorised over items: max/min are
    # order-independent, and a last-axis pairwise np.sum over the contiguous
    # per-rank partials is bitwise-identical to the per-item 1-D np.sum
    max_tot = row_max.reshape(n_items, n_ranks).max(axis=1)
    min_tot = row_min.reshape(n_items, n_ranks).min(axis=1)
    abs_tot = np.sum(row_abs.reshape(n_items, n_ranks), axis=1)  # repro: allow[FP002] -- pairwise merge of the certified statistics pass
    sum_tot = np.sum(row_sum.reshape(n_items, n_ranks), axis=1)  # repro: allow[FP002] -- pairwise merge of the certified statistics pass
    n_total = n_ranks * width
    return [
        BoundStats(
            n=n_total,
            max_abs=float(max_tot[i]),
            min_abs_nonzero=float(min_tot[i]),
            abs_sum=float(abs_tot[i]),
            approx_sum=float(sum_tot[i]),
            u=us[i],
        )
        for i in range(n_items)
    ]


@dataclass(frozen=True)
class BoundTier:
    """The O(1) analytic selection tier.

    ``confidence`` parameterises the probabilistic (martingale) bounds:
    ``1.0`` (default) certifies only against the deterministic worst case;
    ``0.999999`` allows the ``sqrt(n)``-scaled probabilistic forms, which
    is what certifies large well-conditioned reductions at serving-grade
    thresholds.  Frozen and picklable — the shard workers carry it into the
    pool and the parent replays it for the bitwise-identity audit.
    """

    confidence: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.confidence <= 1.0:
            raise ValueError("confidence must be in (0, 1]")

    @staticmethod
    def engages(policy) -> bool:
        """The tier can only front policies it can reason about: cheapest-
        first walkers exposing ``candidates``, a vectorised ``model`` and a
        ``cost_model`` (:class:`AnalyticPolicy` opts in)."""
        return bool(getattr(policy, "supports_bound_tier", False))

    def decide_stream(
        self,
        stats: Sequence[BoundStats],
        threshold: float,
        policy,
    ) -> "list[SelectionDecision | None]":
        """Resolve what can be *proved*; return ``None`` where profiling
        must decide.

        Walks the policy's candidates cheapest-first with three vectorised
        verdicts per candidate: **certify** (provable bound and the
        policy's own estimate both meet the threshold at the conservative
        ``k_hi``), **reject** (the policy's estimate provably misses the
        threshold even at ``k_lo`` — keep walking), or **inconclusive**
        (fall back to empirical profiling for this item).  Items whose every
        candidate is provably rejected resolve to the policy's documented
        most-robust fall-through.
        """
        n_items = len(stats)
        if n_items == 0:
            return []
        n = np.array([s.n for s in stats], dtype=np.float64)
        abs_sum = np.array([s.abs_sum for s in stats], dtype=np.float64)
        sum_mag = np.abs(np.array([s.approx_sum for s in stats], dtype=np.float64))
        u = np.array([s.u for s in stats], dtype=np.float64)

        # certify the cheap statistics themselves: the stats pass ran in
        # binary64 with tree height <= n-1, so its own error is bounded by
        # the Hallman–Ipsen deterministic form at u = 2**-53
        eps = np.expm1(np.maximum(n - 1.0, 0.0) * math.log1p(UNIT_ROUNDOFF))
        with np.errstate(divide="ignore", invalid="ignore"):
            abs_hi = np.where(eps < 1.0, abs_sum / (1.0 - eps), math.inf)
            stat_err = eps * abs_hi
            denom = sum_mag - stat_err
            k_hi = np.where(denom > 0.0, abs_hi / denom, math.inf)
            k_lo = np.where(
                sum_mag + stat_err > 0.0,
                np.maximum((abs_sum / (1.0 + eps)) / (sum_mag + stat_err), 1.0),
                1.0,
            )

        shape = getattr(policy, "shape", "balanced")
        model = policy.model
        candidates = list(policy.candidates)
        resolved = np.full(n_items, -1, dtype=np.int64)
        predicted = np.zeros(n_items, dtype=np.float64)
        active = np.ones(n_items, dtype=bool)
        bounds_by_code: "dict[str, np.ndarray]" = {}
        for ci, code in enumerate(candidates):
            if not np.any(active):
                break
            try:
                bound_hi = np.asarray(
                    summation_error_bound(
                        code, n, k_hi, 1.0, u, confidence=self.confidence
                    )
                )
            except KeyError:
                bound_hi = np.full(n_items, math.inf)
            bounds_by_code[code] = bound_hi
            est_hi = model.predict_std_array(code, n, k_hi, shape=shape, u=u)
            est_lo = model.predict_std_array(code, n, k_lo, shape=shape, u=u)
            certify = active & (bound_hi <= threshold) & (est_hi <= threshold)
            resolved[certify] = ci
            predicted[certify] = bound_hi[certify]
            reject = active & ~certify & (est_lo > threshold)
            active &= reject
        # every candidate provably rejected: the policy's documented
        # fall-through picks the most robust candidate regardless
        if np.any(active):
            last = len(candidates) - 1
            last_bound = bounds_by_code[candidates[last]]
            resolved[active] = last
            predicted[active] = last_bound[active]

        decisions: "list[SelectionDecision | None]" = [None] * n_items
        relative_costs = policy.cost_model.relative
        for i in np.nonzero(resolved >= 0)[0]:
            ci = int(resolved[i])
            code = candidates[ci]
            s = stats[i]
            profile = SetProfile(
                n=s.n,
                condition=float(k_hi[i]),
                dynamic_range=s.dynamic_range_estimate(),
                max_abs=s.max_abs,
                abs_sum=s.abs_sum,
            )
            decisions[i] = SelectionDecision(
                code=code,
                threshold=threshold,
                predicted_std=float(predicted[i]),
                profile=profile,
                candidate_predictions={
                    c: float(bounds_by_code[c][i]) for c in candidates[: ci + 1]
                },
                relative_cost=relative_costs.get(code, math.nan),
                tier="bound",
                u=s.u,
            )
        return decisions

    def decide_item(
        self, stats: BoundStats, threshold: float, policy
    ) -> "SelectionDecision | None":
        """Single-item :meth:`decide_stream` (all lanes are independent, so
        this is bitwise-identical to the item's lane in a stream call)."""
        return self.decide_stream([stats], threshold, policy)[0]
