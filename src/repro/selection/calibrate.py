"""``repro-calibrate``: produce this machine's selection calibration.

The selector's quality rests on two machine-specific inputs: the *cost
model* (how expensive each kernel really is here) and the *variability
model* / *grid classifier* (how much each algorithm really varies here).
This CLI measures both and writes them as JSON artifacts an application can
ship:

    repro-calibrate --out results/ [--n 4096] [--trees 150] [--quick]

Outputs
-------
``costs.json``
    measured relative kernel costs (ST-normalised).
``variability.json``
    fitted analytic-model constants plus goodness-of-fit.
``classifier.json``
    the measured (k, dr) decision table (a ready-to-load
    :class:`~repro.selection.classifier.GridClassifier`).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.experiments.grid import grid_sweep
from repro.selection.classifier import GridCell, GridClassifier
from repro.selection.costmodel import CostModel
from repro.selection.fitting import fit_variability_model

__all__ = ["main"]

_CODES = ("ST", "K", "CP", "PR")


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-calibrate",
        description="Measure this machine's summation costs and variability grids.",
    )
    parser.add_argument("--out", default="results", help="output directory")
    parser.add_argument("--n", type=int, default=4096, help="summands per grid cell")
    parser.add_argument("--trees", type=int, default=150, help="trees per grid cell")
    parser.add_argument("--seed", type=int, default=20150908)
    parser.add_argument(
        "--quick", action="store_true", help="small grid (4 k-points, 3 dr-points)"
    )
    args = parser.parse_args(argv)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    print("measuring kernel costs...", flush=True)
    cost_model = CostModel().calibrate(list(_CODES), n=1 << 18, repeats=3)
    (out / "costs.json").write_text(
        json.dumps({c: cost_model.relative[c] for c in _CODES}, indent=2)
    )
    print("  " + ", ".join(f"{c}: x{cost_model.relative[c]:.2f}" for c in _CODES))

    k_decades = (0, 6, 12, 15) if args.quick else (0, 3, 6, 9, 12, 15)
    dr_values = (0, 16, 32) if args.quick else (0, 8, 16, 24, 32, 40, 48)
    print(
        f"sweeping the (k, dr) grid: {len(k_decades)}x{len(dr_values)} cells, "
        f"n={args.n}, {args.trees} trees/cell ...",
        flush=True,
    )
    cells = grid_sweep(
        n_values=[args.n],
        k_values=[10.0**d for d in k_decades],
        dr_values=list(dr_values),
        codes=_CODES,
        n_trees=args.trees,
        seed=args.seed,
    )

    report = fit_variability_model(cells)
    (out / "variability.json").write_text(
        json.dumps(
            {
                "c_st": report.model.c_st,
                "c_k": report.model.c_k,
                "c_k2": report.model.c_k2,
                "c_cp": report.model.c_cp,
                "rms_decades": {k: v for k, v in report.rms_decades.items()},
                "n_cells_used": dict(report.n_cells_used),
            },
            indent=2,
            default=str,
        )
    )
    print(
        "  fitted constants: "
        f"c_st={report.model.c_st:.3g}, c_k={report.model.c_k:.3g}, "
        f"c_cp={report.model.c_cp:.3g}"
    )

    classifier = GridClassifier(
        [
            GridCell(
                n=c.n,
                condition=c.condition,
                dynamic_range=c.dynamic_range,
                stds={code: c.rel_std(code) for code in _CODES},
            )
            for c in cells
        ],
        cost_model,
    )
    (out / "classifier.json").write_text(classifier.to_json())
    print(f"wrote costs.json, variability.json, classifier.json to {out}/")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
