"""Optional fused statistics kernel for the bound tier (ctypes + cc).

The bound tier's cheap pass needs four row statistics per chunk —
``Σ|x|``, ``Σx``, ``max|x|`` and ``min{|x| : x != 0}`` — which the NumPy
fallback computes in five full-matrix sweeps (abs, max, min, two sums).
At serving-stream sizes those sweeps are memory-bound: the operand matrix
is read five times and an ``|x|`` temporary is written once.  This kernel
fuses everything into a single read pass with eight independent
accumulator lanes per statistic, so the stream is touched exactly once
and the loop runs at memory bandwidth instead of ufunc-dispatch rate.

Unlike the balanced-sweep kernels in :mod:`repro.trees._ckernels`, this
kernel is **not** bitwise-equal to its NumPy fallback and does not need to
be: the lane-parallel summation is just a different fixed association
order, and the bound tier certifies its statistics against the worst case
over *any* binary64 summation of height ``<= n-1`` (the lane + tail +
combine path of a ``width``-element row is at most ``width - 1`` roundings
for every width).  What must hold — and does — is per-process consistency:
availability is decided once per process, the shard workers inherit the
same environment and digest-addressed cache as the parent, and
``bound_stats_item`` and ``bound_stats_stream`` route through the same
per-row code, so serial and parallel dispatch keep producing identical
statistics and therefore identical decisions.

Availability mirrors the tree kernels: compiled on first use with the
system C compiler into the shared content-addressed cache; no compiler,
a failed compile, or ``REPRO_NO_CKERNELS`` silently selects the NumPy
fallback.  Nothing is downloaded or installed.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
from typing import Optional

import numpy as np

from repro.obs import get_registry

__all__ = ["kernel_available", "rowstats"]

#: Eight lanes: enough independent add chains to hide FP-add latency and
#: let the compiler keep every statistic in SIMD registers; the remainder
#: folds into lane 0 and the lanes merge in a fixed order, so any element's
#: leaf-to-root path sees at most ``width - 1`` roundings (the certified-
#: statistics budget the tier already assumes).
_C_SOURCE = r"""
#include <math.h>
#include <stddef.h>
#include <stdint.h>

#define LANES 8

int bound_rowstats(const double *restrict data, int64_t n_rows,
                   int64_t width, double *restrict out)
{
    double *restrict abs_out = out;
    double *restrict sum_out = out + n_rows;
    double *restrict max_out = out + 2 * n_rows;
    double *restrict min_out = out + 3 * n_rows;
    for (int64_t r = 0; r < n_rows; r++) {
        const double *restrict row = data + (size_t)r * (size_t)width;
        double s[LANES], a[LANES], mx[LANES], mn[LANES];
        for (int k = 0; k < LANES; k++) {
            s[k] = 0.0; a[k] = 0.0; mx[k] = 0.0; mn[k] = INFINITY;
        }
        int64_t nb = width - width % LANES;
        for (int64_t j = 0; j < nb; j += LANES) {
            for (int k = 0; k < LANES; k++) {
                double v = row[j + k];
                double av = fabs(v);
                s[k] = s[k] + v;
                a[k] = a[k] + av;
                mx[k] = av > mx[k] ? av : mx[k];
                /* min over {av if av > 0 else +inf}: two blend/min idioms
                 * instead of one fused conditional, which schedules much
                 * better (and exact zeros never win a min-nonzero) */
                double cand = av > 0.0 ? av : INFINITY;
                mn[k] = cand < mn[k] ? cand : mn[k];
            }
        }
        for (int64_t j = nb; j < width; j++) {
            double v = row[j];
            double av = fabs(v);
            s[0] = s[0] + v;
            a[0] = a[0] + av;
            mx[0] = av > mx[0] ? av : mx[0];
            double cand = av > 0.0 ? av : INFINITY;
            mn[0] = cand < mn[0] ? cand : mn[0];
        }
        double st = s[0], at = a[0], mxt = mx[0], mnt = mn[0];
        for (int k = 1; k < LANES; k++) {
            st = st + s[k];
            at = at + a[k];
            mxt = mx[k] > mxt ? mx[k] : mxt;
            mnt = mn[k] < mnt ? mn[k] : mnt;
        }
        abs_out[r] = at;
        sum_out[r] = st;
        max_out[r] = mxt;
        min_out[r] = mnt;
    }
    return 0;
}
"""

_lock = threading.Lock()
_lib: Optional[ctypes.CDLL] = None
_load_attempted = False
_OBS = get_registry()


def _compile_library() -> Optional[ctypes.CDLL]:
    """Compile (or reuse) the stats kernel; None on any failure."""
    # Build gate only: disabling kernels selects the NumPy statistics pass,
    # whose (different) rounding is covered by the same certified budget.
    # repro: allow[FP009] -- build gate, fallback covered by the same certified error budget
    if os.environ.get("REPRO_NO_CKERNELS"):
        return None
    cc = shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")
    if cc is None:
        return None
    # -ffp-contract=off keeps the source's rounding structure (no FMA
    # contraction), so the height-(width-1) error argument in the module
    # docstring is about exactly the operations written here.
    flags = ["-O3", "-march=native", "-fPIC", "-shared", "-ffp-contract=off"]
    digest = hashlib.blake2b(
        (_C_SOURCE + "\0" + " ".join(flags)).encode(), digest_size=16
    ).hexdigest()
    # Cache *location* only; the loaded kernel is digest-addressed.
    # repro: allow[FP009] -- cache path knob, kernel bytes digest-pinned
    cache_dir = os.environ.get("REPRO_CKERNEL_CACHE") or os.path.join(
        tempfile.gettempdir(), "repro-ckernels"
    )
    so_path = os.path.join(cache_dir, f"boundstats-{digest}.so")
    try:
        if not os.path.exists(so_path):
            outcome = "compiled"
            os.makedirs(cache_dir, exist_ok=True)
            with tempfile.TemporaryDirectory(dir=cache_dir) as td:
                src = os.path.join(td, "statskernel.c")
                with open(src, "w") as f:
                    f.write(_C_SOURCE)
                tmp_so = os.path.join(td, "statskernel.so")
                try:
                    subprocess.run(
                        [cc, *flags, src, "-o", tmp_so],
                        check=True,
                        capture_output=True,
                        timeout=120,
                    )
                except subprocess.CalledProcessError:
                    # some toolchains lack -march=native (e.g. cross cc)
                    safe = [f for f in flags if f != "-march=native"]
                    subprocess.run(
                        [cc, *safe, src, "-o", tmp_so],
                        check=True,
                        capture_output=True,
                        timeout=120,
                    )
                os.replace(tmp_so, so_path)  # atomic within cache_dir
        else:
            outcome = "reused"
        lib = ctypes.CDLL(so_path)
    except (OSError, subprocess.SubprocessError):
        if _OBS.enabled:
            _OBS.counter(
                "repro_statskernel_compile_events_total", outcome="failed"
            ).inc()
        return None
    if _OBS.enabled:
        _OBS.counter(
            "repro_statskernel_compile_events_total", outcome=outcome
        ).inc()
    fn = lib.bound_rowstats
    fn.argtypes = [
        ctypes.POINTER(ctypes.c_double),
        ctypes.c_int64,
        ctypes.c_int64,
        ctypes.POINTER(ctypes.c_double),
    ]
    fn.restype = ctypes.c_int
    return lib


def _get_lib() -> Optional[ctypes.CDLL]:
    global _lib, _load_attempted
    if not _load_attempted:
        with _lock:
            if not _load_attempted:
                _lib = _compile_library()
                _load_attempted = True
    return _lib


def kernel_available() -> bool:
    """True when the fused stats kernel loaded (compiler present, not gated)."""
    return _get_lib() is not None


def rowstats(flat: np.ndarray, n_rows: int, width: int):
    """Fused per-row statistics of a packed ``(n_rows, width)`` matrix.

    ``flat`` must be a C-contiguous float64 buffer of ``n_rows * width``
    elements (rows laid out back to back).  Returns four length-``n_rows``
    views ``(row_abs, row_sum, row_max, row_min_nonzero)`` backed by one
    freshly allocated output block, or ``None`` when the kernel is
    unavailable (caller stays on the NumPy path).
    """
    lib = _get_lib()
    if lib is None:
        return None
    out = np.empty(4 * n_rows, dtype=np.float64)
    rc = lib.bound_rowstats(
        flat.ctypes.data_as(ctypes.POINTER(ctypes.c_double)),
        ctypes.c_int64(n_rows),
        ctypes.c_int64(width),
        out.ctypes.data_as(ctypes.POINTER(ctypes.c_double)),
    )
    if rc != 0:
        return None
    return (
        out[:n_rows],
        out[n_rows : 2 * n_rows],
        out[2 * n_rows : 3 * n_rows],
        out[3 * n_rows :],
    )
