"""Interval arithmetic with outward rounding (Sec. III.B's technique).

The paper lists interval arithmetic among the mathematical techniques for
reproducible accuracy: "Techniques based on interval arithmetic replace
floating-point types with custom types representing finite-length intervals
of real numbers.  The actual value of the reduction is guaranteed to lie
within the interval. ... While the techniques are reproducible by design,
they also cause large slowdown and are not suitable for applications needing
many digits of accuracy."  It then drops the approach; we implement it so
that claim is *measured* rather than asserted (see the interval ablation
bench and the III.B tests).

CPython cannot switch the FPU rounding mode, so directed rounding is
synthesised exactly: TwoSum yields the sign of each add's rounding error,
and the bound is bumped one ulp outward only when the error is nonzero in
the inward direction — this is *tight* outward rounding (never wider than a
true directed-rounding implementation, always a valid enclosure).

Containment — the defining invariant — is property-tested against exact
rational arithmetic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from repro.fp.eft import two_sum, two_sum_array

__all__ = ["Interval", "add_down", "add_up", "sum_interval_array"]


def add_down(a: float, b: float) -> float:
    """fl_down(a + b): largest double <= the exact sum."""
    s, e = two_sum(a, b)
    if e < 0.0:
        return math.nextafter(s, -math.inf)
    return s


def add_up(a: float, b: float) -> float:
    """fl_up(a + b): smallest double >= the exact sum."""
    s, e = two_sum(a, b)
    if e > 0.0:
        return math.nextafter(s, math.inf)
    return s


@dataclass(frozen=True)
class Interval:
    """A closed interval ``[lo, hi]`` of reals with double endpoints."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if math.isnan(self.lo) or math.isnan(self.hi):
            raise ValueError("interval endpoints cannot be NaN")
        if self.lo > self.hi:
            raise ValueError(f"empty interval: [{self.lo}, {self.hi}]")

    # -- constructors -------------------------------------------------------
    @staticmethod
    def point(x: float) -> "Interval":
        return Interval(float(x), float(x))

    # -- arithmetic -----------------------------------------------------------
    def __add__(self, other: "Interval | float") -> "Interval":
        o = other if isinstance(other, Interval) else Interval.point(float(other))
        return Interval(add_down(self.lo, o.lo), add_up(self.hi, o.hi))

    __radd__ = __add__

    def __neg__(self) -> "Interval":
        return Interval(-self.hi, -self.lo)

    def __sub__(self, other: "Interval | float") -> "Interval":
        o = other if isinstance(other, Interval) else Interval.point(float(other))
        return self + (-o)

    # -- queries -----------------------------------------------------------------
    @property
    def width(self) -> float:
        return self.hi - self.lo

    @property
    def midpoint(self) -> float:
        return self.lo + 0.5 * (self.hi - self.lo)

    def contains(self, x: "float | Fraction") -> bool:
        v = Fraction(x) if not isinstance(x, Fraction) else x
        return Fraction(self.lo) <= v <= Fraction(self.hi)

    def digits(self) -> float:
        """Decimal digits of agreement the enclosure guarantees."""
        if self.width == 0.0:  # repro: allow[FP001] -- degenerate (width-zero) interval
            return 15.95
        mid = max(abs(self.lo), abs(self.hi))
        if mid == 0.0:  # repro: allow[FP001] -- zero-midpoint guard before the log
            return 0.0
        return float(min(max(-math.log10(self.width / mid), 0.0), 15.95))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Interval({self.lo!r}, {self.hi!r})"


def sum_interval_array(x: np.ndarray) -> Interval:
    """Enclosure of the exact sum of ``x``, vectorised.

    Both bounds are computed with a pairwise fold under synthetic directed
    rounding; the enclosure is valid for the *exact* sum, hence for every
    reduction order's value as well (any floating-point sum of the data lies
    within one final rounding of the exact sum, which the tests account for
    explicitly — what is guaranteed and asserted is containment of the exact
    sum).
    """
    x = np.asarray(x, dtype=np.float64).ravel()
    if x.size == 0:
        return Interval.point(0.0)
    lo = x.copy()
    hi = x.copy()
    while lo.size > 1:
        if lo.size % 2:
            lo = np.append(lo, 0.0)
            hi = np.append(hi, 0.0)
        # lower bounds: round down (an exact e == 0.0 needs no widening)
        s, e = two_sum_array(lo[0::2], lo[1::2])
        lo = np.where(e < 0.0, np.nextafter(s, -np.inf), s)
        # upper bounds: round up
        s, e = two_sum_array(hi[0::2], hi[1::2])
        hi = np.where(e > 0.0, np.nextafter(s, np.inf), s)
    return Interval(float(lo[0]), float(hi[0]))
