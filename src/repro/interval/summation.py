"""Interval summation as a registry algorithm (code ``IV``).

Bridges the interval substrate into the summation-algorithm interface so the
ensemble harnesses and ablation benches can measure Sec. III.B's claims —
guaranteed enclosure, "large slowdown", and accuracy loss for cancelling
sums — side by side with the paper's four algorithms.

``result()`` returns the enclosure midpoint (a point value is what a
reduction must deliver); the full enclosure is available on the accumulator
as ``interval``.  The midpoint of an outward-rounded enclosure is *not*
bitwise order-independent in general, but the enclosure always contains the
exact sum, which is the technique's actual guarantee.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.interval.core import Interval, add_down, add_up, sum_interval_array
from repro.summation.base import Accumulator, SumContext, SummationAlgorithm

__all__ = ["IntervalAccumulator", "IntervalSum"]


class IntervalAccumulator(Accumulator):
    """State: a running enclosure ``[lo, hi]`` of the exact partial sum."""

    __slots__ = ("lo", "hi")

    def __init__(self) -> None:
        self.lo = 0.0
        self.hi = 0.0

    def add(self, x: float) -> None:
        self.lo = add_down(self.lo, x)
        self.hi = add_up(self.hi, x)

    def add_array(self, x: np.ndarray) -> None:
        enclosure = sum_interval_array(x)
        self.lo = add_down(self.lo, enclosure.lo)
        self.hi = add_up(self.hi, enclosure.hi)

    def merge(self, other: "IntervalAccumulator") -> None:  # type: ignore[override]
        self.lo = add_down(self.lo, other.lo)
        self.hi = add_up(self.hi, other.hi)

    @property
    def interval(self) -> Interval:
        return Interval(self.lo, self.hi)

    def result(self) -> float:
        return self.interval.midpoint


class IntervalSum(SummationAlgorithm):
    """IV: interval (enclosure) summation — Sec. III.B made measurable."""

    code = "IV"
    name = "interval"
    cost_rank = 2  # two directed folds: ~2x the CP structure in passes
    deterministic = False  # midpoint varies with order; the *enclosure* is
    # what is guaranteed (see module docstring)

    def make_accumulator(self, context: Optional[SumContext] = None) -> IntervalAccumulator:
        return IntervalAccumulator()

    def sum_array(self, x: np.ndarray, context: Optional[SumContext] = None) -> float:
        return sum_interval_array(np.asarray(x, dtype=np.float64)).midpoint

    def enclosure(self, x: np.ndarray) -> Interval:
        """The full guaranteed enclosure of the exact sum."""
        return sum_interval_array(np.asarray(x, dtype=np.float64))
