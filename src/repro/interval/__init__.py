"""Interval-arithmetic substrate (Sec. III.B): outward-rounded enclosures
and the IV summation algorithm measuring that technique's tradeoffs."""

from repro.interval.core import Interval, add_down, add_up, sum_interval_array
from repro.interval.summation import IntervalAccumulator, IntervalSum
from repro.summation.registry import register as _register

# The interval algorithm lives outside repro.summation (to keep the import
# graph acyclic) and registers itself on package import; `import repro`
# always triggers this.
_register(IntervalSum())

__all__ = [
    "Interval",
    "IntervalAccumulator",
    "IntervalSum",
    "add_down",
    "add_up",
    "sum_interval_array",
]
