"""Exact (error-free) reference summation — replaces the paper's MPFR
quad-double reference with a strictly stronger integer superaccumulator."""

from repro.exact.reference import (
    abs_error,
    errors_against_exact,
    fraction_reference,
    fsum_reference,
    relative_error,
    signed_error,
)
from repro.exact.superacc import (
    ExactSum,
    exact_abs_sum_fraction,
    exact_sum,
    exact_sum_fraction,
)

__all__ = [
    "ExactSum",
    "abs_error",
    "errors_against_exact",
    "exact_abs_sum_fraction",
    "exact_sum",
    "exact_sum_fraction",
    "fraction_reference",
    "fsum_reference",
    "relative_error",
    "signed_error",
]
