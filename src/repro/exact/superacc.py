"""Exact summation via an integer superaccumulator.

The paper computes every error "with respect to an accurate reference sum,
which we compute in quad-double precision using the GNU MPFR high-precision
library" (Sec. V.C).  We go one better: every finite binary64 value is an
integer multiple of 2**-1074, so the exact sum of any number of doubles is
representable as a single arbitrary-precision integer scaled by 2**-1074.
:class:`ExactSum` maintains that integer (a Kulisch-style superaccumulator
with unbounded width), making the reference *error-free* rather than merely
high-precision, and trivially independent of summation order.

The vectorised :meth:`ExactSum.add_array` path decomposes a float64 array
with ``numpy.frexp`` into 53-bit integer mantissas and exponents, groups by
exponent, and reduces each group in overflow-safe int64 blocks before folding
the per-exponent totals into the big integer.  Summing 10**6 doubles takes a
few tens of milliseconds, which is what makes the 1000-tree grid experiments
feasible.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable

import numpy as np

__all__ = ["ExactSum", "exact_sum", "exact_sum_fraction", "exact_abs_sum_fraction"]

#: All finite binary64 values are integer multiples of 2**-SCALE_BITS.
_SCALE_BITS = 1074

#: Mantissas from frexp have magnitude < 2**53; blocks of 512 keep partial
#: sums below 2**62, safely inside int64.
_BLOCK = 512


class ExactSum:
    """Error-free accumulator for binary64 values.

    The represented value is ``self._acc * 2**-1074``.  All operations are
    exact; only :meth:`to_float` rounds (correctly, to nearest-even).

    Supports the same accumulate/merge interface as the summation
    accumulators in :mod:`repro.summation`, so it can be plugged into any
    reduction tree as the "oracle" operator.
    """

    __slots__ = ("_acc", "count")

    def __init__(self) -> None:
        self._acc: int = 0
        self.count: int = 0

    # -- scalar path -------------------------------------------------------
    def add(self, x: float) -> None:
        """Add one finite double exactly."""
        x = float(x)
        if x != x or x in (float("inf"), float("-inf")):
            raise ValueError(f"cannot accumulate non-finite value {x!r}")
        if x == 0.0:  # repro: allow[FP001] -- zeros contribute nothing; skipping them is exact
            self.count += 1
            return
        p, q = x.as_integer_ratio()  # q is a power of two <= 2**1074
        shift = _SCALE_BITS - (q.bit_length() - 1)
        self._acc += p << shift
        self.count += 1

    # -- vectorised path ----------------------------------------------------
    def add_array(self, x: np.ndarray) -> None:
        """Add every element of a float64 array exactly (vectorised)."""
        x = np.ascontiguousarray(x, dtype=np.float64).ravel()
        if x.size == 0:
            return
        if not np.all(np.isfinite(x)):
            raise ValueError("cannot accumulate non-finite values")
        nz = x[x != 0.0]  # repro: allow[FP001] -- drop exact zeros
        self.count += x.size
        if nz.size == 0:
            return
        m, e = np.frexp(nz)
        # m in +-[0.5, 1): scale to integers < 2**53 in magnitude.
        mi = np.ldexp(m, 53).astype(np.int64)
        shifts = e.astype(np.int64) - 53 + _SCALE_BITS
        order = np.argsort(shifts, kind="stable")
        mi = mi[order]
        shifts = shifts[order]
        # Group-reduce equal shifts in overflow-safe blocks.
        boundaries = np.flatnonzero(np.diff(shifts)) + 1
        group_starts = np.concatenate(([0], boundaries))
        group_ends = np.concatenate((boundaries, [shifts.size]))
        acc = self._acc
        for gs, ge in zip(group_starts, group_ends):
            total = 0
            for bs in range(gs, ge, _BLOCK):
                be = min(bs + _BLOCK, ge)
                total += int(np.add.reduce(mi[bs:be]))
            shift = int(shifts[gs])
            if shift >= 0:
                acc += total << shift
            else:
                # Subnormal-range values: mantissa has enough trailing zeros
                # for the right-shift to be exact.
                acc += total >> (-shift)
        self._acc = acc

    # -- combination ---------------------------------------------------------
    def merge(self, other: "ExactSum") -> None:
        """Fold another accumulator into this one (exact, order-free)."""
        self._acc += other._acc
        self.count += other.count

    def copy(self) -> "ExactSum":
        out = ExactSum()
        out._acc = self._acc
        out.count = self.count
        return out

    # -- extraction ----------------------------------------------------------
    def to_fraction(self) -> Fraction:
        """The exact accumulated value as a rational number."""
        return Fraction(self._acc, 1 << _SCALE_BITS)

    def to_float(self) -> float:
        """Correctly rounded (nearest-even) double of the exact value."""
        return float(self.to_fraction())

    def is_zero(self) -> bool:
        return self._acc == 0

    def error_of(self, computed: float) -> float:
        """Signed error ``computed - exact`` as a double.

        The subtraction is done in exact rational arithmetic and only the
        final difference is rounded, so tiny errors of sums with huge
        magnitude are reported faithfully.
        """
        return float(Fraction(computed) - self.to_fraction())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExactSum(value={self.to_float()!r}, count={self.count})"


def exact_sum(x: "np.ndarray | Iterable[float]") -> float:
    """Correctly rounded sum of ``x`` (convenience wrapper)."""
    acc = ExactSum()
    acc.add_array(np.asarray(list(x) if not isinstance(x, np.ndarray) else x, dtype=np.float64))
    return acc.to_float()


def exact_sum_fraction(x: "np.ndarray | Iterable[float]") -> Fraction:
    """Exact rational sum of ``x``."""
    acc = ExactSum()
    acc.add_array(np.asarray(list(x) if not isinstance(x, np.ndarray) else x, dtype=np.float64))
    return acc.to_fraction()


def exact_abs_sum_fraction(x: np.ndarray) -> Fraction:
    """Exact rational value of ``sum(|x_i|)`` (used by the condition number)."""
    acc = ExactSum()
    acc.add_array(np.abs(np.asarray(x, dtype=np.float64)))
    return acc.to_fraction()
