"""Reference sums and error measurement against them.

Three references of increasing cost/exactness are provided so tests can
cross-check one against another:

* :func:`fsum_reference` — CPython's Shewchuk-based ``math.fsum`` (correctly
  rounded double; exact up to the final rounding).
* :func:`fraction_reference` — exact rational sum built from
  ``float.as_integer_ratio`` (slow, scalar; used in property tests).
* :class:`~repro.exact.superacc.ExactSum` — exact and fast; the default
  reference for all experiments.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Iterable, Sequence

import numpy as np

from repro.exact.superacc import ExactSum, exact_sum_fraction

__all__ = [
    "fsum_reference",
    "fraction_reference",
    "signed_error",
    "abs_error",
    "relative_error",
    "errors_against_exact",
]


def fsum_reference(x: "np.ndarray | Iterable[float]") -> float:
    """Correctly rounded sum via ``math.fsum``."""
    arr = np.asarray(x, dtype=np.float64) if not isinstance(x, np.ndarray) else x
    return math.fsum(arr.ravel().tolist())


def fraction_reference(x: "Sequence[float] | np.ndarray") -> Fraction:
    """Exact rational sum via per-element ``Fraction`` conversion (slow)."""
    total = Fraction(0)
    arr = np.asarray(x, dtype=np.float64).ravel()
    for v in arr.tolist():
        total += Fraction(v)
    return total


def signed_error(computed: float, exact: Fraction) -> float:
    """``computed - exact`` rounded once to a double."""
    return float(Fraction(computed) - exact)


def abs_error(computed: float, exact: Fraction) -> float:
    """``|computed - exact|`` rounded once to a double."""
    return abs(signed_error(computed, exact))


def relative_error(computed: float, exact: Fraction) -> float:
    """``|computed - exact| / |exact|``; ``inf`` when exact == 0 and the
    computed value is nonzero, ``0`` when both are zero."""
    if exact == 0:
        return 0.0 if computed == 0.0 else math.inf  # repro: allow[FP001] -- exact-zero reference sentinel
    return float(abs(Fraction(computed) - exact) / abs(exact))


def errors_against_exact(
    computed: "Sequence[float] | np.ndarray", data: np.ndarray
) -> np.ndarray:
    """Absolute errors of many computed sums of the same ``data`` set.

    The exact reference is computed once; this is the inner loop of every
    tree-ensemble experiment (100-1000 computed sums per set).
    """
    exact = exact_sum_fraction(np.asarray(data, dtype=np.float64))
    return np.array([abs_error(float(c), exact) for c in np.asarray(computed, dtype=np.float64)])
