"""repro.obs — dependency-free runtime telemetry for the serving path.

See :mod:`repro.obs.registry` for the metric model and the hot-path
guarding contract, and ``docs/API.md`` ("Observability") for the metric
name catalogue each instrumented layer emits.
"""

from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
]
