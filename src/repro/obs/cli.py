"""``repro-metrics``: summarise a metrics snapshot written by ``--metrics-out``.

Usage::

    repro-metrics metrics.json                 # human-readable summary
    repro-metrics metrics.json --prometheus    # re-render as Prometheus text
    repro-metrics metrics.json --assert-nonzero repro_selector_selections_total

``--assert-nonzero`` exits non-zero unless every named counter (summed over
its label sets) is > 0 — the CI bench-smoke gate uses it to prove the
instrumented serving bench actually recorded traffic.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

__all__ = ["main", "summarize", "counter_total"]


def _fmt_labels(labels: dict) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"


def counter_total(snapshot: dict, name: str) -> float:
    """Sum of a counter/gauge across all its label sets (0 if absent)."""
    values = [
        sample["value"]
        for section in ("counters", "gauges")
        for sample in snapshot.get(section, {}).get(name, [])
    ]
    values.extend(
        sample["count"] for sample in snapshot.get("histograms", {}).get(name, [])
    )
    return math.fsum(values)


def _quantile(buckets: "list", count: int, q: float) -> "float | None":
    """Upper-bound estimate of the q-quantile from cumulative buckets."""
    if count == 0:
        return None
    target = q * count
    for le, cumulative in buckets:
        if cumulative >= target:
            return None if le == "+Inf" else float(le)
    return None


def summarize(snapshot: dict) -> str:
    """Human-readable one-line-per-sample summary of a snapshot dict."""
    lines: "list[str]" = []
    counters = snapshot.get("counters", {})
    if counters:
        lines.append("counters:")
        for name in sorted(counters):
            for sample in counters[name]:
                lines.append(
                    f"  {name}{_fmt_labels(sample['labels'])} = {sample['value']}"
                )
    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        for name in sorted(gauges):
            for sample in gauges[name]:
                lines.append(
                    f"  {name}{_fmt_labels(sample['labels'])} = {sample['value']}"
                )
    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append("histograms:")
        for name in sorted(histograms):
            for sample in histograms[name]:
                count = sample["count"]
                mean = sample["sum"] / count if count else 0.0
                p50 = _quantile(sample["buckets"], count, 0.50)
                p99 = _quantile(sample["buckets"], count, 0.99)
                detail = f"count={count} mean={mean:.3e}s"
                if p50 is not None:
                    detail += f" p50<={p50:g}s"
                if p99 is not None:
                    detail += f" p99<={p99:g}s"
                lines.append(f"  {name}{_fmt_labels(sample['labels'])}  {detail}")
    if not lines:
        return "(empty snapshot)"
    return "\n".join(lines)


def _render_prometheus_from_snapshot(snapshot: dict) -> str:
    """Rebuild Prometheus text from a snapshot dict (round-trip path)."""
    from repro.obs.registry import MetricsRegistry

    reg = MetricsRegistry(enabled=True)
    for name, samples in snapshot.get("counters", {}).items():
        for s in samples:
            reg.counter(name, **s["labels"]).inc(int(s["value"]))
    for name, samples in snapshot.get("gauges", {}).items():
        for s in samples:
            reg.gauge(name, **s["labels"]).set(s["value"])
    for name, samples in snapshot.get("histograms", {}).items():
        for s in samples:
            bounds = [float(le) for le, _ in s["buckets"] if le != "+Inf"]
            hist = reg.histogram(name, buckets=bounds, **s["labels"])
            prev = 0
            for i, (_le, cumulative) in enumerate(s["buckets"]):
                hist._counts[i] = int(cumulative) - prev
                prev = int(cumulative)
            hist._count = int(s["count"])
            hist._sum = float(s["sum"])
    return reg.render_prometheus()


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-metrics",
        description="Summarise a repro.obs metrics snapshot (JSON).",
    )
    parser.add_argument("snapshot", help="path to a --metrics-out JSON file")
    parser.add_argument(
        "--prometheus",
        action="store_true",
        help="emit Prometheus text exposition format instead of the summary",
    )
    parser.add_argument(
        "--assert-nonzero",
        action="append",
        default=[],
        metavar="NAME",
        help="exit 1 unless this metric's total is > 0 (repeatable)",
    )
    args = parser.parse_args(argv)

    try:
        snapshot = json.loads(Path(args.snapshot).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"repro-metrics: cannot read snapshot: {exc}", file=sys.stderr)
        return 2

    if args.prometheus:
        print(_render_prometheus_from_snapshot(snapshot), end="")
    else:
        print(summarize(snapshot))

    failures = 0
    for name in args.assert_nonzero:
        total = counter_total(snapshot, name)
        if total > 0:
            print(f"assert-nonzero ok: {name} = {total:g}")
        else:
            print(f"assert-nonzero FAILED: {name} = {total:g}", file=sys.stderr)
            failures += 1
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
