"""Process-global runtime metrics: counters, gauges, latency histograms.

The paper's closing argument (Sec. V.D) is that runtime selection only
works if the runtime can *observe itself*: profile cost, selection outcomes
and reduction cost must be measurable at a cost far below the reduction —
otherwise the audit changes the thing audited.  This module is that
measurement plane for the serving path, built to three constraints:

* **dependency-free** — stdlib only, importable everywhere in the tree
  without cycles (nothing here imports from ``repro``);
* **near-zero overhead when disabled** — every instrumentation site guards
  on the registry's ``enabled`` attribute *before doing any work*, so a
  disabled registry costs one attribute load per site (the
  ``benchmarks/bench_obs_overhead.py`` micro-bench pins this below tens of
  nanoseconds per guarded site);
* **thread-safe when enabled** — metric creation is serialised on a
  registry lock and every update takes a per-metric lock, so concurrent
  ``reduce_many`` streams from worker threads produce exact totals.

Metrics follow Prometheus conventions: ``*_total`` counters, unitless
gauges, ``*_seconds`` histograms with fixed upper-bound buckets.  The
registry exports three ways: :meth:`MetricsRegistry.snapshot` (a nested
dict, the programmatic surface), ``json.dumps(snapshot)`` (what
``--metrics-out`` writes) and :meth:`MetricsRegistry.render_prometheus`
(text exposition format, scrapable as-is).
"""

from __future__ import annotations

import json
import math
import threading
from typing import Iterable, Mapping, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "parse_prometheus_text",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
]

#: default histogram upper bounds (seconds): 1 µs .. 10 s, decade-spaced
#: with 3x midpoints — wide enough for one chunk profile and a whole
#: reduce_many stream on the same scale, cheap enough to bisect in ~4 steps
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3,
    1e-2, 3e-2, 1e-1, 3e-1, 1.0, 3.0, 10.0,
)

#: default histogram upper bounds (bytes): 256 B .. 1 GiB, power-of-4 —
#: for payload/batch size distributions (e.g. bytes packed per serving
#: tick), matching the power-of-two sizing the arenas grow by
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = (
    256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0,
    1048576.0, 4194304.0, 16777216.0, 67108864.0, 268435456.0,
    1073741824.0,
)

_LabelItems = Tuple[Tuple[str, str], ...]


def _label_items(labels: Mapping[str, str]) -> _LabelItems:
    """Canonical (sorted, stringified) label tuple — the metric identity."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition spec.

    Inside double-quoted label values, backslash, double-quote and
    line-feed must be escaped (in that order — escaping the backslash
    first keeps the other two escapes unambiguous).  Without this, a
    label carrying ``"`` or a newline renders an unscrapeable exposition.
    """
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt_number(value) -> str:
    """Canonical exposition rendering of a sample value or ``le`` bound.

    Coerces to a Python float first so foreign scalar types (``np.float64``
    under NumPy >= 2 reprs as ``np.float64(0.001)``) can never leak their
    repr into the exposition; Python-float ``repr`` is the shortest string
    that round-trips the exact value.  Integers stay integers.
    """
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):  # pragma: no cover - no NaN metric exists today
        return "NaN"
    return repr(value)


def _label_suffix(items: _LabelItems) -> str:
    if not items:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in items)
    return "{" + inner + "}"


class Counter:
    """Monotonically increasing count (events, items, cache hits)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: _LabelItems) -> None:
        self.name = name
        self.labels = labels
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (>= 0) to the count."""
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A value that can go up and down (cache size, last batch width)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: _LabelItems) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket latency histogram (cumulative counts, Prometheus-style).

    ``buckets`` are the finite upper bounds; an implicit ``+Inf`` bucket
    catches the tail.  ``observe`` costs one bisect plus one lock — no
    allocation — so it is safe inside the serving path's per-call timing.
    """

    __slots__ = ("name", "labels", "buckets", "_counts", "_sum", "_count", "_lock")

    def __init__(
        self,
        name: str,
        labels: _LabelItems,
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("buckets must be non-empty and strictly increasing")
        self.name = name
        self.labels = labels
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1: the +Inf bucket
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        lo, hi = 0, len(self.buckets)
        while lo < hi:  # bisect over the fixed bounds
            mid = (lo + hi) // 2
            if value <= self.buckets[mid]:
                hi = mid
            else:
                lo = mid + 1
        with self._lock:
            self._counts[lo] += 1
            self._sum += value  # repro: allow[FP003] -- telemetry total, not a numerical result
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def bucket_counts(self) -> "list[tuple[float, int]]":
        """Cumulative ``(le, count)`` pairs, ending with ``(inf, count)``."""
        with self._lock:
            raw = list(self._counts)
        pairs = []
        running = 0
        for bound, c in zip(self.buckets + (float("inf"),), raw):
            running += c
            pairs.append((bound, running))
        return pairs


class MetricsRegistry:
    """A named family of metrics behind one enable flag.

    Hot-path contract: instrumentation sites read :attr:`enabled` (a plain
    bool attribute) and return before *any* metric lookup when it is False::

        _OBS = get_registry()
        ...
        if _OBS.enabled:
            _OBS.counter("repro_x_total", algorithm=code).inc()

    ``counter``/``gauge``/``histogram`` get-or-create under the registry
    lock, so label cardinality is bounded by the distinct call sites and
    label values, and two threads racing on a fresh name receive the same
    metric object.
    """

    def __init__(self, *, enabled: bool = False) -> None:
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._metrics: "dict[tuple[str, str, _LabelItems], object]" = {}

    # -- lifecycle -----------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop every metric (counts and registrations); keep the flag."""
        with self._lock:
            self._metrics.clear()

    # -- registration --------------------------------------------------------
    def _get_or_create(self, kind: str, name: str, labels: Mapping[str, str], factory):
        key = (kind, name, _label_items(labels))
        metric = self._metrics.get(key)
        if metric is not None:
            return metric
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = factory(name, key[2])
                self._metrics[key] = metric
            return metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get_or_create("counter", name, labels, Counter)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get_or_create("gauge", name, labels, Gauge)

    def histogram(
        self,
        name: str,
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
        **labels: str,
    ) -> Histogram:
        return self._get_or_create(
            "histogram", name, labels, lambda n, li: Histogram(n, li, buckets)
        )

    # -- export --------------------------------------------------------------
    def _sorted_metrics(self) -> "list[tuple[tuple, object]]":
        with self._lock:
            items = list(self._metrics.items())
        return sorted(items, key=lambda kv: kv[0])

    def snapshot(self) -> dict:
        """Nested dict of every metric: the programmatic/JSON export surface.

        Shape::

            {"counters":   {name: [{"labels": {...}, "value": int}, ...]},
             "gauges":     {name: [{"labels": {...}, "value": float}, ...]},
             "histograms": {name: [{"labels": {...}, "count": int,
                                    "sum": float,
                                    "buckets": [[le, cumulative], ...]}]}}

        Label-free metrics still appear as one-sample lists so consumers
        need a single code path.  The snapshot is JSON-serialisable as-is
        (the ``+Inf`` bucket bound is rendered as the string ``"+Inf"``).
        """
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for (kind, name, labels), metric in self._sorted_metrics():
            sample: dict = {"labels": dict(labels)}
            if kind == "counter":
                sample["value"] = metric.value
                out["counters"].setdefault(name, []).append(sample)
            elif kind == "gauge":
                sample["value"] = metric.value
                out["gauges"].setdefault(name, []).append(sample)
            else:
                sample["count"] = metric.count
                sample["sum"] = metric.sum
                sample["buckets"] = [
                    ["+Inf" if le == float("inf") else le, c]
                    for le, c in metric.bucket_counts()
                ]
                out["histograms"].setdefault(name, []).append(sample)
        return out

    def to_json(self, *, indent: "int | None" = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (``# TYPE`` lines included).

        Label values are escaped per the exposition spec and every float is
        rendered via :func:`_fmt_number`, so the output survives hostile
        label values and foreign scalar types —
        :func:`parse_prometheus_text` is the inverse, and the round trip is
        pinned by tests.
        """
        lines: "list[str]" = []
        seen_types: "set[tuple[str, str]]" = set()
        for (kind, name, labels), metric in self._sorted_metrics():
            if (kind, name) not in seen_types:
                lines.append(f"# TYPE {name} {kind}")
                seen_types.add((kind, name))
            suffix = _label_suffix(labels)
            if kind in ("counter", "gauge"):
                lines.append(f"{name}{suffix} {_fmt_number(metric.value)}")
                continue
            for le, cumulative in metric.bucket_counts():
                items = labels + (("le", _fmt_number(le)),)
                lines.append(f"{name}_bucket{_label_suffix(items)} {cumulative}")
            lines.append(f"{name}_sum{suffix} {_fmt_number(metric.sum)}")
            lines.append(f"{name}_count{suffix} {metric.count}")
        return "\n".join(lines) + ("\n" if lines else "")


# -- exposition-format parsing -------------------------------------------------


def _parse_label_block(block: str, line: str) -> "dict[str, str]":
    """Parse the inside of a ``{...}`` label block, honouring escapes."""
    labels: "dict[str, str]" = {}
    i, n = 0, len(block)
    while i < n:
        eq = block.index("=", i)
        key = block[i:eq].strip()
        if not key or block[eq + 1] != '"':
            raise ValueError(f"malformed label in exposition line: {line!r}")
        i = eq + 2
        out: "list[str]" = []
        while True:
            if i >= n:
                raise ValueError(f"unterminated label value: {line!r}")
            ch = block[i]
            if ch == "\\":
                esc = block[i + 1 : i + 2]
                if esc == "n":
                    out.append("\n")
                elif esc in ('"', "\\"):
                    out.append(esc)
                else:
                    raise ValueError(f"bad escape in exposition line: {line!r}")
                i += 2
            elif ch == '"':
                i += 1
                break
            elif ch == "\n":
                raise ValueError(f"raw newline in label value: {line!r}")
            else:
                out.append(ch)
                i += 1
        labels[key] = "".join(out)
        if i < n:
            if block[i] != ",":
                raise ValueError(f"malformed label block: {line!r}")
            i += 1
    return labels


def _parse_number(token: str) -> float:
    if token == "+Inf":
        return math.inf
    if token == "-Inf":
        return -math.inf
    if token == "NaN":
        return math.nan
    return float(token)


def parse_prometheus_text(text: str) -> dict:
    """Strict parser for the Prometheus text exposition format.

    The inverse of :meth:`MetricsRegistry.render_prometheus`: returns
    ``{"types": {name: kind}, "samples": [{"name", "labels", "value"}]}``
    and raises :class:`ValueError` on anything a scraper would choke on —
    unescaped quotes/newlines in label values, non-numeric sample values,
    malformed ``# TYPE`` lines.  Serving tests and the bench-smoke job use
    it to prove ``/metrics`` output is scrapeable as-is.
    """
    types: "dict[str, str]" = {}
    samples: "list[dict]" = []
    for line in text.split("\n"):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    raise ValueError(f"malformed TYPE line: {line!r}")
                types[parts[2]] = parts[3]
            # other comments (# HELP, bare #) are legal and skipped
            continue
        if line.startswith("{"):
            raise ValueError(f"sample with no metric name: {line!r}")
        brace = line.find("{")
        if brace >= 0:
            name = line[:brace]
            close = line.rfind("}")
            if close < brace:
                raise ValueError(f"unterminated label block: {line!r}")
            labels = _parse_label_block(line[brace + 1 : close], line)
            rest = line[close + 1 :].split()
        else:
            fields = line.split()
            name, labels, rest = fields[0], {}, fields[1:]
        if len(rest) not in (1, 2):  # optional trailing timestamp is legal
            raise ValueError(f"malformed sample line: {line!r}")
        if not name or not all(
            c.isalnum() or c in "_:" for c in name
        ):
            raise ValueError(f"invalid metric name in line: {line!r}")
        samples.append(
            {"name": name, "labels": labels, "value": _parse_number(rest[0])}
        )
    return {"types": types, "samples": samples}


#: the process-global registry every instrumented layer shares
_GLOBAL = MetricsRegistry(enabled=False)


def get_registry() -> MetricsRegistry:
    """The process-global registry (disabled until ``.enable()`` is called)."""
    return _GLOBAL
