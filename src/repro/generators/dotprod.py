"""Ill-conditioned dot-product workloads (Ogita-Rump-Oishi ``GenDot``).

Companion generator for :mod:`repro.summation.dot`: produces vector pairs
``(x, y)`` whose dot product has a prescribed condition number

    k_dot = 2 * Σ|x_i y_i| / |Σ x_i y_i|

following Algorithm 6.1 of Ogita, Rump & Oishi, "Accurate Sum and Dot
Product" (SIAM J. Sci. Comput., 2005): half the entries are drawn with
exponents spanning ``log2(k)/2``; the other half are constructed one at a
time so the running exact dot product cancels down to the target size.  The
running products are tracked with the exact superaccumulator, so the
achieved condition is controlled to well within a decade.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.exact.superacc import ExactSum
from repro.fp.eft import two_prod
from repro.util.rng import SeedLike, resolve_rng

__all__ = ["DotWorkload", "ill_conditioned_dot", "dot_condition_number"]


@dataclass(frozen=True)
class DotWorkload:
    """A dot-product problem with its requested condition target."""

    x: np.ndarray
    y: np.ndarray
    target_condition: float


def dot_condition_number(x: np.ndarray, y: np.ndarray) -> float:
    """Exact ``2 Σ|x_i y_i| / |Σ x_i y_i|`` (``inf`` for zero dots)."""
    x = np.asarray(x, dtype=np.float64).ravel()
    y = np.asarray(y, dtype=np.float64).ravel()
    if x.size != y.size:
        raise ValueError("length mismatch")
    if x.size == 0:
        return 1.0
    from fractions import Fraction

    num = Fraction(0)
    den = ExactSum()
    for xi, yi in zip(x.tolist(), y.tolist()):
        p, e = two_prod(xi, yi)
        num += abs(Fraction(p) + Fraction(e))
        den.add(p)
        den.add(e)
    if den.is_zero():
        return math.inf
    return float(2 * num / abs(den.to_fraction()))


def ill_conditioned_dot(
    n: int, condition: float, seed: SeedLike = None
) -> DotWorkload:
    """Generate ``(x, y)`` of length ``n`` with dot condition ~ ``condition``.

    Requires ``n >= 6`` and ``condition >= 2`` (the definition's floor).
    """
    if n < 6:
        raise ValueError("need n >= 6")
    if condition < 2.0:
        raise ValueError("dot condition number is >= 2 by definition")
    rng = resolve_rng(seed)
    b = math.log2(condition)
    n_half = n // 2
    x = np.zeros(n)
    y = np.zeros(n)

    # first half: exponents spread over [0, b/2], endpoints planted
    e = np.rint(rng.uniform(0.0, b / 2.0, n_half)).astype(np.int64)
    e[0] = int(round(b / 2.0))
    e[-1] = 0
    x[:n_half] = (2.0 * rng.random(n_half) - 1.0) * np.exp2(e)
    y[:n_half] = (2.0 * rng.random(n_half) - 1.0) * np.exp2(e)

    # running exact dot of the prefix
    acc = ExactSum()
    for xi, yi in zip(x[:n_half].tolist(), y[:n_half].tolist()):
        p, err = two_prod(xi, yi)
        acc.add(p)
        acc.add(err)

    # second half: choose y[i] to cancel the running dot down to ~2**e_i
    e2 = np.rint(np.linspace(b / 2.0, 0.0, n - n_half)).astype(np.int64)
    for idx, ei in zip(range(n_half, n), e2.tolist()):
        x[idx] = (2.0 * rng.random() - 1.0) * math.exp2(ei)
        target = (2.0 * rng.random() - 1.0) * math.exp2(ei)
        y[idx] = (target - acc.to_float()) / x[idx]
        p, err = two_prod(float(x[idx]), float(y[idx]))
        acc.add(p)
        acc.add(err)

    return DotWorkload(x=x, y=y, target_condition=condition)
