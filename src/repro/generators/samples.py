"""Table I's literal sample sets with specified (dr, k).

The paper's Table I gives eleven four-value sets illustrating how dynamic
range and condition number are independent knobs.  They are reproduced here
verbatim (as decimal literals, exactly as printed) together with the (dr, k)
labels the table assigns, so the test suite can check our measured properties
against the paper's claims — the measured ``dr`` for decimal literals can
differ by ±1 binade from the paper's nominal label, since e.g. 1e-6 and 1e-14
do not sit exactly 8 binades apart; the table's labels are decimal-order
approximations.  ``TABLE_I`` entries carry the nominal labels; tests assert
exact agreement for ``k`` (which is decimal-exact by construction) and
agreement within 2 binades for ``dr``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["TableISample", "TABLE_I"]


@dataclass(frozen=True)
class TableISample:
    """One row of Table I: four values plus the nominal (dr, k) labels."""

    values: tuple[float, float, float, float]
    nominal_dr: int
    nominal_k: float

    def as_array(self) -> np.ndarray:
        return np.array(self.values, dtype=np.float64)


TABLE_I: tuple[TableISample, ...] = (
    TableISample((1.23e32, 1.35e32, 2.37e32, 3.54e32), 0, 1.0),
    TableISample((1.23e-32, 1.35e-32, 2.37e-32, 3.54e-32), 0, 1.0),
    TableISample((-1.23e16, -1.35e16, -2.37e16, -3.54e16), 0, 1.0),
    TableISample((2.37e16, 3.41e8, 4.32e8, 8.14e16), 8, 1.0),
    TableISample((3.14e32, 1.59e16, 2.65e18, 3.58e24), 16, 1.0),
    TableISample((2.505e2, 2.5e2, -2.495e2, -2.5e2), 0, 1000.0),
    TableISample((5.00e2, 4.99999e-1, 1.0e-6, -4.995e2), 8, 1000.0),
    TableISample((5.00e2, 4.9999e-1, 1.0e-14, -4.995e2), 16, 1000.0),
    TableISample((3.14e8, 1.59e8, -3.14e8, -1.59e8), 0, math.inf),
    TableISample((3.14e4, 1.59e-4, -3.14e4, -1.59e-4), 8, math.inf),
    TableISample((3.14e8, 1.59e-8, -3.14e8, -1.59e-8), 16, math.inf),
)
