"""N-body-style force-reduction workloads.

Sec. V.A motivates ill-conditioned inputs with N-body simulations [16]:
"reductions of floating-point values that are ill-conditioned; both k and dr
can frequently be very large", e.g. "when the net force on a particle is
close to zero".  This generator produces exactly that situation from first
principles: softened inverse-square pairwise forces on a probe particle in a
random cluster, for one coordinate axis.  Attractive pulls from opposite
sides cancel, so the net component is tiny relative to the absolute force
mass — large ``k`` — while clustering spreads magnitudes over many binades —
large ``dr``.

This is the physically-motivated example application workload (see
``examples/nbody_reduction.py``); the grid experiments use the precisely
targeted :mod:`repro.generators.conditioned` sets instead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import SeedLike, resolve_rng

__all__ = ["NBodyWorkload", "nbody_force_terms"]


@dataclass(frozen=True)
class NBodyWorkload:
    """Force contributions on a probe particle along one axis.

    ``terms`` are the per-source force components whose sum is the net
    force; ``positions``/``masses`` allow the example app to rebuild or
    perturb the system.
    """

    terms: np.ndarray
    positions: np.ndarray
    masses: np.ndarray
    probe_index: int
    axis: int


def nbody_force_terms(
    n_bodies: int,
    *,
    axis: int = 0,
    softening: float = 1e-6,
    clustering: float = 3.0,
    asymmetry: float = 0.01,
    seed: SeedLike = None,
) -> NBodyWorkload:
    """Pairwise force components on body 0 from ``n_bodies - 1`` sources.

    The cluster is built (mostly) point-symmetric about the probe: a source
    at ``p`` with mass ``m`` is mirrored at ``-p`` with the same mass, so
    their pulls cancel *exactly* and the net force is carried only by the
    small asymmetric remainder — the "net force on a particle is close to
    zero" situation Sec. V.A highlights.  This makes the term set genuinely
    ill-conditioned: ``k ~ (symmetric mass) / (remainder force)``.

    Parameters
    ----------
    n_bodies:
        Total bodies (>= 2); the probe is body 0 at the cluster's centre.
    softening:
        Plummer softening length; smaller values allow closer encounters
        and hence wider dynamic range.
    clustering:
        Log-normal sigma of radial distances: 0 gives a thin shell, larger
        values spread bodies over ``e**clustering`` decades of distance.
    asymmetry:
        Fraction of sources left unmirrored (0 gives an exactly-zero net
        force, i.e. ``k = inf``).
    """
    if n_bodies < 2:
        raise ValueError("need at least two bodies")
    if not 0 <= axis <= 2:
        raise ValueError("axis must be 0, 1 or 2")
    if not 0.0 <= asymmetry <= 1.0:
        raise ValueError("asymmetry must be in [0, 1]")
    rng = resolve_rng(seed)
    n_sources = n_bodies - 1
    n_lone = min(n_sources, max(0, round(asymmetry * n_sources)))
    if (n_sources - n_lone) % 2:
        n_lone += 1
    n_pairs = (n_sources - n_lone) // 2

    def sample(count: int) -> tuple[np.ndarray, np.ndarray]:
        raw = rng.normal(size=(count, 3))
        raw /= np.linalg.norm(raw, axis=1, keepdims=True)
        radii = np.exp(rng.normal(0.0, clustering, size=count))
        return raw * radii[:, None], np.exp(rng.normal(0.0, 1.0, size=count))

    pos_half, mass_half = sample(n_pairs)
    pos_lone, mass_lone = sample(n_lone)
    pos = np.vstack([pos_half, -pos_half, pos_lone])
    src_masses = np.concatenate([mass_half, mass_half, mass_lone])
    positions = np.vstack([np.zeros(3), pos])
    masses = np.concatenate([[1.0], src_masses])
    # force on probe (body 0) from each source j: G = 1
    r2 = np.sum(pos * pos, axis=1) + softening * softening
    inv_r3 = r2 ** (-1.5)
    terms = masses[0] * src_masses * inv_r3 * pos[:, axis]
    return NBodyWorkload(
        terms=terms,
        positions=positions,
        masses=masses,
        probe_index=0,
        axis=axis,
    )
