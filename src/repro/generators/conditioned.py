"""Generate summand sets with prescribed condition number and dynamic range.

Sec. V.A characterises a set of floating-point values by two intrinsic,
order-independent properties:

* sum condition number  ``k = (Σ|x_i|) / |Σ x_i|``  (``inf`` for exact-zero
  sums), and
* dynamic range  ``dr = exp(max|x_i|) - exp(min|x_i|)`` (difference of binary
  exponents).

The grid experiments need sets hitting target ``(k, dr)`` cells.  The
construction here guarantees ``dr`` *exactly* (both extreme exponents are
planted) and hits ``k`` to within a few percent (the cells of the paper's
grids are decades apart; the achieved value is always measured exactly by
:func:`repro.metrics.properties.condition_number` and reported alongside).

Construction regimes, chosen by target ``k``:

``k == 1``
    All values positive.  (The sign pattern is irrelevant per the paper:
    "A condition number equal to 1 means all values in sum have the same
    sign".)
``1 < k <= n/4``  (mixture regime)
    ``n/k`` positive-only values carry the surviving sum; the rest are exact
    ``±`` pairs contributing absolute mass but no net sum, so in expectation
    ``k = 1 + T_pairs/T_pos``.  One value is then corrected analytically to
    land the exact target.
``n/4 < k < inf``  (surplus regime)
    All values are exact ``±`` pairs except one "surplus" pair
    ``(fl(v + S_t), -v)`` whose tiny imbalance sets the sum to
    ``S_t ≈ T/k`` while both magnitudes stay inside the exponent range —
    mirroring Table I's ``{2.505e+2, 2.5e+2, -2.495e+2, -2.5e+2}`` pattern.
``k == inf``
    Pure exact ``±`` pairs (plus one exact ``(a, a, -2a)`` triple when ``n``
    is odd), so the exact sum is identically zero — the Fig. 6/7 workload.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.fp.properties import exponent
from repro.util.rng import SeedLike, resolve_rng

__all__ = ["ConditionedSet", "generate_sum_set", "zero_sum_set"]


@dataclass(frozen=True)
class ConditionedSet:
    """A generated summand set plus its requested targets.

    ``values`` is shuffled; achieved properties should be measured with
    :mod:`repro.metrics.properties` (exactly) rather than trusted from the
    request.
    """

    values: np.ndarray
    target_k: float
    target_dr: int
    base_exponent: int


def _magnitudes(
    rng: np.random.Generator, count: int, dr: int, base_exponent: int
) -> np.ndarray:
    """Positive magnitudes with exponents uniform over ``[e0, e0+dr]``,
    both endpoints guaranteed present (when count >= 2)."""
    if count <= 0:
        return np.empty(0, dtype=np.float64)
    exps = rng.integers(0, dr + 1, size=count) + base_exponent
    if count >= 2 and dr >= 0:
        exps[0] = base_exponent
        exps[1] = base_exponent + dr
    # mantissas in [1, 2): exponent is exactly exps[i]
    mant = rng.uniform(1.0, 2.0, size=count)
    # keep strictly below 2.0 so the exponent cannot round up a binade
    mant = np.minimum(mant, math.nextafter(2.0, 1.0))
    return np.ldexp(mant, exps)


def zero_sum_set(
    n: int, dr: int, seed: SeedLike = None, base_exponent: int = 0
) -> np.ndarray:
    """Exact-zero-sum set of ``n`` values with dynamic range exactly ``dr``.

    This is the workload of Sec. V.B ("constructed to have the exact sum of
    zero and dynamic range of 32"): maximal condition number, tunable
    alignment error.
    """
    if n < 2:
        raise ValueError("need n >= 2 for a zero-sum set")
    if dr < 0:
        raise ValueError("dynamic range must be >= 0")
    rng = resolve_rng(seed)
    odd = n % 2
    parts: list[np.ndarray]
    if not odd:
        if n == 2 and dr > 0:
            raise ValueError("a single ± pair always has dr == 0")
        mags = _magnitudes(rng, n // 2, dr, base_exponent)
        parts = [mags, -mags]
    elif dr >= 1 and dr <= 52:
        # Exact triple spanning the whole range: (2**(e0+dr), 2**e0,
        # -(2**(e0+dr) + 2**e0)); the inner sum is exact for dr <= 52, and
        # the negated value's exponent is e0+dr, so the span is realised by
        # the triple itself and the pairs are free to roam.
        m = (n - 3) // 2
        exps = rng.integers(0, dr + 1, size=m) + base_exponent
        mags = np.ldexp(
            np.minimum(rng.uniform(1.0, 2.0, size=m), math.nextafter(2.0, 1.0)), exps
        )
        hi = math.ldexp(1.0, base_exponent + dr)
        lo = math.ldexp(1.0, base_exponent)
        parts = [mags, -mags, np.array([hi, lo, -(hi + lo)])]
    elif dr >= 53:
        # Pairs plant the endpoints; the odd triple (a, a, -2a) sits at the
        # bottom, with -2a one binade up (inside the span).
        m = (n - 3) // 2
        if m < 2:
            raise ValueError("odd zero-sum sets with dr >= 53 need n >= 7")
        mags = _magnitudes(rng, m, dr, base_exponent)
        a = float(np.ldexp(rng.uniform(1.0, 2.0), base_exponent))
        parts = [mags, -mags, np.array([a, a, -2.0 * a])]
    else:
        # dr == 0 and n odd: an exact-zero triple inside one binade is
        # impossible (a + b >= 2**(e+1) > |c|), but the exact quintuple
        # (m, m, m, -1.5m, -1.5m) stays in-binade for m in [1, 4/3).
        if n < 5:
            raise ValueError("no odd zero-sum set with dr=0 exists for n < 5")
        m5 = (n - 5) // 2
        mags = _magnitudes(rng, m5, 0, base_exponent)
        q = float(np.ldexp(rng.uniform(1.0, 4.0 / 3.0), base_exponent))
        parts = [mags, -mags, np.array([q, q, q, -1.5 * q, -1.5 * q])]
    vals = np.concatenate(parts)
    rng.shuffle(vals)
    return vals


def generate_sum_set(
    n: int,
    condition: float,
    dynamic_range: int,
    seed: SeedLike = None,
    base_exponent: int = 0,
) -> ConditionedSet:
    """Generate ``n`` doubles targeting sum condition number ``condition``
    and dynamic range ``dynamic_range``.

    Parameters
    ----------
    n:
        Set size (>= 8; smaller sets over-constrain the simultaneous k and
        dr targets — build them by hand or from Table I instead).
    condition:
        Target ``k >= 1`` or ``math.inf`` for an exact-zero sum.
    dynamic_range:
        Exact binary-exponent span of the magnitudes.
    base_exponent:
        Exponent of the smallest magnitudes (default 0: values in [1, 2)).
    """
    if n < 8:
        raise ValueError("need n >= 8")
    if condition < 1.0:
        raise ValueError("condition number is >= 1 by definition")
    if dynamic_range < 0:
        raise ValueError("dynamic range must be >= 0")
    rng = resolve_rng(seed)
    dr = int(dynamic_range)

    if math.isinf(condition):
        vals = zero_sum_set(n, dr, rng, base_exponent)
        return ConditionedSet(vals, math.inf, dr, base_exponent)

    if condition == 1.0:  # repro: allow[FP001] -- exact sentinel for the benign case
        vals = _magnitudes(rng, n, dr, base_exponent)
        rng.shuffle(vals)
        return ConditionedSet(vals, 1.0, dr, base_exponent)

    vals = _surplus_regime(rng, n, condition, dr, base_exponent)
    if vals is None:
        vals = _mixture_regime(rng, n, condition, dr, base_exponent)
    rng.shuffle(vals)
    return ConditionedSet(vals, condition, dr, base_exponent)


def _mixture_regime(
    rng: np.random.Generator, n: int, k: float, dr: int, e0: int
) -> np.ndarray:
    """±-pair mass plus a positive-only block carrying the net sum.

    Handles small targets (k close to 1, where most of the mass must
    survive).  The positive-block size is refined iteratively against the
    measured ratio, then the whole positive block is rescaled analytically:
    with pair mass ``T_p`` and positive mass ``T_+``, scaling positives by
    ``alpha = T_p / ((k-1) T_+)`` lands ``k = 1 + T_p / (alpha T_+)``
    exactly (up to per-value range clamping).
    """
    n_pos = max(2, min(n - 4, int(round(n / k))))
    lo = math.ldexp(1.0, e0)
    hi = math.ldexp(math.nextafter(2.0, 1.0), e0 + dr)
    best: np.ndarray | None = None
    best_miss = math.inf
    for _ in range(4):
        if (n - n_pos) % 2:
            n_pos = min(n - 4, n_pos + 1)
        m = (n - n_pos) // 2
        pair_mags = _magnitudes(rng, m, dr, e0)
        pos = _magnitudes(rng, n_pos, dr, e0)
        t_pairs = 2.0 * float(np.sum(pair_mags))
        t_pos = float(np.sum(pos))
        if k > 1.0 and t_pairs > 0.0:
            alpha = t_pairs / ((k - 1.0) * t_pos)
            pos = np.clip(pos * alpha, lo, hi)
        vals = np.concatenate([pair_mags, -pair_mags, pos])
        t_pos_new = float(np.sum(pos))
        achieved = 1.0 + (t_pairs / t_pos_new if t_pos_new else math.inf)
        miss = abs(math.log(achieved / k)) if achieved > 0 else math.inf
        if miss < best_miss:
            best, best_miss = vals, miss
        if miss < 0.02:
            break
        # clamping skewed the ratio: trade positive count against it
        n_pos = max(2, min(n - 4, int(round(n_pos * achieved / k))))
    assert best is not None
    return best


def _surplus_regime(
    rng: np.random.Generator, n: int, k: float, dr: int, e0: int
) -> "np.ndarray | None":
    """Exact ± pairs plus ``j`` near-cancelling surplus pairs setting the sum.

    Each surplus pair is ``(fl(v_i + S_t/j), -v_i)`` with ``v_i`` in the top
    binade; the per-pair increment ``S_t/j`` is kept below ``0.4 * 2**(e0+dr)``
    so the perturbed value stays in-binade and the increment survives
    rounding.  Returns ``None`` when the required ``j`` does not fit in ``n``
    (the mixture regime then applies — that is the small-k case).
    """
    odd = n % 2
    top = math.ldexp(1.0, e0 + dr)
    v_scale = 1.3 * top
    cap = 0.4 * top

    # Fixed point for (j, S_t): total absolute mass T ≈ T0 + 2 j v̄ + S_t and
    # S_t = T / k.  Estimate T0 from the expected pair magnitude.
    def pair_mean() -> float:
        # expectation of mantissa(1.5 avg) * 2**U[0, dr]
        if dr == 0:
            return 1.5 * math.ldexp(1.0, e0)
        return 1.5 * math.ldexp(1.0, e0) * (2.0 ** (dr + 1) - 1) / (dr + 1)

    # The zero-sum block absorbing odd n: an exact triple (a, a, -2a) when
    # the span allows -2a's higher binade, else the in-binade quintuple
    # (q, q, q, -1.5q, -1.5q).
    odd_block = (3 if dr >= 1 else 5) * odd

    j = 1
    for _ in range(16):
        m = (n - 2 * j - odd_block) // 2
        if m < 0:
            return None
        t0_est = 2.0 * m * pair_mean() + 6.0 * math.ldexp(1.2, e0) * odd
        s_t = (t0_est + 2.0 * j * v_scale) / (k - 1.0)
        j_new = max(1, math.ceil(s_t / cap))
        if j_new == j:
            break
        j = j_new
    if 2 * j + odd_block > n - 4 and not (2 * j + odd_block == n):
        return None

    m = (n - 2 * j - odd_block) // 2
    if m < 2 and dr > 0:
        # not enough ± pairs left to plant the bottom of the exponent span
        return None
    pair_mags = _magnitudes(rng, m, dr, e0)
    parts = [pair_mags, -pair_mags]
    t0 = 2.0 * float(np.sum(pair_mags))
    if odd:
        if dr >= 1:
            a = float(np.ldexp(rng.uniform(1.0, 1.4), e0))
            parts.append(np.array([a, a, -2.0 * a]))
            t0 += 4.0 * a
        else:
            q = float(np.ldexp(rng.uniform(1.0, 4.0 / 3.0), e0))
            parts.append(np.array([q, q, q, -1.5 * q, -1.5 * q]))
            t0 += 6.0 * q
    v = np.ldexp(1.2 + 0.2 * rng.random(j), np.full(j, e0 + dr))
    # Re-solve S_t with the realised masses: S = (t0 + 2 Σv + S)/k.
    s_t = (t0 + 2.0 * float(np.sum(v))) / (k - 1.0)
    inc = s_t / j
    s1 = v + inc
    # clamp any value the increment pushed out of the top binade
    s1 = np.minimum(s1, math.nextafter(2.0, 1.0) * top)
    parts.append(s1)
    parts.append(-v)
    return np.concatenate(parts)
