"""Zero-sum series for the Fig. 4/5 timing workload.

The paper's timing case study generates, on each process, "a chunk of a
vector of values of length 10^6 from a series that is known to sum to zero
under exact arithmetic".  :func:`zero_sum_series` builds such a vector: the
full series is exactly zero *in exact arithmetic* (and in fact exactly zero
in binary, since it is built from negation pairs arranged with varying
magnitudes), while each chunk individually is nonzero — so the global
reduction is genuinely exercised.

The layout interleaves scales so chunks see wide dynamic range (making the
timing workload numerically honest, not just a constant-stride memcpy).
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import SeedLike, resolve_rng

__all__ = ["zero_sum_series", "chunk_for_rank"]


def zero_sum_series(
    n: int, dynamic_range: int = 24, seed: SeedLike = None
) -> np.ndarray:
    """A length-``n`` vector whose exact (and binary-exact) sum is zero.

    Values are ``±m * 2**e`` negation pairs with exponents cycling through
    ``[0, dynamic_range]``; the pair members are deliberately placed far
    apart (first half positive, second half negated in reversed order) so
    contiguous chunks do not trivially cancel.  Odd ``n`` appends an exact
    ``(a, a, -2a)`` triple spread across the vector.
    """
    if n < 2:
        raise ValueError("n must be >= 2")
    if dynamic_range < 0:
        raise ValueError("dynamic_range must be >= 0")
    rng = resolve_rng(seed)
    odd = n % 2
    m = (n - 3 * odd) // 2
    exps = np.arange(m) % (dynamic_range + 1)
    mant = rng.uniform(1.0, 2.0, size=m)
    mags = np.ldexp(np.minimum(mant, np.nextafter(2.0, 1.0)), exps)
    out = np.concatenate([mags, -mags[::-1]])
    if odd:
        a = float(np.ldexp(1.5, 0))
        out = np.concatenate([out[: m // 2], [a, a], out[m // 2 :], [-2.0 * a]])
    return out


def chunk_for_rank(series: np.ndarray, rank: int, n_ranks: int) -> np.ndarray:
    """The contiguous chunk of ``series`` owned by ``rank`` (block layout)."""
    if not 0 <= rank < n_ranks:
        raise ValueError(f"rank {rank} out of range for {n_ranks} ranks")
    n = series.size
    base, extra = divmod(n, n_ranks)
    start = rank * base + min(rank, extra)
    length = base + (1 if rank < extra else 0)
    return series[start : start + length]
