"""Plain random workloads used by the Sec. IV case studies.

* Fig. 2: "10,000 values sampled in the range (-1000, +1000)" summed under
  10,000 random orders — :func:`uniform_symmetric`.
* Fig. 3: "a set of 1,000 floating-point numbers uniformly distributed in
  [-1, 1]" — the same function with ``scale=1``.

Also provides log-uniform magnitude draws used by ablation workloads.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import SeedLike, resolve_rng

__all__ = ["uniform_symmetric", "log_uniform_magnitudes", "signed_log_uniform"]


def uniform_symmetric(n: int, scale: float = 1.0, seed: SeedLike = None) -> np.ndarray:
    """``n`` doubles uniform in ``(-scale, +scale)``."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if scale <= 0:
        raise ValueError("scale must be positive")
    rng = resolve_rng(seed)
    return rng.uniform(-scale, scale, size=n)


def log_uniform_magnitudes(
    n: int, min_exponent: int, max_exponent: int, seed: SeedLike = None
) -> np.ndarray:
    """Positive values with binary exponents uniform on the given range.

    A heavy-dynamic-range magnitude model (each binade equally likely),
    unlike :func:`uniform_symmetric` whose mass concentrates in the top
    binades.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if max_exponent < min_exponent:
        raise ValueError("max_exponent < min_exponent")
    rng = resolve_rng(seed)
    exps = rng.integers(min_exponent, max_exponent + 1, size=n)
    mant = rng.uniform(1.0, 2.0, size=n)
    return np.ldexp(np.minimum(mant, np.nextafter(2.0, 1.0)), exps)


def signed_log_uniform(
    n: int, min_exponent: int, max_exponent: int, seed: SeedLike = None
) -> np.ndarray:
    """Log-uniform magnitudes with independent random signs."""
    rng = resolve_rng(seed)
    mags = log_uniform_magnitudes(n, min_exponent, max_exponent, rng)
    signs = rng.choice([-1.0, 1.0], size=n)
    return mags * signs
