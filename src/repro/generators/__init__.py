"""Workload generators: targeted (k, dr) sets, zero-sum workloads, Table I
literals, plain random draws, and the physically motivated N-body terms."""

from repro.generators.conditioned import ConditionedSet, generate_sum_set, zero_sum_set
from repro.generators.dotprod import DotWorkload, dot_condition_number, ill_conditioned_dot
from repro.generators.distributions import (
    log_uniform_magnitudes,
    signed_log_uniform,
    uniform_symmetric,
)
from repro.generators.nbody import NBodyWorkload, nbody_force_terms
from repro.generators.samples import TABLE_I, TableISample
from repro.generators.series import chunk_for_rank, zero_sum_series

__all__ = [
    "ConditionedSet",
    "DotWorkload",
    "dot_condition_number",
    "ill_conditioned_dot",
    "NBodyWorkload",
    "TABLE_I",
    "TableISample",
    "chunk_for_rank",
    "generate_sum_set",
    "log_uniform_magnitudes",
    "nbody_force_terms",
    "signed_log_uniform",
    "uniform_symmetric",
    "zero_sum_series",
    "zero_sum_set",
]
