"""``application/x-repro-frame``: the binary wire format for numeric payloads.

The JSON codec spends more CPU on the wire than on the reduction it
carries: a 6k-element request costs ~2.3 ms to parse as a JSON number
array (~0.3 ms as base64) while the batched reduction itself is ~0.4 ms.
This module replaces that with a fixed binary frame whose payload bytes
are the array — request values reach NumPy as a zero-copy ``memoryview``
slice of the connection's receive buffer, and response values leave as
the raw little-endian float64 bits, so bitwise identity is carried by the
wire itself rather than by ``float.hex`` side channels.

Frame layout (all integers little-endian)::

    offset  size  field
    0       4     magic   b"RPRF"
    4       1     version (currently 1)
    5       1     kind    (1 = request, 2 = response)
    6       2     flags   (reserved, MUST be zero in version 1)
    8       4     header length H (uint32)
    12      4     payload length P (uint32)
    16      H     header: UTF-8 JSON object (dtype/shape + per-request params)
    16+H    P     payload: raw array bytes, exactly as declared by the header

Versioning rules: the magic never changes; parsers reject unknown
``version`` values and nonzero ``flags`` with a clean 400 (a future
version may assign flag bits, so version-1 encoders must write zero).
The frame length is closed — ``16 + H + P`` must equal the HTTP body's
``Content-Length`` exactly — so a truncated or padded frame can never
desynchronise keep-alive framing: the next request always starts at a
known byte.

Encoders SHOULD pad the JSON header with trailing spaces (legal JSON
whitespace) so that ``16 + H`` is a multiple of 8; the payload is then
8-aligned whenever the enclosing buffer is, and the zero-copy
``np.frombuffer`` view engages.  Parsers never *require* alignment — an
unaligned or byte-swapped payload just takes the one-copy slow path,
counted on the ``repro_serve_bytes_copied`` gauge.
"""

from __future__ import annotations

import json
import struct

import numpy as np

from repro.obs import get_registry
from repro.serve.protocol import HttpError

__all__ = [
    "FRAME_CONTENT_TYPE",
    "FRAME_MAGIC",
    "FRAME_VERSION",
    "KIND_REQUEST",
    "KIND_RESPONSE",
    "WIRE_DTYPES",
    "encode_frame",
    "parse_frame",
    "payload_array",
    "append_frame",
]

_OBS = get_registry()

FRAME_CONTENT_TYPE = "application/x-repro-frame"
FRAME_MAGIC = b"RPRF"
FRAME_VERSION = 1
KIND_REQUEST = 1
KIND_RESPONSE = 2

#: the fixed 16-byte preamble: magic, version, kind, flags, H, P
_PREAMBLE = struct.Struct("<4sBBHII")
PREAMBLE_SIZE = _PREAMBLE.size  # 16

#: headers are tiny JSON objects; anything past this is a malformed frame,
#: not a bigger header
MAX_HEADER_BYTES = 1 << 20

#: wire dtypes a version-1 payload may declare.  Little-endian IEEE floats
#: only: the reduction engines are precision-aware across exactly these
#: widths (fp16/fp32 inputs select at their own unit roundoff), and a
#: fixed whitelist keeps "dtype" from becoming an arbitrary-cast gadget.
WIRE_DTYPES = {
    "<f8": np.dtype("<f8"),
    "<f4": np.dtype("<f4"),
    "<f2": np.dtype("<f2"),
}


def encode_frame(
    header: dict,
    payload: "np.ndarray | bytes | None" = None,
    *,
    kind: int = KIND_REQUEST,
) -> bytes:
    """Serialise one frame (client/test-side convenience, allocating).

    ``payload`` may be an ndarray (sent as its raw bytes; the caller's
    ``header["dtype"]``/``header["shape"]`` must describe it) or raw
    bytes.  The JSON header is space-padded so the payload lands 8-aligned
    within the frame.
    """
    out = bytearray()
    append_frame(out, header, payload, kind=kind)
    return bytes(out)


def append_frame(
    out: bytearray,
    header: dict,
    payload: "np.ndarray | bytes | memoryview | None" = None,
    *,
    kind: int = KIND_RESPONSE,
) -> None:
    """Append one frame to ``out`` (the allocation-free render path).

    The daemon renders response frames straight into a reusable
    per-connection scratch ``bytearray``; only the small JSON header is
    freshly encoded per call.
    """
    head = json.dumps(header, separators=(",", ":")).encode()
    pad = -(PREAMBLE_SIZE + len(head)) % 8
    head_len = len(head) + pad
    if isinstance(payload, np.ndarray):
        body = memoryview(np.ascontiguousarray(payload)).cast("B")
    elif payload is None:
        body = b""
    else:
        body = payload
    out += _PREAMBLE.pack(
        FRAME_MAGIC, FRAME_VERSION, kind, 0, head_len, len(body)
    )
    out += head
    if pad:
        out += b" " * pad
    if len(body):
        out += body


def parse_frame(
    body,
    *,
    kind: "int | None" = KIND_REQUEST,
    what: str = "body",
) -> "tuple[dict, memoryview]":
    """Parse one frame out of an HTTP body; ``(header, payload view)``.

    ``body`` is the full request body (``bytes`` or a ``memoryview`` of
    the connection's receive buffer) — the returned payload is a zero-copy
    slice of it.  Every malformed shape raises :class:`HttpError` 400
    *without* touching the payload bytes: bad magic, unknown version,
    nonzero reserved flags, wrong kind, declared lengths that do not add
    up to the body length, and headers that are not a JSON object.
    """
    view = memoryview(body) if not isinstance(body, memoryview) else body
    if len(view) < PREAMBLE_SIZE:
        raise HttpError(
            400,
            f"{what}: truncated frame — {len(view)} bytes is shorter than "
            f"the {PREAMBLE_SIZE}-byte preamble",
        )
    magic, version, got_kind, flags, head_len, payload_len = _PREAMBLE.unpack_from(
        view, 0
    )
    if magic != FRAME_MAGIC:
        raise HttpError(
            400, f"{what}: bad frame magic {bytes(magic)!r} (expected "
            f"{FRAME_MAGIC!r})"
        )
    if version != FRAME_VERSION:
        raise HttpError(
            400, f"{what}: unsupported frame version {version} (this "
            f"server speaks version {FRAME_VERSION})"
        )
    if flags != 0:
        raise HttpError(
            400, f"{what}: reserved frame flags must be zero in version "
            f"{FRAME_VERSION} (got {flags:#06x})"
        )
    if kind is not None and got_kind != kind:
        raise HttpError(
            400, f"{what}: frame kind {got_kind} where kind {kind} was "
            "expected"
        )
    if head_len > MAX_HEADER_BYTES:
        raise HttpError(
            400, f"{what}: declared header length {head_len} exceeds the "
            f"{MAX_HEADER_BYTES}-byte cap"
        )
    if PREAMBLE_SIZE + head_len + payload_len != len(view):
        raise HttpError(
            400,
            f"{what}: declared lengths (header {head_len} + payload "
            f"{payload_len}) do not match the {len(view) - PREAMBLE_SIZE} "
            "bytes after the preamble",
        )
    try:
        header = json.loads(bytes(view[PREAMBLE_SIZE : PREAMBLE_SIZE + head_len]))
    except (ValueError, UnicodeDecodeError):
        raise HttpError(400, f"{what}: frame header is not valid JSON") from None
    if not isinstance(header, dict):
        raise HttpError(400, f"{what}: frame header must be a JSON object")
    return header, view[PREAMBLE_SIZE + head_len :]


def payload_array(
    header: dict, payload: memoryview, *, what: str = "body"
) -> np.ndarray:
    """The payload as an ndarray of the declared dtype/shape — zero-copy.

    The fast path returns ``np.frombuffer`` view over the payload slice
    (no intermediate ``bytes``, no ``astype``): it engages when the
    declared dtype is native on this platform and the buffer happens to be
    element-aligned, which encoders arrange by padding the header.  The
    slow path — foreign byte order or an unaligned buffer — copies once
    into a fresh native array and adds the byte count to the
    ``repro_serve_bytes_copied`` gauge, so a fleet that is silently
    copying shows up on ``/metrics``.

    Shape validation happens *before* any array is built: the declared
    element count must match the payload byte count exactly, so an absurd
    shape can never allocate, over-read, or hang.
    """
    dtype_str = header.get("dtype", "<f8")
    dt = WIRE_DTYPES.get(dtype_str)
    if dt is None:
        raise HttpError(
            400,
            f"{what}: unsupported wire dtype {dtype_str!r} (one of "
            f"{sorted(WIRE_DTYPES)} expected)",
        )
    shape = header.get("shape")
    if not isinstance(shape, list) or not shape or not all(
        isinstance(d, int) and not isinstance(d, bool) and d >= 0 for d in shape
    ):
        raise HttpError(
            400, f"{what}: frame header needs a 'shape' list of "
            "non-negative integers"
        )
    count = 1
    for d in shape:
        count *= d
    if count * dt.itemsize != len(payload):
        raise HttpError(
            400,
            f"{what}: declared shape {shape} ({count} x {dt.itemsize} "
            f"bytes) does not match the {len(payload)}-byte payload",
        )
    arr = np.frombuffer(payload, dtype=dt)
    if not (dt.isnative and arr.flags.aligned):
        # one-copy slow path: byte-swap to native order and/or realign
        # (``astype(copy=True)`` always produces a fresh aligned array —
        # ``ascontiguousarray`` would hand the unaligned view straight back)
        arr = arr.astype(dt.newbyteorder("="), copy=True)
        if _OBS.enabled:
            _OBS.gauge("repro_serve_bytes_copied").inc(len(payload))
    return arr.reshape(shape)
