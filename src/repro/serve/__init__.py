"""repro.serve — the network serving front end.

ROADMAP item 1 calls network serving "the piece that turns library into
service": the batched selection/reduction engines
(:meth:`repro.selection.selector.AdaptiveReducer.reduce_many`, the bound
tier, the persistent worker pool) only pay off when they sit in front of
real concurrent traffic.  This package is that front end, built on stdlib
``asyncio`` with a hand-rolled minimal HTTP/1.1 layer — no new
dependencies:

* :mod:`repro.serve.protocol` — wire parsing/rendering (reusable
  per-connection receive buffers, cached response-header scaffolds) plus
  the async clients used by the tests and the serving bench, including
  the buffer-reusing :class:`~repro.serve.protocol.KeepAliveClient`;
* :mod:`repro.serve.frames` — the ``application/x-repro-frame`` binary
  codec: versioned frames whose payload bytes reach NumPy as zero-copy
  views of the receive buffer (JSON stays for compatibility);
* :mod:`repro.serve.batcher` — the dynamic micro-batcher: a bounded queue
  drained into one ``reduce_many`` call per tick (max-batch-size and
  max-linger knobs), with per-request deadlines, backpressure, and a
  graceful drain;
* :mod:`repro.serve.daemon` — the asyncio HTTP daemon exposing
  ``POST /v1/reduce``, ``POST /v1/reduce_many``, ``POST /v1/ensemble``,
  ``GET /metrics`` (Prometheus text) and ``GET /healthz``;
* :mod:`repro.serve.cli` — the ``repro-serve`` entry point, including the
  SIGTERM/SIGINT handling that drains in-flight requests and releases the
  worker pool's shared-memory arenas (``atexit`` alone does not run on
  SIGTERM).

Every response value is bitwise-identical to a standalone
:meth:`AdaptiveReducer.reduce` of the same payload — micro-batching changes
*cost*, never *results* — which is the whole point of serving a
reproducibility engine.
"""

from repro.serve.batcher import (
    BatcherClosing,
    BatcherFull,
    DeadlineExceeded,
    MicroBatcher,
)
from repro.serve.daemon import ReproServeDaemon
from repro.serve.frames import FRAME_CONTENT_TYPE, encode_frame, parse_frame
from repro.serve.protocol import KeepAliveClient

__all__ = [
    "MicroBatcher",
    "BatcherFull",
    "BatcherClosing",
    "DeadlineExceeded",
    "ReproServeDaemon",
    "FRAME_CONTENT_TYPE",
    "encode_frame",
    "parse_frame",
    "KeepAliveClient",
]
